//! Theory playground: watch Theorem 1 happen on a convex problem.
//!
//! Builds a fleet of strongly convex quadratic clients with known constants
//! (`L`, `μ`, `Γ`), runs the actual Fed-MS loop with the proof's decaying
//! step size under a Random server attack, and prints the measured
//! optimality gap next to the closed-form bound and the Δ error budget.
//!
//! Run with: `cargo run --release --example theory_playground`

use fedms::nn::convex::QuadraticFleet;
use fedms::theory::{log_log_slope, run_convex_fedms, ConvexFedMsConfig};
use fedms::{AttackKind, CoreError};

fn main() -> Result<(), CoreError> {
    let fleet = QuadraticFleet::random(30, 12, 0.5, 2.0, 1.0, 1)?;
    println!(
        "fleet: K={} d={} L={:.2} mu={:.2} Gamma={:.3}\n",
        fleet.len(),
        fleet.dim(),
        fleet.smoothness(),
        fleet.strong_convexity(),
        fleet.gamma()
    );

    for (label, byzantine, beta) in [
        ("clean, no filter", 0usize, None),
        ("2/8 byzantine, no filter", 2, None),
        ("2/8 byzantine, trimmed 0.25", 2, Some(0.25)),
    ] {
        let cfg = ConvexFedMsConfig {
            servers: 8,
            byzantine,
            attack: AttackKind::Random { lo: -10.0, hi: 10.0 },
            beta,
            local_epochs: 3,
            noise_std: 0.1,
            rounds: 500,
            seed: 7,
            init_offset: 5.0,
        };
        let (points, constants) = run_convex_fedms(&fleet, &cfg)?;
        let slope = log_log_slope(&points[1..points.len() / 2]).unwrap_or(f64::NAN);
        println!("{label}:");
        println!(
            "  gap at t=3: {:.3}   t=150: {:.5}   t=1500: {:.6}   slope {:.2}",
            points[1].gap, points[50].gap, points[500].gap, slope
        );
        if byzantine > 0 && beta.is_some() {
            println!(
                "  Delta budget: byzantine term {:.1}, sparse-upload term {:.1}",
                constants.byzantine_term(),
                constants.sparse_term()
            );
        }
    }
    println!("\nTakeaway: the trimmed filter restores the clean 1/t decay that the");
    println!("unfiltered run loses the moment Byzantine servers appear.");
    Ok(())
}
