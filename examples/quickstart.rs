//! Quickstart: defend a 50-client federation against Byzantine parameter
//! servers in ~30 lines.
//!
//! Two of the ten edge servers are compromised and replace their aggregates
//! with uniform garbage (the paper's Random attack). We run the same
//! federation twice — once undefended (Vanilla FL) and once with the
//! Fed-MS trimmed-mean filter — and watch the undefended run collapse.
//!
//! Run with: `cargo run --release --example quickstart`

use fedms::{AttackKind, CoreError, FedMsConfig, FilterKind};

fn main() -> Result<(), CoreError> {
    let rounds = 30;

    println!("Fed-MS quickstart: K=50 clients, P=10 servers, B=2 Byzantine");
    println!("attack: Random [-10, 10] replacement of the aggregated model\n");

    for (label, filter) in [
        ("vanilla FL (mean filter)", FilterKind::Mean),
        ("Fed-MS (trimmed mean, beta=0.2)", FilterKind::TrimmedMean { beta: 0.2 }),
    ] {
        let mut cfg = FedMsConfig::paper_defaults(42)?;
        cfg.byzantine_count = 2;
        cfg.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
        cfg.filter = filter;
        cfg.rounds = rounds;
        cfg.eval_every = 5;

        let result = cfg.run()?;
        println!("{label}:");
        for m in &result.rounds {
            println!("  round {:>2}  accuracy {:.1}%", m.round, m.mean_accuracy * 100.0);
        }
        println!(
            "  => final {:.1}%  (uploads/round: {})\n",
            result.final_accuracy().unwrap_or(0.0) * 100.0,
            result.total_comm.upload_messages / rounds as u64,
        );
    }

    println!("The trimmed-mean filter discards the tampered extremes in every");
    println!("coordinate, so Fed-MS trains as if the attackers were not there.");
    Ok(())
}
