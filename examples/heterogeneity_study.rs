//! Heterogeneity study: how non-iid can the client data get before
//! federated training suffers?
//!
//! Scenario: a fleet of hospitals trains a shared diagnostic model; each
//! site sees a skewed slice of the condition distribution. The Dirichlet
//! `D_α` knob reproduces this skew. The study prints, per α: the label
//! skew statistics of the partition, and the accuracy Fed-MS reaches under
//! a simultaneous Byzantine-server attack.
//!
//! Run with: `cargo run --release --example heterogeneity_study`

use fedms::data::mean_tv_distance;
use fedms::{
    AttackKind, CoreError, DirichletPartitioner, FedMsConfig, FilterKind, LabelHistogram,
    SynthVisionConfig,
};

fn main() -> Result<(), CoreError> {
    let (train, _) = SynthVisionConfig::default().generate(7)?;

    println!("Heterogeneity study: Dirichlet D_a from pathological to iid");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "D_a", "mean TV", "min entropy", "max entropy", "final acc"
    );
    for alpha in [0.5, 1.0, 5.0, 10.0, 100.0, 1000.0] {
        let shards = DirichletPartitioner::new(alpha)?.partition(&train, 50, 7)?;
        let tv = mean_tv_distance(&train, &shards);
        let mut min_h = f64::INFINITY;
        let mut max_h = f64::NEG_INFINITY;
        for shard in &shards {
            let h = LabelHistogram::from_indices(&train, shard)?.entropy();
            min_h = min_h.min(h);
            max_h = max_h.max(h);
        }

        let mut cfg = FedMsConfig::paper_defaults(7)?;
        cfg.byzantine_count = 2;
        cfg.attack = AttackKind::Noise { std: 1.0 };
        cfg.filter = FilterKind::TrimmedMean { beta: 0.2 };
        cfg.dirichlet_alpha = alpha;
        cfg.rounds = 25;
        cfg.eval_every = 25;
        let acc = cfg.run()?.final_accuracy().unwrap_or(0.0);

        println!("{alpha:>8} {tv:>10.3} {min_h:>12.3} {max_h:>12.3} {:>11.1}%", acc * 100.0);
    }
    println!("\nSmaller D_a -> spikier per-client label distributions (higher TV,");
    println!("lower entropy) and a harder federated optimisation problem.");
    Ok(())
}
