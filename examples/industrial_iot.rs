//! Industrial-IoT condition monitoring — the paper's motivating domain.
//!
//! Fifty factory gateways each observe vibration/temperature-style sensor
//! waveforms from their local machines and collaboratively train a
//! condition classifier. The edge aggregation layer (10 outdoor parameter
//! servers, 2 compromised) runs Fed-MS. This example drives the simulator
//! directly with the `SynthSensor` time-series dataset — showing the engine
//! is dataset-agnostic (anything that yields a [`fedms::Dataset`] works).
//!
//! Run with: `cargo run --release --example industrial_iot`

use fedms::{
    AttackKind, DirichletPartitioner, EngineConfig, EstimatorPolicy, LrSchedule, ModelSpec,
    RecoveryPolicy, ServerAttack, SimulationEngine, SynthSensorConfig, ThreatSchedule, Topology,
    TrimmedMean, UploadStrategy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sensor_cfg = SynthSensorConfig::default();
    let (train, test) = sensor_cfg.generate(2026)?;
    println!(
        "IIoT condition monitoring: {} conditions, {} sensors x {} steps, {} train samples",
        sensor_cfg.num_classes,
        sensor_cfg.sensors,
        sensor_cfg.timesteps,
        train.len()
    );

    // Gateways see skewed condition mixes (one plant mostly healthy, one
    // mostly bearing faults, ...): Dirichlet α = 2.
    let partitions = DirichletPartitioner::new(2.0)?.partition(&train, 50, 2026)?;

    let topology = Topology::with_random_byzantine(50, 10, 2, 2026)?;
    let byzantine: Vec<usize> = topology.byzantine_ids().collect();
    println!("edge servers: 10, compromised: {byzantine:?} (mounting the Random attack)\n");

    let config = EngineConfig {
        topology,
        model: ModelSpec::Mlp {
            widths: vec![sensor_cfg.sample_volume(), 48, sensor_cfg.num_classes],
        },
        upload: UploadStrategy::Sparse,
        local_epochs: 3,
        batch_size: 32,
        schedule: LrSchedule::Constant(0.1),
        seed: 2026,
        eval_every: 5,
        eval_clients: 0,
        parallel: true,
        threads: 0,
        eval_after_local: true,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms::BackendKind::Scalar,
    };
    let attacks: Vec<(usize, Box<dyn ServerAttack>)> = byzantine
        .iter()
        .map(|&id| AttackKind::Random { lo: -10.0, hi: 10.0 }.build().map(|attack| (id, attack)))
        .collect::<Result<_, _>>()?;

    let mut engine = SimulationEngine::new(
        config,
        &train,
        &test,
        &partitions,
        Box::new(TrimmedMean::new(0.2)?),
        attacks,
    )?;
    engine.set_record_diagnostics(true);

    let result = engine.run(30)?;
    println!("{:>6} {:>10} {:>16} {:>14}", "round", "accuracy", "srv disagreement", "filter move");
    for m in &result.rounds {
        let d = m.diagnostics.as_ref();
        println!(
            "{:>6} {:>9.1}% {:>16.2} {:>14.3}",
            m.round,
            m.mean_accuracy * 100.0,
            d.map_or(0.0, |d| d.server_disagreement),
            d.map_or(0.0, |d| d.filter_displacement),
        );
    }
    println!(
        "\nfinal condition-classification accuracy: {:.1}% despite 2 hijacked servers",
        result.final_accuracy().unwrap_or(0.0) * 100.0
    );
    println!("(the 'filter move' column is the distance between naive averaging and");
    println!(" the trimmed mean — the defence visibly working every round)");
    Ok(())
}
