//! Communication budget: is uploading to every server worth it?
//!
//! Scenario: your edge network bills by the byte. Each client could upload
//! its model to all `P` servers (maximum redundancy, `K·P` messages per
//! round), to a few, or — the Fed-MS design — to exactly one chosen at
//! random (`K` messages, the same as classic single-server FL). This
//! example measures the real byte counts from the simulator's accounting
//! and the accuracy each budget buys under an active attack.
//!
//! Run with: `cargo run --release --example communication_budget`

use fedms::{AttackKind, CoreError, FedMsConfig, FilterKind, UploadStrategy};

fn main() -> Result<(), CoreError> {
    let rounds = 25;
    println!("Communication budget under the Noise attack (K=50, P=10, B=2)\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10}",
        "strategy", "msgs/rnd", "upload MiB", "down MiB", "final acc"
    );
    for (label, strategy) in [
        ("sparse (1 PS)", UploadStrategy::Sparse),
        ("redundant k=2", UploadStrategy::Redundant(2)),
        ("redundant k=5", UploadStrategy::Redundant(5)),
        ("full (all P)", UploadStrategy::Full),
    ] {
        let mut cfg = FedMsConfig::paper_defaults(42)?;
        cfg.byzantine_count = 2;
        cfg.attack = AttackKind::Noise { std: 1.0 };
        cfg.filter = FilterKind::TrimmedMean { beta: 0.2 };
        cfg.upload = strategy;
        cfg.rounds = rounds;
        cfg.eval_every = rounds;
        let result = cfg.run()?;
        let comm = result.total_comm;
        println!(
            "{:<16} {:>10} {:>12.2} {:>12.2} {:>9.1}%",
            label,
            comm.upload_messages / rounds as u64,
            comm.upload_bytes as f64 / (1024.0 * 1024.0),
            comm.download_bytes as f64 / (1024.0 * 1024.0),
            result.final_accuracy().unwrap_or(0.0) * 100.0
        );
    }
    println!("\nSparse upload costs P× less than full upload; Lemma 3 prices the");
    println!("accuracy difference (a variance term that vanishes as rounds grow).");
    Ok(())
}
