//! Byzantine gauntlet: stress every defence filter against every server
//! attack and print the resulting accuracy matrix.
//!
//! Scenario: you operate an outdoor edge deployment (the paper's Industrial
//! IoT motivation) and must pick a client-side filter *before* knowing
//! which attack the adversary will mount. The gauntlet shows why the paper
//! settles on the trimmed mean: it is the only filter in this set that is
//! simultaneously cheap, robust to every attack, and loses nothing in the
//! attack-free case.
//!
//! Run with: `cargo run --release --example byzantine_gauntlet`

use fedms::{AttackKind, CoreError, FedMsConfig, FilterKind};

fn final_accuracy(
    attack: AttackKind,
    byzantine: usize,
    filter: FilterKind,
) -> Result<f32, CoreError> {
    let mut cfg = FedMsConfig::paper_defaults(42)?;
    cfg.byzantine_count = byzantine;
    cfg.attack = attack;
    cfg.filter = filter;
    cfg.rounds = 25;
    cfg.eval_every = 25; // only the final round matters here
    Ok(cfg.run()?.final_accuracy().unwrap_or(0.0))
}

fn main() -> Result<(), CoreError> {
    let attacks: Vec<(&str, AttackKind, usize)> = vec![
        ("none", AttackKind::Benign, 0),
        ("noise", AttackKind::Noise { std: 1.0 }, 2),
        ("random", AttackKind::Random { lo: -10.0, hi: 10.0 }, 2),
        ("safeguard", AttackKind::Safeguard { gamma: 0.6 }, 2),
        ("backward", AttackKind::Backward { delay: 2 }, 2),
        ("sign-flip", AttackKind::SignFlip { scale: 1.0 }, 2),
        ("zero", AttackKind::Zero, 2),
    ];
    let filters: Vec<(&str, FilterKind)> = vec![
        ("mean", FilterKind::Mean),
        ("trim.2", FilterKind::TrimmedMean { beta: 0.2 }),
        ("median", FilterKind::Median),
        ("krum", FilterKind::Krum { f: 2 }),
        ("geomed", FilterKind::GeometricMedian),
    ];

    println!("Byzantine gauntlet: final accuracy (%) after 25 rounds");
    println!("K=50, P=10, B=2 (except the attack-free row)\n");
    print!("{:<10}", "attack");
    for (fname, _) in &filters {
        print!(" {fname:>8}");
    }
    println!();
    let mut worst = vec![f32::INFINITY; filters.len()];
    for (aname, attack, byz) in &attacks {
        print!("{aname:<10}");
        for (fi, (_, filter)) in filters.iter().enumerate() {
            let acc = final_accuracy(*attack, *byz, *filter)?;
            worst[fi] = worst[fi].min(acc);
            print!(" {:>7.1}%", acc * 100.0);
        }
        println!();
    }
    print!("{:<10}", "worst");
    for w in &worst {
        print!(" {:>7.1}%", w * 100.0);
    }
    println!("\n\nPick the filter with the best worst-case row: that is the");
    println!("trimmed mean — the Fed-MS defence.");
    Ok(())
}
