//! Criterion bench for Figure 5's workload: one federated round at each
//! data-heterogeneity level D_α ∈ {1, 5, 10, 1000} (Noise attack, ε = 20%,
//! Fed-MS filter). The `fig5` binary regenerates the figure; this bench
//! verifies the round cost is independent of the partition's skew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedms_attacks::AttackKind;
use fedms_core::{FedMsConfig, FilterKind};

fn bench_fig5_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_round");
    group.sample_size(10);
    for alpha in [1.0f64, 5.0, 10.0, 1000.0] {
        let mut cfg = FedMsConfig::paper_defaults(42).expect("paper defaults");
        cfg.byzantine_count = 2;
        cfg.attack = AttackKind::Noise { std: 1.0 };
        cfg.filter = FilterKind::TrimmedMean { beta: 0.2 };
        cfg.dirichlet_alpha = alpha;
        cfg.parallel = false;
        group.bench_function(BenchmarkId::new("round", format!("alpha{alpha}")), |b| {
            let mut engine = cfg.build_engine().expect("engine builds");
            b.iter(|| engine.step_round(false).expect("round runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5_round);
criterion_main!(benches);
