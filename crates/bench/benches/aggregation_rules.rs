//! Criterion bench: aggregation-rule cost scaling in (P, d).
//!
//! The Fed-MS filter runs on every client every round, so its cost versus
//! the baselines (mean, median, Krum, geometric median) matters for edge
//! deployment. Measures `aggregate()` over P models of dimension d.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedms_aggregation::{
    AggregationRule, CoordinateMedian, GeometricMedian, Krum, Mean, TrimmedMean,
};
use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use std::hint::black_box;

fn models(p: usize, d: usize) -> Vec<Tensor> {
    let mut rng = rng_for(1, &[p as u64, d as u64]);
    (0..p).map(|_| Tensor::randn(&mut rng, &[d], 0.0, 1.0)).collect()
}

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_rules");
    group.sample_size(20);
    let rules: Vec<(&str, Box<dyn AggregationRule>)> = vec![
        ("mean", Box::new(Mean::new())),
        ("trimmed_mean_0.2", Box::new(TrimmedMean::new(0.2).expect("valid beta"))),
        ("median", Box::new(CoordinateMedian::new())),
        ("krum_f2", Box::new(Krum::new(2))),
        ("geo_median", Box::new(GeometricMedian::new())),
    ];
    for d in [1_000usize, 13_000] {
        let ms = models(10, d);
        for (name, rule) in &rules {
            group.bench_with_input(BenchmarkId::new(*name, format!("P10_d{d}")), &ms, |b, ms| {
                b.iter(|| rule.aggregate(black_box(ms)).expect("aggregation succeeds"))
            });
        }
    }
    // Scaling in P for the paper's model size.
    let d = 13_000;
    for p in [5usize, 20] {
        let ms = models(p, d);
        let rule = TrimmedMean::new(0.2).expect("valid beta");
        group.bench_with_input(
            BenchmarkId::new("trimmed_mean_0.2", format!("P{p}_d{d}")),
            &ms,
            |b, ms| b.iter(|| rule.aggregate(black_box(ms)).expect("aggregation succeeds")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rules);
criterion_main!(benches);
