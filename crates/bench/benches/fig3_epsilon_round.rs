//! Criterion bench for Figure 3's workload: one federated round at each
//! Byzantine fraction ε ∈ {0, 10, 20, 30}% (Noise attack, β = ε filter).
//! The `fig3` binary regenerates the figure; this bench prices one round
//! per panel and shows the filter cost is flat in ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedms_attacks::AttackKind;
use fedms_core::{FedMsConfig, FilterKind};

fn bench_fig3_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_round");
    group.sample_size(10);
    for b_count in [0usize, 1, 2, 3] {
        let mut cfg = FedMsConfig::paper_defaults(42).expect("paper defaults");
        cfg.byzantine_count = b_count;
        cfg.attack = AttackKind::Noise { std: 1.0 };
        cfg.filter = FilterKind::TrimmedMean { beta: b_count as f64 / 10.0 };
        cfg.parallel = false;
        group.bench_function(BenchmarkId::new("round", format!("eps{}", b_count * 10)), |b| {
            let mut engine = cfg.build_engine().expect("engine builds");
            b.iter(|| engine.step_round(false).expect("round runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3_round);
criterion_main!(benches);
