//! Criterion bench: one client's local-training stage (E mini-batch SGD
//! steps) for the harness MLP and the MobileNetNano — the dominant cost of
//! a federated round.

use criterion::{criterion_group, criterion_main, Criterion};
use fedms_data::SynthVisionConfig;
use fedms_nn::{LrSchedule, MobileNetNano, MobileNetNanoConfig, NeuralNet, Sgd};
use fedms_sim::ModelSpec;
use std::hint::black_box;

fn bench_local_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_round");
    group.sample_size(20);
    let (train, _) = SynthVisionConfig::default().generate(3).expect("dataset generates");
    let flat = train.flattened();
    let (x, labels) = flat.batch(&(0..32).collect::<Vec<_>>()).expect("batch");
    let (x_img, labels_img) = train.batch(&(0..8).collect::<Vec<_>>()).expect("batch");

    group.bench_function("mlp_e3_batch32", |b| {
        let mut net = ModelSpec::default_mlp().build(1).expect("model builds");
        let mut opt = Sgd::new(LrSchedule::Constant(0.1)).expect("valid lr");
        b.iter(|| {
            for _ in 0..3 {
                net.train_batch(black_box(&x), &labels, &mut opt).expect("step");
            }
        })
    });

    group.bench_function("mobilenet_nano_e1_batch8", |b| {
        let mut net = MobileNetNano::new(MobileNetNanoConfig::default(), 1).expect("model builds");
        let mut opt = Sgd::new(LrSchedule::Constant(0.05)).expect("valid lr");
        b.iter(|| net.train_batch(black_box(&x_img), &labels_img, &mut opt).expect("step"))
    });

    group.bench_function("mlp_evaluate_200", |b| {
        let mut net = ModelSpec::default_mlp().build(1).expect("model builds");
        let (tx, tl) = flat.batch(&(0..200).collect::<Vec<_>>()).expect("batch");
        b.iter(|| net.evaluate(black_box(&tx), &tl).expect("evaluate"))
    });
    group.finish();
}

criterion_group!(benches, bench_local_training);
criterion_main!(benches);
