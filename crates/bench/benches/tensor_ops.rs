//! Criterion bench: tensor primitives underlying everything else —
//! matmul shapes used by the MLP, im2col for the nano CNN, and the
//! flat-vector operations the aggregation layer performs per round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedms_tensor::rng::rng_for;
use fedms_tensor::{im2col, Conv2dGeometry, Tensor};
use std::hint::black_box;

fn bench_tensor_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_ops");
    group.sample_size(30);
    let mut rng = rng_for(1, &[]);

    // MLP forward shapes: (32, 192)·(192, 64)ᵀ and (32, 64)·(64, 10)ᵀ.
    let x = Tensor::randn(&mut rng, &[32, 192], 0.0, 1.0);
    let w1 = Tensor::randn(&mut rng, &[64, 192], 0.0, 0.1);
    group.bench_function("matmul_transb_32x192x64", |b| {
        b.iter(|| black_box(&x).matmul_transb(black_box(&w1)).expect("matmul"))
    });

    let a = Tensor::randn(&mut rng, &[64, 64], 0.0, 1.0);
    let bm = Tensor::randn(&mut rng, &[64, 64], 0.0, 1.0);
    group.bench_function("matmul_64x64x64", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&bm)).expect("matmul"))
    });

    let geom = Conv2dGeometry::new(3, 8, 8, 3, 1, 1).expect("geometry");
    let img = Tensor::randn(&mut rng, &[3, 8, 8], 0.0, 1.0);
    group.bench_function("im2col_3x8x8_k3", |b| {
        b.iter(|| im2col(black_box(&img), &geom).expect("im2col"))
    });

    // Aggregation-layer vector ops at the harness model size.
    let d = 13_000usize;
    let u = Tensor::randn(&mut rng, &[d], 0.0, 1.0);
    let v = Tensor::randn(&mut rng, &[d], 0.0, 1.0);
    for (name, op) in [("add", 0usize), ("dot", 1), ("norm_l2", 2)] {
        group.bench_with_input(BenchmarkId::new(name, format!("d{d}")), &d, |b, _| {
            b.iter(|| match op {
                0 => {
                    black_box(&u).add(black_box(&v)).expect("add");
                }
                1 => {
                    black_box(black_box(&u).dot(black_box(&v)).expect("dot"));
                }
                _ => {
                    black_box(black_box(&u).norm_l2());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tensor_ops);
criterion_main!(benches);
