//! Criterion bench for the Section IV-A trade-off: cost of one federated
//! round under sparse / redundant / full upload. Pairs with the `comm`
//! experiment binary, which measures the byte counts and accuracy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedms_attacks::AttackKind;
use fedms_core::{FedMsConfig, FilterKind};
use fedms_sim::UploadStrategy;

fn bench_upload_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("upload_strategies");
    group.sample_size(10);
    for (label, strategy) in [
        ("sparse", UploadStrategy::Sparse),
        ("redundant3", UploadStrategy::Redundant(3)),
        ("full", UploadStrategy::Full),
    ] {
        let mut cfg = FedMsConfig::paper_defaults(42).expect("paper defaults");
        cfg.byzantine_count = 2;
        cfg.attack = AttackKind::Noise { std: 1.0 };
        cfg.filter = FilterKind::TrimmedMean { beta: 0.2 };
        cfg.upload = strategy;
        cfg.parallel = false;
        group.bench_function(BenchmarkId::new("round", label), |b| {
            let mut engine = cfg.build_engine().expect("engine builds");
            b.iter(|| engine.step_round(false).expect("round runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_upload_strategies);
criterion_main!(benches);
