//! Criterion bench: what the recovery layer costs per round.
//!
//! The [`ResilientTransport`] decorator sits on the critical path of every
//! upload and downlink drain once recovery is enabled. Measures one full
//! round of traffic — K uploads, P broadcasts, K downlink drains — through
//! a lossy federation three ways: bare [`LocalTransport`], the decorator
//! with the disabled policy (must be free), and the decorator actively
//! retrying and failing over.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedms_sim::{
    Broadcast, Dissemination, FaultPlan, LocalTransport, RecoveryPolicy, ResilientTransport,
    ServerFault, Transport, Upload,
};
use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use std::hint::black_box;

fn model(d: usize, tag: u64) -> Tensor {
    let mut rng = rng_for(7, &[tag, d as u64]);
    Tensor::randn(&mut rng, &[d], 0.0, 1.0)
}

/// One full round of protocol traffic through `t`.
fn round_trip(t: &mut dyn Transport, round: usize, clients: usize, servers: usize, d: usize) {
    t.begin_round(round, d);
    for k in 0..clients {
        t.send_upload(Upload { client: k, server: k % servers, model: model(d, k as u64) });
    }
    for s in 0..servers {
        let inbox = t.take_inbox(s);
        let agg = inbox.into_iter().next().unwrap_or_else(|| model(d, 1000 + s as u64));
        if let (_, Some(m)) = t.release_aggregate(s, agg) {
            t.broadcast(Broadcast { server: s, model: Dissemination::Broadcast(m) })
                .expect("broadcast covers all clients");
        }
    }
    for k in 0..clients {
        black_box(t.drain_deliveries(k));
    }
    black_box(t.take_comm());
}

/// A lossy 20-client / 5-server federation: one crash, one straggler, 10%
/// omission and 10% uplink loss.
fn lossy_transport(clients: usize, servers: usize) -> LocalTransport {
    let mut t = LocalTransport::new(7, clients, servers);
    t.install_fault_plan(FaultPlan {
        server_faults: vec![
            ServerFault::Crash { round: 5 },
            ServerFault::Straggler { delay: 2 },
            ServerFault::None,
            ServerFault::None,
            ServerFault::None,
        ],
        downlink_omission: 0.1,
        duplicate_rate: 0.05,
    })
    .expect("plan fits the federation");
    t.set_upload_drop_rate(0.1).expect("valid rate");
    t
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_round");
    group.sample_size(20);
    let (clients, servers) = (20usize, 5usize);
    let active = RecoveryPolicy {
        retry_budget: 3,
        failover: true,
        round_deadline_ms: 0,
        ..RecoveryPolicy::standard()
    };
    for d in [1_000usize, 13_000] {
        group.bench_with_input(BenchmarkId::new("bare", format!("d{d}")), &d, |b, &d| {
            let mut t = lossy_transport(clients, servers);
            let mut round = 0;
            b.iter(|| {
                round_trip(&mut t, round, clients, servers, d);
                round += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("disabled", format!("d{d}")), &d, |b, &d| {
            let mut t = ResilientTransport::new(
                lossy_transport(clients, servers),
                RecoveryPolicy::disabled(),
                7,
                clients,
                servers,
            )
            .expect("disabled policy is valid");
            let mut round = 0;
            b.iter(|| {
                round_trip(&mut t, round, clients, servers, d);
                round += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("active", format!("d{d}")), &d, |b, &d| {
            let mut t = ResilientTransport::new(
                lossy_transport(clients, servers),
                active,
                7,
                clients,
                servers,
            )
            .expect("active policy is valid");
            let mut round = 0;
            b.iter(|| {
                round_trip(&mut t, round, clients, servers, d);
                round += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
