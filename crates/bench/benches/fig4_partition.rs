//! Criterion bench for Figure 4's workload: Dirichlet partitioning of the
//! full training set across 50 clients at each D_α, plus the histogram
//! statistics the figure reports. The `fig4` binary regenerates the
//! figure's content.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedms_data::{DirichletPartitioner, LabelHistogram, SynthVisionConfig};
use std::hint::black_box;

fn bench_fig4_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_partition");
    group.sample_size(30);
    let (train, _) = SynthVisionConfig::default().generate(4).expect("dataset generates");
    for alpha in [1.0f64, 5.0, 10.0, 1000.0] {
        let p = DirichletPartitioner::new(alpha).expect("valid alpha");
        group.bench_function(BenchmarkId::new("partition50", format!("alpha{alpha}")), |b| {
            b.iter(|| p.partition(black_box(&train), 50, 4).expect("partition"))
        });
    }
    let p = DirichletPartitioner::new(10.0).expect("valid alpha");
    let shards = p.partition(&train, 50, 4).expect("partition");
    group.bench_function("histograms50", |b| {
        b.iter(|| {
            shards
                .iter()
                .map(|s| LabelHistogram::from_indices(black_box(&train), s).expect("hist"))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4_partition);
criterion_main!(benches);
