//! Criterion bench: cost of applying each Byzantine attack to a
//! paper-sized aggregate (d = 13k, the harness MLP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedms_attacks::{AttackContext, AttackKind};
use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use std::hint::black_box;

fn bench_attacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("attacks");
    group.sample_size(30);
    let d = 13_000usize;
    let mut rng = rng_for(2, &[]);
    let aggregate = Tensor::randn(&mut rng, &[d], 0.0, 0.1);
    let history: Vec<Tensor> = (0..4).map(|i| aggregate.add_scalar(i as f32 * 0.01)).collect();
    let kinds = [
        AttackKind::Benign,
        AttackKind::Noise { std: 1.0 },
        AttackKind::Random { lo: -10.0, hi: 10.0 },
        AttackKind::Safeguard { gamma: 0.6 },
        AttackKind::Backward { delay: 2 },
        AttackKind::SignFlip { scale: 1.0 },
    ];
    for kind in kinds {
        let attack = kind.build().expect("valid attack parameters");
        group.bench_function(BenchmarkId::new("tamper", kind.label()), |b| {
            b.iter(|| {
                let ctx = AttackContext::new(4, 0, black_box(&aggregate), &history, 50);
                attack.tamper(&ctx, &mut rng).expect("attack succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
