//! Criterion bench: wire-frame and NetTransport throughput.
//!
//! Three layers of the network stack, sized so each iteration handles a
//! known number of frames and payload bytes (the vendored criterion has
//! no `Throughput`; divide the per-iteration counts printed in the
//! benchmark id by the reported time to get frames/s and bytes/s):
//!
//! * `wire` — encode + decode one `Upload` frame of `d` coordinates:
//!   1 frame, `4·d` payload bytes per iteration.
//! * `channel` — one full K-client / P-server round through
//!   [`NetTransport`]'s actor channels (uploads, aggregate releases,
//!   broadcasts, downlink drains), under the ideal and the edge network
//!   model: `K + P·(1 + K)` delivered frames per iteration.
//! * `tcp` — one loopback-TCP round: a [`TcpRound`] server thread accepts
//!   `K` sequential [`run_client`] uploads of `d` coordinates each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedms_sim::net::wire::{decode_frame, encode_frame, Frame};
use fedms_sim::net::{run_client, TcpRound};
use fedms_sim::{Broadcast, Dissemination, NetModel, NetTransport, Transport, Upload};
use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use std::hint::black_box;

fn model(d: usize, tag: u64) -> Tensor {
    let mut rng = rng_for(7, &[tag, d as u64]);
    Tensor::randn(&mut rng, &[d], 0.0, 1.0)
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_wire");
    for d in [1_000usize, 13_000] {
        let frame =
            Frame::Upload { round: 3, client: 5, server: 1, arrival_ms: 42, model: model(d, 0) };
        group.bench_with_input(BenchmarkId::new("encode_decode", format!("d{d}")), &d, |b, _| {
            b.iter(|| {
                let bytes = encode_frame(black_box(&frame));
                black_box(decode_frame(&bytes).expect("round-trips"))
            })
        });
    }
    group.finish();
}

/// One full round of protocol traffic through `t`: K uploads, P aggregate
/// releases + broadcasts, K downlink drains.
fn round_trip(t: &mut dyn Transport, round: usize, clients: usize, servers: usize, d: usize) {
    t.begin_round(round, d);
    for k in 0..clients {
        t.send_upload(Upload { client: k, server: k % servers, model: model(d, k as u64) });
    }
    for s in 0..servers {
        let inbox = t.take_inbox(s);
        let agg = inbox.into_iter().next().unwrap_or_else(|| model(d, 1000 + s as u64));
        if let (_, Some(m)) = t.release_aggregate(s, agg) {
            t.broadcast(Broadcast { server: s, model: Dissemination::Broadcast(m) })
                .expect("broadcast covers all clients");
        }
    }
    for k in 0..clients {
        black_box(t.drain_deliveries(k));
    }
    black_box(t.take_comm());
}

fn bench_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_channel_round");
    group.sample_size(20);
    let (clients, servers) = (20usize, 5usize);
    for d in [1_000usize, 13_000] {
        for (label, net) in [("ideal", NetModel::ideal()), ("edge", NetModel::edge())] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("k{clients}_p{servers}_d{d}")),
                &d,
                |b, &d| {
                    let mut t = NetTransport::new(7, clients, servers, net);
                    let mut round = 0;
                    b.iter(|| {
                        round_trip(&mut t, round, clients, servers, d);
                        round += 1;
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_tcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_tcp_round");
    group.sample_size(10);
    let clients = 8usize;
    for d in [1_000usize, 13_000] {
        let uploads: Vec<Tensor> = (0..clients).map(|k| model(d, k as u64)).collect();
        group.bench_with_input(
            BenchmarkId::new("loopback", format!("k{clients}_d{d}")),
            &d,
            |b, _| {
                b.iter(|| {
                    let server = TcpRound::bind("127.0.0.1:0").expect("loopback bind");
                    let addr = server.local_addr().expect("bound socket has an address");
                    let handle = std::thread::spawn(move || server.serve(clients));
                    for (k, m) in uploads.iter().enumerate() {
                        black_box(run_client(&addr, k, m).expect("upload round-trips"));
                    }
                    black_box(handle.join().expect("server thread").expect("round completes"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wire, bench_channel, bench_tcp);
criterion_main!(benches);
