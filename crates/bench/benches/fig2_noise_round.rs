//! Criterion bench for Figure 2's workload: one full federated round
//! (50 clients × 3 local steps → sparse upload → aggregation → Byzantine
//! dissemination → per-client filtering) under each of the paper's four
//! attacks with the Fed-MS filter. The `fig2` binary regenerates the whole
//! figure; this bench prices one round of it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedms_attacks::AttackKind;
use fedms_core::{FedMsConfig, FilterKind};

fn fig2_config(attack: AttackKind) -> FedMsConfig {
    let mut cfg = FedMsConfig::paper_defaults(42).expect("paper defaults");
    cfg.byzantine_count = 2;
    cfg.attack = attack;
    cfg.filter = FilterKind::TrimmedMean { beta: 0.2 };
    cfg.parallel = false; // stable single-thread timing
    cfg
}

fn bench_fig2_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_round");
    group.sample_size(10);
    for (label, attack) in [
        ("noise", AttackKind::Noise { std: 1.0 }),
        ("random", AttackKind::Random { lo: -10.0, hi: 10.0 }),
        ("safeguard", AttackKind::Safeguard { gamma: 0.6 }),
        ("backward", AttackKind::Backward { delay: 2 }),
    ] {
        group.bench_function(BenchmarkId::new("fedms_round", label), |b| {
            let mut engine = fig2_config(attack).build_engine().expect("engine builds");
            b.iter(|| engine.step_round(false).expect("round runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2_round);
criterion_main!(benches);
