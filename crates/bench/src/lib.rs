//! Experiment harness shared by the per-figure binaries and benches.
//!
//! Every table and figure of the paper's evaluation section has a binary
//! in `src/bin/`; the binary ↔ paper-artefact mapping (and the checked-in
//! sweep specs under `experiments/` that back the accuracy figures) is
//! tabulated in the repository README under *Reproducing the paper*. The
//! accuracy figures (`fig2`, `fig3`, `fig5`) are thin
//! wrappers over `fedms exp run` on those specs; the remaining drivers
//! build their configs by hand and call [`run_averaged`].
//!
//! The shared helpers ([`harness_defaults`], [`seeds_from_env`],
//! [`rounds_from_env`], [`save_json`], [`Series`],
//! [`print_series_table`]) live in `fedms-exp` and are re-exported here so
//! the drivers keep a single import path.
//!
//! Environment knobs honoured by the accuracy experiments:
//! `FEDMS_ROUNDS` (default 60), `FEDMS_SEEDS` (comma-separated, default
//! `42`), `FEDMS_FAST=1` (10 rounds, quick smoke run), `FEDMS_THREADS`
//! (sweep parallelism). Results print as text tables and are written to
//! `results/` as provenance-stamped artifacts with a `<name>.json` pointer
//! to the latest.

use fedms_core::{FedMsConfig, Result};

pub mod perf;

pub use fedms_exp::{
    harness_defaults, print_series_table, rounds_from_env, save_json, seeds_from_env, Series,
};

/// Runs `cfg` once per seed and averages the accuracy series point-wise.
///
/// # Errors
///
/// Propagates the first failing run's error.
pub fn run_averaged(cfg: &FedMsConfig, seeds: &[u64]) -> Result<Vec<(usize, f32)>> {
    let mut acc: Vec<(usize, f64)> = Vec::new();
    for &seed in seeds {
        let mut cfg = cfg.clone();
        cfg.seed = seed;
        let result = cfg.run()?;
        let series = result.accuracy_series();
        if acc.is_empty() {
            acc = series.iter().map(|&(r, a)| (r, a as f64)).collect();
        } else {
            for (slot, &(r, a)) in acc.iter_mut().zip(series.iter()) {
                debug_assert_eq!(slot.0, r);
                slot.1 += a as f64;
            }
        }
    }
    let n = seeds.len().max(1) as f64;
    Ok(acc.into_iter().map(|(r, a)| (r, (a / n) as f32)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_averaged_over_two_seeds() {
        let mut cfg = FedMsConfig::tiny(0);
        cfg.rounds = 2;
        let avg = run_averaged(&cfg, &[1, 2]).unwrap();
        assert_eq!(avg.len(), 2);
        let one = run_averaged(&cfg, &[1]).unwrap();
        assert_eq!(one.len(), 2);
    }

    #[test]
    fn reexported_series_still_works() {
        let s = Series { label: "x".into(), points: vec![(0, 0.1), (5, 0.9)] };
        assert_eq!(s.final_accuracy(), Some(0.9));
    }
}
