//! Experiment harness shared by the per-figure binaries and benches.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it:
//!
//! | Binary   | Paper artefact | Content |
//! |----------|----------------|---------|
//! | `fig2`   | Figure 2 (a–d) | accuracy vs epochs under Noise/Random/Safeguard/Backward for Fed-MS, Fed-MS⁻, Vanilla FL |
//! | `fig3`   | Figure 3 (a–d) | accuracy vs epochs for ε ∈ {0,10,20,30}% under Noise |
//! | `fig4`   | Figure 4       | per-client class histograms for D_α ∈ {1,5,10,1000} |
//! | `fig5`   | Figure 5       | accuracy vs epochs for D_α ∈ {1,5,10,1000} |
//! | `table2` | Table II       | the harness's actual experiment settings |
//! | `theory` | Theorem 1      | measured optimality gap vs the closed-form bound (extra experiment E1) |
//! | `comm`   | Section IV-A   | communication cost: sparse vs full vs redundant upload (extra E2) |
//! | `lemma2` | Lemma 2        | empirical trimmed-mean error vs the order-statistics bound (extra E3) |
//! | `dual`   | future work    | Byzantine servers AND clients with symmetric trimming (extra E4) |
//! | `worstcase` | Section III-A | equivocating vs consistent dissemination (extra E5) |
//! | `stealth` | extension     | ALIE / IPM stealth adversaries vs robust filters (extra E6) |
//!
//! Environment knobs honoured by the accuracy experiments:
//! `FEDMS_ROUNDS` (default 60), `FEDMS_SEEDS` (comma-separated, default
//! `42`), `FEDMS_FAST=1` (10 rounds, quick smoke run). Results print as
//! text tables and are also written to `results/<id>.json`.

use fedms_core::{FedMsConfig, Result};
use serde::Serialize;
use std::io::Write as _;

/// One labelled accuracy curve: `(round, accuracy)` points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Curve label (e.g. `"fed-ms"`).
    pub label: String,
    /// `(round, mean accuracy)` points.
    pub points: Vec<(usize, f32)>,
}

impl Series {
    /// The accuracy at the last recorded round.
    pub fn final_accuracy(&self) -> Option<f32> {
        self.points.last().map(|&(_, a)| a)
    }
}

/// Number of training rounds requested via the environment
/// (`FEDMS_FAST` → 10, `FEDMS_ROUNDS` → explicit, default 60).
pub fn rounds_from_env() -> usize {
    if std::env::var("FEDMS_FAST").is_ok_and(|v| v == "1") {
        return 10;
    }
    std::env::var("FEDMS_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(60)
}

/// Experiment seeds requested via `FEDMS_SEEDS` (comma-separated), default
/// `[42]`.
pub fn seeds_from_env() -> Vec<u64> {
    std::env::var("FEDMS_SEEDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![42])
}

/// Runs `cfg` once per seed and averages the accuracy series point-wise.
///
/// # Errors
///
/// Propagates the first failing run's error.
pub fn run_averaged(cfg: &FedMsConfig, seeds: &[u64]) -> Result<Vec<(usize, f32)>> {
    let mut acc: Vec<(usize, f64)> = Vec::new();
    for &seed in seeds {
        let mut cfg = cfg.clone();
        cfg.seed = seed;
        let result = cfg.run()?;
        let series = result.accuracy_series();
        if acc.is_empty() {
            acc = series.iter().map(|&(r, a)| (r, a as f64)).collect();
        } else {
            for (slot, &(r, a)) in acc.iter_mut().zip(series.iter()) {
                debug_assert_eq!(slot.0, r);
                slot.1 += a as f64;
            }
        }
    }
    let n = seeds.len().max(1) as f64;
    Ok(acc.into_iter().map(|(r, a)| (r, (a / n) as f32)).collect())
}

/// Prints labelled curves as an aligned text table: one row per evaluated
/// round, one column per series.
pub fn print_series_table(title: &str, series: &[Series]) {
    println!("\n== {title} ==");
    if series.is_empty() {
        println!("(no data)");
        return;
    }
    print!("{:>6}", "round");
    for s in series {
        print!(" {:>12}", truncate_label(&s.label, 12));
    }
    println!();
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let round = series.iter().find_map(|s| s.points.get(i).map(|&(r, _)| r)).unwrap_or(i);
        print!("{round:>6}");
        for s in series {
            match s.points.get(i) {
                Some(&(_, a)) => print!(" {:>12.3}", a),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
    print!("{:>6}", "final");
    for s in series {
        match s.final_accuracy() {
            Some(a) => print!(" {:>12.3}", a),
            None => print!(" {:>12}", "-"),
        }
    }
    println!();
}

fn truncate_label(label: &str, width: usize) -> String {
    if label.chars().count() <= width {
        label.to_string()
    } else {
        label.chars().take(width - 1).chain(std::iter::once('…')).collect()
    }
}

/// Writes any serialisable result to `results/<name>.json` under the
/// workspace root (best effort: prints a warning on I/O failure rather than
/// aborting the experiment output).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{name}.json")))?;
        let body = serde_json::to_string_pretty(value)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        f.write_all(body.as_bytes())
    };
    if let Err(e) = write() {
        eprintln!("warning: could not save results/{name}.json: {e}");
    }
}

/// The experiment defaults shared by every accuracy figure: Table II plus
/// the calibrated substitutions documented in DESIGN.md.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn harness_defaults(seed: u64) -> Result<FedMsConfig> {
    let mut cfg = FedMsConfig::paper_defaults(seed)?;
    cfg.rounds = rounds_from_env();
    cfg.eval_every = (cfg.rounds / 20).max(1);
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_final_accuracy() {
        let s = Series { label: "x".into(), points: vec![(0, 0.1), (5, 0.9)] };
        assert_eq!(s.final_accuracy(), Some(0.9));
        let empty = Series { label: "y".into(), points: vec![] };
        assert_eq!(empty.final_accuracy(), None);
    }

    #[test]
    fn env_defaults() {
        // Do not set the env vars here (tests run in parallel); just check
        // the defaults hold when unset.
        if std::env::var("FEDMS_ROUNDS").is_err() && std::env::var("FEDMS_FAST").is_err() {
            assert_eq!(rounds_from_env(), 60);
        }
        if std::env::var("FEDMS_SEEDS").is_err() {
            assert_eq!(seeds_from_env(), vec![42]);
        }
    }

    #[test]
    fn run_averaged_over_two_seeds() {
        let mut cfg = FedMsConfig::tiny(0);
        cfg.rounds = 2;
        let avg = run_averaged(&cfg, &[1, 2]).unwrap();
        assert_eq!(avg.len(), 2);
        let one = run_averaged(&cfg, &[1]).unwrap();
        assert_eq!(one.len(), 2);
    }

    #[test]
    fn truncate_label_width() {
        assert_eq!(truncate_label("short", 12), "short");
        assert_eq!(truncate_label("averyverylonglabel", 6).chars().count(), 6);
    }
}
