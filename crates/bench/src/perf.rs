//! A small workload-based micro-benchmark harness for the aggregation hot
//! path.
//!
//! The criterion-style benches under `benches/` are good for interactive
//! profiling but their output is not machine-checkable. This module is the
//! opposite trade-off: a [`Workload`] is measured through explicit warmup
//! and sampling phases, and the result is a serializable [`Measurement`]
//! (median/min seconds per iteration, coordinates/s, GB/s) that the
//! `filterbench` binary persists as `BENCH_filter.json` — stamped with git
//! rev and [`MachineInfo`] — and that CI compares against the committed
//! baseline.
//!
//! Two knobs matter when gating in CI: the absolute throughput (valid only
//! on comparable machines, so the gate applies a generous tolerance) and
//! the kernel-vs-reference *speedup ratio*, which is machine-portable and
//! carries the regression signal.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One benchmarkable unit of work.
///
/// `run` executes a single iteration and returns a checksum derived from
/// the computed output, which the harness folds into the measurement so
/// the optimizer cannot discard the work.
pub trait Workload {
    /// Display name, embedded in the persisted measurement.
    fn name(&self) -> &str;
    /// Coordinates processed by one `run` call (for coords/s reporting).
    fn coords_per_iter(&self) -> u64;
    /// Input bytes read by one `run` call (for GB/s reporting).
    fn bytes_per_iter(&self) -> u64;
    /// Executes one iteration and returns a checksum of the output.
    fn run(&mut self) -> f64;
}

/// Host identity recorded next to every measurement, so a baseline is
/// never silently compared against numbers from different hardware.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineInfo {
    /// CPU model string from `/proc/cpuinfo` (`"unknown"` elsewhere).
    pub cpu_model: String,
    /// Logical core count.
    pub logical_cores: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// Architecture (`std::env::consts::ARCH`).
    pub arch: String,
}

impl MachineInfo {
    /// Best-effort detection of the current host.
    pub fn detect() -> Self {
        let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split(':').nth(1))
                    .map(|m| m.trim().to_string())
            })
            .unwrap_or_else(|| "unknown".to_string());
        MachineInfo {
            cpu_model,
            logical_cores: std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }
}

/// Peak-memory footprint recorded next to a measurement: the process's
/// high-water RSS plus, where the workload runs through the engine's
/// buffer pool, the pool's own high-water mark. Both are `Option` — RSS
/// is Linux-only (`VmHWM`), and not every workload has a pool — so a
/// report stays serializable everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MemoryInfo {
    /// Peak resident set size of the whole process in bytes (`VmHWM` from
    /// `/proc/self/status`); `None` off Linux. Process-wide: meaningful
    /// when the measured workload dominates the process.
    pub peak_rss_bytes: Option<u64>,
    /// High-water mark of the engine's tensor buffer pool in bytes
    /// ([`fedms_tensor::pool::PoolStats::high_water_bytes`]); `None` for
    /// workloads that do not run through a pool.
    pub pool_high_water_bytes: Option<u64>,
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// One measured workload, ready to serialize.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// The workload's name.
    pub name: String,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations averaged inside each sample.
    pub iters_per_sample: usize,
    /// Median seconds per iteration across samples — the headline number.
    pub median_secs_per_iter: f64,
    /// Fastest observed seconds per iteration (noise floor).
    pub min_secs_per_iter: f64,
    /// Coordinates per second at the median.
    pub coords_per_sec: f64,
    /// Input gigabytes per second at the median.
    pub gbytes_per_sec: f64,
    /// Checksum of the last iteration's output (anti-DCE, and a cheap
    /// cross-check that two implementations computed the same thing).
    pub checksum: f64,
}

/// Warmup/sample schedule for measuring a [`Workload`].
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Untimed iterations before sampling (cache/branch-predictor warmup).
    pub warmup_iters: usize,
    /// Timed samples; the median is the reported figure.
    pub samples: usize,
    /// Iterations averaged within one sample.
    pub iters_per_sample: usize,
}

impl Harness {
    /// The CI schedule: fast enough for a gate, stable enough to compare
    /// medians.
    pub fn quick() -> Self {
        Harness { warmup_iters: 2, samples: 5, iters_per_sample: 2 }
    }

    /// The full schedule used to produce the committed baseline.
    pub fn full() -> Self {
        Harness { warmup_iters: 5, samples: 15, iters_per_sample: 5 }
    }

    /// Runs the warmup and sampling phases and reduces to a
    /// [`Measurement`].
    pub fn measure(&self, workload: &mut dyn Workload) -> Measurement {
        let mut checksum = 0.0f64;
        for _ in 0..self.warmup_iters {
            checksum = workload.run();
        }
        let iters = self.iters_per_sample.max(1);
        let mut secs_per_iter: Vec<f64> = Vec::with_capacity(self.samples.max(1));
        for _ in 0..self.samples.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                checksum = workload.run();
            }
            secs_per_iter.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        secs_per_iter.sort_by(f64::total_cmp);
        let median = secs_per_iter[secs_per_iter.len() / 2];
        let min = secs_per_iter[0];
        Measurement {
            name: workload.name().to_string(),
            samples: secs_per_iter.len(),
            iters_per_sample: iters,
            median_secs_per_iter: median,
            min_secs_per_iter: min,
            coords_per_sec: workload.coords_per_iter() as f64 / median,
            gbytes_per_sec: workload.bytes_per_iter() as f64 / median / 1e9,
            checksum,
        }
    }
}

/// Deterministic dependency-free value stream for building bench inputs
/// (xorshift64*; quality is irrelevant here, determinism is not).
pub fn pseudo_values(seed: u64, len: usize) -> Vec<f32> {
    // SplitMix64 scramble so adjacent seeds diverge (a bare `seed | 1`
    // would collapse 42 and 43 onto the same stream) and the xorshift
    // state is never zero.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    state ^= state >> 30;
    state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    state ^= state >> 27;
    state = state.wrapping_mul(0x94D0_49BB_1331_11EB);
    state ^= state >> 31;
    state |= 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // 24 high bits → uniform in [-0.5, 0.5).
            ((state >> 40) as f32) / (1u32 << 24) as f32 - 0.5
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Spin {
        values: Vec<f32>,
    }

    impl Workload for Spin {
        fn name(&self) -> &str {
            "spin"
        }
        fn coords_per_iter(&self) -> u64 {
            self.values.len() as u64
        }
        fn bytes_per_iter(&self) -> u64 {
            4 * self.values.len() as u64
        }
        fn run(&mut self) -> f64 {
            self.values.iter().map(|&v| f64::from(v) * 1.0000001).sum()
        }
    }

    #[test]
    fn harness_produces_positive_throughput() {
        let mut w = Spin { values: pseudo_values(7, 4096) };
        let m = Harness::quick().measure(&mut w);
        assert_eq!(m.name, "spin");
        assert_eq!(m.samples, 5);
        assert!(m.median_secs_per_iter > 0.0);
        assert!(m.min_secs_per_iter <= m.median_secs_per_iter);
        assert!(m.coords_per_sec > 0.0);
        assert!(m.gbytes_per_sec > 0.0);
        assert!(m.checksum.is_finite());
    }

    #[test]
    fn machine_info_detects_something() {
        let info = MachineInfo::detect();
        assert!(info.logical_cores >= 1);
        assert!(!info.os.is_empty());
        assert!(!info.arch.is_empty());
        assert!(!info.cpu_model.is_empty());
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss.unwrap() > 0);
        }
        // MemoryInfo with absent fields round-trips (old reports have no
        // memory block at all; new ones may have partial data).
        let info = MemoryInfo { peak_rss_bytes: rss, pool_high_water_bytes: None };
        let json = serde_json::to_string(&info).unwrap();
        let back: MemoryInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(info, back);
    }

    #[test]
    fn pseudo_values_are_deterministic_and_bounded() {
        let a = pseudo_values(42, 1000);
        let b = pseudo_values(42, 1000);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-0.5..0.5).contains(v)));
        assert_ne!(a, pseudo_values(43, 1000));
    }
}
