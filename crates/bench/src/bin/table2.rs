//! Table II: the summary of important experiment settings, printed from the
//! harness's *actual* configuration (paper value → reproduction value, with
//! the substitutions of DESIGN.md called out).
//!
//! Usage: `cargo run --release -p fedms-bench --bin table2`

use fedms_bench::{harness_defaults, save_json};
use fedms_core::Result;

fn main() -> Result<()> {
    let cfg = harness_defaults(42)?;
    println!("Table II: important settings (paper -> this reproduction)");
    println!("{:<22} {:<28} reproduction", "setting", "paper");
    let rows: Vec<(&str, String, String)> = vec![
        (
            "dataset",
            "CIFAR-10".into(),
            format!(
                "SynthVision {}x{}x{}, {} classes, {} train/class",
                cfg.dataset.channels,
                cfg.dataset.height,
                cfg.dataset.width,
                cfg.dataset.num_classes,
                cfg.dataset.train_per_class
            ),
        ),
        ("model", "MobileNet V2".into(), format!("{:?} (MobileNetNano available)", cfg.model)),
        (
            "attacks",
            "Noise, Random, Safeguard, Backward".into(),
            "same four + SignFlip/Zero/Equivocation".into(),
        ),
        ("clients K", "50".into(), cfg.clients.to_string()),
        ("servers P", "10".into(), cfg.servers.to_string()),
        ("byzantine B", "0..3 (e = 0..30%)".into(), "0..3 per experiment".into()),
        ("local iterations E", "3".into(), cfg.local_epochs.to_string()),
        ("D_alpha", "1, 5, 10, 1000".into(), "1, 5, 10, 1000".into()),
        ("trim rate beta", "0.2 (Fed-MS), 0.1 (Fed-MS-)".into(), "same".into()),
        ("upload", "sparse (1 PS/client)".into(), format!("{:?}", cfg.upload)),
        ("rounds", "60".into(), cfg.rounds.to_string()),
        ("schedule", "SGD".into(), format!("{:?}", cfg.schedule)),
        ("batch size", "(unreported)".into(), cfg.batch_size.to_string()),
    ];
    for (k, paper, ours) in &rows {
        println!("{k:<22} {paper:<28} {ours}");
    }
    save_json("table2", &cfg);
    Ok(())
}
