//! Figure 4: the label distribution of the first 10 clients under
//! Dirichlet partitioning with D_α ∈ {1, 5, 10, 1000}.
//!
//! For each α the binary prints a per-client class histogram (one bar
//! digit 0–9 per class, scaled to the client's largest class) plus the
//! mean total-variation heterogeneity statistic. Paper shape: small α →
//! spiky single-class clients; α = 1000 → near-identical distributions.
//!
//! Usage: `cargo run --release -p fedms-bench --bin fig4`

use fedms_bench::save_json;
use fedms_core::Result;
use fedms_data::{mean_tv_distance, DirichletPartitioner, LabelHistogram, SynthVisionConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Row {
    alpha: f64,
    mean_tv: f64,
    client_histograms: Vec<Vec<usize>>,
}

fn main() -> Result<()> {
    println!("Figure 4: per-client class histograms under Dirichlet D_a");
    println!("(first 10 of 50 clients; one digit per class, 0..9 = bar height)");
    let (train, _) = SynthVisionConfig::default().generate(42)?;
    let mut rows = Vec::new();
    for alpha in [1.0, 5.0, 10.0, 1000.0] {
        let shards = DirichletPartitioner::new(alpha)?.partition(&train, 50, 42)?;
        let tv = mean_tv_distance(&train, &shards);
        println!("\n== D_a = {alpha} (mean TV distance to global: {tv:.3}) ==");
        println!("{:>8} {:>12} {:>8}", "client", "classes", "samples");
        let mut hists = Vec::new();
        for (k, shard) in shards.iter().take(10).enumerate() {
            let h = LabelHistogram::from_indices(&train, shard)?;
            println!("{:>8} {:>12} {:>8}", k, h.bar_string(), h.total());
            hists.push(h.counts().to_vec());
        }
        rows.push(Fig4Row { alpha, mean_tv: tv, client_histograms: hists });
    }
    save_json("fig4", &rows);
    println!("\n(shape check: TV distance should fall monotonically with D_a)");
    Ok(())
}
