//! Figure 3 (a–d): test accuracy vs training epochs for Byzantine server
//! fractions ε ∈ {0%, 10%, 20%, 30%} under the Noise attack, Fed-MS vs
//! Vanilla FL — a thin wrapper over the checked-in sweep spec
//! `experiments/fig3.toml` executed through `fedms-exp`.
//!
//! Per the algorithm's definition (Section IV-B) the trim rate tracks the
//! Byzantine fraction: β = B/P = ε (the spec's `trimmed:matched` filter).
//!
//! Paper shape to reproduce: Fed-MS matches the attack-free baseline at
//! every ε, while Vanilla FL degrades monotonically as ε grows.
//!
//! Usage: `cargo run --release -p fedms-bench --bin fig3`

use fedms_exp::{panels, print_series_table, run_spec, save_json, Series, SpecError};

const SPEC: &str = include_str!("../../../../experiments/fig3.toml");

/// Old panel names kept so downstream plotting of `results/fig3.json`
/// stays stable.
fn panel_name(epsilon: &str) -> String {
    match epsilon {
        "0" => "3a-eps0".into(),
        "0.1" => "3b-eps10".into(),
        "0.2" => "3c-eps20".into(),
        "0.3" => "3d-eps30".into(),
        other => format!("3-eps-{other}"),
    }
}

fn algorithm_label(filter: &str, epsilon: &str) -> String {
    match filter {
        "trimmed:matched" => format!("fed-ms (b={epsilon})"),
        "mean" => "vanilla".into(),
        other => other.into(),
    }
}

fn main() -> Result<(), SpecError> {
    println!("Figure 3: impact of the Byzantine fraction (Noise attack)");
    println!("K=50 P=10 E=3 D_a=10");
    let (_, report) = run_spec(SPEC)?;
    let mut all = serde_json::Map::new();
    for (epsilon, series) in panels(&report.records, "epsilon", "filter") {
        let series: Vec<Series> = series
            .into_iter()
            .map(|s| Series { label: algorithm_label(&s.label, &epsilon), points: s.points })
            .collect();
        let name = panel_name(&epsilon);
        print_series_table(&format!("Fig. {name} (e = {epsilon})"), &series);
        all.insert(name, serde_json::to_value(&series).unwrap_or_default());
    }
    save_json("fig3", &all);
    Ok(())
}
