//! Figure 3 (a–d): test accuracy vs training epochs for Byzantine server
//! fractions ε ∈ {0%, 10%, 20%, 30%} under the Noise attack, Fed-MS vs
//! Vanilla FL.
//!
//! Per the algorithm's definition (Section IV-B) the trim rate tracks the
//! Byzantine fraction: β = B/P = ε.
//!
//! Paper shape to reproduce: Fed-MS matches the attack-free baseline at
//! every ε, while Vanilla FL degrades monotonically as ε grows.
//!
//! Usage: `cargo run --release -p fedms-bench --bin fig3`

use fedms_attacks::AttackKind;
use fedms_bench::{
    harness_defaults, print_series_table, run_averaged, save_json, seeds_from_env, Series,
};
use fedms_core::{FilterKind, Result};

fn panel(byzantine: usize, servers: usize, seeds: &[u64]) -> Result<Vec<Series>> {
    let beta = byzantine as f64 / servers as f64;
    let algorithms = [
        (format!("fed-ms (b={beta})"), FilterKind::TrimmedMean { beta }),
        ("vanilla".to_string(), FilterKind::Mean),
    ];
    let mut out = Vec::new();
    for (label, filter) in algorithms {
        let mut cfg = harness_defaults(42)?;
        cfg.byzantine_count = byzantine;
        cfg.attack = AttackKind::Noise { std: 1.0 };
        cfg.filter = filter;
        out.push(Series { label, points: run_averaged(&cfg, seeds)? });
    }
    Ok(out)
}

fn main() -> Result<()> {
    let seeds = seeds_from_env();
    println!("Figure 3: impact of the Byzantine fraction (Noise attack)");
    println!("K=50 P=10 E=3 D_a=10; seeds {seeds:?}");
    let mut all = serde_json::Map::new();
    for (name, b) in [("3a-eps0", 0usize), ("3b-eps10", 1), ("3c-eps20", 2), ("3d-eps30", 3)] {
        let series = panel(b, 10, &seeds)?;
        print_series_table(&format!("Fig. {name} (e = {}%)", b * 10), &series);
        all.insert(name.into(), serde_json::to_value(&series).unwrap_or_default());
    }
    save_json("fig3", &all);
    Ok(())
}
