//! The compute-backend microbench and its CI regression gate.
//!
//! Measures the three hot paths of client training — the linear-layer GEMM,
//! a conv forward/backward step, and a full mini-batch SGD step — under the
//! scalar reference backend and the blocked backend at the paper model
//! shape (the `192 → 64 → 10` MLP trained with batch 32, and the
//! MobileNet-nano stem convolution), then writes a provenance-stamped
//! report (`BENCH_nn.json`).
//!
//! The blocked backend reassociates f32 reductions, so cross-backend
//! checksums are compared within a per-workload tolerance rather than
//! bit-exactly; a mismatch beyond tolerance fails the run.
//!
//! Usage:
//!
//! ```text
//! nnbench [--quick] [--out PATH] [--check BASELINE]
//!         [--tolerance F] [--min-speedup F]
//! ```
//!
//! * `--quick` — the short CI schedule ([`Harness::quick`]) instead of the
//!   baseline schedule ([`Harness::full`]).
//! * `--out PATH` — where to write the report (default `BENCH_nn.json`).
//! * `--check BASELINE` — compare against a committed report and exit
//!   non-zero on regression:
//!   - blocked GEMM throughput below `(1 − tolerance) ×` the baseline's
//!     (hardware-sensitive, hence the generous default tolerance 0.5);
//!   - blocked-vs-scalar GEMM speedup below `--min-speedup`
//!     (machine-portable; default 3, the acceptance floor 4 minus CI
//!     noise margin).
//!
//! The bin requires the `backend-blocked` feature — without it there is
//! nothing to compare, and `main` exits with an explanatory error.

#[cfg(feature = "backend-blocked")]
mod bench {
    use fedms_bench::perf::{
        peak_rss_bytes, pseudo_values, Harness, MachineInfo, Measurement, MemoryInfo, Workload,
    };
    use fedms_nn::{Conv2d, Layer, LrSchedule, Mlp, NeuralNet, Sgd};
    use fedms_tensor::rng::rng_for;
    use fedms_tensor::{BackendHandle, BackendKind, Conv2dGeometry, Tensor};
    use serde::{Deserialize, Serialize};
    use std::path::{Path, PathBuf};
    use std::process::ExitCode;

    /// Paper training shape: batch 32 through the `192 → 64 → 10` MLP.
    const BATCH: usize = 32;
    const MLP_WIDTHS: [usize; 3] = [192, 64, 10];
    /// The hot GEMM of that model: `x (32×192) · W₁ᵀ (64×192)`.
    const GEMM_M: usize = BATCH;
    const GEMM_K: usize = 192;
    const GEMM_N: usize = 64;
    /// MobileNet-nano stem convolution (3×8×8 input, 8 filters, 3×3, pad 1).
    const CONV_IN_C: usize = 3;
    const CONV_HW: usize = 8;
    const CONV_OUT_C: usize = 8;

    /// GEMMs per measured iteration.
    const GEMM_REPS: usize = 400;
    /// Conv forward/backward pairs per measured iteration.
    const CONV_REPS: usize = 100;
    /// SGD steps per measured iteration.
    const SGD_REPS: usize = 50;

    /// The measured shapes, persisted so a baseline is self-describing.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct WorkloadSpec {
        /// `(m, k, n)` of the linear-layer GEMM.
        gemm: (usize, usize, usize),
        /// `(in_c, h, w, out_c)` of the stem convolution.
        conv: (usize, usize, usize, usize),
        /// MLP widths of the full SGD step.
        mlp_widths: Vec<usize>,
        /// Mini-batch size of every workload.
        batch: usize,
    }

    /// A scalar/blocked measurement pair for one workload.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct BackendPair {
        /// The scalar reference backend.
        scalar: Measurement,
        /// The blocked backend (single intra-op thread).
        blocked: Measurement,
        /// `scalar.median / blocked.median` — the machine-portable signal.
        speedup: f64,
    }

    /// The persisted report (`BENCH_nn.json`).
    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Report {
        /// Report layout version.
        schema: u32,
        /// `git rev-parse --short HEAD` at measurement time.
        git_rev: String,
        /// Host the numbers were taken on.
        machine: MachineInfo,
        /// Whether the quick schedule produced these numbers.
        quick: bool,
        /// The measured workload shapes.
        workload: WorkloadSpec,
        /// The linear-layer GEMM (`matmul_transb` at the paper shape).
        matmul: BackendPair,
        /// Conv2d forward + backward at the nano stem shape.
        conv: BackendPair,
        /// A full `train_batch` SGD step on the paper MLP.
        sgd_step: BackendPair,
        /// Peak-memory footprint at the end of the measurement.
        memory: MemoryInfo,
    }

    /// One iteration = `GEMM_REPS` applications of `out = a · bᵀ` at the
    /// paper linear-layer shape.
    struct MatmulWorkload {
        name: &'static str,
        backend: BackendHandle,
        a: Vec<f32>,
        b: Vec<f32>,
        out: Vec<f32>,
    }

    impl MatmulWorkload {
        fn new(name: &'static str, backend: BackendHandle) -> Self {
            MatmulWorkload {
                name,
                backend,
                a: pseudo_values(0xA, GEMM_M * GEMM_K),
                b: pseudo_values(0xB, GEMM_N * GEMM_K),
                out: vec![0.0; GEMM_M * GEMM_N],
            }
        }
    }

    impl Workload for MatmulWorkload {
        fn name(&self) -> &str {
            self.name
        }
        fn coords_per_iter(&self) -> u64 {
            (GEMM_REPS * GEMM_M * GEMM_N) as u64
        }
        fn bytes_per_iter(&self) -> u64 {
            (GEMM_REPS * (GEMM_M * GEMM_K + GEMM_N * GEMM_K + GEMM_M * GEMM_N) * 4) as u64
        }
        fn run(&mut self) -> f64 {
            let mut checksum = 0.0f64;
            for _ in 0..GEMM_REPS {
                self.backend.matmul_transb(&self.a, &self.b, &mut self.out, GEMM_M, GEMM_K, GEMM_N);
                checksum += f64::from(self.out[0]) + f64::from(self.out[GEMM_M * GEMM_N - 1]);
            }
            checksum
        }
    }

    /// One iteration = `CONV_REPS` forward/backward pairs through the nano
    /// stem convolution at batch 32.
    struct ConvWorkload {
        name: &'static str,
        layer: Conv2d,
        input: Tensor,
        grad_out: Tensor,
    }

    impl ConvWorkload {
        fn new(name: &'static str, backend: BackendHandle) -> Self {
            let geom =
                Conv2dGeometry::new(CONV_IN_C, CONV_HW, CONV_HW, 3, 1, 1).expect("stem geometry");
            let mut rng = rng_for(0xC0, &[]);
            let mut layer = Conv2d::new(geom, CONV_OUT_C, &mut rng).expect("stem conv");
            layer.set_backend(backend);
            let in_dims = [BATCH, CONV_IN_C, CONV_HW, CONV_HW];
            let out_dims = [BATCH, CONV_OUT_C, CONV_HW, CONV_HW];
            let input = Tensor::from_vec(pseudo_values(0xC1, in_dims.iter().product()), &in_dims)
                .expect("conv input");
            let grad_out =
                Tensor::from_vec(pseudo_values(0xC2, out_dims.iter().product()), &out_dims)
                    .expect("conv grad");
            ConvWorkload { name, layer, input, grad_out }
        }
    }

    impl Workload for ConvWorkload {
        fn name(&self) -> &str {
            self.name
        }
        fn coords_per_iter(&self) -> u64 {
            // Output coordinates produced per iteration (forward only).
            (CONV_REPS * BATCH * CONV_OUT_C * CONV_HW * CONV_HW) as u64
        }
        fn bytes_per_iter(&self) -> u64 {
            let fwd = self.input.len() + BATCH * CONV_OUT_C * CONV_HW * CONV_HW;
            (CONV_REPS * 2 * fwd * 4) as u64
        }
        fn run(&mut self) -> f64 {
            let mut checksum = 0.0f64;
            for _ in 0..CONV_REPS {
                self.layer.zero_grads();
                let out = self.layer.forward(&self.input).expect("conv forward");
                let grad_in = self.layer.backward(&self.grad_out).expect("conv backward");
                checksum +=
                    f64::from(out.as_slice()[0]) + f64::from(grad_in.as_slice()[grad_in.len() - 1]);
            }
            checksum
        }
    }

    /// One iteration = reset to the initial parameters, then `SGD_REPS`
    /// full `train_batch` steps (zero grads → forward → softmax-CE →
    /// backward → SGD update) on the paper MLP.
    ///
    /// Resetting per iteration keeps every iteration's trajectory
    /// identical, so the checksum (summed batch losses) is comparable
    /// across backends and across runs.
    struct SgdStepWorkload {
        name: &'static str,
        model: Mlp,
        optimizer: Sgd,
        init: Tensor,
        input: Tensor,
        labels: Vec<usize>,
    }

    impl SgdStepWorkload {
        fn new(name: &'static str, backend: BackendHandle) -> Self {
            let mut model = Mlp::new(&MLP_WIDTHS, 0x5D).expect("paper mlp");
            model.set_backend(backend);
            let mut optimizer = Sgd::new(LrSchedule::Constant(0.05)).expect("sgd");
            optimizer.set_backend(backend);
            let init = model.param_vector();
            let input = Tensor::from_vec(
                pseudo_values(0x5E, BATCH * MLP_WIDTHS[0]),
                &[BATCH, MLP_WIDTHS[0]],
            )
            .expect("mlp input");
            let classes = MLP_WIDTHS[MLP_WIDTHS.len() - 1];
            let labels: Vec<usize> = (0..BATCH).map(|i| i % classes).collect();
            SgdStepWorkload { name, model, optimizer, init, input, labels }
        }
    }

    impl Workload for SgdStepWorkload {
        fn name(&self) -> &str {
            self.name
        }
        fn coords_per_iter(&self) -> u64 {
            // Parameters updated per iteration.
            (SGD_REPS * self.model.num_params()) as u64
        }
        fn bytes_per_iter(&self) -> u64 {
            // Params + grads read and written once per step.
            (SGD_REPS * 4 * self.model.num_params() * 4) as u64
        }
        fn run(&mut self) -> f64 {
            self.model.set_param_vector(&self.init).expect("param reset");
            let mut checksum = 0.0f64;
            for _ in 0..SGD_REPS {
                let loss = self
                    .model
                    .train_batch(&self.input, &self.labels, &mut self.optimizer)
                    .expect("train step");
                checksum += f64::from(loss);
            }
            checksum
        }
    }

    #[derive(Debug, Default)]
    struct Args {
        quick: bool,
        out: Option<PathBuf>,
        check: Option<PathBuf>,
        tolerance: f64,
        min_speedup: f64,
    }

    fn parse_args() -> Result<Args, String> {
        let mut args = Args { tolerance: 0.5, min_speedup: 3.0, ..Args::default() };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
            match a.as_str() {
                "--quick" => args.quick = true,
                "--out" => args.out = Some(PathBuf::from(value("--out")?)),
                "--check" => args.check = Some(PathBuf::from(value("--check")?)),
                "--tolerance" => {
                    args.tolerance =
                        value("--tolerance")?.parse().map_err(|e| format!("--tolerance: {e}"))?
                }
                "--min-speedup" => {
                    args.min_speedup = value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(args)
    }

    /// Measures one workload under both backends and verifies the blocked
    /// checksum agrees with the scalar one within `tol` (relative to the
    /// checksum magnitude — blocked kernels reassociate f32 sums, so exact
    /// equality is not expected).
    fn measure_pair(
        harness: &Harness,
        scalar_w: &mut dyn Workload,
        blocked_w: &mut dyn Workload,
        tol: f64,
    ) -> Result<BackendPair, String> {
        let scalar = harness.measure(scalar_w);
        let blocked = harness.measure(blocked_w);
        let scale = 1.0 + scalar.checksum.abs().max(blocked.checksum.abs());
        if (scalar.checksum - blocked.checksum).abs() > tol * scale {
            return Err(format!(
                "{}: blocked checksum {} drifted beyond tolerance from scalar {}",
                scalar_w.name(),
                blocked.checksum,
                scalar.checksum
            ));
        }
        let speedup = scalar.median_secs_per_iter / blocked.median_secs_per_iter;
        Ok(BackendPair { scalar, blocked, speedup })
    }

    fn check_against(report: &Report, baseline_path: &Path, args: &Args) -> Result<(), String> {
        let body = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
        let baseline: Report =
            serde_json::from_str(&body).map_err(|e| format!("cannot parse baseline: {e}"))?;
        let floor = baseline.matmul.blocked.coords_per_sec * (1.0 - args.tolerance);
        println!(
            "gate: blocked gemm {:.3e} coords/s vs baseline {:.3e} (floor {:.3e}, tolerance {})",
            report.matmul.blocked.coords_per_sec,
            baseline.matmul.blocked.coords_per_sec,
            floor,
            args.tolerance
        );
        if report.matmul.blocked.coords_per_sec < floor {
            return Err(format!(
                "blocked gemm regressed: {:.3e} coords/s < floor {:.3e} \
                 (baseline {:.3e} from {} on {})",
                report.matmul.blocked.coords_per_sec,
                floor,
                baseline.matmul.blocked.coords_per_sec,
                baseline.git_rev,
                baseline.machine.cpu_model,
            ));
        }
        println!(
            "gate: gemm speedup {:.1}x vs required {:.1}x",
            report.matmul.speedup, args.min_speedup
        );
        if report.matmul.speedup < args.min_speedup {
            return Err(format!(
                "blocked gemm speedup over the scalar reference fell to {:.1}x (< {:.1}x)",
                report.matmul.speedup, args.min_speedup
            ));
        }
        Ok(())
    }

    pub fn main() -> ExitCode {
        let args = match parse_args() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("nnbench: {e}");
                return ExitCode::FAILURE;
            }
        };
        let harness = if args.quick { Harness::quick() } else { Harness::full() };

        let scalar = BackendHandle::scalar();
        // One intra-op thread: the engine's client-parallel phases own the
        // cores, so the single-thread kernel speed is the honest signal.
        let blocked = match BackendKind::Blocked.resolve(1) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("nnbench: {e}");
                return ExitCode::FAILURE;
            }
        };

        let pairs: Result<Vec<BackendPair>, String> =
            [("matmul", 1e-4), ("conv", 1e-3), ("sgd_step", 1e-2)]
                .iter()
                .map(|&(which, tol)| match which {
                    "matmul" => measure_pair(
                        &harness,
                        &mut MatmulWorkload::new("gemm/scalar", scalar),
                        &mut MatmulWorkload::new("gemm/blocked", blocked),
                        tol,
                    ),
                    "conv" => measure_pair(
                        &harness,
                        &mut ConvWorkload::new("conv/scalar", scalar),
                        &mut ConvWorkload::new("conv/blocked", blocked),
                        tol,
                    ),
                    _ => measure_pair(
                        &harness,
                        &mut SgdStepWorkload::new("sgd/scalar", scalar),
                        &mut SgdStepWorkload::new("sgd/blocked", blocked),
                        tol,
                    ),
                })
                .collect();
        let pairs = match pairs {
            Ok(p) => p,
            Err(e) => {
                eprintln!("nnbench: CHECKSUM MISMATCH: {e}");
                return ExitCode::FAILURE;
            }
        };
        let [matmul, conv, sgd_step]: [BackendPair; 3] =
            pairs.try_into().expect("three workload pairs");

        let report = Report {
            schema: 1,
            git_rev: fedms_exp::git_rev(),
            machine: MachineInfo::detect(),
            quick: args.quick,
            workload: WorkloadSpec {
                gemm: (GEMM_M, GEMM_K, GEMM_N),
                conv: (CONV_IN_C, CONV_HW, CONV_HW, CONV_OUT_C),
                mlp_widths: MLP_WIDTHS.to_vec(),
                batch: BATCH,
            },
            matmul,
            conv,
            sgd_step,
            // Workload scratch goes through each layer's buffer pool, but
            // those pools are private to the layers; only RSS is reported.
            memory: MemoryInfo { peak_rss_bytes: peak_rss_bytes(), pool_high_water_bytes: None },
        };

        for (label, pair) in
            [("gemm", &report.matmul), ("conv", &report.conv), ("sgd ", &report.sgd_step)]
        {
            println!(
                "{label}: scalar {:>10.3e} coords/s  blocked {:>10.3e} coords/s  ({:.1}x)",
                pair.scalar.coords_per_sec, pair.blocked.coords_per_sec, pair.speedup
            );
        }

        let out = args.out.clone().unwrap_or_else(|| PathBuf::from("BENCH_nn.json"));
        let body = match serde_json::to_string_pretty(&report) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("nnbench: serialize: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&out, body + "\n") {
            eprintln!("nnbench: write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("report written to {}", out.display());

        if let Some(baseline) = &args.check {
            if let Err(e) = check_against(&report, baseline, &args) {
                eprintln!("nnbench: REGRESSION: {e}");
                return ExitCode::FAILURE;
            }
            println!("gate passed");
        }
        ExitCode::SUCCESS
    }
}

#[cfg(feature = "backend-blocked")]
fn main() -> std::process::ExitCode {
    bench::main()
}

#[cfg(not(feature = "backend-blocked"))]
fn main() -> std::process::ExitCode {
    eprintln!(
        "nnbench: the blocked backend is not compiled in; \
         rebuild with `cargo build --release --features backend-blocked`"
    );
    std::process::ExitCode::FAILURE
}
