//! Extra experiment E2 — Section IV-A's communication claim: sparse
//! uploading keeps Fed-MS's aggregation cost at `K` messages per round
//! (single-server-FL level) instead of the trivial `K·P`, and the accuracy
//! cost of that saving is small (Lemma 3's variance term).
//!
//! Prints measured message/byte counts from the simulator's accounting for
//! sparse / redundant(k) / full upload, plus the final accuracy each
//! strategy reaches under the same attack.
//!
//! Usage: `cargo run --release -p fedms-bench --bin comm`

use fedms_attacks::AttackKind;
use fedms_bench::{harness_defaults, save_json, seeds_from_env};
use fedms_core::{FilterKind, Result};
use fedms_sim::UploadStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct CommRow {
    strategy: String,
    upload_msgs_per_round: f64,
    download_msgs_per_round: f64,
    upload_mib: f64,
    final_accuracy: f32,
}

fn main() -> Result<()> {
    let seeds = seeds_from_env();
    println!("Communication cost of model aggregation (Section IV-A)");
    println!("K=50 P=10 e=20% noise attack, Fed-MS filter; seeds {seeds:?}");
    println!(
        "\n{:<16} {:>12} {:>12} {:>12} {:>10}",
        "upload", "up msg/rnd", "down msg/rnd", "up MiB", "final acc"
    );
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("sparse (paper)", UploadStrategy::Sparse),
        ("redundant k=3", UploadStrategy::Redundant(3)),
        ("full K*P", UploadStrategy::Full),
    ] {
        let mut cfg = harness_defaults(seeds[0])?;
        cfg.byzantine_count = 2;
        cfg.attack = AttackKind::Noise { std: 1.0 };
        cfg.filter = FilterKind::TrimmedMean { beta: 0.2 };
        cfg.upload = strategy;
        let result = cfg.run()?;
        let rounds = cfg.rounds as f64;
        let comm = result.total_comm;
        let row = CommRow {
            strategy: label.to_string(),
            upload_msgs_per_round: comm.upload_messages as f64 / rounds,
            download_msgs_per_round: comm.download_messages as f64 / rounds,
            upload_mib: comm.upload_bytes as f64 / (1024.0 * 1024.0),
            final_accuracy: result.final_accuracy().unwrap_or(0.0),
        };
        println!(
            "{:<16} {:>12.0} {:>12.0} {:>12.2} {:>10.3}",
            row.strategy,
            row.upload_msgs_per_round,
            row.download_msgs_per_round,
            row.upload_mib,
            row.final_accuracy
        );
        rows.push(row);
    }
    println!("\n(claim check: sparse = K = 50 uploads/round, full = K*P = 500;");
    println!(" accuracy difference between them is the Lemma-3 variance cost)");
    save_json("comm", &rows);
    Ok(())
}
