//! Figure 2 (a–d): test accuracy vs training epochs under the four
//! server-side Byzantine attacks, for Fed-MS (β = 0.2), Fed-MS⁻ (β = 0.1)
//! and Vanilla FL. Settings: K = 50, P = 10, ε = 20% (B = 2), E = 3,
//! D_α = 10 — Table II.
//!
//! Paper shape to reproduce: Fed-MS climbs to ~73–76% under every attack;
//! Fed-MS⁻ and Vanilla collapse under Random (≈8–20%); Noise degrades the
//! undefended baselines; Backward slows convergence.
//!
//! Usage: `cargo run --release -p fedms-bench --bin fig2`
//! (`FEDMS_FAST=1` for a quick smoke run; `--sweep-beta` adds a finer trim-
//! rate ablation; `--filters` compares trimmed mean against median/Krum/
//! geometric-median filters under the Random attack.)

use fedms_attacks::AttackKind;
use fedms_bench::{
    harness_defaults, print_series_table, run_averaged, save_json, seeds_from_env, Series,
};
use fedms_core::{FilterKind, Result};

fn panel(attack: AttackKind, seeds: &[u64]) -> Result<Vec<Series>> {
    let algorithms = [
        ("fed-ms (b=0.2)", FilterKind::TrimmedMean { beta: 0.2 }),
        ("fed-ms- (b=0.1)", FilterKind::TrimmedMean { beta: 0.1 }),
        ("vanilla", FilterKind::Mean),
    ];
    let mut out = Vec::new();
    for (label, filter) in algorithms {
        let mut cfg = harness_defaults(42)?;
        cfg.byzantine_count = 2; // ε = 20%
        cfg.attack = attack;
        cfg.filter = filter;
        out.push(Series { label: label.into(), points: run_averaged(&cfg, seeds)? });
    }
    Ok(out)
}

fn beta_sweep(seeds: &[u64]) -> Result<Vec<Series>> {
    let mut out = Vec::new();
    for beta in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let mut cfg = harness_defaults(42)?;
        cfg.byzantine_count = 2;
        cfg.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
        cfg.filter = FilterKind::TrimmedMean { beta };
        out.push(Series { label: format!("beta={beta}"), points: run_averaged(&cfg, seeds)? });
    }
    Ok(out)
}

fn filter_ablation(seeds: &[u64]) -> Result<Vec<Series>> {
    let filters = [
        ("trimmed(0.2)", FilterKind::TrimmedMean { beta: 0.2 }),
        ("median", FilterKind::Median),
        ("krum(f=2)", FilterKind::Krum { f: 2 }),
        ("multikrum", FilterKind::MultiKrum { f: 2, m: 4 }),
        ("geo-median", FilterKind::GeometricMedian),
    ];
    let mut out = Vec::new();
    for (label, filter) in filters {
        let mut cfg = harness_defaults(42)?;
        cfg.byzantine_count = 2;
        cfg.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
        cfg.filter = filter;
        out.push(Series { label: label.into(), points: run_averaged(&cfg, seeds)? });
    }
    Ok(out)
}

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let seeds = seeds_from_env();
    println!("Figure 2: accuracy vs epochs under four Byzantine attacks");
    println!("K=50 P=10 e=20% E=3 D_a=10; seeds {seeds:?}");

    let mut all = serde_json::Map::new();
    for (name, attack) in [
        ("2a-noise", AttackKind::Noise { std: 1.0 }),
        ("2b-random", AttackKind::Random { lo: -10.0, hi: 10.0 }),
        ("2c-safeguard", AttackKind::Safeguard { gamma: 0.6 }),
        ("2d-backward", AttackKind::Backward { delay: 2 }),
    ] {
        let series = panel(attack, &seeds)?;
        print_series_table(&format!("Fig. {name}"), &series);
        all.insert(name.into(), serde_json::to_value(&series).unwrap_or_default());
    }
    save_json("fig2", &all);

    if args.iter().any(|a| a == "--sweep-beta") {
        let series = beta_sweep(&seeds)?;
        print_series_table("ablation: trim rate beta under Random attack", &series);
        save_json("fig2_beta_sweep", &series);
    }
    if args.iter().any(|a| a == "--filters") {
        let series = filter_ablation(&seeds)?;
        print_series_table("ablation: filter choice under Random attack", &series);
        save_json("fig2_filters", &series);
    }
    Ok(())
}
