//! Figure 2 (a–d): test accuracy vs training epochs under the four
//! server-side Byzantine attacks, for Fed-MS (β = 0.2), Fed-MS⁻ (β = 0.1)
//! and Vanilla FL — a thin wrapper over the checked-in sweep spec
//! `experiments/fig2.toml` executed through `fedms-exp`.
//!
//! Paper shape to reproduce: Fed-MS climbs to ~73–76% under every attack;
//! Fed-MS⁻ and Vanilla collapse under Random (≈8–20%); Noise degrades the
//! undefended baselines; Backward slows convergence.
//!
//! Usage: `cargo run --release -p fedms-bench --bin fig2`
//! (`FEDMS_FAST=1` for a quick smoke run; `--sweep-beta` adds a finer trim-
//! rate ablation; `--filters` compares trimmed mean against median/Krum/
//! geometric-median filters under the Random attack.)

use fedms_exp::{panels, print_series_table, run_spec, save_json, Series, SpecError};

const SPEC: &str = include_str!("../../../../experiments/fig2.toml");

const BETA_SWEEP_SPEC: &str = r#"
[experiment]
name = "fig2-beta-sweep"
title = "ablation: trim rate beta under Random attack"
seeds = [42]
rounds = 60

[base]
byzantine = 2
attack = "random"

[grid]
filter = ["trimmed:0.0", "trimmed:0.1", "trimmed:0.2", "trimmed:0.3", "trimmed:0.4"]
"#;

const FILTER_ABLATION_SPEC: &str = r#"
[experiment]
name = "fig2-filters"
title = "ablation: filter choice under Random attack"
seeds = [42]
rounds = 60

[base]
byzantine = 2
attack = "random"

[grid]
filter = ["trimmed:0.2", "median", "krum:2", "multikrum:2:4", "geomedian"]
"#;

/// Old panel names kept so downstream plotting of `results/fig2.json`
/// stays stable.
fn panel_name(attack: &str) -> String {
    match attack {
        "noise" => "2a-noise".into(),
        "random" => "2b-random".into(),
        "safeguard" => "2c-safeguard".into(),
        "backward" => "2d-backward".into(),
        other => other.into(),
    }
}

fn algorithm_label(filter: &str) -> String {
    match filter {
        "trimmed:0.2" => "fed-ms (b=0.2)".into(),
        "trimmed:0.1" => "fed-ms- (b=0.1)".into(),
        "mean" => "vanilla".into(),
        other => other.into(),
    }
}

fn main() -> Result<(), SpecError> {
    let args: Vec<String> = std::env::args().collect();
    println!("Figure 2: accuracy vs epochs under four Byzantine attacks");
    println!("K=50 P=10 e=20% E=3 D_a=10");

    let (_, report) = run_spec(SPEC)?;
    let mut all = serde_json::Map::new();
    for (attack, series) in panels(&report.records, "attack", "filter") {
        let series: Vec<Series> = series
            .into_iter()
            .map(|s| Series { label: algorithm_label(&s.label), points: s.points })
            .collect();
        let name = panel_name(&attack);
        print_series_table(&format!("Fig. {name}"), &series);
        all.insert(name, serde_json::to_value(&series).unwrap_or_default());
    }
    save_json("fig2", &all);

    if args.iter().any(|a| a == "--sweep-beta") {
        let (_, report) = run_spec(BETA_SWEEP_SPEC)?;
        let series: Vec<Series> = panels(&report.records, "", "filter")
            .into_iter()
            .flat_map(|(_, s)| s)
            .map(|s| Series { label: s.label.replace("trimmed:", "beta="), points: s.points })
            .collect();
        print_series_table("ablation: trim rate beta under Random attack", &series);
        save_json("fig2_beta_sweep", &series);
    }
    if args.iter().any(|a| a == "--filters") {
        let (_, report) = run_spec(FILTER_ABLATION_SPEC)?;
        let series: Vec<Series> =
            panels(&report.records, "", "filter").into_iter().flat_map(|(_, s)| s).collect();
        print_series_table("ablation: filter choice under Random attack", &series);
        save_json("fig2_filters", &series);
    }
    Ok(())
}
