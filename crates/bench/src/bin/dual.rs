//! Extension experiment E4 — the paper's stated future work: federated
//! learning with Byzantine parameter servers **and** Byzantine clients.
//!
//! The dual defence is symmetric trimming: benign servers aggregate client
//! uploads with a trimmed mean (instead of the paper's plain mean), and
//! clients keep the Fed-MS trimmed-mean filter against the servers. The
//! sweep varies the Byzantine-client fraction at a fixed 20% of Byzantine
//! servers and compares:
//!
//! * `fed-ms`       — the paper's algorithm (robust clients, naive servers),
//! * `dual fed-ms`  — robust at both levels,
//! * `vanilla`      — no defence anywhere.
//!
//! Expected shape: plain Fed-MS survives Byzantine servers but degrades as
//! malicious clients grow (their garbage enters every server's mean);
//! dual Fed-MS stays near the clean ceiling until client trimming capacity
//! is exceeded.
//!
//! Usage: `cargo run --release -p fedms-bench --bin dual`

use fedms_attacks::{AttackKind, ClientAttackKind};
use fedms_bench::{
    harness_defaults, print_series_table, run_averaged, save_json, seeds_from_env, Series,
};
use fedms_core::{FilterKind, Result};

fn curve(
    label: &str,
    byz_clients: usize,
    filter: FilterKind,
    server_filter: FilterKind,
    seeds: &[u64],
) -> Result<Series> {
    let mut cfg = harness_defaults(42)?;
    cfg.byzantine_count = 2;
    cfg.attack = AttackKind::Noise { std: 1.0 };
    cfg.byzantine_clients = byz_clients;
    cfg.client_attack = ClientAttackKind::Random { lo: -10.0, hi: 10.0 };
    cfg.filter = filter;
    cfg.server_filter = server_filter;
    Ok(Series { label: label.into(), points: run_averaged(&cfg, seeds)? })
}

fn main() -> Result<()> {
    let seeds = seeds_from_env();
    println!("Dual threat model: Byzantine servers (20%, Noise) AND clients");
    println!("client attack: Random [-10,10] uploads; seeds {seeds:?}");
    let trim_client = FilterKind::TrimmedMean { beta: 0.2 };
    // Server-side rule: with sparse upload each server sees only ~K/P = 5
    // uploads, and the Byzantine clients among them are binomially
    // distributed — a fixed trim rate under-trims the unlucky servers. The
    // coordinate-wise median is the max-breakdown member of the trimmed-
    // mean family and handles any per-server Byzantine minority.
    let trim_server = FilterKind::Median;

    let mut all = serde_json::Map::new();
    for byz_frac in [0usize, 10, 20] {
        let byz_clients = byz_frac / 2; // of K = 50 → 0, 5, 10 clients
        let series = vec![
            curve("dual fed-ms", byz_clients, trim_client, trim_server, &seeds)?,
            curve("fed-ms", byz_clients, trim_client, FilterKind::Mean, &seeds)?,
            curve("vanilla", byz_clients, FilterKind::Mean, FilterKind::Mean, &seeds)?,
        ];
        print_series_table(
            &format!("{byz_frac}% byzantine clients ({byz_clients} of 50)"),
            &series,
        );
        all.insert(
            format!("byz_clients_{byz_frac}pct"),
            serde_json::to_value(&series).unwrap_or_default(),
        );
    }
    save_json("dual", &all);
    println!("\n(shape check: only 'dual fed-ms' should stay near the clean ceiling");
    println!(" as the byzantine-client fraction grows)");
    Ok(())
}
