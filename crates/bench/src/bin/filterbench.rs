//! The `trmean_β` filter microbench and its CI regression gate.
//!
//! Measures the blocked selection kernel
//! ([`fedms_aggregation::kernel::trimmed_mean`]) against the historical
//! sort-per-coordinate reference
//! ([`fedms_aggregation::reference::trimmed_mean`]) at the paper-scale
//! shape — `P = 10` servers, `dim = 10⁴` coordinates, `β = 0.2`
//! (trim 2 per side), one filter application per client for 1000 clients
//! per iteration — and writes a provenance-stamped report.
//!
//! Usage:
//!
//! ```text
//! filterbench [--quick] [--out PATH] [--check BASELINE]
//!             [--tolerance F] [--min-speedup F]
//! ```
//!
//! * `--quick` — the short CI schedule ([`Harness::quick`]) instead of the
//!   baseline schedule ([`Harness::full`]).
//! * `--out PATH` — where to write the report (default
//!   `BENCH_filter.json`).
//! * `--check BASELINE` — compare against a committed report and exit
//!   non-zero on regression:
//!   - kernel throughput below `(1 − tolerance) ×` the baseline's
//!     (hardware-sensitive, hence the generous default tolerance 0.5);
//!   - kernel-vs-reference speedup below `--min-speedup` (machine-portable;
//!     default 8, the acceptance floor 10 minus CI noise margin).

use fedms_aggregation::{kernel, reference};
use fedms_bench::perf::{
    peak_rss_bytes, pseudo_values, Harness, MachineInfo, Measurement, MemoryInfo, Workload,
};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Paper-scale federation shape for the filter (Table II).
const SERVERS: usize = 10;
const DIM: usize = 10_000;
const TRIM: usize = 2; // β = 0.2 of P = 10
const CLIENTS: usize = 1_000;

/// The measured shape, persisted so a baseline is self-describing.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WorkloadSpec {
    servers: usize,
    dim: usize,
    trim: usize,
    clients: usize,
}

/// The persisted report (`BENCH_filter.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    /// Report layout version.
    schema: u32,
    /// `git rev-parse --short HEAD` at measurement time.
    git_rev: String,
    /// Host the numbers were taken on.
    machine: MachineInfo,
    /// Whether the quick schedule produced these numbers.
    quick: bool,
    /// The measured workload shape.
    workload: WorkloadSpec,
    /// The blocked selection kernel.
    kernel: Measurement,
    /// The sort-per-coordinate reference.
    reference: Measurement,
    /// `reference.median / kernel.median` — the machine-portable signal.
    speedup: f64,
    /// Estimated wall-clock for one full 1000-client filter round, ms.
    round_ms: f64,
    /// Peak-memory footprint at the end of the measurement (absent in
    /// reports written before it was recorded).
    #[serde(default)]
    memory: Option<MemoryInfo>,
}

/// One iteration = `CLIENTS` trimmed-mean applications over the same
/// `P × dim` view set (clients share the dissemination, so sharing the
/// input is the realistic memory pattern).
struct FilterWorkload<F> {
    name: &'static str,
    views: Vec<Vec<f32>>,
    out: Vec<f32>,
    apply: F,
}

impl<F: FnMut(&[&[f32]], usize, &mut [f32])> FilterWorkload<F> {
    fn new(name: &'static str, apply: F) -> Self {
        let views: Vec<Vec<f32>> =
            (0..SERVERS).map(|s| pseudo_values(0x5EED + s as u64, DIM)).collect();
        FilterWorkload { name, views, out: vec![0.0; DIM], apply }
    }
}

impl<F: FnMut(&[&[f32]], usize, &mut [f32])> Workload for FilterWorkload<F> {
    fn name(&self) -> &str {
        self.name
    }
    fn coords_per_iter(&self) -> u64 {
        (CLIENTS * DIM) as u64
    }
    fn bytes_per_iter(&self) -> u64 {
        (CLIENTS * SERVERS * DIM * 4) as u64
    }
    fn run(&mut self) -> f64 {
        let views: Vec<&[f32]> = self.views.iter().map(Vec::as_slice).collect();
        let mut checksum = 0.0f64;
        for _ in 0..CLIENTS {
            (self.apply)(&views, TRIM, &mut self.out);
            checksum += f64::from(self.out[0]) + f64::from(self.out[DIM - 1]);
        }
        checksum
    }
}

#[derive(Debug, Default)]
struct Args {
    quick: bool,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    tolerance: f64,
    min_speedup: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { tolerance: 0.5, min_speedup: 8.0, ..Args::default() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--check" => args.check = Some(PathBuf::from(value("--check")?)),
            "--tolerance" => {
                args.tolerance =
                    value("--tolerance")?.parse().map_err(|e| format!("--tolerance: {e}"))?
            }
            "--min-speedup" => {
                args.min_speedup =
                    value("--min-speedup")?.parse().map_err(|e| format!("--min-speedup: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn check_against(report: &Report, baseline_path: &Path, args: &Args) -> Result<(), String> {
    let body = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let baseline: Report =
        serde_json::from_str(&body).map_err(|e| format!("cannot parse baseline: {e}"))?;
    let floor = baseline.kernel.coords_per_sec * (1.0 - args.tolerance);
    println!(
        "gate: kernel {:.3e} coords/s vs baseline {:.3e} (floor {:.3e}, tolerance {})",
        report.kernel.coords_per_sec, baseline.kernel.coords_per_sec, floor, args.tolerance
    );
    if report.kernel.coords_per_sec < floor {
        return Err(format!(
            "kernel regressed: {:.3e} coords/s < floor {:.3e} \
             (baseline {:.3e} from {} on {})",
            report.kernel.coords_per_sec,
            floor,
            baseline.kernel.coords_per_sec,
            baseline.git_rev,
            baseline.machine.cpu_model,
        ));
    }
    println!("gate: speedup {:.1}x vs required {:.1}x", report.speedup, args.min_speedup);
    if report.speedup < args.min_speedup {
        return Err(format!(
            "kernel speedup over the sort-based reference fell to {:.1}x (< {:.1}x)",
            report.speedup, args.min_speedup
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("filterbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let harness = if args.quick { Harness::quick() } else { Harness::full() };

    let mut kernel_w = FilterWorkload::new("trimmed_mean/kernel", kernel::trimmed_mean);
    let mut reference_w = FilterWorkload::new("trimmed_mean/reference", reference::trimmed_mean);
    let kernel_m = harness.measure(&mut kernel_w);
    let reference_m = harness.measure(&mut reference_w);
    assert_eq!(
        kernel_m.checksum.to_bits(),
        reference_m.checksum.to_bits(),
        "kernel and reference disagree on the bench input — bit-exactness is broken"
    );

    let speedup = reference_m.median_secs_per_iter / kernel_m.median_secs_per_iter;
    let report = Report {
        schema: 1,
        git_rev: fedms_exp::git_rev(),
        machine: MachineInfo::detect(),
        quick: args.quick,
        workload: WorkloadSpec { servers: SERVERS, dim: DIM, trim: TRIM, clients: CLIENTS },
        round_ms: kernel_m.median_secs_per_iter * 1e3,
        speedup,
        kernel: kernel_m,
        reference: reference_m,
        // This bench allocates its views up front and never touches the
        // engine's buffer pool, so only the RSS component applies.
        memory: Some(MemoryInfo { peak_rss_bytes: peak_rss_bytes(), pool_high_water_bytes: None }),
    };

    println!(
        "kernel:    {:>10.3e} coords/s  {:>7.2} GB/s  ({:.3} ms / 1000-client round)",
        report.kernel.coords_per_sec, report.kernel.gbytes_per_sec, report.round_ms
    );
    println!(
        "reference: {:>10.3e} coords/s  {:>7.2} GB/s",
        report.reference.coords_per_sec, report.reference.gbytes_per_sec
    );
    println!("speedup:   {:.1}x", report.speedup);

    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("BENCH_filter.json"));
    let body = match serde_json::to_string_pretty(&report) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("filterbench: serialize: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, body + "\n") {
        eprintln!("filterbench: write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("report written to {}", out.display());

    if let Some(baseline) = &args.check {
        if let Err(e) = check_against(&report, baseline, &args) {
            eprintln!("filterbench: REGRESSION: {e}");
            return ExitCode::FAILURE;
        }
        println!("gate passed");
    }
    ExitCode::SUCCESS
}
