//! Figure 5: test accuracy vs training epochs for data heterogeneity
//! D_α ∈ {1, 5, 10, 1000}; ε = 20%, Noise attack, Fed-MS (β = 0.2), with
//! the Vanilla-FL comparison the section's text discusses — a thin wrapper
//! over the checked-in sweep spec `experiments/fig5.toml` executed through
//! `fedms-exp`.
//!
//! Paper shape to reproduce: accuracy improves (weakly monotonically) with
//! D_α; Vanilla FL stays far below Fed-MS at every D_α. Note (documented in
//! EXPERIMENTS.md): the magnitude of the D_α spread is smaller on the
//! synthetic substrate than on CIFAR-10.
//!
//! Usage: `cargo run --release -p fedms-bench --bin fig5`

use fedms_exp::{panels, print_series_table, run_spec, save_json, Series, SpecError};

const SPEC: &str = include_str!("../../../../experiments/fig5.toml");

/// Old top-level JSON keys kept so downstream plotting of
/// `results/fig5.json` stays stable.
fn panel_name(filter: &str) -> (String, String) {
    match filter {
        "trimmed:0.2" => ("fedms".into(), "Fed-MS (beta=0.2) across D_a".into()),
        "mean" => ("vanilla".into(), "Vanilla FL across D_a".into()),
        other => (other.into(), format!("{other} across D_a")),
    }
}

fn main() -> Result<(), SpecError> {
    println!("Figure 5: impact of data heterogeneity (Noise attack, e=20%)");
    println!("K=50 P=10 E=3");
    let (_, report) = run_spec(SPEC)?;
    let mut all = serde_json::Map::new();
    for (filter, series) in panels(&report.records, "filter", "dirichlet_alpha") {
        let series: Vec<Series> = series
            .into_iter()
            .map(|s| Series { label: format!("D_a={}", s.label), points: s.points })
            .collect();
        let (key, title) = panel_name(&filter);
        print_series_table(&title, &series);
        all.insert(key, serde_json::to_value(&series).unwrap_or_default());
    }
    save_json("fig5", &all);
    Ok(())
}
