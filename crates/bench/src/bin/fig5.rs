//! Figure 5: test accuracy vs training epochs for data heterogeneity
//! D_α ∈ {1, 5, 10, 1000}; ε = 20%, Noise attack, Fed-MS (β = 0.2), with
//! the Vanilla-FL comparison the section's text discusses.
//!
//! Paper shape to reproduce: accuracy improves (weakly monotonically) with
//! D_α; Vanilla FL stays far below Fed-MS at every D_α. Note (documented in
//! EXPERIMENTS.md): the magnitude of the D_α spread is smaller on the
//! synthetic substrate than on CIFAR-10.
//!
//! Usage: `cargo run --release -p fedms-bench --bin fig5`

use fedms_attacks::AttackKind;
use fedms_bench::{
    harness_defaults, print_series_table, run_averaged, save_json, seeds_from_env, Series,
};
use fedms_core::{FilterKind, Result};

fn curves(filter: FilterKind, seeds: &[u64]) -> Result<Vec<Series>> {
    let mut out = Vec::new();
    for alpha in [1.0, 5.0, 10.0, 1000.0] {
        let mut cfg = harness_defaults(42)?;
        cfg.byzantine_count = 2;
        cfg.attack = AttackKind::Noise { std: 1.0 };
        cfg.filter = filter;
        cfg.dirichlet_alpha = alpha;
        out.push(Series { label: format!("D_a={alpha}"), points: run_averaged(&cfg, seeds)? });
    }
    Ok(out)
}

fn main() -> Result<()> {
    let seeds = seeds_from_env();
    println!("Figure 5: impact of data heterogeneity (Noise attack, e=20%)");
    println!("K=50 P=10 E=3; seeds {seeds:?}");
    let fedms = curves(FilterKind::TrimmedMean { beta: 0.2 }, &seeds)?;
    print_series_table("Fed-MS (beta=0.2) across D_a", &fedms);
    let vanilla = curves(FilterKind::Mean, &seeds)?;
    print_series_table("Vanilla FL across D_a", &vanilla);
    let mut all = serde_json::Map::new();
    all.insert("fedms".into(), serde_json::to_value(&fedms).unwrap_or_default());
    all.insert("vanilla".into(), serde_json::to_value(&vanilla).unwrap_or_default());
    save_json("fig5", &all);
    Ok(())
}
