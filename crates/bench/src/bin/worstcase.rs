//! Extension experiment E5 — the paper's worst-case adversary: Byzantine
//! servers that **equivocate**, sending different tampered models to
//! different clients ("Such a Byzantine behavior cannot be detected since
//! the clients cannot directly communicate with each other", Section III-A).
//!
//! Compares consistent vs equivocating dissemination for the Random and
//! Noise attacks under the Fed-MS filter. The theory treats both the same
//! way (each client's filter bounds its own view), so the expected shape is
//! equivalence — a non-obvious property this experiment certifies.
//!
//! Usage: `cargo run --release -p fedms-bench --bin worstcase`

use fedms_attacks::AttackKind;
use fedms_bench::{
    harness_defaults, print_series_table, run_averaged, save_json, seeds_from_env, Series,
};
use fedms_core::{FilterKind, Result};

fn curve(label: &str, attack: AttackKind, equivocate: bool, seeds: &[u64]) -> Result<Series> {
    let mut cfg = harness_defaults(42)?;
    cfg.byzantine_count = 2;
    cfg.attack = attack;
    cfg.equivocate = equivocate;
    cfg.filter = FilterKind::TrimmedMean { beta: 0.2 };
    Ok(Series { label: label.into(), points: run_averaged(&cfg, seeds)? })
}

fn main() -> Result<()> {
    let seeds = seeds_from_env();
    println!("Worst-case adversary: equivocating vs consistent dissemination");
    println!("K=50 P=10 e=20%, Fed-MS beta=0.2; seeds {seeds:?}");
    let mut all = serde_json::Map::new();
    for (name, attack) in [
        ("random", AttackKind::Random { lo: -10.0, hi: 10.0 }),
        ("noise", AttackKind::Noise { std: 1.0 }),
    ] {
        let series = vec![
            curve("consistent", attack, false, &seeds)?,
            curve("equivocating", attack, true, &seeds)?,
        ];
        print_series_table(&format!("{name} attack"), &series);
        all.insert(name.into(), serde_json::to_value(&series).unwrap_or_default());
    }
    save_json("worstcase", &all);
    println!("\n(shape check: the curves should coincide — the per-client filter");
    println!(" gives each client its own guarantee, so equivocation buys nothing)");
    Ok(())
}
