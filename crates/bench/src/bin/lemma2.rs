//! Extra experiment E3 — Lemma 2: the trimmed-mean estimation error is
//! bounded by the sample's spread, scaled by `P/(P−2B)²`.
//!
//! For a grid of (P, B) the binary draws honest scalar samples of standard
//! deviation σ, lets an adversary replace B of them with worst-case values,
//! and measures `E[(trmean_β{q} − µ)²]` against Lemma 2's `Pσ²/(P−2B)²`
//! bound. Shape to reproduce: the measured error never exceeds the bound
//! and grows as B approaches P/2.
//!
//! Usage: `cargo run --release -p fedms-bench --bin lemma2`

use fedms_aggregation::trimmed_mean_scalars;
use fedms_bench::save_json;
use fedms_core::Result;
use fedms_tensor::rng::rng_for;
use rand_distr::{Distribution, Normal};
use serde::Serialize;

#[derive(Serialize)]
struct Lemma2Row {
    p: usize,
    b: usize,
    measured_mse: f64,
    bound: f64,
    within: bool,
}

fn main() -> Result<()> {
    println!("Lemma 2: trimmed-mean error vs P*sigma^2/(P-2B)^2 bound");
    let sigma = 1.0f64;
    let trials = 20_000usize;
    println!(
        "\n{:>4} {:>4} {:>14} {:>14} {:>8}",
        "P", "B", "measured MSE", "lemma bound", "within"
    );
    let mut rows = Vec::new();
    for (p, b) in [(5usize, 1usize), (10, 1), (10, 2), (10, 3), (10, 4), (20, 4), (20, 8)] {
        let mut rng = rng_for(42, &[p as u64, b as u64]);
        let normal = Normal::new(0.0f64, sigma).expect("valid normal");
        let mut mse = 0.0f64;
        for _ in 0..trials {
            let mut values: Vec<f32> = (0..p).map(|_| normal.sample(&mut rng) as f32).collect();
            // Worst-case adversary: push B values to +infinity-like extremes
            // (the sandwich argument shows one-sided attacks are maximal).
            for v in values.iter_mut().take(b) {
                *v = 1e9;
            }
            let est = trimmed_mean_scalars(&values, b)? as f64;
            mse += est * est; // true mean µ = 0
        }
        mse /= trials as f64;
        let bound = p as f64 * sigma * sigma / ((p - 2 * b) as f64).powi(2);
        let within = mse <= bound;
        println!(
            "{:>4} {:>4} {:>14.4} {:>14.4} {:>8}",
            p,
            b,
            mse,
            bound,
            if within { "yes" } else { "NO" }
        );
        rows.push(Lemma2Row { p, b, measured_mse: mse, bound, within });
    }
    println!("\n(shape check: error grows as B -> P/2; bound always holds)");
    save_json("lemma2", &rows);
    Ok(())
}
