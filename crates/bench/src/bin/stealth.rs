//! Extension experiment E6 — stealth adversaries beyond the paper's four:
//! ALIE ("a little is enough") and IPM (inner-product manipulation).
//!
//! Both attacks are designed to sit just inside a robust filter's
//! tolerance instead of sending obvious garbage. The sweep measures how
//! the Fed-MS trimmed mean, the coordinate median and plain averaging hold
//! up at ε = 20% Byzantine servers.
//!
//! Expected shape: the paper's Random attack is the *easiest* for trimming
//! (extremes are trivially discarded); ALIE with tuned `z` degrades the
//! trimmed mean more than Random does, while still being far from fatal at
//! ε = 20% — illustrating the known gap between trimming's worst-case
//! guarantee (Lemma 2's spread bound) and its typical-case performance.
//!
//! Usage: `cargo run --release -p fedms-bench --bin stealth`

use fedms_attacks::AttackKind;
use fedms_bench::{
    harness_defaults, print_series_table, run_averaged, save_json, seeds_from_env, Series,
};
use fedms_core::{FilterKind, Result};

fn curve(label: &str, attack: AttackKind, filter: FilterKind, seeds: &[u64]) -> Result<Series> {
    let mut cfg = harness_defaults(42)?;
    cfg.byzantine_count = 2;
    cfg.attack = attack;
    cfg.filter = filter;
    Ok(Series { label: label.into(), points: run_averaged(&cfg, seeds)? })
}

fn main() -> Result<()> {
    let seeds = seeds_from_env();
    println!("Stealth attacks (ALIE / IPM) vs robust filters; e=20%, seeds {seeds:?}");
    let mut all = serde_json::Map::new();
    for (name, attack) in [
        ("alie-z1", AttackKind::Alie { z: 1.0 }),
        ("alie-z4", AttackKind::Alie { z: 4.0 }),
        ("ipm-0.5", AttackKind::Ipm { epsilon: 0.5 }),
        ("ipm-2", AttackKind::Ipm { epsilon: 2.0 }),
        ("random (paper)", AttackKind::Random { lo: -10.0, hi: 10.0 }),
    ] {
        let series = vec![
            curve("trimmed 0.2", attack, FilterKind::TrimmedMean { beta: 0.2 }, &seeds)?,
            curve("median", attack, FilterKind::Median, &seeds)?,
            curve("vanilla", attack, FilterKind::Mean, &seeds)?,
        ];
        print_series_table(&format!("{name} attack"), &series);
        all.insert(name.into(), serde_json::to_value(&series).unwrap_or_default());
    }
    save_json("stealth", &all);
    Ok(())
}
