//! Extra experiment E1 — Theorem 1 validation on strongly convex
//! quadratics with known constants.
//!
//! Runs the exact Fed-MS loop (sparse upload, server mean, Byzantine
//! tampering, trimmed-mean filter) on a [`QuadraticFleet`] with the proof's
//! prescribed step size `η_t = 2/(μ(γ+t))`, and prints:
//!
//! 1. the measured optimality gap `F(w̄_t) − F*` against the closed-form
//!    Theorem-1 bound at matching steps,
//! 2. the log–log slope of the gap (≈ −1 certifies `O(1/T)`),
//! 3. the Δ error-budget decomposition (heterogeneity / drift / variance /
//!    Byzantine / sparse-upload terms).
//!
//! Usage: `cargo run --release -p fedms-bench --bin theory`

use fedms_attacks::AttackKind;
use fedms_bench::save_json;
use fedms_core::theory::{log_log_slope, run_convex_fedms, sweep_byzantine, ConvexFedMsConfig};
use fedms_core::Result;
use fedms_nn::convex::QuadraticFleet;
use serde::Serialize;

#[derive(Serialize)]
struct TheoryOutput {
    slope: f64,
    measured: Vec<(usize, f64)>,
    bound: Vec<(usize, f64)>,
    delta_terms: Vec<(String, f64)>,
}

fn main() -> Result<()> {
    println!("Theorem 1 validation: O(1/T) convergence on convex quadratics");
    let fleet = QuadraticFleet::random(50, 16, 0.5, 2.0, 1.0, 7)?;
    let cfg = ConvexFedMsConfig {
        servers: 10,
        byzantine: 2,
        attack: AttackKind::Random { lo: -10.0, hi: 10.0 },
        beta: Some(0.2),
        local_epochs: 3,
        noise_std: 0.1,
        rounds: 2000,
        seed: 42,
        init_offset: 5.0,
    };
    let (points, constants) = run_convex_fedms(&fleet, &cfg)?;
    constants.validate()?;

    // Initial distance for the bound: w₀ = offset·1.
    let w0 = fedms_tensor::Tensor::full(&[fleet.dim()], cfg.init_offset);
    let w0_dist_sq = w0.sub(&fleet.optimum())?.norm_l2_sq() as f64;

    println!(
        "\nfleet: K={} d={} L={:.2} mu={:.2} Gamma={:.3}; run: P={} B={} attack=random beta=0.2",
        constants.k,
        fleet.dim(),
        constants.l,
        constants.mu,
        constants.gamma_het,
        cfg.servers,
        cfg.byzantine,
    );
    println!("\n{:>8} {:>14} {:>14} {:>8}", "step t", "measured gap", "theorem bound", "within");
    let mut measured = Vec::new();
    let mut bound_series = Vec::new();
    for &(idx, step) in
        [(1usize, 3usize), (10, 30), (33, 99), (100, 300), (333, 999), (1000, 3000), (2000, 6000)]
            .iter()
    {
        if idx >= points.len() {
            continue;
        }
        let gap = points[idx].gap;
        let bound = constants.bound_at(step, w0_dist_sq);
        println!(
            "{:>8} {:>14.5} {:>14.3} {:>8}",
            step,
            gap,
            bound,
            if gap <= bound { "yes" } else { "NO" }
        );
        measured.push((step, gap));
        bound_series.push((step, bound));
    }

    let slope = log_log_slope(&points[points.len() / 10..points.len() / 2]).unwrap_or(f64::NAN);
    println!("\nlog-log slope of measured gap (middle of run): {slope:.3} (O(1/T) => ~ -1)");

    println!("\nDelta decomposition (Theorem 1 error budget):");
    let delta_terms = vec![
        ("heterogeneity 6L*Gamma".to_string(), constants.heterogeneity_term()),
        ("client drift 8E^2G^2".to_string(), constants.drift_term()),
        ("SGD variance".to_string(), constants.variance_term()),
        ("byzantine 4P/(P-2B)^2 E^2G^2".to_string(), constants.byzantine_term()),
        ("sparse upload (K-P)/(K-1) 4/P E^2G^2".to_string(), constants.sparse_term()),
    ];
    for (name, v) in &delta_terms {
        println!("  {name:<40} {v:>12.3}");
    }
    println!("  {:<40} {:>12.3}", "total Delta", constants.delta());

    // Measured counterpart of Δ's Byzantine term: the stochastic floor of
    // the gap as B approaches P/2 (β matched to B/P per the algorithm).
    println!("\nByzantine sweep (gap floor over the last quarter of each run):");
    println!("{:>4} {:>14} {:>18}", "B", "measured floor", "delta byz term");
    let sweep = sweep_byzantine(&fleet, &cfg, &[0, 1, 2, 3, 4])?;
    for &(b, floor) in &sweep {
        let mut c = constants;
        c.b = b;
        println!("{:>4} {:>14.5} {:>18.1}", b, floor, c.byzantine_term());
    }
    save_json("theory", &TheoryOutput { slope, measured, bound: bound_series, delta_terms });
    save_json("theory_bsweep", &sweep);
    Ok(())
}
