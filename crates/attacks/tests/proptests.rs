//! Property-based tests of attack invariants.

use fedms_attacks::{
    AttackContext, AttackKind, Benign, ClientAttackContext, ClientAttackKind, ServerAttack,
};
use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, len).prop_map(|v| Tensor::from_slice(&v))
}

proptest! {
    /// Benign is always exact identity regardless of state.
    #[test]
    fn benign_identity(agg in tensor_strategy(16), round in 0usize..100) {
        let ctx = AttackContext::new(round, 0, &agg, &[], 10);
        let out = Benign::new().tamper(&ctx, &mut rng_for(round as u64, &[])).unwrap();
        prop_assert_eq!(out, agg);
    }

    /// Every attack preserves the aggregate's shape and produces finite
    /// values on finite inputs.
    #[test]
    fn attacks_preserve_shape_and_finiteness(
        agg in tensor_strategy(32),
        prev in tensor_strategy(32),
        seed in 0u64..1000,
    ) {
        let history = vec![prev];
        for kind in [
            AttackKind::Benign,
            AttackKind::Noise { std: 1.0 },
            AttackKind::Random { lo: -10.0, hi: 10.0 },
            AttackKind::Safeguard { gamma: 0.6 },
            AttackKind::Backward { delay: 2 },
            AttackKind::SignFlip { scale: 1.0 },
            AttackKind::Zero,
        ] {
            let attack = kind.build().unwrap();
            let ctx = AttackContext::new(1, 0, &agg, &history, 5);
            let out = attack.tamper(&ctx, &mut rng_for(seed, &[])).unwrap();
            prop_assert_eq!(out.dims(), agg.dims(), "{} changed shape", attack.name());
            prop_assert!(out.is_finite(), "{} produced non-finite values", attack.name());
        }
    }

    /// Attacks are deterministic given equal RNG state and context.
    #[test]
    fn attacks_are_deterministic(agg in tensor_strategy(16), seed in 0u64..1000) {
        for kind in AttackKind::paper_suite() {
            let attack = kind.build().unwrap();
            let ctx = AttackContext::new(0, 0, &agg, &[], 5);
            let a = attack.tamper(&ctx, &mut rng_for(seed, &[])).unwrap();
            let b = attack.tamper(&ctx, &mut rng_for(seed, &[])).unwrap();
            prop_assert_eq!(a, b, "{} not deterministic", attack.name());
        }
    }

    /// Safeguard's output is an affine combination of the current and
    /// previous aggregates: ã = (1−γ)·a + γ·a_prev, coordinate-wise.
    #[test]
    fn safeguard_is_affine_combination(
        agg in tensor_strategy(8),
        prev in tensor_strategy(8),
        gamma in -2.0f32..2.0,
    ) {
        let attack = AttackKind::Safeguard { gamma }.build().unwrap();
        let history = vec![prev.clone()];
        let ctx = AttackContext::new(1, 0, &agg, &history, 5);
        let out = attack.tamper(&ctx, &mut rng_for(0, &[])).unwrap();
        for i in 0..8 {
            let expect = (1.0 - gamma) * agg.as_slice()[i] + gamma * prev.as_slice()[i];
            prop_assert!((out.as_slice()[i] - expect).abs() < 1e-3);
        }
    }

    /// Backward replays a value that literally appeared in the history.
    #[test]
    fn backward_replays_history(
        hist_vals in proptest::collection::vec(-5.0f32..5.0, 4),
        delay in 1usize..4,
    ) {
        let history: Vec<Tensor> =
            hist_vals.iter().map(|&v| Tensor::from_slice(&[v])).collect();
        let agg = Tensor::from_slice(&[99.0]);
        let attack = AttackKind::Backward { delay }.build().unwrap();
        let ctx = AttackContext::new(4, 0, &agg, &history, 5);
        let out = attack.tamper(&ctx, &mut rng_for(0, &[])).unwrap();
        prop_assert!(history.iter().any(|h| h == &out));
    }

    /// Client sign-flip anti-commutes with scaling: flip(c·w) = c·flip(w).
    #[test]
    fn client_sign_flip_scales(w in tensor_strategy(8), c in 0.1f32..5.0) {
        let attack = ClientAttackKind::SignFlip { scale: 1.0 }.build().unwrap();
        let scaled = w.scaled(c);
        let ctx1 = ClientAttackContext::new(0, 0, &w, None);
        let ctx2 = ClientAttackContext::new(0, 0, &scaled, None);
        let f1 = attack.tamper_upload(&ctx1, &mut rng_for(0, &[])).unwrap();
        let f2 = attack.tamper_upload(&ctx2, &mut rng_for(0, &[])).unwrap();
        for i in 0..8 {
            prop_assert!((f2.as_slice()[i] - c * f1.as_slice()[i]).abs() < 1e-3);
        }
    }

    /// Amplify with factor 1 is honest behaviour.
    #[test]
    fn amplify_factor_one_is_honest(w in tensor_strategy(8), g in tensor_strategy(8)) {
        let attack = ClientAttackKind::Amplify { factor: 1.0 }.build().unwrap();
        let ctx = ClientAttackContext::new(1, 0, &w, Some(&g));
        let out = attack.tamper_upload(&ctx, &mut rng_for(0, &[])).unwrap();
        for i in 0..8 {
            prop_assert!((out.as_slice()[i] - w.as_slice()[i]).abs() < 1e-4);
        }
    }
}
