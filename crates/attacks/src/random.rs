//! The Random attack: replaces the aggregate with uniform noise.

use fedms_tensor::Tensor;
use rand::rngs::StdRng;

use crate::{AttackContext, AttackError, Result, ServerAttack};

/// Replaces the genuine aggregation result with values drawn uniformly from
/// `[lo, hi)` — the paper samples from `[-10, 10]`, which utterly destroys
/// an unprotected average (Vanilla FL drops to ~10% accuracy in Fig. 2(b)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomAttack {
    lo: f32,
    hi: f32,
}

impl RandomAttack {
    /// Creates the attack sampling from `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadParameter`] unless `lo < hi` and both are
    /// finite.
    pub fn new(lo: f32, hi: f32) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(AttackError::BadParameter(format!("bad range [{lo}, {hi})")));
        }
        Ok(RandomAttack { lo, hi })
    }

    /// The paper's `[-10, 10]` range.
    pub fn default_range() -> Self {
        RandomAttack { lo: -10.0, hi: 10.0 }
    }

    /// The sampling interval.
    pub fn range(&self) -> (f32, f32) {
        (self.lo, self.hi)
    }
}

impl ServerAttack for RandomAttack {
    fn name(&self) -> &'static str {
        "random"
    }

    fn tamper(&self, ctx: &AttackContext<'_>, rng: &mut StdRng) -> Result<Tensor> {
        Ok(Tensor::rand_uniform(rng, ctx.true_aggregate().dims(), self.lo, self.hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;

    #[test]
    fn validates_range() {
        assert!(RandomAttack::new(1.0, 1.0).is_err());
        assert!(RandomAttack::new(2.0, 1.0).is_err());
        assert!(RandomAttack::new(f32::NAN, 1.0).is_err());
        assert_eq!(RandomAttack::default_range().range(), (-10.0, 10.0));
    }

    #[test]
    fn output_ignores_true_aggregate() {
        let a = Tensor::full(&[6], 123.0);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let mut rng = rng_for(1, &[]);
        let out = RandomAttack::default_range().tamper(&ctx, &mut rng).unwrap();
        assert_eq!(out.dims(), a.dims());
        assert!(out.as_slice().iter().all(|&v| (-10.0..10.0).contains(&v)));
    }

    #[test]
    fn spans_the_interval() {
        let a = Tensor::zeros(&[10_000]);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let mut rng = rng_for(2, &[]);
        let out = RandomAttack::default_range().tamper(&ctx, &mut rng).unwrap();
        assert!(out.min().unwrap() < -9.0);
        assert!(out.max().unwrap() > 9.0);
    }
}
