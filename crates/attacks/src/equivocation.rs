//! Equivocation: inconsistent per-client dissemination.

use fedms_tensor::rng::derive_seed;
use fedms_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{AttackContext, Result, ServerAttack};

/// Upgrades any attack to the paper's worst case: "a Byzantine PS can send
/// various tampered models to different clients. Such a Byzantine behavior
/// cannot be detected since the clients cannot directly communicate with
/// each other."
///
/// Each client receives an *independently sampled* tampering: the wrapped
/// attack is re-run with a per-client RNG stream, so stochastic attacks
/// (Noise, Random) produce genuinely different models per client, while
/// deterministic attacks (Backward, Safeguard) stay consistent — matching
/// their information-theoretic limits.
#[derive(Debug)]
pub struct Equivocation<A> {
    inner: A,
    salt: u64,
}

impl<A: ServerAttack> Equivocation<A> {
    /// Wraps `inner`, seeding the per-client streams from `salt`.
    pub fn new(inner: A, salt: u64) -> Self {
        Equivocation { inner, salt }
    }

    /// The wrapped attack.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: ServerAttack> ServerAttack for Equivocation<A> {
    fn name(&self) -> &'static str {
        "equivocation"
    }

    fn tamper(&self, ctx: &AttackContext<'_>, rng: &mut StdRng) -> Result<Tensor> {
        self.inner.tamper(ctx, rng)
    }

    fn tamper_for(
        &self,
        ctx: &AttackContext<'_>,
        client_id: usize,
        _rng: &mut StdRng,
    ) -> Result<Tensor> {
        let seed =
            derive_seed(self.salt, &[ctx.round() as u64, ctx.server_id() as u64, client_id as u64]);
        let mut client_rng = StdRng::seed_from_u64(seed);
        self.inner.tamper(ctx, &mut client_rng)
    }

    fn is_equivocating(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoiseAttack, RandomAttack};
    use fedms_tensor::rng::rng_for;

    #[test]
    fn different_clients_get_different_models() {
        let a = Tensor::zeros(&[16]);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let atk = Equivocation::new(RandomAttack::default_range(), 7);
        let mut rng = rng_for(0, &[]);
        let x = atk.tamper_for(&ctx, 0, &mut rng).unwrap();
        let y = atk.tamper_for(&ctx, 1, &mut rng).unwrap();
        assert_ne!(x, y);
        assert!(atk.is_equivocating());
    }

    #[test]
    fn same_client_same_round_is_stable() {
        let a = Tensor::zeros(&[16]);
        let ctx = AttackContext::new(3, 1, &a, &[], 5);
        let atk = Equivocation::new(NoiseAttack::new(1.0).unwrap(), 7);
        let mut rng = rng_for(0, &[]);
        let x = atk.tamper_for(&ctx, 2, &mut rng).unwrap();
        let y = atk.tamper_for(&ctx, 2, &mut rng).unwrap();
        assert_eq!(x, y, "per-client stream must not depend on caller rng state");
    }

    #[test]
    fn rounds_decorrelate_streams() {
        let a = Tensor::zeros(&[16]);
        let atk = Equivocation::new(NoiseAttack::new(1.0).unwrap(), 7);
        let mut rng = rng_for(0, &[]);
        let ctx0 = AttackContext::new(0, 0, &a, &[], 5);
        let ctx1 = AttackContext::new(1, 0, &a, &[], 5);
        let x = atk.tamper_for(&ctx0, 0, &mut rng).unwrap();
        let y = atk.tamper_for(&ctx1, 0, &mut rng).unwrap();
        assert_ne!(x, y);
        assert_eq!(atk.inner().std(), 1.0);
    }
}
