//! The Safeguard attack: reverse pseudo-gradient.

use fedms_tensor::Tensor;
use rand::rngs::StdRng;

use crate::{AttackContext, AttackError, Result, ServerAttack};

/// The reverse-gradient attack of Section VI-A: with pseudo global gradient
/// `g_{t+1} = a_{t+1} − a_t`, the Byzantine server disseminates
/// `ã_{t+1} = a_{t+1} − γ·g_{t+1}` (the paper sets `γ = 0.6`), dragging the
/// model back against its own progress. On the first round (no history) the
/// true aggregate is disseminated unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafeguardAttack {
    gamma: f32,
}

impl SafeguardAttack {
    /// Creates the attack with scaling factor `gamma`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadParameter`] for non-finite `gamma`.
    pub fn new(gamma: f32) -> Result<Self> {
        if !gamma.is_finite() {
            return Err(AttackError::BadParameter(format!("gamma must be finite, got {gamma}")));
        }
        Ok(SafeguardAttack { gamma })
    }

    /// The paper's `γ = 0.6`.
    pub fn paper_default() -> Self {
        SafeguardAttack { gamma: 0.6 }
    }

    /// The scaling factor γ.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }
}

impl ServerAttack for SafeguardAttack {
    fn name(&self) -> &'static str {
        "safeguard"
    }

    fn tamper(&self, ctx: &AttackContext<'_>, _rng: &mut StdRng) -> Result<Tensor> {
        let current = ctx.true_aggregate();
        let Some(previous) = ctx.aggregate_rounds_ago(1) else {
            return Ok(current.clone());
        };
        // ã = a − γ(a − a_prev)
        let mut out = current.clone();
        let pseudo_grad = current.sub(previous)?;
        out.axpy(-self.gamma, &pseudo_grad)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;

    #[test]
    fn validates_gamma() {
        assert!(SafeguardAttack::new(f32::NAN).is_err());
        assert!(SafeguardAttack::new(-2.0).is_ok(), "negative gamma is a valid variant");
        assert_eq!(SafeguardAttack::paper_default().gamma(), 0.6);
    }

    #[test]
    fn first_round_passes_through() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let mut rng = rng_for(1, &[]);
        assert_eq!(SafeguardAttack::paper_default().tamper(&ctx, &mut rng).unwrap(), a);
    }

    #[test]
    fn drags_against_progress() {
        // a_prev = 0, a = 1 → g = 1 → ã = 1 − 0.6 = 0.4.
        let prev = vec![Tensor::from_slice(&[0.0])];
        let a = Tensor::from_slice(&[1.0]);
        let ctx = AttackContext::new(1, 0, &a, &prev, 5);
        let mut rng = rng_for(1, &[]);
        let out = SafeguardAttack::paper_default().tamper(&ctx, &mut rng).unwrap();
        assert!((out.as_slice()[0] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn gamma_one_freezes_model() {
        let prev = vec![Tensor::from_slice(&[3.0])];
        let a = Tensor::from_slice(&[5.0]);
        let ctx = AttackContext::new(1, 0, &a, &prev, 5);
        let mut rng = rng_for(1, &[]);
        let out = SafeguardAttack::new(1.0).unwrap().tamper(&ctx, &mut rng).unwrap();
        assert_eq!(out.as_slice(), &[3.0], "gamma=1 replays the previous aggregate");
    }
}
