//! Stealth attacks that hide inside the statistics of honest behaviour —
//! ALIE ("a little is enough", Baruch et al. 2019) and IPM (inner-product
//! manipulation, Xie et al. 2020), adapted to the server-side threat model.
//!
//! Both are classic adversaries against robust aggregation: instead of
//! sending obvious garbage (which trimming removes), they perturb *just
//! inside* the filter's tolerance, maximising damage per unit of
//! detectability. They stress the trimmed-mean filter far harder than the
//! paper's four attacks and are used by the ablation benches.

use fedms_tensor::Tensor;
use rand::rngs::StdRng;

use crate::{AttackContext, AttackError, Result, ServerAttack};

/// Estimates the per-coordinate standard deviation of the server's recent
/// true aggregates — the adaptive adversary's proxy for the benign spread.
fn history_std(ctx: &AttackContext<'_>, window: usize) -> Option<Tensor> {
    let history = ctx.history();
    if history.len() < 2 {
        return None;
    }
    let start = history.len().saturating_sub(window);
    let recent = &history[start..];
    let d = ctx.true_aggregate().len();
    let n = recent.len() as f64;
    let mut mean = vec![0.0f64; d];
    for h in recent {
        for (m, &v) in mean.iter_mut().zip(h.as_slice()) {
            *m += v as f64 / n;
        }
    }
    let mut var = vec![0.0f64; d];
    for h in recent {
        for ((va, &v), &m) in var.iter_mut().zip(h.as_slice()).zip(mean.iter()) {
            let dlt = v as f64 - m;
            *va += dlt * dlt / n;
        }
    }
    Some(Tensor::from_slice(&var.into_iter().map(|v| v.sqrt() as f32).collect::<Vec<_>>()))
}

/// ALIE-style attack: shifts every coordinate of the true aggregate by
/// `z` times the coordinate's recent standard deviation — large enough to
/// bias the aggregate, small enough to sit inside the benign spread that
/// coordinate-wise filters tolerate.
///
/// Until two rounds of history exist the attack passes the aggregate
/// through unchanged (it has no spread estimate yet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlieAttack {
    z: f32,
    window: usize,
}

impl AlieAttack {
    /// Creates the attack with deviation multiplier `z` (classic choice
    /// ≈ 1, tuned to the filter's breakdown point).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadParameter`] for non-finite `z`.
    pub fn new(z: f32) -> Result<Self> {
        if !z.is_finite() {
            return Err(AttackError::BadParameter(format!("z must be finite, got {z}")));
        }
        Ok(AlieAttack { z, window: 8 })
    }

    /// The deviation multiplier.
    pub fn z(&self) -> f32 {
        self.z
    }
}

impl ServerAttack for AlieAttack {
    fn name(&self) -> &'static str {
        "alie"
    }

    fn tamper(&self, ctx: &AttackContext<'_>, _rng: &mut StdRng) -> Result<Tensor> {
        let Some(std) = history_std(ctx, self.window) else {
            return Ok(ctx.true_aggregate().clone());
        };
        let mut out = ctx.true_aggregate().clone();
        out.axpy(self.z, &std)?;
        Ok(out)
    }
}

/// IPM-style attack: disseminates `−ε · a`, the negative of the true
/// aggregate scaled by a small ε. For small ε the tampered model sits close
/// to zero — within the benign cloud early in training — while its inner
/// product with the true update direction is negative, dragging averaging
/// filters backwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpmAttack {
    epsilon: f32,
}

impl IpmAttack {
    /// Creates the attack with scale `epsilon` (classic choices: 0.1–0.5
    /// for stealth, > 1 for aggression).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadParameter`] for non-positive or non-finite
    /// `epsilon`.
    pub fn new(epsilon: f32) -> Result<Self> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(AttackError::BadParameter(format!(
                "epsilon must be positive, got {epsilon}"
            )));
        }
        Ok(IpmAttack { epsilon })
    }

    /// The negation scale ε.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }
}

impl ServerAttack for IpmAttack {
    fn name(&self) -> &'static str {
        "ipm"
    }

    fn tamper(&self, ctx: &AttackContext<'_>, _rng: &mut StdRng) -> Result<Tensor> {
        Ok(ctx.true_aggregate().scaled(-self.epsilon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;

    #[test]
    fn validation() {
        assert!(AlieAttack::new(f32::NAN).is_err());
        assert!(AlieAttack::new(-1.5).is_ok(), "negative z flips direction, valid");
        assert_eq!(AlieAttack::new(1.0).unwrap().z(), 1.0);
        assert!(IpmAttack::new(0.0).is_err());
        assert!(IpmAttack::new(-1.0).is_err());
        assert_eq!(IpmAttack::new(0.5).unwrap().epsilon(), 0.5);
    }

    #[test]
    fn alie_passes_through_without_history() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let out = AlieAttack::new(1.0).unwrap().tamper(&ctx, &mut rng_for(0, &[])).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn alie_shifts_by_history_spread() {
        // History alternates ±1 around 0 in dim 0, constant in dim 1:
        // std ≈ 1 in dim 0, 0 in dim 1.
        let history = vec![
            Tensor::from_slice(&[1.0, 5.0]),
            Tensor::from_slice(&[-1.0, 5.0]),
            Tensor::from_slice(&[1.0, 5.0]),
            Tensor::from_slice(&[-1.0, 5.0]),
        ];
        let a = Tensor::from_slice(&[0.0, 5.0]);
        let ctx = AttackContext::new(4, 0, &a, &history, 5);
        let out = AlieAttack::new(2.0).unwrap().tamper(&ctx, &mut rng_for(0, &[])).unwrap();
        assert!((out.as_slice()[0] - 2.0).abs() < 1e-5, "dim 0 shifted by 2·std");
        assert!((out.as_slice()[1] - 5.0).abs() < 1e-5, "dim 1 untouched (zero spread)");
    }

    #[test]
    fn ipm_negates_and_shrinks() {
        let a = Tensor::from_slice(&[2.0, -4.0]);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let out = IpmAttack::new(0.5).unwrap().tamper(&ctx, &mut rng_for(0, &[])).unwrap();
        assert_eq!(out.as_slice(), &[-1.0, 2.0]);
        // Negative inner product with the true aggregate.
        assert!(out.dot(&a).unwrap() < 0.0);
    }
}
