//! Client-side Byzantine attacks — the paper's declared future work
//! ("Considering the FEEL problem with both Byzantine PSs and clients will
//! be our work in the future"), implemented here as an extension.
//!
//! A Byzantine *client* trains normally but tampers with the local model it
//! uploads in the aggregation stage. Combined with a robust server-side
//! aggregation rule (see `fedms-sim`'s server rule), Fed-MS extends to the
//! dual threat model.

use fedms_tensor::rng::derive_seed;
use fedms_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{AttackError, Result};

/// What a Byzantine client knows when it tampers with its upload.
#[derive(Debug, Clone, Copy)]
pub struct ClientAttackContext<'a> {
    round: usize,
    client_id: usize,
    honest_model: &'a Tensor,
    global_model: Option<&'a Tensor>,
}

impl<'a> ClientAttackContext<'a> {
    /// Builds a context: `honest_model` is the client's true post-training
    /// local model; `global_model` is the filtered global model the client
    /// started the round from (absent in round 0).
    pub fn new(
        round: usize,
        client_id: usize,
        honest_model: &'a Tensor,
        global_model: Option<&'a Tensor>,
    ) -> Self {
        ClientAttackContext { round, client_id, honest_model, global_model }
    }

    /// The current round.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The attacking client's id.
    pub fn client_id(&self) -> usize {
        self.client_id
    }

    /// The true local model the client would honestly upload.
    pub fn honest_model(&self) -> &Tensor {
        self.honest_model
    }

    /// The round's starting global model, if any.
    pub fn global_model(&self) -> Option<&Tensor> {
        self.global_model
    }
}

/// A Byzantine behaviour mounted on an end client: tampers with the model
/// uploaded to the parameter server.
pub trait ClientAttack: Send + Sync {
    /// Short identifier used in experiment output.
    fn name(&self) -> &'static str;

    /// Produces the tampered upload.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] for unusable contexts; well-formed contexts
    /// never fail.
    fn tamper_upload(&self, ctx: &ClientAttackContext<'_>, rng: &mut StdRng) -> Result<Tensor>;
}

/// Serializable client-attack selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClientAttackKind {
    /// Upload `−scale · w` (sign flipping).
    SignFlip {
        /// Negation magnitude.
        scale: f32,
    },
    /// Upload the honest model plus Gaussian noise.
    Noise {
        /// Noise standard deviation.
        std: f32,
    },
    /// Upload uniform garbage from `[lo, hi)`.
    Random {
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// Model poisoning: upload `g + factor · (w − g)`, amplifying the
    /// client's own (possibly poisoned) update direction `w − g` relative
    /// to the global model `g`.
    Amplify {
        /// Update amplification factor (honest = 1).
        factor: f32,
    },
    /// Data poisoning: the client trains on label-rotated data (class
    /// `c → c + offset mod classes`) and uploads the honestly trained —
    /// but poisoned — model. The upload itself is untampered; the harness
    /// rotates the client's shard labels.
    LabelFlip {
        /// Label rotation offset (must be non-zero to be an attack).
        offset: usize,
    },
}

impl ClientAttackKind {
    /// A short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            ClientAttackKind::SignFlip { .. } => "sign_flip",
            ClientAttackKind::Noise { .. } => "noise",
            ClientAttackKind::Random { .. } => "random",
            ClientAttackKind::Amplify { .. } => "amplify",
            ClientAttackKind::LabelFlip { .. } => "label_flip",
        }
    }

    /// Instantiates the live attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadParameter`] for invalid parameters.
    pub fn build(&self) -> Result<Box<dyn ClientAttack>> {
        match *self {
            ClientAttackKind::SignFlip { scale } => {
                if !(scale.is_finite() && scale > 0.0) {
                    return Err(AttackError::BadParameter(format!("bad scale {scale}")));
                }
                Ok(Box::new(ClientSignFlip { scale }))
            }
            ClientAttackKind::Noise { std } => {
                if !(std.is_finite() && std >= 0.0) {
                    return Err(AttackError::BadParameter(format!("bad std {std}")));
                }
                Ok(Box::new(ClientNoise { std }))
            }
            ClientAttackKind::Random { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && lo < hi) {
                    return Err(AttackError::BadParameter(format!("bad range [{lo}, {hi})")));
                }
                Ok(Box::new(ClientRandom { lo, hi }))
            }
            ClientAttackKind::Amplify { factor } => {
                if !factor.is_finite() {
                    return Err(AttackError::BadParameter(format!("bad factor {factor}")));
                }
                Ok(Box::new(ClientAmplify { factor }))
            }
            ClientAttackKind::LabelFlip { offset } => {
                if offset == 0 {
                    return Err(AttackError::BadParameter(
                        "label flip with offset 0 is honest behaviour".into(),
                    ));
                }
                Ok(Box::new(ClientLabelFlip))
            }
        }
    }

    /// The label rotation this attack requires the harness to apply to the
    /// client's training shard (`None` for pure upload tampering).
    pub fn data_poison_offset(&self) -> Option<usize> {
        match *self {
            ClientAttackKind::LabelFlip { offset } => Some(offset),
            _ => None,
        }
    }
}

/// The upload side of [`ClientAttackKind::LabelFlip`]: an honest upload of
/// the (data-poisoned) local model.
#[derive(Debug, Clone, Copy)]
struct ClientLabelFlip;

impl ClientAttack for ClientLabelFlip {
    fn name(&self) -> &'static str {
        "client_label_flip"
    }

    fn tamper_upload(&self, ctx: &ClientAttackContext<'_>, _rng: &mut StdRng) -> Result<Tensor> {
        Ok(ctx.honest_model().clone())
    }
}

#[derive(Debug, Clone, Copy)]
struct ClientSignFlip {
    scale: f32,
}

impl ClientAttack for ClientSignFlip {
    fn name(&self) -> &'static str {
        "client_sign_flip"
    }

    fn tamper_upload(&self, ctx: &ClientAttackContext<'_>, _rng: &mut StdRng) -> Result<Tensor> {
        Ok(ctx.honest_model().scaled(-self.scale))
    }
}

#[derive(Debug, Clone, Copy)]
struct ClientNoise {
    std: f32,
}

impl ClientAttack for ClientNoise {
    fn name(&self) -> &'static str {
        "client_noise"
    }

    fn tamper_upload(&self, ctx: &ClientAttackContext<'_>, rng: &mut StdRng) -> Result<Tensor> {
        let mut out = ctx.honest_model().clone();
        if self.std > 0.0 {
            // Per-(round, client) stream keeps the tampering independent of
            // the caller's RNG phase.
            let seed = derive_seed(rng_seed_of(rng), &[ctx.round() as u64, ctx.client_id() as u64]);
            let mut stream = StdRng::seed_from_u64(seed);
            let noise = Tensor::randn(&mut stream, out.dims(), 0.0, self.std);
            out.add_inplace(&noise)?;
        }
        Ok(out)
    }
}

/// Draws a u64 from the caller RNG to root a derived stream; keeps the
/// trait signature uniform while still consuming caller entropy.
fn rng_seed_of(rng: &mut StdRng) -> u64 {
    use rand::Rng;
    rng.gen()
}

#[derive(Debug, Clone, Copy)]
struct ClientRandom {
    lo: f32,
    hi: f32,
}

impl ClientAttack for ClientRandom {
    fn name(&self) -> &'static str {
        "client_random"
    }

    fn tamper_upload(&self, ctx: &ClientAttackContext<'_>, rng: &mut StdRng) -> Result<Tensor> {
        Ok(Tensor::rand_uniform(rng, ctx.honest_model().dims(), self.lo, self.hi))
    }
}

#[derive(Debug, Clone, Copy)]
struct ClientAmplify {
    factor: f32,
}

impl ClientAttack for ClientAmplify {
    fn name(&self) -> &'static str {
        "client_amplify"
    }

    fn tamper_upload(&self, ctx: &ClientAttackContext<'_>, _rng: &mut StdRng) -> Result<Tensor> {
        let w = ctx.honest_model();
        let Some(g) = ctx.global_model() else {
            return Ok(w.clone());
        };
        // g + factor · (w − g)
        let mut out = g.clone();
        let update = w.sub(g)?;
        out.axpy(self.factor, &update)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;

    fn ctx_fixture<'a>(w: &'a Tensor, g: Option<&'a Tensor>) -> ClientAttackContext<'a> {
        ClientAttackContext::new(3, 1, w, g)
    }

    #[test]
    fn kind_validation() {
        assert!(ClientAttackKind::SignFlip { scale: 0.0 }.build().is_err());
        assert!(ClientAttackKind::Noise { std: -1.0 }.build().is_err());
        assert!(ClientAttackKind::Random { lo: 1.0, hi: 0.0 }.build().is_err());
        assert!(ClientAttackKind::Amplify { factor: f32::NAN }.build().is_err());
        for kind in [
            ClientAttackKind::SignFlip { scale: 1.0 },
            ClientAttackKind::Noise { std: 0.5 },
            ClientAttackKind::Random { lo: -1.0, hi: 1.0 },
            ClientAttackKind::Amplify { factor: 10.0 },
        ] {
            assert!(kind.build().is_ok());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn sign_flip_negates() {
        let w = Tensor::from_slice(&[1.0, -2.0]);
        let atk = ClientAttackKind::SignFlip { scale: 2.0 }.build().unwrap();
        let out = atk.tamper_upload(&ctx_fixture(&w, None), &mut rng_for(0, &[])).unwrap();
        assert_eq!(out.as_slice(), &[-2.0, 4.0]);
    }

    #[test]
    fn noise_perturbs() {
        let w = Tensor::zeros(&[64]);
        let atk = ClientAttackKind::Noise { std: 1.0 }.build().unwrap();
        let out = atk.tamper_upload(&ctx_fixture(&w, None), &mut rng_for(0, &[])).unwrap();
        assert!(out.norm_l2() > 1.0);
        let zero = ClientAttackKind::Noise { std: 0.0 }.build().unwrap();
        let same = zero.tamper_upload(&ctx_fixture(&w, None), &mut rng_for(0, &[])).unwrap();
        assert_eq!(same, w);
    }

    #[test]
    fn random_ignores_model() {
        let w = Tensor::full(&[8], 100.0);
        let atk = ClientAttackKind::Random { lo: -1.0, hi: 1.0 }.build().unwrap();
        let out = atk.tamper_upload(&ctx_fixture(&w, None), &mut rng_for(0, &[])).unwrap();
        assert!(out.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn amplify_scales_update() {
        let g = Tensor::from_slice(&[1.0, 1.0]);
        let w = Tensor::from_slice(&[2.0, 0.0]); // update (1, −1)
        let atk = ClientAttackKind::Amplify { factor: 10.0 }.build().unwrap();
        let out = atk.tamper_upload(&ctx_fixture(&w, Some(&g)), &mut rng_for(0, &[])).unwrap();
        assert_eq!(out.as_slice(), &[11.0, -9.0]);
        // Without a global model the honest model passes through.
        let fallback = atk.tamper_upload(&ctx_fixture(&w, None), &mut rng_for(0, &[])).unwrap();
        assert_eq!(fallback, w);
    }

    #[test]
    fn label_flip_kind() {
        assert!(ClientAttackKind::LabelFlip { offset: 0 }.build().is_err());
        let kind = ClientAttackKind::LabelFlip { offset: 1 };
        assert_eq!(kind.data_poison_offset(), Some(1));
        assert_eq!(ClientAttackKind::SignFlip { scale: 1.0 }.data_poison_offset(), None);
        // The upload side is honest pass-through.
        let atk = kind.build().unwrap();
        let w = Tensor::from_slice(&[1.0, 2.0]);
        let out = atk.tamper_upload(&ctx_fixture(&w, None), &mut rng_for(0, &[])).unwrap();
        assert_eq!(out, w);
    }

    #[test]
    fn context_accessors() {
        let w = Tensor::zeros(&[2]);
        let g = Tensor::ones(&[2]);
        let ctx = ClientAttackContext::new(5, 7, &w, Some(&g));
        assert_eq!(ctx.round(), 5);
        assert_eq!(ctx.client_id(), 7);
        assert_eq!(ctx.honest_model(), &w);
        assert_eq!(ctx.global_model(), Some(&g));
    }
}
