//! Sign-flip and zero attacks (additional behaviours beyond the paper's
//! four, covering the classic Byzantine repertoire).

use fedms_tensor::Tensor;
use rand::rngs::StdRng;

use crate::{AttackContext, AttackError, Result, ServerAttack};

/// Disseminates `−scale · a`: the classic sign-flipping attack that points
/// the global model in the opposite direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignFlipAttack {
    scale: f32,
}

impl SignFlipAttack {
    /// Creates the attack with magnitude `scale` (output is `−scale · a`).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadParameter`] for non-positive or non-finite
    /// `scale`.
    pub fn new(scale: f32) -> Result<Self> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(AttackError::BadParameter(format!("scale must be positive, got {scale}")));
        }
        Ok(SignFlipAttack { scale })
    }

    /// The negation magnitude.
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

impl ServerAttack for SignFlipAttack {
    fn name(&self) -> &'static str {
        "sign_flip"
    }

    fn tamper(&self, ctx: &AttackContext<'_>, _rng: &mut StdRng) -> Result<Tensor> {
        Ok(ctx.true_aggregate().scaled(-self.scale))
    }
}

/// Disseminates the all-zero model, erasing all training progress for
/// clients that trust it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroAttack;

impl ZeroAttack {
    /// Creates the attack.
    pub fn new() -> Self {
        ZeroAttack
    }
}

impl ServerAttack for ZeroAttack {
    fn name(&self) -> &'static str {
        "zero"
    }

    fn tamper(&self, ctx: &AttackContext<'_>, _rng: &mut StdRng) -> Result<Tensor> {
        Ok(Tensor::zeros(ctx.true_aggregate().dims()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;

    #[test]
    fn sign_flip_negates_and_scales() {
        let a = Tensor::from_slice(&[1.0, -2.0]);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let mut rng = rng_for(1, &[]);
        let out = SignFlipAttack::new(2.0).unwrap().tamper(&ctx, &mut rng).unwrap();
        assert_eq!(out.as_slice(), &[-2.0, 4.0]);
        assert_eq!(SignFlipAttack::new(2.0).unwrap().scale(), 2.0);
    }

    #[test]
    fn sign_flip_validates() {
        assert!(SignFlipAttack::new(0.0).is_err());
        assert!(SignFlipAttack::new(-1.0).is_err());
        assert!(SignFlipAttack::new(f32::INFINITY).is_err());
    }

    #[test]
    fn zero_erases() {
        let a = Tensor::from_slice(&[5.0, -5.0]);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let mut rng = rng_for(1, &[]);
        let out = ZeroAttack::new().tamper(&ctx, &mut rng).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 0.0]);
    }
}
