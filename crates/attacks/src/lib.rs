//! Server-side Byzantine attack models for the Fed-MS reproduction.
//!
//! The paper (Section VI-A) deploys four attacks on the Byzantine parameter
//! servers, all of which tamper with the server's *true* aggregation result
//! before dissemination:
//!
//! * [`NoiseAttack`] — adds Gaussian noise to the true aggregate,
//! * [`RandomAttack`] — replaces the aggregate with uniform `[-10, 10]`
//!   values,
//! * [`SafeguardAttack`] — reverse-gradient: `ã = a − γ(a − a_prev)` with
//!   `γ = 0.6`,
//! * [`BackwardAttack`] — staleness: replays the aggregate from `T` rounds
//!   ago (`T = 2` in the paper).
//!
//! Additional behaviours round out the threat model: [`SignFlipAttack`],
//! [`ZeroAttack`], the honest [`Benign`] control, and [`Equivocation`],
//! which upgrades any attack to the paper's worst case of sending
//! *different* tampered models to different clients.
//!
//! Attacks receive an [`AttackContext`] carrying the adaptive-adversary
//! knowledge the paper grants: the current true aggregate, the full history
//! of past aggregates, and round/topology metadata.
//!
//! # Example
//!
//! ```
//! use fedms_attacks::{AttackContext, RandomAttack, ServerAttack};
//! use fedms_tensor::rng::rng_for;
//! use fedms_tensor::Tensor;
//!
//! let honest = Tensor::zeros(&[4]);
//! let ctx = AttackContext::new(0, 0, &honest, &[], 50);
//! let mut rng = rng_for(1, &[]);
//! let tampered = RandomAttack::default_range().tamper(&ctx, &mut rng)?;
//! assert!(tampered.as_slice().iter().all(|v| (-10.0..10.0).contains(v)));
//! # Ok::<(), fedms_attacks::AttackError>(())
//! ```

mod adaptive;
mod backward;
mod client;
mod context;
mod equivocation;
mod error;
mod kind;
mod noise;
mod random;
mod safeguard;
mod signflip;
mod stealth;

pub use adaptive::RotatingAttack;
pub use backward::BackwardAttack;
pub use client::{ClientAttack, ClientAttackContext, ClientAttackKind};
pub use context::AttackContext;
pub use equivocation::Equivocation;
pub use error::AttackError;
pub use kind::AttackKind;
pub use noise::NoiseAttack;
pub use random::RandomAttack;
pub use safeguard::SafeguardAttack;
pub use signflip::{SignFlipAttack, ZeroAttack};
pub use stealth::{AlieAttack, IpmAttack};

use fedms_tensor::Tensor;
use rand::rngs::StdRng;

/// Crate-wide `Result` alias using [`AttackError`].
pub type Result<T> = std::result::Result<T, AttackError>;

/// A Byzantine behaviour mounted on a parameter server.
///
/// Implementations tamper with the server's true aggregation result before
/// dissemination. The paper's adversary is *adaptive*: it sees the full FL
/// state via [`AttackContext`] and may derive its output from it.
///
/// Determinism contract: given equal context and RNG state, an attack must
/// produce identical output (the simulator replays runs bit-exactly).
pub trait ServerAttack: Send + Sync {
    /// Short identifier used in experiment output (e.g. `"noise"`).
    fn name(&self) -> &'static str;

    /// Produces the tampered model broadcast to *all* clients this round.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] if the context is unusable (e.g. shape
    /// problems); well-formed contexts never fail.
    fn tamper(&self, ctx: &AttackContext<'_>, rng: &mut StdRng) -> Result<Tensor>;

    /// Produces the tampered model sent to one specific client. The default
    /// forwards to [`ServerAttack::tamper`] (consistent dissemination);
    /// equivocating attacks override this.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServerAttack::tamper`].
    fn tamper_for(
        &self,
        ctx: &AttackContext<'_>,
        _client_id: usize,
        rng: &mut StdRng,
    ) -> Result<Tensor> {
        self.tamper(ctx, rng)
    }

    /// Whether dissemination may differ per client (the paper's worst case).
    fn is_equivocating(&self) -> bool {
        false
    }
}

/// The honest control behaviour: disseminates the true aggregate unchanged.
///
/// Used for the `ε = 0%` rows of Figure 3 and as the behaviour of benign
/// servers everywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Benign;

impl Benign {
    /// Creates the behaviour.
    pub fn new() -> Self {
        Benign
    }
}

impl ServerAttack for Benign {
    fn name(&self) -> &'static str {
        "benign"
    }

    fn tamper(&self, ctx: &AttackContext<'_>, _rng: &mut StdRng) -> Result<Tensor> {
        Ok(ctx.true_aggregate().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;

    #[test]
    fn benign_is_identity() {
        let a = Tensor::from_slice(&[1.0, -2.0]);
        let ctx = AttackContext::new(3, 1, &a, &[], 10);
        let mut rng = rng_for(0, &[]);
        assert_eq!(Benign::new().tamper(&ctx, &mut rng).unwrap(), a);
        assert!(!Benign::new().is_equivocating());
        assert_eq!(Benign::new().tamper_for(&ctx, 5, &mut rng).unwrap(), a);
    }
}
