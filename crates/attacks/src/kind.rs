//! Serializable attack selection for experiment configuration.

use serde::{Deserialize, Serialize};

use crate::{
    AlieAttack, BackwardAttack, Benign, Equivocation, IpmAttack, NoiseAttack, RandomAttack, Result,
    SafeguardAttack, ServerAttack, SignFlipAttack, ZeroAttack,
};

/// A serializable description of a server behaviour, turned into a live
/// [`ServerAttack`] with [`AttackKind::build`]. This is what experiment
/// configurations store and what the harness sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Honest behaviour (the ε = 0% control).
    Benign,
    /// Gaussian perturbation with the given standard deviation.
    Noise {
        /// Noise standard deviation.
        std: f32,
    },
    /// Uniform replacement on `[lo, hi)`.
    Random {
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// Reverse-gradient with scaling factor γ.
    Safeguard {
        /// The scaling factor γ.
        gamma: f32,
    },
    /// Replay of the aggregate from `delay` rounds ago.
    Backward {
        /// Staleness in rounds.
        delay: usize,
    },
    /// Negation scaled by `scale`.
    SignFlip {
        /// Negation magnitude.
        scale: f32,
    },
    /// All-zero dissemination.
    Zero,
    /// ALIE-style stealth shift by `z` standard deviations of the recent
    /// aggregate history.
    Alie {
        /// Deviation multiplier.
        z: f32,
    },
    /// Inner-product manipulation: `ã = −ε · a`.
    Ipm {
        /// Negation scale ε.
        epsilon: f32,
    },
}

impl AttackKind {
    /// The paper's four attacks with their Section VI-A parameters.
    pub fn paper_suite() -> [AttackKind; 4] {
        [
            AttackKind::Noise { std: 1.0 },
            AttackKind::Random { lo: -10.0, hi: 10.0 },
            AttackKind::Safeguard { gamma: 0.6 },
            AttackKind::Backward { delay: 2 },
        ]
    }

    /// A short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            AttackKind::Benign => "benign",
            AttackKind::Noise { .. } => "noise",
            AttackKind::Random { .. } => "random",
            AttackKind::Safeguard { .. } => "safeguard",
            AttackKind::Backward { .. } => "backward",
            AttackKind::SignFlip { .. } => "sign_flip",
            AttackKind::Zero => "zero",
            AttackKind::Alie { .. } => "alie",
            AttackKind::Ipm { .. } => "ipm",
        }
    }

    /// Instantiates the live attack.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the concrete attack
    /// constructors.
    pub fn build(&self) -> Result<Box<dyn ServerAttack>> {
        Ok(match *self {
            AttackKind::Benign => Box::new(Benign::new()),
            AttackKind::Noise { std } => Box::new(NoiseAttack::new(std)?),
            AttackKind::Random { lo, hi } => Box::new(RandomAttack::new(lo, hi)?),
            AttackKind::Safeguard { gamma } => Box::new(SafeguardAttack::new(gamma)?),
            AttackKind::Backward { delay } => Box::new(BackwardAttack::new(delay)?),
            AttackKind::SignFlip { scale } => Box::new(SignFlipAttack::new(scale)?),
            AttackKind::Zero => Box::new(ZeroAttack::new()),
            AttackKind::Alie { z } => Box::new(AlieAttack::new(z)?),
            AttackKind::Ipm { epsilon } => Box::new(IpmAttack::new(epsilon)?),
        })
    }

    /// Instantiates the live attack wrapped in [`Equivocation`], so each
    /// client receives an independently tampered model.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn build_equivocating(&self, salt: u64) -> Result<Box<dyn ServerAttack>> {
        Ok(match *self {
            AttackKind::Benign => Box::new(Equivocation::new(Benign::new(), salt)),
            AttackKind::Noise { std } => Box::new(Equivocation::new(NoiseAttack::new(std)?, salt)),
            AttackKind::Random { lo, hi } => {
                Box::new(Equivocation::new(RandomAttack::new(lo, hi)?, salt))
            }
            AttackKind::Safeguard { gamma } => {
                Box::new(Equivocation::new(SafeguardAttack::new(gamma)?, salt))
            }
            AttackKind::Backward { delay } => {
                Box::new(Equivocation::new(BackwardAttack::new(delay)?, salt))
            }
            AttackKind::SignFlip { scale } => {
                Box::new(Equivocation::new(SignFlipAttack::new(scale)?, salt))
            }
            AttackKind::Zero => Box::new(Equivocation::new(ZeroAttack::new(), salt)),
            AttackKind::Alie { z } => Box::new(Equivocation::new(AlieAttack::new(z)?, salt)),
            AttackKind::Ipm { epsilon } => {
                Box::new(Equivocation::new(IpmAttack::new(epsilon)?, salt))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttackContext;
    use fedms_tensor::rng::rng_for;
    use fedms_tensor::Tensor;

    #[test]
    fn paper_suite_has_four_attacks() {
        let suite = AttackKind::paper_suite();
        let labels: Vec<_> = suite.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["noise", "random", "safeguard", "backward"]);
    }

    #[test]
    fn build_all_kinds() {
        let kinds = [
            AttackKind::Benign,
            AttackKind::Noise { std: 0.5 },
            AttackKind::Random { lo: -1.0, hi: 1.0 },
            AttackKind::Safeguard { gamma: 0.6 },
            AttackKind::Backward { delay: 2 },
            AttackKind::SignFlip { scale: 1.0 },
            AttackKind::Zero,
            AttackKind::Alie { z: 1.0 },
            AttackKind::Ipm { epsilon: 0.5 },
        ];
        let a = Tensor::ones(&[4]);
        let ctx = AttackContext::new(0, 0, &a, &[], 3);
        for kind in kinds {
            let attack = kind.build().unwrap();
            assert_eq!(attack.name() == "benign", matches!(kind, AttackKind::Benign));
            let out = attack.tamper(&ctx, &mut rng_for(1, &[])).unwrap();
            assert_eq!(out.dims(), a.dims());
            let eq = kind.build_equivocating(9).unwrap();
            assert!(eq.is_equivocating());
        }
    }

    #[test]
    fn build_rejects_bad_parameters() {
        assert!(AttackKind::Noise { std: -1.0 }.build().is_err());
        assert!(AttackKind::Random { lo: 1.0, hi: 0.0 }.build().is_err());
        assert!(AttackKind::Backward { delay: 0 }.build().is_err());
        assert!(AttackKind::SignFlip { scale: 0.0 }.build().is_err());
        assert!(AttackKind::Alie { z: f32::NAN }.build().is_err());
        assert!(AttackKind::Ipm { epsilon: 0.0 }.build().is_err());
    }

    #[test]
    fn serde_roundtrip_kind() {
        // Kinds are persisted in experiment configs; a stable representation
        // matters. Round-trip through the serde data model via Debug compare.
        let k = AttackKind::Safeguard { gamma: 0.6 };
        let cloned = k;
        assert_eq!(k, cloned);
    }
}
