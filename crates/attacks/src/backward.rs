//! The Backward attack: staleness / replay.

use fedms_tensor::Tensor;
use rand::rngs::StdRng;

use crate::{AttackContext, AttackError, Result, ServerAttack};

/// The lagging attack of Section VI-A: disseminates the aggregation result
/// from `delay` rounds ago (`ã_{t+1} = a_{t+1−T}`, with `T = 2` in the
/// paper). While the run is younger than `delay` rounds the oldest
/// available aggregate is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackwardAttack {
    delay: usize,
}

impl BackwardAttack {
    /// Creates the attack replaying the aggregate from `delay` rounds ago.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadParameter`] for `delay == 0` (that would be
    /// honest behaviour).
    pub fn new(delay: usize) -> Result<Self> {
        if delay == 0 {
            return Err(AttackError::BadParameter("delay 0 is not an attack".into()));
        }
        Ok(BackwardAttack { delay })
    }

    /// The paper's `T = 2`.
    pub fn paper_default() -> Self {
        BackwardAttack { delay: 2 }
    }

    /// The staleness in rounds.
    pub fn delay(&self) -> usize {
        self.delay
    }
}

impl ServerAttack for BackwardAttack {
    fn name(&self) -> &'static str {
        "backward"
    }

    fn tamper(&self, ctx: &AttackContext<'_>, _rng: &mut StdRng) -> Result<Tensor> {
        if let Some(stale) = ctx.aggregate_rounds_ago(self.delay) {
            return Ok(stale.clone());
        }
        // Run younger than `delay`: replay the oldest state we have.
        Ok(ctx.history().first().unwrap_or(ctx.true_aggregate()).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;

    #[test]
    fn validates_delay() {
        assert!(BackwardAttack::new(0).is_err());
        assert_eq!(BackwardAttack::paper_default().delay(), 2);
    }

    #[test]
    fn replays_stale_aggregate() {
        let hist = vec![
            Tensor::from_slice(&[1.0]),
            Tensor::from_slice(&[2.0]),
            Tensor::from_slice(&[3.0]),
        ];
        let a = Tensor::from_slice(&[4.0]);
        let ctx = AttackContext::new(3, 0, &a, &hist, 5);
        let mut rng = rng_for(1, &[]);
        let out = BackwardAttack::paper_default().tamper(&ctx, &mut rng).unwrap();
        assert_eq!(out.as_slice(), &[2.0], "T=2 replays a_{{t-1}}");
    }

    #[test]
    fn young_run_uses_oldest() {
        let hist = vec![Tensor::from_slice(&[1.0])];
        let a = Tensor::from_slice(&[2.0]);
        let ctx = AttackContext::new(1, 0, &a, &hist, 5);
        let mut rng = rng_for(1, &[]);
        let out = BackwardAttack::new(5).unwrap().tamper(&ctx, &mut rng).unwrap();
        assert_eq!(out.as_slice(), &[1.0]);
    }

    #[test]
    fn round_zero_passes_current() {
        let a = Tensor::from_slice(&[2.0]);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let mut rng = rng_for(1, &[]);
        let out = BackwardAttack::paper_default().tamper(&ctx, &mut rng).unwrap();
        assert_eq!(out.as_slice(), &[2.0]);
    }
}
