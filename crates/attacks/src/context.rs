//! The adaptive-adversary knowledge passed to attacks.

use fedms_tensor::Tensor;

/// Everything a Byzantine server knows when it tampers: the paper grants
/// the adversary "full knowledge on the FEEL algorithm, the history and
/// current state of the FL process".
#[derive(Debug, Clone, Copy)]
pub struct AttackContext<'a> {
    round: usize,
    server_id: usize,
    true_aggregate: &'a Tensor,
    history: &'a [Tensor],
    num_clients: usize,
}

impl<'a> AttackContext<'a> {
    /// Builds a context for `round` on server `server_id`.
    ///
    /// `history` holds this server's *true* aggregates from previous rounds,
    /// oldest first (so `history.last()` is the previous round's
    /// aggregate); `true_aggregate` is the honest result of the current
    /// round.
    pub fn new(
        round: usize,
        server_id: usize,
        true_aggregate: &'a Tensor,
        history: &'a [Tensor],
        num_clients: usize,
    ) -> Self {
        AttackContext { round, server_id, true_aggregate, history, num_clients }
    }

    /// The current training round (0-based).
    pub fn round(&self) -> usize {
        self.round
    }

    /// This server's index.
    pub fn server_id(&self) -> usize {
        self.server_id
    }

    /// The honest aggregation result of the current round.
    pub fn true_aggregate(&self) -> &Tensor {
        self.true_aggregate
    }

    /// Past true aggregates, oldest first.
    pub fn history(&self) -> &[Tensor] {
        self.history
    }

    /// The aggregate from `delay` rounds ago (`delay = 1` is the previous
    /// round); `None` if the run is too young.
    pub fn aggregate_rounds_ago(&self, delay: usize) -> Option<&Tensor> {
        if delay == 0 {
            return Some(self.true_aggregate);
        }
        self.history.len().checked_sub(delay).map(|i| &self.history[i])
    }

    /// Number of clients in the federation.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let a = Tensor::from_slice(&[1.0]);
        let hist = vec![Tensor::from_slice(&[-1.0]), Tensor::from_slice(&[0.0])];
        let ctx = AttackContext::new(2, 4, &a, &hist, 50);
        assert_eq!(ctx.round(), 2);
        assert_eq!(ctx.server_id(), 4);
        assert_eq!(ctx.num_clients(), 50);
        assert_eq!(ctx.true_aggregate(), &a);
        assert_eq!(ctx.history().len(), 2);
    }

    #[test]
    fn rounds_ago_lookup() {
        let a = Tensor::from_slice(&[2.0]);
        let hist = vec![Tensor::from_slice(&[0.0]), Tensor::from_slice(&[1.0])];
        let ctx = AttackContext::new(2, 0, &a, &hist, 1);
        assert_eq!(ctx.aggregate_rounds_ago(0).unwrap().as_slice(), &[2.0]);
        assert_eq!(ctx.aggregate_rounds_ago(1).unwrap().as_slice(), &[1.0]);
        assert_eq!(ctx.aggregate_rounds_ago(2).unwrap().as_slice(), &[0.0]);
        assert!(ctx.aggregate_rounds_ago(3).is_none());
    }
}
