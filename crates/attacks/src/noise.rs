//! The Noise attack: Gaussian perturbation of the true aggregate.

use fedms_tensor::Tensor;
use rand::rngs::StdRng;

use crate::{AttackContext, AttackError, Result, ServerAttack};

/// Adds i.i.d. Gaussian noise `N(0, std²)` to every coordinate of the true
/// aggregation result (Section VI-A: "introduces a Gaussian noise to the
/// true aggregation result, causing perturbation").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseAttack {
    std: f32,
}

impl NoiseAttack {
    /// Creates the attack with noise standard deviation `std`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadParameter`] for negative or non-finite
    /// `std`.
    pub fn new(std: f32) -> Result<Self> {
        if !(std.is_finite() && std >= 0.0) {
            return Err(AttackError::BadParameter(format!(
                "noise std must be non-negative, got {std}"
            )));
        }
        Ok(NoiseAttack { std })
    }

    /// The noise level used by the experiment harness (calibrated so that
    /// un-defended averaging degrades visibly but does not immediately
    /// diverge, matching the paper's "mild" attack).
    pub fn paper_default() -> Self {
        NoiseAttack { std: 1.0 }
    }

    /// The noise standard deviation.
    pub fn std(&self) -> f32 {
        self.std
    }
}

impl ServerAttack for NoiseAttack {
    fn name(&self) -> &'static str {
        "noise"
    }

    fn tamper(&self, ctx: &AttackContext<'_>, rng: &mut StdRng) -> Result<Tensor> {
        let mut out = ctx.true_aggregate().clone();
        if self.std > 0.0 {
            let noise = Tensor::randn(rng, out.dims(), 0.0, self.std);
            out.add_inplace(&noise)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;

    #[test]
    fn validates_std() {
        assert!(NoiseAttack::new(-1.0).is_err());
        assert!(NoiseAttack::new(f32::NAN).is_err());
        assert!(NoiseAttack::new(0.0).is_ok());
        assert_eq!(NoiseAttack::paper_default().std(), 1.0);
    }

    #[test]
    fn zero_std_is_identity() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let mut rng = rng_for(1, &[]);
        assert_eq!(NoiseAttack::new(0.0).unwrap().tamper(&ctx, &mut rng).unwrap(), a);
    }

    #[test]
    fn perturbation_has_expected_scale() {
        let a = Tensor::zeros(&[10_000]);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let mut rng = rng_for(2, &[]);
        let out = NoiseAttack::new(0.5).unwrap().tamper(&ctx, &mut rng).unwrap();
        let rms = (out.norm_l2_sq() / out.len() as f32).sqrt();
        assert!((rms - 0.5).abs() < 0.02, "noise rms {rms}");
    }

    #[test]
    fn deterministic_per_rng_state() {
        let a = Tensor::zeros(&[8]);
        let ctx = AttackContext::new(0, 0, &a, &[], 5);
        let atk = NoiseAttack::new(1.0).unwrap();
        let x = atk.tamper(&ctx, &mut rng_for(3, &[])).unwrap();
        let y = atk.tamper(&ctx, &mut rng_for(3, &[])).unwrap();
        assert_eq!(x, y);
    }
}
