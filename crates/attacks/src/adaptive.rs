//! An adaptive adversary that changes its attack over time.
//!
//! The paper grants Byzantine servers full knowledge of the FL state and
//! the ability to "adapt their behaviors according to the obtained
//! information" (Section III-A). [`RotatingAttack`] is the canonical
//! stress test for that clause: it cycles through a pool of behaviours on a
//! fixed period, defeating any defence tuned to a single attack signature.

use fedms_tensor::Tensor;
use rand::rngs::StdRng;

use crate::{AttackContext, AttackError, Result, ServerAttack};

/// Cycles through a pool of attacks, switching every `period` rounds.
///
/// Equivocation status is the OR of the pool: if any phase equivocates,
/// per-client dissemination is used throughout (consistent phases simply
/// send every client the same model).
pub struct RotatingAttack {
    pool: Vec<Box<dyn ServerAttack>>,
    period: usize,
}

impl std::fmt::Debug for RotatingAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RotatingAttack")
            .field("pool", &self.pool.iter().map(|a| a.name()).collect::<Vec<_>>())
            .field("period", &self.period)
            .finish()
    }
}

impl RotatingAttack {
    /// Creates a rotation over `pool`, switching every `period` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadParameter`] for an empty pool or zero
    /// period.
    pub fn new(pool: Vec<Box<dyn ServerAttack>>, period: usize) -> Result<Self> {
        if pool.is_empty() {
            return Err(AttackError::BadParameter("rotation pool must be non-empty".into()));
        }
        if period == 0 {
            return Err(AttackError::BadParameter("rotation period must be positive".into()));
        }
        Ok(RotatingAttack { pool, period })
    }

    fn current(&self, round: usize) -> &dyn ServerAttack {
        let phase = (round / self.period) % self.pool.len();
        self.pool[phase].as_ref()
    }

    /// The attack active at `round` (for test/diagnostic introspection).
    pub fn active_name(&self, round: usize) -> &'static str {
        self.current(round).name()
    }
}

impl ServerAttack for RotatingAttack {
    fn name(&self) -> &'static str {
        "rotating"
    }

    fn tamper(&self, ctx: &AttackContext<'_>, rng: &mut StdRng) -> Result<Tensor> {
        self.current(ctx.round()).tamper(ctx, rng)
    }

    fn tamper_for(
        &self,
        ctx: &AttackContext<'_>,
        client_id: usize,
        rng: &mut StdRng,
    ) -> Result<Tensor> {
        self.current(ctx.round()).tamper_for(ctx, client_id, rng)
    }

    fn is_equivocating(&self) -> bool {
        self.pool.iter().any(|a| a.is_equivocating())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackKind, Benign, Equivocation, RandomAttack, ZeroAttack};
    use fedms_tensor::rng::rng_for;

    fn pool() -> Vec<Box<dyn ServerAttack>> {
        vec![Box::new(Benign::new()), Box::new(ZeroAttack::new())]
    }

    #[test]
    fn validates_inputs() {
        assert!(RotatingAttack::new(vec![], 2).is_err());
        assert!(RotatingAttack::new(pool(), 0).is_err());
        assert!(RotatingAttack::new(pool(), 2).is_ok());
    }

    #[test]
    fn rotates_on_schedule() {
        let r = RotatingAttack::new(pool(), 2).unwrap();
        assert_eq!(r.active_name(0), "benign");
        assert_eq!(r.active_name(1), "benign");
        assert_eq!(r.active_name(2), "zero");
        assert_eq!(r.active_name(3), "zero");
        assert_eq!(r.active_name(4), "benign");
    }

    #[test]
    fn dispatches_to_active_phase() {
        let r = RotatingAttack::new(pool(), 1).unwrap();
        let a = Tensor::from_slice(&[5.0]);
        let mut rng = rng_for(0, &[]);
        // Round 0 → benign (identity), round 1 → zero.
        let ctx0 = AttackContext::new(0, 0, &a, &[], 3);
        assert_eq!(r.tamper(&ctx0, &mut rng).unwrap().as_slice(), &[5.0]);
        let ctx1 = AttackContext::new(1, 0, &a, &[], 3);
        assert_eq!(r.tamper(&ctx1, &mut rng).unwrap().as_slice(), &[0.0]);
    }

    #[test]
    fn equivocation_is_pool_or() {
        let plain = RotatingAttack::new(pool(), 1).unwrap();
        assert!(!plain.is_equivocating());
        let mixed: Vec<Box<dyn ServerAttack>> = vec![
            Box::new(Benign::new()),
            Box::new(Equivocation::new(RandomAttack::default_range(), 7)),
        ];
        let r = RotatingAttack::new(mixed, 1).unwrap();
        assert!(r.is_equivocating());
    }

    #[test]
    fn composes_with_attack_kinds() {
        let pool: Vec<Box<dyn ServerAttack>> = AttackKind::paper_suite()
            .iter()
            .map(|k| k.build().expect("paper suite builds"))
            .collect();
        let r = RotatingAttack::new(pool, 5).unwrap();
        assert_eq!(r.active_name(0), "noise");
        assert_eq!(r.active_name(5), "random");
        assert_eq!(r.active_name(10), "safeguard");
        assert_eq!(r.active_name(15), "backward");
    }
}
