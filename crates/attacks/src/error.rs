//! Error type for attack construction and application.

use std::fmt;

use fedms_tensor::TensorError;

/// Errors produced when building or applying an attack.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An attack parameter is invalid (negative noise, empty range, …).
    BadParameter(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Tensor(e) => write!(f, "tensor error: {e}"),
            AttackError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for AttackError {
    fn from(e: TensorError) -> Self {
        AttackError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!AttackError::BadParameter("std".into()).to_string().is_empty());
        assert!(!AttackError::Tensor(TensorError::Empty("x")).to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
