//! Property tests pinning the blocked backend to the scalar reference.
//!
//! For random shapes and random data, every kernel of the blocked backend
//! must agree elementwise with the scalar backend within a relative
//! tolerance that accounts for f32 reassociation, and the data-movement
//! kernels (im2col/col2im) must agree bit-for-bit.
#![cfg(feature = "backend-blocked")]

use fedms_tensor::{BackendHandle, BackendKind, Conv2dGeometry};
use proptest::prelude::*;

fn blocked(threads: usize) -> BackendHandle {
    BackendKind::Blocked.resolve(threads).expect("feature is enabled")
}

fn scalar() -> BackendHandle {
    BackendHandle::scalar()
}

fn close(a: f32, b: f32, k: usize) -> bool {
    // Reassociation error grows with reduction depth k.
    let tol = 1e-4 * (k as f32).sqrt().max(1.0) * (1.0 + a.abs().max(b.abs()));
    (a - b).abs() <= tol
}

fn data(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-4.0f32..4.0, len)
}

proptest! {
    #[test]
    fn matmul_matches_scalar(
        m in 1usize..9, k in 1usize..40, n in 1usize..9,
        threads in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = fedms_tensor::rng::rng_for(seed, &[0xAB]);
        let a = fedms_tensor::Tensor::randn(&mut rng, &[m, k], 0.0, 1.0);
        let b = fedms_tensor::Tensor::randn(&mut rng, &[k, n], 0.0, 1.0);
        let mut out_s = vec![0.0f32; m * n];
        let mut out_b = vec![0.0f32; m * n];
        scalar().matmul(a.as_slice(), b.as_slice(), &mut out_s, m, k, n);
        blocked(threads).matmul(a.as_slice(), b.as_slice(), &mut out_b, m, k, n);
        for (x, y) in out_s.iter().zip(out_b.iter()) {
            prop_assert!(close(*x, *y, k), "matmul {m}x{k}x{n}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_transb_matches_scalar(
        m in 1usize..9, k in 1usize..40, n in 1usize..9,
        threads in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = fedms_tensor::rng::rng_for(seed, &[0xAC]);
        let a = fedms_tensor::Tensor::randn(&mut rng, &[m, k], 0.0, 1.0);
        let b = fedms_tensor::Tensor::randn(&mut rng, &[n, k], 0.0, 1.0);
        let mut out_s = vec![0.0f32; m * n];
        let mut out_b = vec![0.0f32; m * n];
        scalar().matmul_transb(a.as_slice(), b.as_slice(), &mut out_s, m, k, n);
        blocked(threads).matmul_transb(a.as_slice(), b.as_slice(), &mut out_b, m, k, n);
        for (x, y) in out_s.iter().zip(out_b.iter()) {
            prop_assert!(close(*x, *y, k), "transb {m}x{k}x{n}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_transa_matches_scalar(
        m in 1usize..9, k in 1usize..40, n in 1usize..9,
        threads in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = fedms_tensor::rng::rng_for(seed, &[0xAD]);
        let a = fedms_tensor::Tensor::randn(&mut rng, &[k, m], 0.0, 1.0);
        let b = fedms_tensor::Tensor::randn(&mut rng, &[k, n], 0.0, 1.0);
        let mut out_s = vec![0.0f32; m * n];
        let mut out_b = vec![0.0f32; m * n];
        scalar().matmul_transa(a.as_slice(), b.as_slice(), &mut out_s, m, k, n);
        blocked(threads).matmul_transa(a.as_slice(), b.as_slice(), &mut out_b, m, k, n);
        for (x, y) in out_s.iter().zip(out_b.iter()) {
            prop_assert!(close(*x, *y, k), "transa {m}x{k}x{n}: {x} vs {y}");
        }
    }

    #[test]
    fn matvec_dot_sum_match_scalar(n in 1usize..130, xs in data(260)) {
        let x = &xs[..n];
        let y = &xs[130..130 + n];
        let b = blocked(1);
        prop_assert!(close(scalar().dot(x, y), b.dot(x, y), n));
        prop_assert!(close(scalar().sum(x), b.sum(x), n));
        let mut out_s = vec![0.0f32; 2];
        let mut out_b = vec![0.0f32; 2];
        if n >= 2 {
            let half = n / 2;
            scalar().matvec(&x[..2 * half], y, &mut out_s, 2, half);
            b.matvec(&x[..2 * half], y, &mut out_b, 2, half);
            prop_assert!(close(out_s[0], out_b[0], half));
            prop_assert!(close(out_s[1], out_b[1], half));
        }
    }

    #[test]
    fn im2col_col2im_bit_identical(
        c in 1usize..4, h in 1usize..7, w in 1usize..7,
        kernel in 1usize..4, stride in 1usize..3, padding in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let kernel = kernel.min(h + 2 * padding).min(w + 2 * padding);
        let geom = Conv2dGeometry::new(c, h, w, kernel, stride, padding).unwrap();
        let mut rng = fedms_tensor::rng::rng_for(seed, &[0xAE]);
        let img = fedms_tensor::Tensor::randn(&mut rng, &[c, h, w], 0.0, 1.0);
        let len = geom.col_rows() * geom.col_cols();
        let mut cols_s = vec![0.0f32; len];
        let mut cols_b = vec![0.0f32; len];
        scalar().im2col(img.as_slice(), &geom, &mut cols_s);
        blocked(2).im2col(img.as_slice(), &geom, &mut cols_b);
        prop_assert_eq!(&cols_s, &cols_b, "im2col must be bit-identical");
        let vol = geom.input_volume();
        let mut back_s = vec![0.0f32; vol];
        let mut back_b = vec![0.0f32; vol];
        scalar().col2im(&cols_s, &geom, &mut back_s);
        blocked(2).col2im(&cols_b, &geom, &mut back_b);
        prop_assert_eq!(&back_s, &back_b, "col2im must be bit-identical");
    }

    #[test]
    fn softmax_and_sgd_bit_identical(rows in 1usize..5, cols in 1usize..9, xs in data(96)) {
        // Both backends delegate these to identical scalar expressions —
        // pin that contract with exact equality.
        let n = rows * cols;
        let mut a = xs[..n].to_vec();
        let mut b = a.clone();
        scalar().softmax_rows(&mut a, rows, cols);
        blocked(1).softmax_rows(&mut b, rows, cols);
        prop_assert_eq!(&a, &b);

        let mut pa = xs[..n.min(32)].to_vec();
        let mut pb = pa.clone();
        let grad = &xs[32..32 + pa.len()];
        let mut va = vec![0.0f32; pa.len()];
        let mut vb = va.clone();
        scalar().sgd_update(&mut pa, grad, 0.1, 0.5, 1e-4, 0.9, Some(&mut va));
        blocked(1).sgd_update(&mut pb, grad, 0.1, 0.5, 1e-4, 0.9, Some(&mut vb));
        prop_assert_eq!(&pa, &pb);
        prop_assert_eq!(&va, &vb);
    }
}
