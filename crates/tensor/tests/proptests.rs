//! Property-based tests for tensor algebra invariants.

use fedms_tensor::{col2im, im2col, Conv2dGeometry, Tensor};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-100.0f32..100.0, len).prop_map(|v| Tensor::from_slice(&v))
}

proptest! {
    #[test]
    fn add_commutes(a in tensor_strategy(16), b in tensor_strategy(16)) {
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn add_sub_roundtrip(a in tensor_strategy(16), b in tensor_strategy(16)) {
        let r = a.add(&b).unwrap().sub(&b).unwrap();
        for (x, y) in r.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3_f32.max(y.abs() * 1e-5));
        }
    }

    #[test]
    fn scale_distributes_over_add(a in tensor_strategy(8), b in tensor_strategy(8), k in -10.0f32..10.0) {
        let lhs = a.add(&b).unwrap().scaled(k);
        let rhs = a.scaled(k).add(&b.scaled(k)).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2);
        }
    }

    #[test]
    fn dot_is_symmetric(a in tensor_strategy(32), b in tensor_strategy(32)) {
        prop_assert_eq!(a.dot(&b).unwrap(), b.dot(&a).unwrap());
    }

    #[test]
    fn cauchy_schwarz(a in tensor_strategy(32), b in tensor_strategy(32)) {
        let d = a.dot(&b).unwrap().abs();
        prop_assert!(d <= a.norm_l2() * b.norm_l2() * (1.0 + 1e-4) + 1e-4);
    }

    #[test]
    fn norm_scales_absolutely(a in tensor_strategy(32), k in -10.0f32..10.0) {
        let lhs = a.scaled(k).norm_l2();
        let rhs = k.abs() * a.norm_l2();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + rhs));
    }

    #[test]
    fn mean_bounded_by_extremes(a in tensor_strategy(32)) {
        let m = a.mean().unwrap();
        prop_assert!(m >= a.min().unwrap() - 1e-4);
        prop_assert!(m <= a.max().unwrap() + 1e-4);
    }

    #[test]
    fn argmax_is_max(a in tensor_strategy(32)) {
        let i = a.argmax().unwrap();
        prop_assert_eq!(a.as_slice()[i], a.max().unwrap());
    }

    #[test]
    fn transpose_involution(data in proptest::collection::vec(-10.0f32..10.0, 12)) {
        let m = Tensor::from_vec(data, &[3, 4]).unwrap();
        prop_assert_eq!(m.transposed().unwrap().transposed().unwrap(), m);
    }

    #[test]
    fn matmul_linear_in_first_arg(
        a in proptest::collection::vec(-5.0f32..5.0, 6),
        b in proptest::collection::vec(-5.0f32..5.0, 6),
        c in proptest::collection::vec(-5.0f32..5.0, 6),
    ) {
        let a = Tensor::from_vec(a, &[2, 3]).unwrap();
        let b = Tensor::from_vec(b, &[2, 3]).unwrap();
        let c = Tensor::from_vec(c, &[3, 2]).unwrap();
        let lhs = a.add(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&c).unwrap().add(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        x in proptest::collection::vec(-5.0f32..5.0, 2 * 6 * 5),
        seed_y in proptest::collection::vec(-5.0f32..5.0, 18 * 9),
    ) {
        let g = Conv2dGeometry::new(2, 6, 5, 3, 2, 1).unwrap();
        prop_assert_eq!(g.col_rows(), 18);
        prop_assert_eq!(g.col_cols(), 9);
        let x = Tensor::from_vec(x, &[2, 6, 5]).unwrap();
        let y = Tensor::from_vec(seed_y, &[18, 9]).unwrap();
        let lhs = im2col(&x, &g).unwrap().dot(&y).unwrap();
        let rhs = x.flattened().dot(&col2im(&y, &g).unwrap().flattened()).unwrap();
        prop_assert!((lhs - rhs).abs() <= 1e-1 * (1.0 + lhs.abs()));
    }
}
