//! Linear algebra and reduction operations on [`Tensor`].
//!
//! The matmul-family entry points validate shapes here and delegate their
//! inner loops to a [`BackendHandle`] — by default the scalar reference
//! backend, whose kernels are the original loop bodies moved verbatim. The
//! `*_on` variants accept an explicit backend for optimized execution.

use crate::{BackendHandle, Tensor, TensorError};

/// `rows · cols` with overflow detection: degenerate shapes such as
/// `(2³³ × 0) · (0 × 2³³)` are valid inputs whose *output* volume exceeds
/// `usize`, which must surface as a typed error rather than a wrapped
/// allocation size.
pub(crate) fn checked_out_len(rows: usize, cols: usize) -> Result<usize, TensorError> {
    rows.checked_mul(cols)
        .ok_or_else(|| TensorError::Invalid(format!("output size {rows}x{cols} overflows usize")))
}

impl Tensor {
    // ------------------------------------------------------------------
    // Linear algebra (rank-2)
    // ------------------------------------------------------------------

    /// Matrix product of two rank-2 tensors: `(m×k) · (k×n) → (m×n)` on the
    /// default (scalar) backend.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::MatmulDimMismatch`] if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.matmul_on(other, BackendHandle::scalar())
    }

    /// [`Tensor::matmul`] on an explicit backend.
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::matmul`].
    pub fn matmul_on(&self, other: &Tensor, backend: BackendHandle) -> Result<Tensor, TensorError> {
        let (m, k) = self.matrix_dims()?;
        let (k2, n) = other.matrix_dims()?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch { left: (m, k), right: (k2, n) });
        }
        let mut out = vec![0.0f32; checked_out_len(m, n)?];
        backend.matmul(self.as_slice(), other.as_slice(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `self · otherᵀ` for rank-2 tensors: `(m×k) · (n×k)ᵀ → (m×n)` on the
    /// default (scalar) backend.
    ///
    /// Equivalent to `self.matmul(&other.transposed()?)` but avoids
    /// materialising the transpose; used on backward passes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::MatmulDimMismatch`] if the shared dimension disagrees.
    pub fn matmul_transb(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.matmul_transb_on(other, BackendHandle::scalar())
    }

    /// [`Tensor::matmul_transb`] on an explicit backend.
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::matmul_transb`].
    pub fn matmul_transb_on(
        &self,
        other: &Tensor,
        backend: BackendHandle,
    ) -> Result<Tensor, TensorError> {
        let (m, k) = self.matrix_dims()?;
        let (n, k2) = other.matrix_dims()?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch { left: (m, k), right: (k2, n) });
        }
        let mut out = vec![0.0f32; checked_out_len(m, n)?];
        backend.matmul_transb(self.as_slice(), other.as_slice(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ · other` for rank-2 tensors: `(k×m)ᵀ · (k×n) → (m×n)` on the
    /// default (scalar) backend.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::MatmulDimMismatch`] if the shared dimension disagrees.
    pub fn matmul_transa(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.matmul_transa_on(other, BackendHandle::scalar())
    }

    /// [`Tensor::matmul_transa`] on an explicit backend.
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::matmul_transa`].
    pub fn matmul_transa_on(
        &self,
        other: &Tensor,
        backend: BackendHandle,
    ) -> Result<Tensor, TensorError> {
        let (k, m) = self.matrix_dims()?;
        let (k2, n) = other.matrix_dims()?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch { left: (m, k), right: (k2, n) });
        }
        let mut out = vec![0.0f32; checked_out_len(m, n)?];
        backend.matmul_transa(self.as_slice(), other.as_slice(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product of a rank-2 and a rank-1 tensor:
    /// `(m×n) · (n) → (m)` on the default (scalar) backend.
    ///
    /// # Errors
    ///
    /// Returns rank/dimension errors on shape mismatch.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor, TensorError> {
        self.matvec_on(v, BackendHandle::scalar())
    }

    /// [`Tensor::matvec`] on an explicit backend.
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::matvec`].
    pub fn matvec_on(&self, v: &Tensor, backend: BackendHandle) -> Result<Tensor, TensorError> {
        let (m, n) = self.matrix_dims()?;
        if v.rank() != 1 {
            return Err(TensorError::RankMismatch { expected: 1, got: v.rank() });
        }
        if v.len() != n {
            return Err(TensorError::MatmulDimMismatch { left: (m, n), right: (v.len(), 1) });
        }
        let mut out = vec![0.0f32; m];
        backend.matvec(self.as_slice(), v.as_slice(), &mut out, m, n);
        Tensor::from_vec(out, &[m])
    }

    /// Outer product of two rank-1 tensors: `(m) ⊗ (n) → (m×n)`.
    ///
    /// # Errors
    ///
    /// Returns a rank error if either input is not rank 1.
    pub fn outer(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 1 {
            return Err(TensorError::RankMismatch { expected: 1, got: self.rank() });
        }
        if other.rank() != 1 {
            return Err(TensorError::RankMismatch { expected: 1, got: other.rank() });
        }
        let (m, n) = (self.len(), other.len());
        let mut out = vec![0.0f32; checked_out_len(m, n)?];
        for (i, &a) in self.as_slice().iter().enumerate() {
            for (j, &b) in other.as_slice().iter().enumerate() {
                out[i * n + j] = a * b;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Returns the transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transposed(&self) -> Result<Tensor, TensorError> {
        let (m, n) = self.matrix_dims()?;
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    fn matrix_dims(&self) -> Result<(usize, usize), TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, got: self.rank() });
        }
        Ok((self.dims()[0], self.dims()[1]))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// The sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// The arithmetic mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn mean(&self) -> Result<f32, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty("mean"));
        }
        Ok(self.sum() / self.len() as f32)
    }

    /// The maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn max(&self) -> Result<f32, TensorError> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, v| Some(m.map_or(v, |m| m.max(v))))
            .ok_or(TensorError::Empty("max"))
    }

    /// The minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn min(&self) -> Result<f32, TensorError> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, v| Some(m.map_or(v, |m| m.min(v))))
            .ok_or(TensorError::Empty("min"))
    }

    /// The Euclidean (`L₂`) norm of the flattened tensor.
    pub fn norm_l2(&self) -> f32 {
        self.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt() as f32
    }

    /// The squared Euclidean norm of the flattened tensor.
    pub fn norm_l2_sq(&self) -> f32 {
        self.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() as f32
    }

    /// The inner product of two same-shape tensors (flattened).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice().iter())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum::<f64>() as f32)
    }

    /// Index of the maximum element of a rank-1 tensor (ties → first).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize, TensorError> {
        let s = self.as_slice();
        if s.is_empty() {
            return Err(TensorError::Empty("argmax"));
        }
        let mut best = 0usize;
        for (i, &v) in s.iter().enumerate() {
            if v > s[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax for a rank-2 tensor: the predicted class of each
    /// sample in a batch of logits.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        let (m, _n) = self.matrix_dims()?;
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = self.row(i)?;
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Whether every element is finite (no NaN/±∞).
    pub fn is_finite(&self) -> bool {
        self.as_slice().iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[r, c]).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = mat(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], 3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(a.matmul(&Tensor::eye(2)).unwrap(), a);
        assert_eq!(Tensor::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(a.matmul(&b), Err(TensorError::MatmulDimMismatch { .. })));
        assert!(matches!(Tensor::zeros(&[3]).matmul(&b), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn degenerate_shapes_with_overflowing_output_are_rejected() {
        // (huge × 0) · (0 × huge): both inputs are empty and cheap to build,
        // but the output volume exceeds usize — must be a typed error, not a
        // wrapped allocation.
        let huge = 1usize << 33;
        let a = Tensor::zeros(&[huge, 0]);
        let b = Tensor::zeros(&[0, huge]);
        assert!(matches!(a.matmul(&b), Err(TensorError::Invalid(_))));
        let bt = Tensor::zeros(&[huge, 0]);
        assert!(matches!(a.matmul_transb(&bt), Err(TensorError::Invalid(_))));
        let at = Tensor::zeros(&[0, huge]);
        assert!(matches!(at.matmul_transa(&b), Err(TensorError::Invalid(_))));
        let v1 = Tensor::zeros(&[huge]);
        let v2 = Tensor::zeros(&[huge]);
        assert!(matches!(v1.outer(&v2), Err(TensorError::Invalid(_))));
    }

    #[test]
    fn on_variants_match_default_backend() {
        use crate::BackendHandle;
        let a = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = mat(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], 3, 2);
        let h = BackendHandle::scalar();
        assert_eq!(a.matmul_on(&b, h).unwrap(), a.matmul(&b).unwrap());
        let bt = mat(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], 2, 3);
        assert_eq!(a.matmul_transb_on(&bt, h).unwrap(), a.matmul_transb(&bt).unwrap());
        let at = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        assert_eq!(at.matmul_transa_on(&b, h).unwrap(), at.matmul_transa(&b).unwrap());
        let v = Tensor::from_slice(&[1.0, 0.5, -1.0]);
        assert_eq!(a.matvec_on(&v, h).unwrap(), a.matvec(&v).unwrap());
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = mat(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0, 1.0, 1.0, 2.0, -2.0, 0.5, 0.5], 4, 3);
        let fast = a.matmul_transb(&b).unwrap();
        let slow = a.matmul(&b.transposed().unwrap()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let b = mat(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], 3, 2);
        let fast = a.matmul_transa(&b).unwrap();
        let slow = a.transposed().unwrap().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let v = Tensor::from_slice(&[1.0, 0.5, -1.0]);
        let fast = a.matvec(&v).unwrap();
        let slow = a.matmul(&v.reshape(&[3, 1]).unwrap()).unwrap();
        assert_eq!(fast.as_slice(), slow.as_slice());
        assert!(a.matvec(&Tensor::zeros(&[2])).is_err());
        assert!(a.matvec(&Tensor::zeros(&[3, 1])).is_err());
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = a.outer(&b).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        assert!(Tensor::zeros(&[2, 2]).outer(&b).is_err());
        assert!(a.outer(&Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let t = a.transposed().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.transposed().unwrap(), a);
        assert_eq!(t.get(&[2, 1]).unwrap(), 6.0);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -3.0, 2.0]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean().unwrap(), 0.0);
        assert_eq!(t.max().unwrap(), 2.0);
        assert_eq!(t.min().unwrap(), -3.0);
        assert!((t.norm_l2() - 14.0f32.sqrt()).abs() < 1e-6);
        assert!((t.norm_l2_sq() - 14.0).abs() < 1e-5);
    }

    #[test]
    fn reductions_reject_empty() {
        let e = Tensor::zeros(&[0]);
        assert!(e.mean().is_err());
        assert!(e.max().is_err());
        assert!(e.min().is_err());
        assert!(e.argmax().is_err());
        assert_eq!(e.sum(), 0.0);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 12.0);
        assert!(a.dot(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn argmax_first_tie_wins() {
        let t = Tensor::from_slice(&[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(t.argmax().unwrap(), 1);
    }

    #[test]
    fn argmax_rows_per_sample() {
        let t = mat(&[0.1, 0.9, 0.0, 0.7, 0.2, 0.1], 2, 3);
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
        assert!(Tensor::zeros(&[3]).argmax_rows().is_err());
    }

    #[test]
    fn is_finite_detects_nan_inf() {
        assert!(Tensor::ones(&[4]).is_finite());
        let mut t = Tensor::ones(&[4]);
        t.as_mut_slice()[2] = f32::NAN;
        assert!(!t.is_finite());
        t.as_mut_slice()[2] = f32::INFINITY;
        assert!(!t.is_finite());
    }
}
