//! Linear algebra and reduction operations on [`Tensor`].

use crate::{Tensor, TensorError};

impl Tensor {
    // ------------------------------------------------------------------
    // Linear algebra (rank-2)
    // ------------------------------------------------------------------

    /// Matrix product of two rank-2 tensors: `(m×k) · (k×n) → (m×n)`.
    ///
    /// Uses a cache-friendly `i-k-j` loop order; adequate for the model
    /// sizes trained in this workspace.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::MatmulDimMismatch`] if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k) = self.matrix_dims()?;
        let (k2, n) = other.matrix_dims()?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch { left: (m, k), right: (k2, n) });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * bkj;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self · otherᵀ` for rank-2 tensors: `(m×k) · (n×k)ᵀ → (m×n)`.
    ///
    /// Equivalent to `self.matmul(&other.transposed()?)` but avoids
    /// materialising the transpose; used on backward passes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::MatmulDimMismatch`] if the shared dimension disagrees.
    pub fn matmul_transb(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k) = self.matrix_dims()?;
        let (n, k2) = other.matrix_dims()?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch { left: (m, k), right: (k2, n) });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in arow.iter().zip(brow.iter()) {
                    acc += x * y;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ · other` for rank-2 tensors: `(k×m)ᵀ · (k×n) → (m×n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::MatmulDimMismatch`] if the shared dimension disagrees.
    pub fn matmul_transa(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let (k, m) = self.matrix_dims()?;
        let (k2, n) = other.matrix_dims()?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch { left: (m, k), right: (k2, n) });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for kk in 0..k {
            let arow = &a[kk * m..(kk + 1) * m];
            let brow = &b[kk * n..(kk + 1) * n];
            for (i, &aki) in arow.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                    *o += aki * bkj;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product of a rank-2 and a rank-1 tensor:
    /// `(m×n) · (n) → (m)`.
    ///
    /// # Errors
    ///
    /// Returns rank/dimension errors on shape mismatch.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor, TensorError> {
        let (m, n) = self.matrix_dims()?;
        if v.rank() != 1 {
            return Err(TensorError::RankMismatch { expected: 1, got: v.rank() });
        }
        if v.len() != n {
            return Err(TensorError::MatmulDimMismatch { left: (m, n), right: (v.len(), 1) });
        }
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &a[i * n..(i + 1) * n];
            let mut acc = 0.0f64;
            for (&r, &xv) in row.iter().zip(x.iter()) {
                acc += r as f64 * xv as f64;
            }
            *o = acc as f32;
        }
        Tensor::from_vec(out, &[m])
    }

    /// Outer product of two rank-1 tensors: `(m) ⊗ (n) → (m×n)`.
    ///
    /// # Errors
    ///
    /// Returns a rank error if either input is not rank 1.
    pub fn outer(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 1 {
            return Err(TensorError::RankMismatch { expected: 1, got: self.rank() });
        }
        if other.rank() != 1 {
            return Err(TensorError::RankMismatch { expected: 1, got: other.rank() });
        }
        let (m, n) = (self.len(), other.len());
        let mut out = vec![0.0f32; m * n];
        for (i, &a) in self.as_slice().iter().enumerate() {
            for (j, &b) in other.as_slice().iter().enumerate() {
                out[i * n + j] = a * b;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Returns the transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transposed(&self) -> Result<Tensor, TensorError> {
        let (m, n) = self.matrix_dims()?;
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    fn matrix_dims(&self) -> Result<(usize, usize), TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, got: self.rank() });
        }
        Ok((self.dims()[0], self.dims()[1]))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// The sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// The arithmetic mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn mean(&self) -> Result<f32, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty("mean"));
        }
        Ok(self.sum() / self.len() as f32)
    }

    /// The maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn max(&self) -> Result<f32, TensorError> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, v| Some(m.map_or(v, |m| m.max(v))))
            .ok_or(TensorError::Empty("max"))
    }

    /// The minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn min(&self) -> Result<f32, TensorError> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, v| Some(m.map_or(v, |m| m.min(v))))
            .ok_or(TensorError::Empty("min"))
    }

    /// The Euclidean (`L₂`) norm of the flattened tensor.
    pub fn norm_l2(&self) -> f32 {
        self.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt() as f32
    }

    /// The squared Euclidean norm of the flattened tensor.
    pub fn norm_l2_sq(&self) -> f32 {
        self.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() as f32
    }

    /// The inner product of two same-shape tensors (flattened).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice().iter())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum::<f64>() as f32)
    }

    /// Index of the maximum element of a rank-1 tensor (ties → first).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize, TensorError> {
        let s = self.as_slice();
        if s.is_empty() {
            return Err(TensorError::Empty("argmax"));
        }
        let mut best = 0usize;
        for (i, &v) in s.iter().enumerate() {
            if v > s[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax for a rank-2 tensor: the predicted class of each
    /// sample in a batch of logits.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        let (m, _n) = self.matrix_dims()?;
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = self.row(i)?;
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Whether every element is finite (no NaN/±∞).
    pub fn is_finite(&self) -> bool {
        self.as_slice().iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[r, c]).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = mat(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], 3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(a.matmul(&Tensor::eye(2)).unwrap(), a);
        assert_eq!(Tensor::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(a.matmul(&b), Err(TensorError::MatmulDimMismatch { .. })));
        assert!(matches!(Tensor::zeros(&[3]).matmul(&b), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = mat(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0, 1.0, 1.0, 2.0, -2.0, 0.5, 0.5], 4, 3);
        let fast = a.matmul_transb(&b).unwrap();
        let slow = a.matmul(&b.transposed().unwrap()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let b = mat(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], 3, 2);
        let fast = a.matmul_transa(&b).unwrap();
        let slow = a.transposed().unwrap().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let v = Tensor::from_slice(&[1.0, 0.5, -1.0]);
        let fast = a.matvec(&v).unwrap();
        let slow = a.matmul(&v.reshape(&[3, 1]).unwrap()).unwrap();
        assert_eq!(fast.as_slice(), slow.as_slice());
        assert!(a.matvec(&Tensor::zeros(&[2])).is_err());
        assert!(a.matvec(&Tensor::zeros(&[3, 1])).is_err());
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = a.outer(&b).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        assert!(Tensor::zeros(&[2, 2]).outer(&b).is_err());
        assert!(a.outer(&Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = mat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let t = a.transposed().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.transposed().unwrap(), a);
        assert_eq!(t.get(&[2, 1]).unwrap(), 6.0);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -3.0, 2.0]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean().unwrap(), 0.0);
        assert_eq!(t.max().unwrap(), 2.0);
        assert_eq!(t.min().unwrap(), -3.0);
        assert!((t.norm_l2() - 14.0f32.sqrt()).abs() < 1e-6);
        assert!((t.norm_l2_sq() - 14.0).abs() < 1e-5);
    }

    #[test]
    fn reductions_reject_empty() {
        let e = Tensor::zeros(&[0]);
        assert!(e.mean().is_err());
        assert!(e.max().is_err());
        assert!(e.min().is_err());
        assert!(e.argmax().is_err());
        assert_eq!(e.sum(), 0.0);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 12.0);
        assert!(a.dot(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn argmax_first_tie_wins() {
        let t = Tensor::from_slice(&[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(t.argmax().unwrap(), 1);
    }

    #[test]
    fn argmax_rows_per_sample() {
        let t = mat(&[0.1, 0.9, 0.0, 0.7, 0.2, 0.1], 2, 3);
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
        assert!(Tensor::zeros(&[3]).argmax_rows().is_err());
    }

    #[test]
    fn is_finite_detects_nan_inf() {
        assert!(Tensor::ones(&[4]).is_finite());
        let mut t = Tensor::ones(&[4]);
        t.as_mut_slice()[2] = f32::NAN;
        assert!(!t.is_finite());
        t.as_mut_slice()[2] = f32::INFINITY;
        assert!(!t.is_finite());
    }
}
