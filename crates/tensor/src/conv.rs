//! Convolution lowering: `im2col` / `col2im`.
//!
//! 2-D convolutions in [`fedms-nn`](https://docs.rs/fedms-nn) are computed by
//! lowering each input image to a column matrix and multiplying by the
//! flattened kernel bank — the standard "im2col + GEMM" approach used by most
//! CPU deep-learning runtimes.

use serde::{Deserialize, Serialize};

use crate::{BackendHandle, Tensor, TensorError};

/// Static geometry of a 2-D convolution: input extents, kernel size, stride
/// and zero padding, with derived output extents.
///
/// # Example
///
/// ```
/// use fedms_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(3, 8, 8, 3, 1, 1)?;
/// assert_eq!((g.out_h, g.out_w), (8, 8)); // "same" padding
/// # Ok::<(), fedms_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dGeometry {
    /// Number of input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding added on every spatial border.
    pub padding: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Computes the geometry, validating that the kernel fits.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] if the stride is zero or the padded
    /// input is smaller than the kernel.
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, TensorError> {
        if stride == 0 {
            return Err(TensorError::Invalid("conv stride must be positive".into()));
        }
        if kernel == 0 {
            return Err(TensorError::Invalid("conv kernel must be positive".into()));
        }
        let overflow = || TensorError::Invalid("conv geometry overflows usize".into());
        let pad2 = padding.checked_mul(2).ok_or_else(overflow)?;
        let padded_h = in_h.checked_add(pad2).ok_or_else(overflow)?;
        let padded_w = in_w.checked_add(pad2).ok_or_else(overflow)?;
        if padded_h < kernel || padded_w < kernel {
            return Err(TensorError::Invalid(format!(
                "kernel {kernel} larger than padded input {padded_h}x{padded_w}"
            )));
        }
        let out_h = (padded_h - kernel) / stride + 1;
        let out_w = (padded_w - kernel) / stride + 1;
        let geom =
            Conv2dGeometry { in_channels, in_h, in_w, kernel, stride, padding, out_h, out_w };
        // Reject geometries whose derived volumes wrap: every downstream
        // buffer size (input image, column matrix) is a product of these
        // extents, and a wrapped product would silently under-allocate.
        let col_rows = in_channels
            .checked_mul(kernel)
            .and_then(|v| v.checked_mul(kernel))
            .ok_or_else(overflow)?;
        let col_cols = out_h.checked_mul(out_w).ok_or_else(overflow)?;
        col_rows.checked_mul(col_cols).ok_or_else(overflow)?;
        in_channels.checked_mul(in_h).and_then(|v| v.checked_mul(in_w)).ok_or_else(overflow)?;
        Ok(geom)
    }

    /// Number of rows of the im2col matrix: `C · k · k`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Number of columns of the im2col matrix: `out_h · out_w`.
    pub fn col_cols(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Volume of one input image: `C · H · W`.
    pub fn input_volume(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }
}

/// Lowers one `(C, H, W)` image into its `(C·k·k, out_h·out_w)` column
/// matrix, zero-filling padded positions.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if `image.len()` differs from the
/// geometry's input volume.
pub fn im2col(image: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, TensorError> {
    if image.len() != geom.input_volume() {
        return Err(TensorError::LengthMismatch {
            got: image.len(),
            expected: geom.input_volume(),
        });
    }
    let mut out = vec![0.0f32; geom.col_rows() * geom.col_cols()];
    BackendHandle::scalar().im2col(image.as_slice(), geom, &mut out);
    Tensor::from_vec(out, &[geom.col_rows(), geom.col_cols()])
}

/// Scatters a `(C·k·k, out_h·out_w)` column-gradient matrix back onto a
/// `(C, H, W)` image gradient, accumulating overlapping contributions — the
/// adjoint of [`im2col`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not have the
/// geometry's column-matrix shape.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, TensorError> {
    if cols.dims() != [geom.col_rows(), geom.col_cols()] {
        return Err(TensorError::ShapeMismatch {
            left: cols.dims().to_vec(),
            right: vec![geom.col_rows(), geom.col_cols()],
        });
    }
    let mut out = vec![0.0f32; geom.input_volume()];
    BackendHandle::scalar().col2im(cols.as_slice(), geom, &mut out);
    Tensor::from_vec(out, &[geom.in_channels, geom.in_h, geom.in_w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_same_padding() {
        let g = Conv2dGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (8, 8));
        assert_eq!(g.col_rows(), 27);
        assert_eq!(g.col_cols(), 64);
        assert_eq!(g.input_volume(), 192);
    }

    #[test]
    fn geometry_stride_two() {
        let g = Conv2dGeometry::new(1, 8, 8, 3, 2, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (4, 4));
    }

    #[test]
    fn geometry_validation() {
        assert!(Conv2dGeometry::new(1, 4, 4, 3, 0, 0).is_err());
        assert!(Conv2dGeometry::new(1, 4, 4, 0, 1, 0).is_err());
        assert!(Conv2dGeometry::new(1, 2, 2, 5, 1, 0).is_err());
        assert!(Conv2dGeometry::new(1, 2, 2, 5, 1, 2).is_ok());
    }

    #[test]
    fn geometry_rejects_overflowing_volumes() {
        // Padding arithmetic and derived column-matrix volumes must never
        // wrap — a wrapped product would under-allocate downstream buffers.
        assert!(matches!(
            Conv2dGeometry::new(1, 4, 4, 3, 1, usize::MAX / 2 + 1),
            Err(TensorError::Invalid(_))
        ));
        assert!(matches!(
            Conv2dGeometry::new(usize::MAX, 4, 4, 3, 1, 1),
            Err(TensorError::Invalid(_))
        ));
        assert!(matches!(
            Conv2dGeometry::new(1, usize::MAX / 2, usize::MAX / 2, 3, 1, 1),
            Err(TensorError::Invalid(_))
        ));
    }

    #[test]
    fn im2col_1x1_kernel_is_identity_layout() {
        let g = Conv2dGeometry::new(2, 2, 2, 1, 1, 0).unwrap();
        let img = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 2, 2]).unwrap();
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.dims(), &[2, 4]);
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_known_patch() {
        // 1 channel, 3x3 image, 2x2 kernel, stride 1, no padding → 2x2 output.
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let img = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // Row 0 is the top-left element of every patch.
        assert_eq!(cols.row(0).unwrap(), &[1.0, 2.0, 4.0, 5.0]);
        // Row 3 is the bottom-right element of every patch.
        assert_eq!(cols.row(3).unwrap(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let g = Conv2dGeometry::new(1, 2, 2, 3, 1, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (2, 2));
        let img = Tensor::ones(&[1, 2, 2]);
        let cols = im2col(&img, &g).unwrap();
        // Top-left kernel tap over the top-left output position reads padding.
        assert_eq!(cols.get(&[0, 0]).unwrap(), 0.0);
        // Center kernel tap always reads real pixels.
        assert_eq!(cols.row(4).unwrap(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn im2col_validates_input_volume() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        assert!(im2col(&Tensor::zeros(&[5]), &g).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
        // property the backward pass relies on.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = Conv2dGeometry::new(2, 5, 4, 3, 2, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&mut rng, &[2, 5, 4], 0.0, 1.0);
        let y = Tensor::randn(&mut rng, &[g.col_rows(), g.col_cols()], 0.0, 1.0);
        let lhs = im2col(&x, &g).unwrap().dot(&y).unwrap();
        let rhs = x.flattened().dot(&col2im(&y, &g).unwrap().flattened()).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn col2im_validates_shape() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        assert!(col2im(&Tensor::zeros(&[3, 3]), &g).is_err());
    }
}
