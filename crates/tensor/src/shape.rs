//! Tensor shapes.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::TensorError;

/// The extents of a tensor along each axis, in row-major order.
///
/// A `Shape` is a thin, validated wrapper around a `Vec<usize>`; the product
/// of its extents is the tensor's element count ([`Shape::volume`]).
///
/// # Example
///
/// ```
/// use fedms_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.volume(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from per-axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Returns the scalar shape (rank 0, volume 1).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The total number of elements: the product of all extents.
    ///
    /// A rank-0 shape has volume 1.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// The extent of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds { index: axis, bound: self.0.len() })
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// The last axis has stride 1.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a per-axis index into a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `index.len() != rank`, and
    /// [`TensorError::IndexOutOfBounds`] if any coordinate exceeds its extent.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.0.len() {
            return Err(TensorError::RankMismatch { expected: self.0.len(), got: index.len() });
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for (axis, (&i, &n)) in index.iter().zip(self.0.iter()).enumerate() {
            if i >= n {
                return Err(TensorError::IndexOutOfBounds { index: i, bound: n });
            }
            flat += i * strides[axis];
        }
        Ok(flat)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        assert_eq!(Shape::new(&[2, 3]).volume(), 6);
        assert_eq!(Shape::new(&[2, 3]).rank(), 2);
        assert_eq!(Shape::scalar().volume(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
        assert_eq!(Shape::new(&[5, 0, 2]).volume(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn flat_index_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let f = s.flat_index(&[i, j, k]).unwrap();
                    assert!(f < 24);
                    assert!(seen.insert(f), "duplicate flat index");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn flat_index_errors() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(s.flat_index(&[0]), Err(TensorError::RankMismatch { .. })));
        assert!(matches!(s.flat_index(&[2, 0]), Err(TensorError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let a: Shape = [1usize, 2].into();
        let b: Shape = vec![1usize, 2].into();
        let c: Shape = (&[1usize, 2][..]).into();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
