//! Deterministic seed derivation for multi-entity simulations.
//!
//! Every experiment in this workspace is driven by a single `u64` seed. That
//! seed is fanned out to per-entity seeds (one per client, per server, per
//! attack, per round) with [`SeedStream`], a SplitMix64-based splitter, so
//! that runs are bit-reproducible regardless of iteration order or thread
//! scheduling.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step: the de-facto standard 64-bit seed scrambler.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a parent seed and a label.
///
/// Labels keep independent consumers (e.g. "client 3's data shard" vs
/// "client 3's mini-batch order") on provably distinct streams.
///
/// # Example
///
/// ```
/// use fedms_tensor::rng::derive_seed;
///
/// let a = derive_seed(42, &[1, 0]);
/// let b = derive_seed(42, &[1, 1]);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, &[1, 0]));
/// ```
pub fn derive_seed(parent: u64, label: &[u64]) -> u64 {
    let mut state = parent ^ 0x6A09_E667_F3BC_C908; // offset so derive(0, []) != 0 path
    let mut out = splitmix64(&mut state);
    for &l in label {
        state ^= l.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ out;
        out = splitmix64(&mut state);
    }
    out
}

/// Constructs a [`StdRng`] from a parent seed and a label path.
pub fn rng_for(parent: u64, label: &[u64]) -> StdRng {
    StdRng::seed_from_u64(derive_seed(parent, label))
}

/// An ordered stream of independent child seeds drawn from one parent.
///
/// # Example
///
/// ```
/// use fedms_tensor::rng::SeedStream;
///
/// let mut s = SeedStream::new(7);
/// let first = s.next_seed();
/// let second = s.next_seed();
/// assert_ne!(first, second);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `parent`.
    pub fn new(parent: u64) -> Self {
        SeedStream { state: parent ^ 0xA5A5_5A5A_DEAD_BEEF }
    }

    /// Returns the next child seed.
    pub fn next_seed(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Returns the next child as a ready-to-use [`StdRng`].
    pub fn next_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, &[2, 3]), derive_seed(1, &[2, 3]));
    }

    #[test]
    fn derive_seed_separates_labels() {
        let mut seen = HashSet::new();
        for parent in 0..4u64 {
            for a in 0..8u64 {
                for b in 0..8u64 {
                    assert!(seen.insert(derive_seed(parent, &[a, b])), "collision");
                }
            }
        }
    }

    #[test]
    fn derive_seed_label_order_matters() {
        assert_ne!(derive_seed(9, &[1, 2]), derive_seed(9, &[2, 1]));
    }

    #[test]
    fn derive_seed_prefix_is_not_extension() {
        assert_ne!(derive_seed(9, &[1]), derive_seed(9, &[1, 0]));
    }

    #[test]
    fn seed_stream_unique_and_reproducible() {
        let mut s1 = SeedStream::new(99);
        let mut s2 = SeedStream::new(99);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let v = s1.next_seed();
            assert_eq!(v, s2.next_seed());
            assert!(seen.insert(v));
        }
    }

    #[test]
    fn rng_for_produces_usable_rng() {
        let mut r = rng_for(5, &[1]);
        let x: f64 = r.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn zero_parent_not_degenerate() {
        let a = derive_seed(0, &[0]);
        let b = derive_seed(0, &[1]);
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
