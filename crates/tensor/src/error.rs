//! Error type for tensor operations.

use std::fmt;

/// Errors produced by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements supplied does not match the requested shape.
    LengthMismatch {
        /// Number of elements supplied.
        got: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// `(rows, cols)` of the left matrix.
        left: (usize, usize),
        /// `(rows, cols)` of the right matrix.
        right: (usize, usize),
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the supplied tensor.
        got: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending flat or per-axis index.
        index: usize,
        /// The bound that was violated.
        bound: usize,
    },
    /// A reduction or statistic was requested over an empty set.
    Empty(&'static str),
    /// An operation-specific invariant was violated.
    Invalid(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { got, expected } => {
                write!(f, "data length {got} does not match shape volume {expected}")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::MatmulDimMismatch { left, right } => {
                write!(f, "matmul dimension mismatch: {left:?} x {right:?}")
            }
            TensorError::RankMismatch { expected, got } => {
                write!(f, "expected rank {expected}, got rank {got}")
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for extent {bound}")
            }
            TensorError::Empty(what) => write!(f, "operation on empty input: {what}"),
            TensorError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<TensorError> = vec![
            TensorError::LengthMismatch { got: 1, expected: 2 },
            TensorError::ShapeMismatch { left: vec![2], right: vec![3] },
            TensorError::MatmulDimMismatch { left: (2, 3), right: (4, 5) },
            TensorError::RankMismatch { expected: 2, got: 1 },
            TensorError::IndexOutOfBounds { index: 9, bound: 3 },
            TensorError::Empty("mean"),
            TensorError::Invalid("negative stride".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
