//! Axis reductions, concatenation and summary statistics.

use crate::{Shape, Tensor, TensorError};

impl Tensor {
    /// Column sums of a rank-2 tensor: `(m, n) → (n)`.
    ///
    /// # Errors
    ///
    /// Returns a rank error for non-matrices.
    pub fn sum_rows(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, got: self.rank() });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut acc = vec![0.0f64; n];
        for i in 0..m {
            for (a, &v) in acc.iter_mut().zip(self.row(i)?.iter()) {
                *a += v as f64;
            }
        }
        Tensor::from_vec(acc.into_iter().map(|v| v as f32).collect(), &[n])
    }

    /// Column means of a rank-2 tensor: `(m, n) → (n)`.
    ///
    /// # Errors
    ///
    /// Returns a rank error for non-matrices and [`TensorError::Empty`] for
    /// zero rows.
    pub fn mean_rows(&self) -> Result<Tensor, TensorError> {
        let m = *self.dims().first().ok_or(TensorError::Empty("mean_rows"))?;
        if m == 0 {
            return Err(TensorError::Empty("mean_rows"));
        }
        let mut out = self.sum_rows()?;
        out.scale(1.0 / m as f32);
        Ok(out)
    }

    /// Population variance of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn variance(&self) -> Result<f32, TensorError> {
        let mean = self.mean()? as f64;
        let var = self
            .as_slice()
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.len() as f64;
        Ok(var as f32)
    }

    /// Population standard deviation of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn std_dev(&self) -> Result<f32, TensorError> {
        Ok(self.variance()?.sqrt())
    }

    /// Concatenates rank-1 tensors end to end.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty list and a rank error if
    /// any input is not rank 1.
    pub fn concat(tensors: &[Tensor]) -> Result<Tensor, TensorError> {
        if tensors.is_empty() {
            return Err(TensorError::Empty("concat"));
        }
        let mut data = Vec::new();
        for t in tensors {
            if t.rank() != 1 {
                return Err(TensorError::RankMismatch { expected: 1, got: t.rank() });
            }
            data.extend_from_slice(t.as_slice());
        }
        Ok(Tensor::from_slice(&data))
    }

    /// Stacks same-shape tensors along a new leading axis:
    /// `n × (d…) → (n, d…)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty list and
    /// [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn stack(tensors: &[Tensor]) -> Result<Tensor, TensorError> {
        let Some(first) = tensors.first() else {
            return Err(TensorError::Empty("stack"));
        };
        let mut data = Vec::with_capacity(tensors.len() * first.len());
        for t in tensors {
            if t.shape() != first.shape() {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: t.dims().to_vec(),
                });
            }
            data.extend_from_slice(t.as_slice());
        }
        let mut dims = vec![tensors.len()];
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Splits a rank-1 tensor into chunks of the given lengths (which must
    /// sum to `len`).
    ///
    /// # Errors
    ///
    /// Returns a rank error for non-vectors and
    /// [`TensorError::LengthMismatch`] if the lengths do not add up.
    pub fn split(&self, lengths: &[usize]) -> Result<Vec<Tensor>, TensorError> {
        if self.rank() != 1 {
            return Err(TensorError::RankMismatch { expected: 1, got: self.rank() });
        }
        let total: usize = lengths.iter().sum();
        if total != self.len() {
            return Err(TensorError::LengthMismatch { got: total, expected: self.len() });
        }
        let mut out = Vec::with_capacity(lengths.len());
        let mut offset = 0usize;
        for &l in lengths {
            out.push(Tensor::from_slice(&self.as_slice()[offset..offset + l]));
            offset += l;
        }
        Ok(out)
    }

    /// The per-coordinate squared distance to another tensor, summed — the
    /// squared Euclidean distance `‖a − b‖²`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn distance_sq(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>() as f32)
    }

    /// Reinterprets the tensor with a fresh shape object (no data change);
    /// exposed for zero-copy adapters.
    pub fn shape_object(&self) -> Shape {
        self.shape().clone()
    }

    /// Elementwise clamp into `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] if `lo > hi` or either bound is NaN.
    pub fn clamped(&self, lo: f32, hi: f32) -> Result<Tensor, TensorError> {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            return Err(TensorError::Invalid(format!("bad clamp bounds [{lo}, {hi}]")));
        }
        Ok(self.map(|v| v.clamp(lo, hi)))
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Linear interpolation toward `other`: `(1−t)·self + t·other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn lerp(&self, other: &Tensor, t: f32) -> Result<Tensor, TensorError> {
        let mut out = self.scaled(1.0 - t);
        out.axpy(t, other)?;
        Ok(out)
    }

    /// Rescales the tensor in place so its L2 norm is at most `max_norm`
    /// (no-op if already within, or if the tensor is zero). Returns the
    /// scale factor applied.
    ///
    /// # Panics
    ///
    /// Never panics; non-positive `max_norm` simply zeroes the tensor.
    pub fn clip_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.norm_l2();
        if norm <= max_norm || norm == 0.0 {
            return 1.0;
        }
        let scale = (max_norm / norm).max(0.0);
        self.scale(scale);
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean_rows() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(m.sum_rows().unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(m.mean_rows().unwrap().as_slice(), &[2.5, 3.5, 4.5]);
        assert!(Tensor::zeros(&[3]).sum_rows().is_err());
        assert!(Tensor::zeros(&[0, 3]).mean_rows().is_err());
    }

    #[test]
    fn variance_and_std() {
        let t = Tensor::from_slice(&[1.0, 3.0]);
        assert_eq!(t.variance().unwrap(), 1.0);
        assert_eq!(t.std_dev().unwrap(), 1.0);
        assert_eq!(Tensor::full(&[5], 2.0).variance().unwrap(), 0.0);
        assert!(Tensor::zeros(&[0]).variance().is_err());
    }

    #[test]
    fn concat_vectors() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0]);
        let c = Tensor::concat(&[a, b]).unwrap();
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);
        assert!(Tensor::concat(&[]).is_err());
        assert!(Tensor::concat(&[Tensor::zeros(&[2, 2])]).is_err());
    }

    #[test]
    fn stack_makes_batch() {
        let rows = vec![Tensor::from_slice(&[1.0, 2.0]), Tensor::from_slice(&[3.0, 4.0])];
        let s = Tensor::stack(&rows).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(Tensor::stack(&[]).is_err());
        let mixed = vec![Tensor::zeros(&[2]), Tensor::zeros(&[3])];
        assert!(Tensor::stack(&mixed).is_err());
    }

    #[test]
    fn split_roundtrips_concat() {
        let t = Tensor::linspace(0.0, 5.0, 6);
        let parts = t.split(&[2, 3, 1]).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[1].as_slice(), &[2.0, 3.0, 4.0]);
        let back = Tensor::concat(&parts).unwrap();
        assert_eq!(back, t);
        assert!(t.split(&[2, 2]).is_err());
        assert!(Tensor::zeros(&[2, 2]).split(&[4]).is_err());
    }

    #[test]
    fn distance_sq_matches_norm() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[4.0, 6.0]);
        assert_eq!(a.distance_sq(&b).unwrap(), 25.0);
        assert!((a.distance_sq(&b).unwrap() - a.sub(&b).unwrap().norm_l2_sq()).abs() < 1e-5);
        assert!(a.distance_sq(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn shape_object_clones() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape_object().dims(), &[2, 3]);
    }

    #[test]
    fn clamp_and_abs() {
        let t = Tensor::from_slice(&[-5.0, 0.5, 5.0]);
        assert_eq!(t.clamped(-1.0, 1.0).unwrap().as_slice(), &[-1.0, 0.5, 1.0]);
        assert!(t.clamped(1.0, -1.0).is_err());
        assert_eq!(t.abs().as_slice(), &[5.0, 0.5, 5.0]);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Tensor::from_slice(&[0.0, 10.0]);
        let b = Tensor::from_slice(&[10.0, 0.0]);
        assert_eq!(a.lerp(&b, 0.0).unwrap(), a);
        assert_eq!(a.lerp(&b, 1.0).unwrap(), b);
        assert_eq!(a.lerp(&b, 0.5).unwrap().as_slice(), &[5.0, 5.0]);
        assert!(a.lerp(&Tensor::zeros(&[3]), 0.5).is_err());
    }

    #[test]
    fn clip_norm_bounds() {
        let mut t = Tensor::from_slice(&[3.0, 4.0]); // norm 5
        let scale = t.clip_norm(1.0);
        assert!((t.norm_l2() - 1.0).abs() < 1e-5);
        assert!((scale - 0.2).abs() < 1e-6);
        let mut small = Tensor::from_slice(&[0.1]);
        assert_eq!(small.clip_norm(1.0), 1.0);
        let mut zero = Tensor::zeros(&[4]);
        assert_eq!(zero.clip_norm(1.0), 1.0);
    }
}
