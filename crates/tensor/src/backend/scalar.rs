//! The reference scalar backend: the pre-backend loop bodies, moved verbatim.
//!
//! Every kernel here preserves the exact floating-point expression order of
//! the code it was lifted from (`ops.rs`, `conv.rs` and the NN crate's
//! softmax/SGD inner loops), so routing through this backend is bit-identical
//! to the pre-refactor engine — the property the checked-in run digests in
//! `tests/backend_parity.rs` pin.

use crate::conv::Conv2dGeometry;

use super::Backend;

/// The deterministic single-threaded reference backend (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * bkj;
                }
            }
        }
    }

    fn matmul_transb(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in arow.iter().zip(brow.iter()) {
                    acc += x * y;
                }
                out[i * n + j] = acc;
            }
        }
    }

    fn matmul_transa(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for kk in 0..k {
            let arow = &a[kk * m..(kk + 1) * m];
            let brow = &b[kk * n..(kk + 1) * n];
            for (i, &aki) in arow.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                    *o += aki * bkj;
                }
            }
        }
    }

    fn matvec(&self, a: &[f32], x: &[f32], out: &mut [f32], m: usize, n: usize) {
        let _ = m;
        for (i, o) in out.iter_mut().enumerate() {
            let row = &a[i * n..(i + 1) * n];
            let mut acc = 0.0f64;
            for (&r, &xv) in row.iter().zip(x.iter()) {
                acc += r as f64 * xv as f64;
            }
            *o = acc as f32;
        }
    }

    fn im2col(&self, image: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
        im2col_loops(image, geom, out);
    }

    fn col2im(&self, cols: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
        col2im_loops(cols, geom, out);
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        for (o, &v) in y.iter_mut().zip(x.iter()) {
            *o += alpha * v;
        }
    }

    fn scale(&self, alpha: f32, x: &mut [f32]) {
        for v in x.iter_mut() {
            *v *= alpha;
        }
    }

    fn dot(&self, x: &[f32], y: &[f32]) -> f32 {
        x.iter().zip(y.iter()).map(|(&a, &b)| (a as f64) * (b as f64)).sum::<f64>() as f32
    }

    fn sum(&self, x: &[f32]) -> f32 {
        x.iter().sum()
    }

    fn softmax_rows(&self, data: &mut [f32], rows: usize, cols: usize) {
        for i in 0..rows {
            let row = &mut data[i * cols..(i + 1) * cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }

    fn sgd_update(
        &self,
        params: &mut [f32],
        grads: &[f32],
        lr: f32,
        scale: f32,
        weight_decay: f32,
        momentum: f32,
        velocity: Option<&mut [f32]>,
    ) {
        match velocity {
            Some(vel) => {
                for ((p, &g), v) in params.iter_mut().zip(grads.iter()).zip(vel.iter_mut()) {
                    let mut eff = scale * g + weight_decay * *p;
                    if momentum > 0.0 {
                        *v = momentum * *v + eff;
                        eff = *v;
                    }
                    *p -= lr * eff;
                }
            }
            None => {
                for (p, &g) in params.iter_mut().zip(grads.iter()) {
                    let eff = scale * g + weight_decay * *p;
                    *p -= lr * eff;
                }
            }
        }
    }
}

/// The im2col loop nest, shared by the scalar and blocked backends (the
/// lowering is pure data movement — no floating-point arithmetic to
/// reassociate).
pub(crate) fn im2col_loops(src: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
    let (k, s, p) = (geom.kernel, geom.stride, geom.padding);
    let cols = geom.col_cols();
    for c in 0..geom.in_channels {
        let chan = &src[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for ky in 0..k {
            for kx in 0..k {
                let row_idx = (c * k + ky) * k + kx;
                let row = &mut out[row_idx * cols..(row_idx + 1) * cols];
                for oy in 0..geom.out_h {
                    let iy = (oy * s + ky) as isize - p as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    for ox in 0..geom.out_w {
                        let ix = (ox * s + kx) as isize - p as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        row[oy * geom.out_w + ox] = chan[iy as usize * geom.in_w + ix as usize];
                    }
                }
            }
        }
    }
}

/// The col2im loop nest (adjoint of [`im2col_loops`]), shared by both CPU
/// backends; per-position accumulation order is identical in each.
pub(crate) fn col2im_loops(src: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
    let (k, s, p) = (geom.kernel, geom.stride, geom.padding);
    let ncols = geom.col_cols();
    for c in 0..geom.in_channels {
        let chan = &mut out[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for ky in 0..k {
            for kx in 0..k {
                let row_idx = (c * k + ky) * k + kx;
                let row = &src[row_idx * ncols..(row_idx + 1) * ncols];
                for oy in 0..geom.out_h {
                    let iy = (oy * s + ky) as isize - p as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    for ox in 0..geom.out_w {
                        let ix = (ox * s + kx) as isize - p as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        chan[iy as usize * geom.in_w + ix as usize] += row[oy * geom.out_w + ox];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: ScalarBackend = ScalarBackend;

    #[test]
    fn matmul_known_product() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut out = [0.0f32; 4];
        B.matmul(&a, &b, &mut out, 2, 3, 2);
        assert_eq!(out, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transb_and_transa_agree_with_plain() {
        // a: 2x3, b: 4x3 → transb(a, b) == a · bᵀ.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 0.5, -1.0, 2.0, 0.0, 3.0, 1.0, 1.0, 2.0, -2.0, 0.5, 0.5];
        let mut bt = [0.0f32; 12];
        for i in 0..4 {
            for j in 0..3 {
                bt[j * 4 + i] = b[i * 3 + j];
            }
        }
        let mut fast = [0.0f32; 8];
        let mut slow = [0.0f32; 8];
        B.matmul_transb(&a, &b, &mut fast, 2, 3, 4);
        B.matmul(&a, &bt, &mut slow, 2, 3, 4);
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert!((f - s).abs() < 1e-6);
        }
        // a: 3x2 → transa(a, b3) == aᵀ · b3 with b3: 3x2.
        let b3 = [1.0, 0.5, -1.0, 2.0, 0.0, 3.0];
        let mut at = [0.0f32; 6];
        for i in 0..3 {
            for j in 0..2 {
                at[j * 3 + i] = a[i * 2 + j];
            }
        }
        let mut fast_a = [0.0f32; 4];
        let mut slow_a = [0.0f32; 4];
        B.matmul_transa(&a, &b3, &mut fast_a, 2, 3, 2);
        B.matmul(&at, &b3, &mut slow_a, 2, 3, 2);
        for (f, s) in fast_a.iter().zip(slow_a.iter()) {
            assert!((f - s).abs() < 1e-6);
        }
    }

    #[test]
    fn elementwise_and_reductions() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        B.axpy(0.5, &x, &mut y);
        assert_eq!(y, [1.5, 2.0, 2.5]);
        B.scale(2.0, &mut y);
        assert_eq!(y, [3.0, 4.0, 5.0]);
        assert_eq!(B.dot(&x, &x), 14.0);
        assert_eq!(B.sum(&x), 6.0);
    }

    #[test]
    fn sgd_update_without_momentum() {
        let mut p = [1.0f32, -2.0];
        let g = [0.5f32, 0.5];
        B.sgd_update(&mut p, &g, 0.1, 1.0, 0.0, 0.0, None);
        assert_eq!(p, [0.95, -2.05]);
    }

    #[test]
    fn sgd_update_with_momentum_accumulates() {
        let mut p = [0.0f32];
        let mut v = [0.0f32];
        let g = [1.0f32];
        B.sgd_update(&mut p, &g, 0.1, 1.0, 0.0, 0.9, Some(&mut v));
        assert!((p[0] + 0.1).abs() < 1e-7);
        B.sgd_update(&mut p, &g, 0.1, 1.0, 0.0, 0.9, Some(&mut v));
        // Second step: v = 0.9·1 + 1 = 1.9 → p moves by 0.19 more.
        assert!((p[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut data = [1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        B.softmax_rows(&mut data, 2, 3);
        for r in 0..2 {
            let s: f32 = data[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }
}
