//! Pluggable compute backends for the tensor hot path.
//!
//! Every dense kernel the training stack leans on — matmul variants,
//! im2col/col2im convolution lowering, the elementwise/reduction
//! primitives and the SGD parameter update — is routed through the
//! [`Backend`] trait. Two implementations ship:
//!
//! * [`ScalarBackend`] — the original hand-rolled loops, moved here
//!   verbatim. This is the **deterministic CI oracle**: every run on it is
//!   bit-identical to the code that predates the backend abstraction, and
//!   it stays the default everywhere.
//! * `BlockedBackend` (behind the `backend-blocked` feature) — cache
//!   blocked, autovectorization-friendly kernels with optional intra-op
//!   threading. It reassociates floating-point reductions, so results are
//!   *statistically* equivalent (pinned by gradcheck and elementwise
//!   tolerance tests) but not bit-identical to the scalar oracle.
//!
//! Consumers hold a [`BackendHandle`] — a `Copy` reference to an interned
//! backend instance — and configs carry a serializable [`BackendKind`]
//! resolved once at engine construction. The determinism contract and the
//! threading composition rules are documented in DESIGN.md §14.

use crate::conv::Conv2dGeometry;
use crate::TensorError;

mod scalar;
pub use scalar::ScalarBackend;

#[cfg(feature = "backend-blocked")]
mod blocked;
#[cfg(feature = "backend-blocked")]
pub use blocked::BlockedBackend;

/// Slice-level compute kernels behind every tensor/NN hot path.
///
/// All methods operate on caller-validated, exactly-sized slices; the
/// shape-checked entry points live on [`crate::Tensor`] and in
/// [`crate::conv`]. Output-buffer contracts are per-method: kernels that
/// *accumulate* require a zero-initialized output, kernels that overwrite
/// state so.
///
/// Implementations must be deterministic: the same inputs (and the same
/// configured thread count) must produce the same bits on every call.
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// A short stable identifier (`"scalar"`, `"blocked"`).
    fn name(&self) -> &'static str;

    /// `out += a · b` for row-major `a: (m×k)`, `b: (k×n)`, `out: (m×n)`.
    ///
    /// `out` must be zero-initialized (the kernel accumulates).
    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `out = a · bᵀ` for row-major `a: (m×k)`, `b: (n×k)`, `out: (m×n)`.
    ///
    /// Overwrites `out` completely.
    fn matmul_transb(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `out += aᵀ · b` for row-major `a: (k×m)`, `b: (k×n)`, `out: (m×n)`.
    ///
    /// `out` must be zero-initialized (the kernel accumulates).
    fn matmul_transa(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `out = a · x` for row-major `a: (m×n)`, `x: (n)`, `out: (m)`.
    ///
    /// Overwrites `out` completely.
    fn matvec(&self, a: &[f32], x: &[f32], out: &mut [f32], m: usize, n: usize);

    /// Lowers one `(C, H, W)` image (`image.len() == geom.input_volume()`)
    /// into its `(C·k·k, out_h·out_w)` column matrix.
    ///
    /// `out` must be zero-initialized (padded positions are left at zero).
    fn im2col(&self, image: &[f32], geom: &Conv2dGeometry, out: &mut [f32]);

    /// Scatters a `(C·k·k, out_h·out_w)` column matrix back onto a
    /// `(C, H, W)` image, accumulating overlaps — the adjoint of
    /// [`Backend::im2col`].
    ///
    /// `out` must be zero-initialized (the kernel accumulates).
    fn col2im(&self, cols: &[f32], geom: &Conv2dGeometry, out: &mut [f32]);

    /// `y += alpha · x` elementwise (`x.len() == y.len()`).
    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]);

    /// `x *= alpha` elementwise.
    fn scale(&self, alpha: f32, x: &mut [f32]);

    /// The inner product of two equal-length slices.
    fn dot(&self, x: &[f32], y: &[f32]) -> f32;

    /// The sum of all elements.
    fn sum(&self, x: &[f32]) -> f32;

    /// Numerically stable in-place softmax over each row of a row-major
    /// `(rows × cols)` matrix.
    fn softmax_rows(&self, data: &mut [f32], rows: usize, cols: usize);

    /// One SGD parameter update over a flat parameter/gradient pair:
    ///
    /// ```text
    /// eff = scale·g + weight_decay·p
    /// if momentum > 0 { v = momentum·v + eff; eff = v }
    /// p -= lr·eff
    /// ```
    ///
    /// `velocity` must be `Some` iff `momentum > 0`, with the same length
    /// as `params`.
    // One flat argument per optimizer hyper-parameter keeps the trait
    // object-safe without a config struct that every impl would unpack.
    #[allow(clippy::too_many_arguments)]
    fn sgd_update(
        &self,
        params: &mut [f32],
        grads: &[f32],
        lr: f32,
        scale: f32,
        weight_decay: f32,
        momentum: f32,
        velocity: Option<&mut [f32]>,
    );
}

/// The interned scalar oracle.
static SCALAR: ScalarBackend = ScalarBackend;

/// A `Copy` reference to an interned [`Backend`] instance.
///
/// Handles are cheap to pass around and embed in layers/optimizers; they
/// deref to the backend's kernels. The default handle is the scalar
/// oracle.
#[derive(Clone, Copy)]
pub struct BackendHandle(&'static (dyn Backend + 'static));

impl BackendHandle {
    /// The default [`ScalarBackend`] handle.
    pub fn scalar() -> Self {
        BackendHandle(&SCALAR)
    }

    /// Wraps a leaked/static backend instance.
    pub fn from_static(backend: &'static (dyn Backend + 'static)) -> Self {
        BackendHandle(backend)
    }
}

impl Default for BackendHandle {
    fn default() -> Self {
        BackendHandle::scalar()
    }
}

impl std::ops::Deref for BackendHandle {
    type Target = dyn Backend + 'static;

    fn deref(&self) -> &Self::Target {
        self.0
    }
}

impl std::fmt::Debug for BackendHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BackendHandle({})", self.0.name())
    }
}

/// Serializable backend selection carried by configs and spec files.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize, Hash,
)]
pub enum BackendKind {
    /// The deterministic scalar oracle (the default).
    #[default]
    Scalar,
    /// The cache-blocked, vectorization-friendly CPU backend. Requires the
    /// `backend-blocked` feature; resolving it without the feature is a
    /// configuration error, never a silent fallback.
    Blocked,
}

impl BackendKind {
    /// Parses a CLI/spec token (`"scalar"` or `"blocked"`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown token.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(BackendKind::Scalar),
            "blocked" => Ok(BackendKind::Blocked),
            other => Err(format!("unknown backend `{other}` (expected scalar or blocked)")),
        }
    }

    /// The token form accepted by [`BackendKind::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Blocked => "blocked",
        }
    }

    /// Whether this kind can be resolved in the current build.
    pub fn is_available(&self) -> bool {
        match self {
            BackendKind::Scalar => true,
            BackendKind::Blocked => cfg!(feature = "backend-blocked"),
        }
    }

    /// Resolves the kind to an interned backend instance.
    ///
    /// `intra_threads` is the intra-op worker count granted by the caller
    /// (the engine owns the thread budget): `0` picks one worker per
    /// available core, `1` disables intra-op threading. The scalar oracle
    /// ignores it — it is single-threaded by definition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] when the kind is not compiled in
    /// (`Blocked` without the `backend-blocked` feature).
    pub fn resolve(&self, intra_threads: usize) -> Result<BackendHandle, TensorError> {
        match self {
            BackendKind::Scalar => {
                let _ = intra_threads;
                Ok(BackendHandle::scalar())
            }
            #[cfg(feature = "backend-blocked")]
            BackendKind::Blocked => Ok(blocked::handle(intra_threads)),
            #[cfg(not(feature = "backend-blocked"))]
            BackendKind::Blocked => Err(TensorError::Invalid(
                "backend `blocked` is not compiled in; rebuild with --features backend-blocked"
                    .into(),
            )),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_handle_is_default_and_named() {
        let h = BackendHandle::default();
        assert_eq!(h.name(), "scalar");
        assert_eq!(BackendHandle::scalar().name(), "scalar");
        assert_eq!(format!("{h:?}"), "BackendHandle(scalar)");
    }

    #[test]
    fn kind_parses_and_round_trips() {
        assert_eq!(BackendKind::parse("scalar").unwrap(), BackendKind::Scalar);
        assert_eq!(BackendKind::parse("blocked").unwrap(), BackendKind::Blocked);
        assert!(BackendKind::parse("gpu").is_err());
        assert_eq!(BackendKind::Scalar.to_string(), "scalar");
        assert_eq!(BackendKind::Blocked.as_str(), "blocked");
        assert_eq!(BackendKind::default(), BackendKind::Scalar);
        let json = serde_json::to_string(&BackendKind::Blocked).unwrap();
        let back: BackendKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, BackendKind::Blocked);
    }

    #[test]
    fn scalar_always_resolves() {
        assert!(BackendKind::Scalar.is_available());
        assert_eq!(BackendKind::Scalar.resolve(0).unwrap().name(), "scalar");
        assert_eq!(BackendKind::Scalar.resolve(8).unwrap().name(), "scalar");
    }

    #[cfg(not(feature = "backend-blocked"))]
    #[test]
    fn blocked_errors_without_feature() {
        assert!(!BackendKind::Blocked.is_available());
        let err = BackendKind::Blocked.resolve(1).unwrap_err();
        assert!(matches!(err, TensorError::Invalid(_)));
        assert!(err.to_string().contains("backend-blocked"), "{err}");
    }

    #[cfg(feature = "backend-blocked")]
    #[test]
    fn blocked_resolves_with_feature() {
        assert!(BackendKind::Blocked.is_available());
        assert_eq!(BackendKind::Blocked.resolve(1).unwrap().name(), "blocked");
        // Interning: the same thread count yields the same instance.
        let a = BackendKind::Blocked.resolve(2).unwrap();
        let b = BackendKind::Blocked.resolve(2).unwrap();
        assert!(std::ptr::eq(a.0, b.0));
    }

    #[test]
    fn handle_is_send_sync_copy() {
        fn assert_traits<T: Send + Sync + Copy>() {}
        assert_traits::<BackendHandle>();
    }
}
