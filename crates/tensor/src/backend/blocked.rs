//! The optimized CPU backend: blocked, multi-accumulator, optionally
//! threaded kernels.
//!
//! Only available behind the `backend-blocked` feature. The kernels here
//! reassociate floating-point reductions (multiple accumulators, pairwise
//! combination), so results differ from [`super::ScalarBackend`] in the last
//! ulps; gradcheck and elementwise-tolerance tests pin them to the
//! reference. For a fixed thread count the kernels are fully deterministic:
//! intra-op threading splits *output* rows into disjoint contiguous chunks,
//! each computed with the identical per-element arithmetic, so the result
//! bits do not depend on scheduling.

use std::sync::{Mutex, OnceLock};

use crate::conv::Conv2dGeometry;

use super::{scalar, Backend, BackendHandle};

/// Number of parallel accumulator lanes in the blocked dot product. 16 f32
/// lanes fill one AVX-512 register (or two AVX2 registers) and break the
/// serial dependency chain of a naive accumulation loop.
const LANES: usize = 16;

/// Minimum output rows per thread before intra-op threading pays for itself.
const MIN_ROWS_PER_THREAD: usize = 2;

/// The cache-blocked, autovectorization-friendly CPU backend.
///
/// Construct via [`crate::backend::BackendKind::resolve`], which interns one
/// instance per intra-op thread count.
#[derive(Debug, Clone, Copy)]
pub struct BlockedBackend {
    /// Intra-op worker count (1 = single-threaded).
    threads: usize,
}

impl BlockedBackend {
    /// Creates a backend with the given intra-op worker count (`0` picks one
    /// worker per available core).
    pub fn new(intra_threads: usize) -> Self {
        let threads = if intra_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            intra_threads
        };
        BlockedBackend { threads }
    }

    /// The resolved intra-op worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `m` output rows into per-thread chunks and runs `work` on each
    /// disjoint `(row_start, out_chunk)` slice. Falls back to inline
    /// execution when threading cannot pay off. Determinism: the chunk
    /// boundaries depend only on `(m, threads)` and each output element is
    /// written by exactly one thread with the same arithmetic as the inline
    /// path.
    fn for_row_chunks<F>(&self, out: &mut [f32], m: usize, n: usize, work: F)
    where
        F: Fn(usize, &mut [f32]) + Send + Sync,
    {
        let workers = self.threads.min(m / MIN_ROWS_PER_THREAD.max(1)).max(1);
        if workers <= 1 || m == 0 {
            work(0, out);
            return;
        }
        let rows_per = m.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut rest = out;
            let mut row = 0usize;
            while row < m {
                let take = rows_per.min(m - row);
                let (chunk, tail) = rest.split_at_mut(take * n);
                rest = tail;
                let start = row;
                let work = &work;
                scope.spawn(move || work(start, chunk));
                row += take;
            }
        });
    }
}

/// Dot product with [`LANES`] independent accumulators and a pairwise
/// reduction — the shape LLVM autovectorizes into wide FMA-free SIMD.
#[inline]
fn dot_blocked(x: &[f32], y: &[f32]) -> f32 {
    // Mirror the zip semantics of the scalar reference: pair elementwise up
    // to the shorter operand (otherwise unequal chunk remainders mispair).
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = [0.0f32; LANES];
    let mut xc = x.chunks_exact(LANES);
    let mut yc = y.chunks_exact(LANES);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        for l in 0..LANES {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut tail = 0.0f32;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder().iter()) {
        tail += a * b;
    }
    // Pairwise reduce the lanes for a deterministic, shallow tree.
    let mut width = LANES / 2;
    while width > 0 {
        for l in 0..width {
            acc[l] += acc[l + width];
        }
        width /= 2;
    }
    acc[0] + tail
}

/// `orow += aik · brow` over one blocked row — the vectorizable axpy core of
/// the k-unrolled matmul kernels.
#[inline]
#[allow(clippy::too_many_arguments)] // four (coefficient, row) pairs, flat for codegen
fn row_axpy4(
    orow: &mut [f32],
    a0: f32,
    b0: &[f32],
    a1: f32,
    b1: &[f32],
    a2: f32,
    b2: &[f32],
    a3: f32,
    b3: &[f32],
) {
    for (j, o) in orow.iter_mut().enumerate() {
        *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
    }
}

impl Backend for BlockedBackend {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        self.for_row_chunks(out, m, n, |row0, chunk| {
            for (local_i, orow) in chunk.chunks_mut(n).enumerate() {
                let i = row0 + local_i;
                let arow = &a[i * k..(i + 1) * k];
                let mut kk = 0;
                while kk + 4 <= k {
                    row_axpy4(
                        orow,
                        arow[kk],
                        &b[kk * n..(kk + 1) * n],
                        arow[kk + 1],
                        &b[(kk + 1) * n..(kk + 2) * n],
                        arow[kk + 2],
                        &b[(kk + 2) * n..(kk + 3) * n],
                        arow[kk + 3],
                        &b[(kk + 3) * n..(kk + 4) * n],
                    );
                    kk += 4;
                }
                while kk < k {
                    let aik = arow[kk];
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                        *o += aik * bkj;
                    }
                    kk += 1;
                }
            }
        });
    }

    fn matmul_transb(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        self.for_row_chunks(out, m, n, |row0, chunk| {
            for (local_i, orow) in chunk.chunks_mut(n).enumerate() {
                let i = row0 + local_i;
                let arow = &a[i * k..(i + 1) * k];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = dot_blocked(arow, &b[j * k..(j + 1) * k]);
                }
            }
        });
    }

    fn matmul_transa(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        self.for_row_chunks(out, m, n, |row0, chunk| {
            for (local_i, orow) in chunk.chunks_mut(n).enumerate() {
                let i = row0 + local_i;
                let mut kk = 0;
                while kk + 4 <= k {
                    row_axpy4(
                        orow,
                        a[kk * m + i],
                        &b[kk * n..(kk + 1) * n],
                        a[(kk + 1) * m + i],
                        &b[(kk + 1) * n..(kk + 2) * n],
                        a[(kk + 2) * m + i],
                        &b[(kk + 2) * n..(kk + 3) * n],
                        a[(kk + 3) * m + i],
                        &b[(kk + 3) * n..(kk + 4) * n],
                    );
                    kk += 4;
                }
                while kk < k {
                    let aki = a[kk * m + i];
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                        *o += aki * bkj;
                    }
                    kk += 1;
                }
            }
        });
    }

    fn matvec(&self, a: &[f32], x: &[f32], out: &mut [f32], m: usize, n: usize) {
        let _ = m;
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot_blocked(&a[i * n..(i + 1) * n], x);
        }
    }

    fn im2col(&self, image: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
        scalar::im2col_loops(image, geom, out);
    }

    fn col2im(&self, cols: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
        scalar::col2im_loops(cols, geom, out);
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        for (o, &v) in y.iter_mut().zip(x.iter()) {
            *o += alpha * v;
        }
    }

    fn scale(&self, alpha: f32, x: &mut [f32]) {
        for v in x.iter_mut() {
            *v *= alpha;
        }
    }

    fn dot(&self, x: &[f32], y: &[f32]) -> f32 {
        dot_blocked(x, y)
    }

    fn sum(&self, x: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let mut xc = x.chunks_exact(LANES);
        for xs in &mut xc {
            for l in 0..LANES {
                acc[l] += xs[l];
            }
        }
        let tail: f32 = xc.remainder().iter().sum();
        let mut width = LANES / 2;
        while width > 0 {
            for l in 0..width {
                acc[l] += acc[l + width];
            }
            width /= 2;
        }
        acc[0] + tail
    }

    fn softmax_rows(&self, data: &mut [f32], rows: usize, cols: usize) {
        ScalarBackendDelegate.softmax_rows(data, rows, cols);
    }

    fn sgd_update(
        &self,
        params: &mut [f32],
        grads: &[f32],
        lr: f32,
        scale: f32,
        weight_decay: f32,
        momentum: f32,
        velocity: Option<&mut [f32]>,
    ) {
        ScalarBackendDelegate.sgd_update(
            params,
            grads,
            lr,
            scale,
            weight_decay,
            momentum,
            velocity,
        );
    }
}

/// Local alias so delegation reads clearly (softmax and the SGD update are
/// elementwise — there is nothing to block, and keeping the scalar
/// expression order makes the optimized path easier to compare).
use super::ScalarBackend as ScalarBackendDelegate;

/// Interned instances, keyed by resolved thread count. Backends are tiny and
/// the set of distinct thread counts per process is bounded, so leaking them
/// into `'static` handles is the simplest safe way to hand out `Copy`
/// references (`unsafe` is forbidden workspace-wide).
static INSTANCES: OnceLock<Mutex<Vec<(usize, &'static BlockedBackend)>>> = OnceLock::new();

/// Resolves an interned handle for the given intra-op thread count.
pub(super) fn handle(intra_threads: usize) -> BackendHandle {
    let backend = BlockedBackend::new(intra_threads);
    let instances = INSTANCES.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = instances.lock().expect("backend intern table poisoned");
    if let Some(&(_, existing)) = guard.iter().find(|(t, _)| *t == backend.threads) {
        return BackendHandle::from_static(existing);
    }
    let leaked: &'static BlockedBackend = Box::leak(Box::new(backend));
    guard.push((backend.threads, leaked));
    BackendHandle::from_static(leaked)
}

#[cfg(test)]
mod tests {
    use super::super::ScalarBackend;
    use super::*;

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        // SplitMix64-style stream, matching the bench harness idiom.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..len)
            .map(|_| {
                state =
                    state.wrapping_mul(0xAF25_1AF3_B0F0_25B5).wrapping_add(0xB564_EF22_EC7A_ECE5);
                let bits = (state >> 40) as u32;
                bits as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let denom = x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() / denom <= tol, "{what}: coord {i} differs: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matmuls_match_scalar() {
        let sc = ScalarBackend;
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 2), (32, 192, 64), (7, 33, 17)] {
            let a = pseudo(1, m * k);
            let b = pseudo(2, k * n);
            for threads in [1usize, 4] {
                let bl = BlockedBackend::new(threads);
                let mut s_out = vec![0.0f32; m * n];
                let mut b_out = vec![0.0f32; m * n];
                sc.matmul(&a, &b, &mut s_out, m, k, n);
                bl.matmul(&a, &b, &mut b_out, m, k, n);
                assert_close(&s_out, &b_out, 1e-5, "matmul");

                let bt = pseudo(3, n * k);
                let mut s_t = vec![0.0f32; m * n];
                let mut b_t = vec![0.0f32; m * n];
                sc.matmul_transb(&a, &bt, &mut s_t, m, k, n);
                bl.matmul_transb(&a, &bt, &mut b_t, m, k, n);
                assert_close(&s_t, &b_t, 1e-5, "matmul_transb");

                let at = pseudo(4, k * m);
                let mut s_a = vec![0.0f32; m * n];
                let mut b_a = vec![0.0f32; m * n];
                sc.matmul_transa(&at, &b, &mut s_a, m, k, n);
                bl.matmul_transa(&at, &b, &mut b_a, m, k, n);
                assert_close(&s_a, &b_a, 1e-5, "matmul_transa");
            }
        }
    }

    #[test]
    fn blocked_matvec_and_reductions_match_scalar() {
        let sc = ScalarBackend;
        let bl = BlockedBackend::new(1);
        let (m, n) = (13usize, 37usize);
        let a = pseudo(5, m * n);
        let x = pseudo(6, n);
        let mut s_out = vec![0.0f32; m];
        let mut b_out = vec![0.0f32; m];
        sc.matvec(&a, &x, &mut s_out, m, n);
        bl.matvec(&a, &x, &mut b_out, m, n);
        assert_close(&s_out, &b_out, 1e-5, "matvec");
        let y = pseudo(7, 1001);
        let z = pseudo(8, 1001);
        assert!((sc.dot(&y, &z) - bl.dot(&y, &z)).abs() < 1e-3);
        assert!((sc.sum(&y) - bl.sum(&y)).abs() < 1e-3);
    }

    #[test]
    fn blocked_im2col_is_bit_identical_to_scalar() {
        // Pure data movement — must be exactly equal, not just close.
        let sc = ScalarBackend;
        let bl = BlockedBackend::new(1);
        let g = Conv2dGeometry::new(2, 5, 4, 3, 2, 1).unwrap();
        let img = pseudo(9, g.input_volume());
        let mut s_cols = vec![0.0f32; g.col_rows() * g.col_cols()];
        let mut b_cols = vec![0.0f32; g.col_rows() * g.col_cols()];
        sc.im2col(&img, &g, &mut s_cols);
        bl.im2col(&img, &g, &mut b_cols);
        assert_eq!(s_cols, b_cols);
        let mut s_im = vec![0.0f32; g.input_volume()];
        let mut b_im = vec![0.0f32; g.input_volume()];
        sc.col2im(&s_cols, &g, &mut s_im);
        bl.col2im(&b_cols, &g, &mut b_im);
        assert_eq!(s_im, b_im);
    }

    #[test]
    fn threaded_matmul_is_deterministic() {
        let bl = BlockedBackend::new(4);
        let (m, k, n) = (16usize, 48usize, 24usize);
        let a = pseudo(10, m * k);
        let b = pseudo(11, k * n);
        let mut first = vec![0.0f32; m * n];
        bl.matmul_transb(&a, &b, &mut first, m, k, n);
        for _ in 0..8 {
            let mut again = vec![0.0f32; m * n];
            bl.matmul_transb(&a, &b, &mut again, m, k, n);
            assert_eq!(first, again, "threaded kernel must be run-to-run deterministic");
        }
        // Thread count must not change the bits either: chunks are disjoint
        // and per-element arithmetic is identical.
        let solo = BlockedBackend::new(1);
        let mut single = vec![0.0f32; m * n];
        solo.matmul_transb(&a, &b, &mut single, m, k, n);
        assert_eq!(first, single, "bits must not depend on intra-op thread count");
    }

    #[test]
    fn zero_thread_count_resolves_to_cores() {
        assert!(BlockedBackend::new(0).threads() >= 1);
        assert_eq!(BlockedBackend::new(3).threads(), 3);
    }
}
