//! The dense, contiguous, row-major tensor type.

use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Shape, TensorError};

/// A dense `f32` tensor stored contiguously in row-major order.
///
/// `Tensor` is the workhorse value type of the whole workspace: model
/// parameters, gradients, mini-batches, aggregated global models and
/// Byzantine-tampered disseminations are all `Tensor`s.
///
/// Fallible operations return [`TensorError`]; infallible convenience
/// operators (`+`, `-`) are provided for references and **panic** on shape
/// mismatch (documented per impl), mirroring the standard practice of
/// numerical array libraries.
///
/// # Example
///
/// ```
/// use fedms_tensor::Tensor;
///
/// let x = Tensor::linspace(0.0, 1.0, 5);
/// assert_eq!(x.len(), 5);
/// assert!((x.mean()? - 0.5).abs() < 1e-6);
/// # Ok::<(), fedms_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.volume();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.volume();
        Tensor { shape, data: vec![value; n] }
    }

    /// Creates a rank-0 tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// Creates a tensor from a flat row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape's volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch { got: data.len(), expected: shape.volume() });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { shape: Shape::new(&[data.len()]), data: data.to_vec() }
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.volume();
        Tensor { shape, data: (0..n).map(&mut f).collect() }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor of `n` evenly spaced values from `start` to
    /// `end` inclusive. With `n == 1` the single value is `start`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        if n == 0 {
            return Tensor::zeros(&[0]);
        }
        if n == 1 {
            return Tensor::from_slice(&[start]);
        }
        let step = (end - start) / (n as f32 - 1.0);
        Tensor::from_fn(&[n], |i| start + step * i as f32)
    }

    /// Creates a tensor with entries drawn i.i.d. from `N(mean, std²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn randn<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], mean: f32, std: f32) -> Self {
        let normal = Normal::new(mean, std).expect("std must be finite and non-negative");
        Tensor::from_fn(dims, |_| normal.sample(rng))
    }

    /// Creates a tensor with entries drawn i.i.d. uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_uniform<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Self {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        let dist = Uniform::new(lo, hi);
        Tensor::from_fn(dims, |_| dist.sample(rng))
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The extents as a slice, for quick destructuring.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying data in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a per-axis index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::flat_index`].
    pub fn get(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.flat_index(index)?])
    }

    /// Sets the element at a per-axis index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::flat_index`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Borrows row `i` of a rank-2 tensor as a contiguous slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] if `i` exceeds the row count.
    pub fn row(&self, i: usize) -> Result<&[f32], TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, got: self.rank() });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds { index: i, bound: rows });
        }
        Ok(&self.data[i * cols..(i + 1) * cols])
    }

    /// Returns a new tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims);
        if shape.volume() != self.len() {
            return Err(TensorError::LengthMismatch { got: self.len(), expected: shape.volume() });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Returns this tensor flattened to rank 1.
    pub fn flattened(&self) -> Tensor {
        Tensor { shape: Shape::new(&[self.len()]), data: self.data.clone() }
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    fn check_same_shape(&self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Elementwise sum, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other)?;
        Ok(self.zip_map(other, |a, b| a + b))
    }

    /// Elementwise difference, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other)?;
        Ok(self.zip_map(other, |a, b| a - b))
    }

    /// Elementwise (Hadamard) product, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other)?;
        Ok(self.zip_map(other, |a, b| a * b))
    }

    /// In-place elementwise addition: `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_inplace(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * *b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`, in place.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns a copy with every element multiplied by `alpha`.
    pub fn scaled(&self, alpha: f32) -> Tensor {
        self.map(|a| a * alpha)
    }

    /// Returns a copy with `alpha` added to every element.
    pub fn add_scalar(&self, alpha: f32) -> Tensor {
        self.map(|a| a + alpha)
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&a| f(a)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// Shape agreement is the caller's responsibility; all public callers in
    /// this crate validate first.
    pub(crate) fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        debug_assert_eq!(self.shape, other.shape);
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }
}

/// Panics on shape mismatch; prefer [`Tensor::add`] in fallible contexts.
impl std::ops::Add for &Tensor {
    type Output = Tensor;

    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs).expect("tensor + tensor requires matching shapes")
    }
}

/// Panics on shape mismatch; prefer [`Tensor::sub`] in fallible contexts.
impl std::ops::Sub for &Tensor {
    type Output = Tensor;

    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs).expect("tensor - tensor requires matching shapes")
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(8).map(|v| format!("{v:.4}")).collect();
        write!(f, "[{}{}]", preview.join(", "), if self.len() > 8 { ", …" } else { "" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_produce_expected_values() {
        assert_eq!(Tensor::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 2.5).as_slice(), &[2.5, 2.5]);
        assert_eq!(Tensor::scalar(7.0).rank(), 0);
        assert_eq!(Tensor::eye(2).as_slice(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(-1.0, 1.0, 5);
        assert_eq!(t.as_slice()[0], -1.0);
        assert_eq!(t.as_slice()[4], 1.0);
        assert_eq!(Tensor::linspace(3.0, 9.0, 1).as_slice(), &[3.0]);
        assert!(Tensor::linspace(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = Tensor::randn(&mut r1, &[16], 0.0, 1.0);
        let b = Tensor::randn(&mut r2, &[16], 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn randn_statistics_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&mut rng, &[10_000], 2.0, 0.5);
        let mean = t.as_slice().iter().sum::<f32>() / t.len() as f32;
        assert!((mean - 2.0).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn rand_uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::rand_uniform(&mut rng, &[1000], -10.0, 10.0);
        assert!(t.as_slice().iter().all(|&v| (-10.0..10.0).contains(&v)));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 5.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.row(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1).unwrap(), &[4.0, 5.0, 6.0]);
        assert!(t.row(2).is_err());
        assert!(Tensor::zeros(&[4]).row(0).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::linspace(0.0, 5.0, 6);
        let m = t.reshape(&[2, 3]).unwrap();
        assert_eq!(m.dims(), &[2, 3]);
        assert_eq!(m.as_slice(), t.as_slice());
        assert!(t.reshape(&[4]).is_err());
        assert_eq!(m.flattened().dims(), &[6]);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!((&a + &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).as_slice(), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn arithmetic_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.mul(&b).is_err());
        let mut c = a.clone();
        assert!(c.add_inplace(&b).is_err());
        assert!(c.axpy(1.0, &b).is_err());
    }

    #[test]
    fn inplace_ops() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        a.add_inplace(&b).unwrap();
        assert_eq!(a.as_slice(), &[11.0, 22.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[16.0, 32.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[8.0, 16.0]);
        a.map_inplace(|v| v - 8.0);
        assert_eq!(a.as_slice(), &[0.0, 8.0]);
    }

    #[test]
    fn map_and_scalar_helpers() {
        let a = Tensor::from_slice(&[1.0, -2.0]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.scaled(2.0).as_slice(), &[2.0, -4.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, -1.0]);
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[20]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(!Tensor::scalar(1.0).to_string().is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::linspace(0.0, 1.0, 4).reshape(&[2, 2]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
