//! A reusable buffer pool for transient parameter vectors.
//!
//! Large-cohort rounds materialize many short-lived tensors of the same
//! length (the `P` global-model views each client filters, scratch copies
//! on the transport drain path). Allocating and freeing those through the
//! global allocator every round is both slow and fragmenting; a
//! [`BufferPool`] instead recycles the backing `Vec<f32>` storage across
//! uses and keeps high-water statistics so the memory footprint of a round
//! is observable ([`PoolStats::high_water_bytes`] is stamped into bench
//! reports and asserted by the scale tests).
//!
//! The pool is a free list behind a [`Mutex`]: `fetch` hands out a
//! recycled buffer (or allocates a fresh one), `release` returns it. It is
//! deliberately value-transparent — a pooled tensor is bit-identical to a
//! freshly allocated one — so pooling can never affect simulation results.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::Tensor;

/// Running counters describing pool traffic.
///
/// Byte figures count `f32` payload (4 bytes per element) of buffers
/// *checked out* of the pool; `high_water_bytes` is the maximum ever
/// outstanding at once and approximates the peak transient tensor memory
/// of the pooled code path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Buffers served by recycling a previously released allocation.
    pub reused: u64,
    /// Buffers served by a fresh heap allocation.
    pub allocated: u64,
    /// Buffers handed back via [`BufferPool::release`].
    pub released: u64,
    /// Payload bytes currently checked out.
    pub outstanding_bytes: u64,
    /// Maximum payload bytes ever checked out simultaneously.
    pub high_water_bytes: u64,
}

#[derive(Debug, Default)]
struct PoolInner {
    free: Vec<Vec<f32>>,
    stats: PoolStats,
}

/// A thread-safe free list of `Vec<f32>` buffers.
///
/// # Example
///
/// ```
/// use fedms_tensor::pool::BufferPool;
///
/// let pool = BufferPool::new();
/// let a = pool.fetch(&[1.0, 2.0]);
/// pool.release(a);
/// let b = pool.fetch(&[3.0, 4.0, 5.0]); // reuses the freed storage
/// assert_eq!(b, &[3.0, 4.0, 5.0]);
/// assert_eq!(pool.stats().reused, 1);
/// ```
#[derive(Debug, Default)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Returns a buffer holding a copy of `data`, recycling freed storage
    /// when available.
    pub fn fetch(&self, data: &[f32]) -> Vec<f32> {
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        let mut buf = match inner.free.pop() {
            Some(b) => {
                inner.stats.reused += 1;
                b
            }
            None => {
                inner.stats.allocated += 1;
                Vec::with_capacity(data.len())
            }
        };
        inner.stats.outstanding_bytes += 4 * data.len() as u64;
        inner.stats.high_water_bytes =
            inner.stats.high_water_bytes.max(inner.stats.outstanding_bytes);
        drop(inner);
        buf.clear();
        buf.extend_from_slice(data);
        buf
    }

    /// Returns a zero-filled buffer of `len` elements, recycling freed
    /// storage when available. Value-transparent: the result is
    /// bit-identical to `vec![0.0f32; len]`.
    pub fn fetch_zeroed(&self, len: usize) -> Vec<f32> {
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        let mut buf = match inner.free.pop() {
            Some(b) => {
                inner.stats.reused += 1;
                b
            }
            None => {
                inner.stats.allocated += 1;
                Vec::with_capacity(len)
            }
        };
        inner.stats.outstanding_bytes += 4 * len as u64;
        inner.stats.high_water_bytes =
            inner.stats.high_water_bytes.max(inner.stats.outstanding_bytes);
        drop(inner);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the free list for later reuse.
    pub fn release(&self, buf: Vec<f32>) {
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        inner.stats.released += 1;
        inner.stats.outstanding_bytes =
            inner.stats.outstanding_bytes.saturating_sub(4 * buf.len() as u64);
        inner.free.push(buf);
    }

    /// Copies `src` into a pooled rank-preserving tensor.
    pub fn fetch_tensor(&self, src: &Tensor) -> Tensor {
        Tensor::from_vec(self.fetch(src.as_slice()), src.dims())
            .expect("pooled buffer length matches source tensor")
    }

    /// Recycles a tensor's backing storage.
    pub fn release_tensor(&self, t: Tensor) {
        self.release(t.into_vec());
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().expect("buffer pool poisoned").stats
    }

    /// Buffers currently on the free list.
    pub fn free_len(&self) -> usize {
        self.inner.lock().expect("buffer pool poisoned").free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_copies_and_release_recycles() {
        let pool = BufferPool::new();
        let a = pool.fetch(&[1.0, 2.0, 3.0]);
        assert_eq!(a, &[1.0, 2.0, 3.0]);
        pool.release(a);
        assert_eq!(pool.free_len(), 1);
        let b = pool.fetch(&[4.0]);
        assert_eq!(b, &[4.0]);
        let s = pool.stats();
        assert_eq!(s.allocated, 1);
        assert_eq!(s.reused, 1);
        assert_eq!(s.released, 1);
    }

    #[test]
    fn high_water_tracks_peak_outstanding() {
        let pool = BufferPool::new();
        let a = pool.fetch(&[0.0; 10]); // 40 bytes out
        let b = pool.fetch(&[0.0; 5]); // 60 bytes out — the peak
        pool.release(a);
        pool.release(b);
        let c = pool.fetch(&[0.0; 3]);
        let s = pool.stats();
        assert_eq!(s.high_water_bytes, 60);
        assert_eq!(s.outstanding_bytes, 12);
        pool.release(c);
        assert_eq!(pool.stats().outstanding_bytes, 0);
    }

    #[test]
    fn tensor_round_trip_is_value_transparent() {
        let pool = BufferPool::new();
        let src = Tensor::from_vec(vec![1.5, -2.5, 0.0, 3.25], &[2, 2]).unwrap();
        let pooled = pool.fetch_tensor(&src);
        assert_eq!(pooled, src);
        assert_eq!(pooled.dims(), &[2, 2]);
        pool.release_tensor(pooled);
        let again = pool.fetch_tensor(&src);
        assert_eq!(again, src);
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn fetch_zeroed_recycles_and_zeroes() {
        let pool = BufferPool::new();
        let mut a = pool.fetch_zeroed(4);
        assert_eq!(a, &[0.0; 4]);
        a.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        pool.release(a);
        let b = pool.fetch_zeroed(6);
        assert_eq!(b, &[0.0; 6], "recycled buffer must come back zeroed");
        let s = pool.stats();
        assert_eq!(s.allocated, 1);
        assert_eq!(s.reused, 1);
    }

    #[test]
    fn pool_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferPool>();
    }
}
