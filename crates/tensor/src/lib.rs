//! Dense `f32` tensor substrate for the Fed-MS reproduction.
//!
//! This crate provides the numerical foundation shared by every other crate
//! in the workspace: a contiguous, row-major [`Tensor`] type with the
//! elementwise arithmetic, linear algebra ([`Tensor::matmul`]), convolution
//! lowering ([`im2col`]/[`col2im`]) and reduction operations needed to train
//! small neural networks from scratch, plus deterministic random-number
//! utilities ([`rng`]) used to fan a single experiment seed out to every
//! client, server and attack in a simulation.
//!
//! # Example
//!
//! ```
//! use fedms_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok::<(), fedms_tensor::TensorError>(())
//! ```

pub mod backend;
mod conv;
mod error;
mod ops;
pub mod pool;
pub mod rng;
mod shape;
mod stats;
mod tensor;

pub use backend::{Backend, BackendHandle, BackendKind};
pub use conv::{col2im, im2col, Conv2dGeometry};
pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide `Result` alias using [`TensorError`].
pub type Result<T> = std::result::Result<T, TensorError>;
