//! Work-stealing multi-threaded trial scheduler.
//!
//! Trials are dealt round-robin onto per-worker deques; each worker drains
//! its own deque from the front and, when empty, steals from the back of
//! its peers — classic work-stealing over plain `std` primitives (the
//! environment is offline; no rayon/crossbeam). Results flow to the calling
//! thread over a **bounded** channel, so the caller is the only writer to
//! the run store and progress reporting back-pressures the workers instead
//! of buffering unboundedly.
//!
//! Two properties the tests pin down:
//!
//! * **Determinism** — a trial's record is produced by the trial runner
//!   alone; the scheduler only decides *when* it runs. `--threads 1` and
//!   `--threads N` therefore write byte-identical per-trial records.
//! * **Panic isolation** — a panicking trial is caught at the worker
//!   boundary and recorded as [`TrialStatus::Failed`]; the sweep continues.
//!
//! [`TrialStatus::Failed`]: crate::TrialStatus

use crate::store::RunStore;
use crate::trial::{execute_trial, Trial, TrialRecord};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

/// Progress events emitted to the caller's callback, in store-write order.
#[derive(Debug, Clone, PartialEq)]
pub enum Progress {
    /// The trial already had a completed record in the store; not re-run.
    Skipped {
        /// The trial's id.
        trial_id: String,
    },
    /// A worker picked the trial up.
    Started {
        /// The trial's id.
        trial_id: String,
        /// Index of the worker thread executing it.
        worker: usize,
    },
    /// The trial finished (completed or failed) and its record was written.
    Finished {
        /// The written record (boxed: much larger than the other variants).
        record: Box<TrialRecord>,
    },
}

/// Aggregate outcome of one scheduler invocation.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Trials executed by this invocation.
    pub executed: usize,
    /// Trials skipped because a completed record was already stored.
    pub skipped: usize,
    /// Executed trials that ended in [`crate::TrialStatus::Failed`].
    pub failed: usize,
    /// Every trial's record, in trial order — freshly executed and
    /// previously stored alike, so callers always see the complete sweep.
    pub records: Vec<TrialRecord>,
}

enum WorkerMsg {
    Started { trial_idx: usize, worker: usize },
    Done { trial_idx: usize, record: Box<TrialRecord> },
}

/// Runs `trials` through the store with the default runner
/// ([`execute_trial`]).
///
/// # Errors
///
/// Propagates store I/O errors; individual trial failures are recorded,
/// not raised.
pub fn run_sweep(
    trials: &[Trial],
    store: &RunStore,
    threads: usize,
    on_progress: impl FnMut(&Progress),
) -> Result<SweepReport, String> {
    run_sweep_with(trials, store, threads, execute_trial, on_progress)
}

/// Runs `trials` with a caller-supplied runner (tests inject panicking or
/// instant runners here; production uses [`execute_trial`]).
///
/// Trials that already have a *completed* record in `store` are skipped;
/// failed records are retried. Each executed trial's record is written to
/// the store by the calling thread before its
/// [`Progress::Finished`] fires, so a kill at any point leaves the store
/// prefix-consistent: every record on disk is complete and final.
///
/// # Errors
///
/// Propagates store I/O errors; individual trial failures are recorded,
/// not raised.
pub fn run_sweep_with<F>(
    trials: &[Trial],
    store: &RunStore,
    threads: usize,
    runner: F,
    mut on_progress: impl FnMut(&Progress),
) -> Result<SweepReport, String>
where
    F: Fn(&Trial, Option<&std::path::Path>) -> TrialRecord + Sync,
{
    let threads = threads.max(1);
    let mut report = SweepReport::default();
    let mut records: Vec<Option<TrialRecord>> = vec![None; trials.len()];

    // Skip-on-resume: completed records are final; anything else runs.
    let done = store.completed_records().map_err(|e| e.to_string())?;
    let mut pending: Vec<usize> = Vec::new();
    for (i, t) in trials.iter().enumerate() {
        match done.get(&t.id) {
            Some(r) => {
                records[i] = Some(r.clone());
                report.skipped += 1;
                on_progress(&Progress::Skipped { trial_id: t.id.clone() });
            }
            None => pending.push(i),
        }
    }

    if !pending.is_empty() {
        // Deal pending trials round-robin onto per-worker deques.
        let workers = threads.min(pending.len());
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        for (n, &idx) in pending.iter().enumerate() {
            queues[n % workers].push_back(idx);
        }
        let queues: Vec<Mutex<VecDeque<usize>>> = queues.into_iter().map(Mutex::new).collect();
        let expected = pending.len();
        // Bounded: workers block rather than buffer when the collector
        // (which is also the store writer) falls behind.
        let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(threads * 2);

        std::thread::scope(|scope| -> Result<(), String> {
            for w in 0..workers {
                let tx = tx.clone();
                let queues = &queues;
                let runner = &runner;
                scope.spawn(move || {
                    while let Some(idx) = pop_task(queues, w) {
                        if tx.send(WorkerMsg::Started { trial_idx: idx, worker: w }).is_err() {
                            break;
                        }
                        let trial = &trials[idx];
                        let ckpt =
                            (trial.checkpoint_every > 0).then(|| store.checkpoint_path(&trial.id));
                        let record =
                            match catch_unwind(AssertUnwindSafe(|| runner(trial, ckpt.as_deref())))
                            {
                                Ok(record) => record,
                                Err(payload) => {
                                    TrialRecord::failed(trial, panic_message(payload.as_ref()))
                                }
                            };
                        if tx
                            .send(WorkerMsg::Done { trial_idx: idx, record: Box::new(record) })
                            .is_err()
                        {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            let mut finished = 0usize;
            while finished < expected {
                let msg = rx.recv().map_err(|_| {
                    "scheduler workers hung up before finishing all trials".to_string()
                })?;
                match msg {
                    WorkerMsg::Started { trial_idx, worker } => {
                        on_progress(&Progress::Started {
                            trial_id: trials[trial_idx].id.clone(),
                            worker,
                        });
                    }
                    WorkerMsg::Done { trial_idx, record } => {
                        store.write_record(&record).map_err(|e| e.to_string())?;
                        report.executed += 1;
                        if !record.is_completed() {
                            report.failed += 1;
                        }
                        finished += 1;
                        on_progress(&Progress::Finished { record: record.clone() });
                        records[trial_idx] = Some(*record);
                    }
                }
            }
            Ok(())
        })?;
    }

    report.records = records
        .into_iter()
        .map(|r| r.expect("every trial is either skipped (stored) or executed"))
        .collect();
    Ok(report)
}

/// Pops the next task for worker `w`: own deque front first, then steal
/// from peers' backs.
fn pop_task(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(idx) = queues[w].lock().ok()?.pop_front() {
        return Some(idx);
    }
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(idx) = queues[victim].lock().ok()?.pop_back() {
            return Some(idx);
        }
    }
    None
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("trial panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("trial panicked: {s}")
    } else {
        "trial panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_task_drains_own_then_steals() {
        let queues: Vec<Mutex<VecDeque<usize>>> =
            vec![VecDeque::from([0, 1]).into(), VecDeque::from([2, 3]).into()];
        assert_eq!(pop_task(&queues, 0), Some(0));
        assert_eq!(pop_task(&queues, 0), Some(1));
        // Own queue empty: steal from the *back* of the peer.
        assert_eq!(pop_task(&queues, 0), Some(3));
        assert_eq!(pop_task(&queues, 1), Some(2));
        assert_eq!(pop_task(&queues, 0), None);
        assert_eq!(pop_task(&queues, 1), None);
    }

    #[test]
    fn panic_messages_from_both_payload_kinds() {
        let p = catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "trial panicked: static str");
        let p = catch_unwind(|| panic!("{}", String::from("formatted"))).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "trial panicked: formatted");
    }
}
