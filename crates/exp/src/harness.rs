//! Shared harness helpers: the environment knobs and Table-II defaults the
//! per-figure bench binaries all honour.
//!
//! These used to be copy-pasted across `crates/bench`; they live here now
//! so the spec runner, the CLI and every bench binary read the environment
//! the same way. `fedms-bench` re-exports them unchanged.

use fedms_core::{FedMsConfig, Result};

/// Number of training rounds requested via the environment
/// (`FEDMS_FAST` → 10, `FEDMS_ROUNDS` → explicit, default 60).
pub fn rounds_from_env() -> usize {
    if std::env::var("FEDMS_FAST").is_ok_and(|v| v == "1") {
        return 10;
    }
    std::env::var("FEDMS_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(60)
}

/// Experiment seeds requested via `FEDMS_SEEDS` (comma-separated), default
/// `[42]`.
pub fn seeds_from_env() -> Vec<u64> {
    std::env::var("FEDMS_SEEDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![42])
}

/// Worker-thread count requested via `FEDMS_THREADS`, defaulting to the
/// machine's available parallelism.
pub fn threads_from_env() -> usize {
    std::env::var("FEDMS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The experiment defaults shared by every accuracy figure: Table II plus
/// the calibrated substitutions documented in DESIGN.md.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn harness_defaults(seed: u64) -> Result<FedMsConfig> {
    let mut cfg = FedMsConfig::paper_defaults(seed)?;
    cfg.rounds = rounds_from_env();
    cfg.eval_every = (cfg.rounds / 20).max(1);
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Do not set the env vars here (tests run in parallel); just check
        // the defaults hold when unset.
        if std::env::var("FEDMS_ROUNDS").is_err() && std::env::var("FEDMS_FAST").is_err() {
            assert_eq!(rounds_from_env(), 60);
        }
        if std::env::var("FEDMS_SEEDS").is_err() {
            assert_eq!(seeds_from_env(), vec![42]);
        }
        if std::env::var("FEDMS_THREADS").is_err() {
            assert!(threads_from_env() >= 1);
        }
    }

    #[test]
    fn harness_defaults_track_env_rounds() {
        let cfg = harness_defaults(42).unwrap();
        assert_eq!(cfg.rounds, rounds_from_env());
        assert_eq!(cfg.eval_every, (cfg.rounds / 20).max(1));
    }
}
