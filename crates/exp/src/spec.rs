//! Declarative sweep specs: parse, validate, expand.
//!
//! A spec is a small TOML-subset document (see [`crate::toml`]) with three
//! tables:
//!
//! ```toml
//! [experiment]           # run identity and global knobs
//! name = "fig3"          # required; names the run directory
//! title = "..."          # optional, printed at sweep start
//! seeds = [42, 43]       # default [42]; FEDMS_SEEDS overrides
//! rounds = 60            # default 60; FEDMS_ROUNDS / FEDMS_FAST override
//! scale = "paper"        # "paper" (Table II) or "tiny" (test scale)
//! eval_every = 3         # default max(rounds/20, 1)
//! checkpoint_every = 0   # engine snapshot cadence, 0 = off
//!
//! [base]                 # overrides applied to every cell
//! byzantine = 2
//! attack = "noise"
//!
//! [grid]                 # each key is an axis; cells = cross product
//! filter = ["trimmed:0.2", "mean"]
//! epsilon = [0.0, 0.1, 0.2, 0.3]
//! ```
//!
//! Expansion crosses the grid axes in declaration order, applies `[base]`
//! then the cell's axis values to the scale's base config, crosses with the
//! seed list, and **deduplicates** trials whose resolved `(config, seed)`
//! coincide. Attack and filter values are compact `kind[:param[:param]]`
//! strings; `trimmed:matched` resolves β = B/P per cell (the paper's
//! matched trim rate), `adaptive:matched` resolves trim = B.

use crate::toml::{self, Value};
use crate::trial::Trial;
use fedms_attacks::{AttackKind, ClientAttackKind};
use fedms_core::{fnv1a64_hex, FedMsConfig, FilterKind};
use fedms_nn::LrSchedule;
use fedms_sim::UploadStrategy;
use std::fmt;

/// A spec-level failure: parse error, unknown key, bad value, infeasible
/// config.
#[derive(Debug, Clone)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl From<toml::TomlError> for SpecError {
    fn from(e: toml::TomlError) -> Self {
        SpecError(e.to_string())
    }
}

/// The base configuration a spec's overrides start from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// [`FedMsConfig::paper_defaults`] — Table II (K=50, P=10).
    Paper,
    /// [`FedMsConfig::tiny`] — the 8-client/4-server test federation.
    Tiny,
}

/// A parsed, validated sweep spec, ready to expand into trials.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// `[experiment] name` — names the run directory.
    pub name: String,
    /// `[experiment] title`, printed at sweep start.
    pub title: String,
    /// Seed list the grid is crossed with.
    pub seeds: Vec<u64>,
    /// Training rounds per trial.
    pub rounds: usize,
    /// Evaluation cadence; `None` = auto (`max(rounds/20, 1)`).
    pub eval_every: Option<usize>,
    /// Base config preset.
    pub scale: Scale,
    /// Engine-snapshot cadence for long trials (0 = off).
    pub checkpoint_every: usize,
    /// `[base]` overrides in declaration order.
    pub base: Vec<(String, Value)>,
    /// `[grid]` axes in declaration order.
    pub axes: Vec<(String, Vec<Value>)>,
    /// The verbatim spec source (hashed for the run id, copied into the
    /// run directory).
    pub source: String,
}

/// Override keys accepted in `[base]` and `[grid]`.
const KNOWN_KEYS: &[&str] = &[
    "clients",
    "servers",
    "byzantine",
    "epsilon",
    "byzantine_clients",
    "attack",
    "client_attack",
    "equivocate",
    "filter",
    "server_filter",
    "upload",
    "local_epochs",
    "batch_size",
    "lr",
    "dirichlet_alpha",
    "rounds",
    "participation",
    "cohort",
    "shard_samples",
    "eval_clients",
    "upload_drop_rate",
    "crashed_servers",
    "crash_round",
    "straggler_servers",
    "straggler_delay",
    "downlink_omission",
    "duplicate_rate",
    "retry_budget",
    "attempt_timeout_ms",
    "backoff_base_ms",
    "backoff_cap_ms",
    "failover",
    "proceed_degraded",
    "threat_schedule",
    "estimate_b",
    "backend",
];

fn bad(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

impl SweepSpec {
    /// Parses and validates a spec document.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending key or line for parse
    /// failures, unknown keys/tables, and malformed values.
    pub fn parse(source: &str) -> Result<SweepSpec, SpecError> {
        let doc = toml::parse(source)?;
        for table in &doc.tables {
            match table.name.as_str() {
                "experiment" | "base" | "grid" => {}
                "" => return Err(bad("keys before any table header; start with [experiment]")),
                other => return Err(bad(format!("unknown table [{other}]"))),
            }
        }
        let exp = doc.table("experiment").ok_or_else(|| bad("missing [experiment] table"))?;
        for entry in &exp.entries {
            match entry.key.as_str() {
                "name" | "title" | "figure" | "seeds" | "rounds" | "scale" | "eval_every"
                | "checkpoint_every" => {}
                other => {
                    return Err(bad(format!(
                        "line {}: unknown [experiment] key `{other}`",
                        entry.line
                    )))
                }
            }
        }
        let name = exp
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("[experiment] needs a string `name`"))?
            .to_string();
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(bad(format!("experiment name `{name}` must be a nonempty slug")));
        }
        let title = exp.get("title").and_then(Value::as_str).unwrap_or(&name).to_string();
        let seeds = match exp.get("seeds") {
            None => vec![42],
            Some(v) => {
                let items = v.as_array().ok_or_else(|| bad("`seeds` must be an array"))?;
                let mut seeds = Vec::new();
                for item in items {
                    let i = item
                        .as_int()
                        .filter(|&i| i >= 0)
                        .ok_or_else(|| bad("`seeds` entries must be non-negative integers"))?;
                    seeds.push(i as u64);
                }
                if seeds.is_empty() {
                    return Err(bad("`seeds` must not be empty"));
                }
                seeds
            }
        };
        let rounds = match exp.get("rounds") {
            None => 60,
            Some(v) => usize_value(v).map_err(|e| bad(format!("`rounds`: {e}")))?,
        };
        if rounds == 0 {
            return Err(bad("`rounds` must be positive"));
        }
        let eval_every = match exp.get("eval_every") {
            None => None,
            Some(v) => {
                let n = usize_value(v).map_err(|e| bad(format!("`eval_every`: {e}")))?;
                if n == 0 {
                    return Err(bad("`eval_every` must be positive"));
                }
                Some(n)
            }
        };
        let scale = match exp.get("scale").map(|v| v.as_str().unwrap_or_default()) {
            None | Some("paper") => Scale::Paper,
            Some("tiny") => Scale::Tiny,
            Some(other) => return Err(bad(format!("unknown scale `{other}` (paper|tiny)"))),
        };
        let checkpoint_every = match exp.get("checkpoint_every") {
            None => 0,
            Some(v) => usize_value(v).map_err(|e| bad(format!("`checkpoint_every`: {e}")))?,
        };

        let mut base = Vec::new();
        if let Some(table) = doc.table("base") {
            for entry in &table.entries {
                check_key(&entry.key, entry.line)?;
                if matches!(entry.value, Value::Array(_)) {
                    return Err(bad(format!(
                        "line {}: [base] values are scalars; put axis `{}` under [grid]",
                        entry.line, entry.key
                    )));
                }
                base.push((entry.key.clone(), entry.value.clone()));
            }
        }
        let mut axes = Vec::new();
        if let Some(table) = doc.table("grid") {
            for entry in &table.entries {
                check_key(&entry.key, entry.line)?;
                let values = entry
                    .value
                    .as_array()
                    .ok_or_else(|| {
                        bad(format!(
                            "line {}: [grid] values are arrays; scalar `{}` belongs in [base]",
                            entry.line, entry.key
                        ))
                    })?
                    .to_vec();
                if values.is_empty() {
                    return Err(bad(format!("line {}: axis `{}` is empty", entry.line, entry.key)));
                }
                axes.push((entry.key.clone(), values));
            }
        }

        let spec = SweepSpec {
            name,
            title,
            seeds,
            rounds,
            eval_every,
            scale,
            checkpoint_every,
            base,
            axes,
            source: source.to_string(),
        };
        // Surface bad cell values at parse time, not mid-sweep.
        spec.expand()?;
        Ok(spec)
    }

    /// Applies the harness environment overrides: `FEDMS_SEEDS` replaces
    /// the seed list, `FEDMS_ROUNDS` replaces the round count, and
    /// `FEDMS_FAST=1` clamps rounds to at most 10 (a smoke run never runs
    /// *longer* than the spec asks).
    pub fn apply_env(&mut self) {
        if let Some(seeds) = std::env::var("FEDMS_SEEDS")
            .ok()
            .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect::<Vec<u64>>())
            .filter(|v| !v.is_empty())
        {
            self.seeds = seeds;
        }
        if let Some(rounds) =
            std::env::var("FEDMS_ROUNDS").ok().and_then(|v| v.parse::<usize>().ok())
        {
            if rounds > 0 {
                self.rounds = rounds;
            }
        }
        if std::env::var("FEDMS_FAST").is_ok_and(|v| v == "1") {
            self.rounds = self.rounds.min(10);
        }
    }

    /// The spec-source hash (16 hex digits) — the run's identity.
    pub fn spec_hash(&self) -> String {
        fnv1a64_hex(self.source.as_bytes())
    }

    /// The default run id: `<name>-<spec-hash8>`. Deterministic, so
    /// re-running an unchanged spec resumes its own run directory.
    pub fn default_run_id(&self) -> String {
        format!("{}-{}", self.name, &self.spec_hash()[..8])
    }

    /// Expands the grid into the deduplicated trial list:
    /// `cells(axes) × seeds`, minus trials whose resolved `(config, seed)`
    /// duplicate an earlier one.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the cell for malformed override
    /// values or configs that fail [`FedMsConfig::validate`].
    pub fn expand(&self) -> Result<Vec<Trial>, SpecError> {
        let mut trials = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let cells = self.cells();
        for cell in &cells {
            let label = if cell.is_empty() {
                "base".to_string()
            } else {
                cell.iter()
                    .map(|(k, v)| format!("{k}={}", v.display()))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let axes: Vec<(String, String)> =
                cell.iter().map(|(k, v)| (k.clone(), v.display())).collect();
            for &seed in &self.seeds {
                let config = self
                    .resolve_config(cell, seed)
                    .map_err(|e| bad(format!("cell `{label}`: {e}")))?;
                config.validate().map_err(|e| bad(format!("cell `{label}`: {e}")))?;
                // Checkpoint segments must align with the evaluation grid
                // only when eval_every == 1; otherwise segment boundaries
                // add evaluation points. Both are deterministic; see
                // `trial::execute_trial`.
                let config_hash = config.stable_hash_hex();
                if !seen.insert((config_hash.clone(), seed)) {
                    continue; // duplicate cell (e.g. vanilla × every epsilon=0 variant)
                }
                let id = format!("{}-s{seed}-{}", slug(&label), &config_hash[..8]);
                trials.push(Trial {
                    id,
                    label: label.clone(),
                    axes: axes.clone(),
                    seed,
                    config,
                    config_hash,
                    checkpoint_every: self.checkpoint_every,
                });
            }
        }
        Ok(trials)
    }

    /// The grid cells (axis assignments) in odometer order, last axis
    /// fastest. A gridless spec has one empty cell.
    fn cells(&self) -> Vec<Vec<(String, Value)>> {
        let mut cells: Vec<Vec<(String, Value)>> = vec![Vec::new()];
        for (key, values) in &self.axes {
            let mut next = Vec::with_capacity(cells.len() * values.len());
            for cell in &cells {
                for v in values {
                    let mut c = cell.clone();
                    c.push((key.clone(), v.clone()));
                    next.push(c);
                }
            }
            cells = next;
        }
        cells
    }

    /// Resolves one cell to a full config: the scale's base config, then
    /// `[base]` overrides, then cell overrides (cell wins), with filters
    /// applied last so `matched` sees the final `B`/`P`.
    fn resolve_config(&self, cell: &[(String, Value)], seed: u64) -> Result<FedMsConfig, String> {
        let mut cfg = match self.scale {
            Scale::Paper => FedMsConfig::paper_defaults(seed).map_err(|e| e.to_string())?,
            Scale::Tiny => FedMsConfig::tiny(seed),
        };
        cfg.seed = seed;
        cfg.rounds = self.rounds;
        cfg.eval_every = self.eval_every.unwrap_or_else(|| (self.rounds / 20).max(1));

        // Merge [base] then the cell, cell entries overriding same-key base
        // entries.
        let mut merged: Vec<(String, Value)> = Vec::new();
        for (k, v) in self.base.iter().chain(cell.iter()) {
            if let Some(slot) = merged.iter_mut().find(|(mk, _)| mk == k) {
                slot.1 = v.clone();
            } else {
                merged.push((k.clone(), v.clone()));
            }
        }
        // Application order matters: sizes first (epsilon needs `servers`),
        // filters last (`matched` needs the final B and P).
        let phase = |key: &str| match key {
            "clients" | "servers" => 0,
            "byzantine" | "epsilon" | "byzantine_clients" => 1,
            "filter" | "server_filter" => 3,
            _ => 2,
        };
        for p in 0..4 {
            for (k, v) in merged.iter().filter(|(k, _)| phase(k) == p) {
                apply_override(&mut cfg, k, v).map_err(|e| format!("`{k}`: {e}"))?;
            }
        }
        Ok(cfg)
    }
}

fn check_key(key: &str, line: usize) -> Result<(), SpecError> {
    if KNOWN_KEYS.contains(&key) {
        Ok(())
    } else {
        Err(bad(format!("line {line}: unknown override key `{key}`")))
    }
}

fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut last_dash = true;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_dash = false;
        } else if !last_dash {
            out.push('-');
            last_dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    if out.is_empty() {
        out.push_str("cell");
    }
    out
}

fn usize_value(v: &Value) -> Result<usize, String> {
    v.as_int()
        .filter(|&i| i >= 0)
        .map(|i| i as usize)
        .ok_or_else(|| format!("expected a non-negative integer, got {}", v.kind()))
}

fn float_value(v: &Value) -> Result<f64, String> {
    v.as_float().ok_or_else(|| format!("expected a number, got {}", v.kind()))
}

fn bool_value(v: &Value) -> Result<bool, String> {
    v.as_bool().ok_or_else(|| format!("expected a boolean, got {}", v.kind()))
}

fn str_value(v: &Value) -> Result<&str, String> {
    v.as_str().ok_or_else(|| format!("expected a string, got {}", v.kind()))
}

/// Applies one override to the config. Filters may reference the already-
/// applied `byzantine`/`servers` fields (`matched`).
fn apply_override(cfg: &mut FedMsConfig, key: &str, v: &Value) -> Result<(), String> {
    match key {
        "clients" => cfg.clients = usize_value(v)?,
        "servers" => cfg.servers = usize_value(v)?,
        "byzantine" => cfg.byzantine_count = usize_value(v)?,
        "epsilon" => {
            let eps = float_value(v)?;
            if !(0.0..=1.0).contains(&eps) {
                return Err(format!("epsilon {eps} outside [0, 1]"));
            }
            cfg.byzantine_count = (eps * cfg.servers as f64).round() as usize;
        }
        "byzantine_clients" => cfg.byzantine_clients = usize_value(v)?,
        "attack" => cfg.attack = parse_attack(str_value(v)?)?,
        "client_attack" => cfg.client_attack = parse_client_attack(str_value(v)?)?,
        "equivocate" => cfg.equivocate = bool_value(v)?,
        "filter" => cfg.filter = parse_filter(str_value(v)?, cfg.byzantine_count, cfg.servers)?,
        "server_filter" => {
            // Matched rates for the server-side rule key off the Byzantine
            // *client* count over the client population.
            cfg.server_filter = parse_filter(str_value(v)?, cfg.byzantine_clients, cfg.clients)?;
        }
        "upload" => cfg.upload = parse_upload(str_value(v)?)?,
        "local_epochs" => cfg.local_epochs = usize_value(v)?,
        "batch_size" => cfg.batch_size = usize_value(v)?,
        "lr" => cfg.schedule = LrSchedule::Constant(float_value(v)? as f32),
        "dirichlet_alpha" => cfg.dirichlet_alpha = float_value(v)?,
        "rounds" => cfg.rounds = usize_value(v)?,
        "participation" => cfg.participation = float_value(v)?,
        "cohort" => cfg.cohort = usize_value(v)?,
        "shard_samples" => cfg.shard_samples = usize_value(v)?,
        "eval_clients" => cfg.eval_clients = usize_value(v)?,
        "upload_drop_rate" => cfg.upload_drop_rate = float_value(v)?,
        "crashed_servers" => cfg.fault.crashed_servers = usize_value(v)?,
        "crash_round" => cfg.fault.crash_round = usize_value(v)?,
        "straggler_servers" => {
            cfg.fault.straggler_servers = usize_value(v)?;
            if cfg.fault.straggler_servers > 0 && cfg.fault.straggler_delay == 0 {
                cfg.fault.straggler_delay = 1;
            }
        }
        "straggler_delay" => cfg.fault.straggler_delay = usize_value(v)?,
        "downlink_omission" => cfg.fault.downlink_omission = float_value(v)?,
        "duplicate_rate" => cfg.fault.duplicate_rate = float_value(v)?,
        "retry_budget" => cfg.recovery.retry_budget = usize_value(v)? as u32,
        "attempt_timeout_ms" => cfg.recovery.attempt_timeout_ms = usize_value(v)? as u64,
        "backoff_base_ms" => {
            cfg.recovery.backoff_base_ms = usize_value(v)? as u64;
            cfg.recovery.backoff_cap_ms =
                cfg.recovery.backoff_cap_ms.max(cfg.recovery.backoff_base_ms);
        }
        "backoff_cap_ms" => cfg.recovery.backoff_cap_ms = usize_value(v)? as u64,
        "failover" => cfg.recovery.failover = bool_value(v)?,
        "threat_schedule" => {
            cfg.threat = fedms_core::ThreatSchedule::parse(str_value(v)?)
                .map_err(|e| format!("bad threat_schedule: {e}"))?;
        }
        "backend" => {
            cfg.backend = fedms_core::BackendKind::parse(str_value(v)?)?;
        }
        "estimate_b" => {
            cfg.estimator = if bool_value(v)? {
                fedms_core::EstimatorPolicy::enabled()
            } else {
                fedms_core::EstimatorPolicy::default()
            };
        }
        "proceed_degraded" => {
            cfg.recovery.on_degraded = if bool_value(v)? {
                fedms_sim::DegradedMode::Proceed
            } else {
                fedms_sim::DegradedMode::Abort
            };
        }
        other => return Err(format!("unknown key `{other}`")),
    }
    Ok(())
}

/// Splits `kind:p1:p2` into the kind and its parameter list.
fn parts(s: &str) -> (&str, Vec<&str>) {
    let mut it = s.split(':');
    let kind = it.next().unwrap_or_default();
    (kind, it.collect())
}

fn param<T: std::str::FromStr>(p: &[&str], i: usize, default: T) -> Result<T, String> {
    match p.get(i) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad parameter `{s}`")),
    }
}

/// Parses a server attack: `kind[:param...]`, paper parameters as
/// defaults (`noise`→std 1.0, `random`→[-10,10], `safeguard`→γ 0.6,
/// `backward`→delay 2).
fn parse_attack(s: &str) -> Result<AttackKind, String> {
    let (kind, p) = parts(s);
    Ok(match kind {
        "benign" => AttackKind::Benign,
        "noise" => AttackKind::Noise { std: param(&p, 0, 1.0)? },
        "random" => AttackKind::Random { lo: param(&p, 0, -10.0)?, hi: param(&p, 1, 10.0)? },
        "safeguard" => AttackKind::Safeguard { gamma: param(&p, 0, 0.6)? },
        "backward" => AttackKind::Backward { delay: param(&p, 0, 2)? },
        "signflip" => AttackKind::SignFlip { scale: param(&p, 0, 1.0)? },
        "zero" => AttackKind::Zero,
        "alie" => AttackKind::Alie { z: param(&p, 0, 1.0)? },
        "ipm" => AttackKind::Ipm { epsilon: param(&p, 0, 0.5)? },
        other => return Err(format!("unknown attack `{other}`")),
    })
}

/// Parses a client attack: `kind[:param...]`.
fn parse_client_attack(s: &str) -> Result<ClientAttackKind, String> {
    let (kind, p) = parts(s);
    Ok(match kind {
        "signflip" => ClientAttackKind::SignFlip { scale: param(&p, 0, 1.0)? },
        "noise" => ClientAttackKind::Noise { std: param(&p, 0, 1.0)? },
        "random" => ClientAttackKind::Random { lo: param(&p, 0, -10.0)?, hi: param(&p, 1, 10.0)? },
        "amplify" => ClientAttackKind::Amplify { factor: param(&p, 0, 10.0)? },
        "labelflip" => ClientAttackKind::LabelFlip { offset: param(&p, 0, 1)? },
        other => return Err(format!("unknown client attack `{other}`")),
    })
}

/// Parses a filter: `kind[:param...]`. `trimmed:matched` → β = b/p;
/// `adaptive:matched` → trim = b.
fn parse_filter(s: &str, b: usize, p_servers: usize) -> Result<FilterKind, String> {
    let (kind, p) = parts(s);
    Ok(match kind {
        "mean" => FilterKind::Mean,
        "trimmed" => {
            if p.first() == Some(&"matched") {
                if p_servers == 0 {
                    return Err("matched trim rate needs servers > 0".into());
                }
                FilterKind::fedms(b, p_servers)
            } else {
                FilterKind::TrimmedMean { beta: param(&p, 0, 0.2)? }
            }
        }
        "adaptive" => {
            if p.first() == Some(&"matched") {
                FilterKind::fedms_adaptive(b)
            } else {
                FilterKind::AdaptiveTrimmedMean { trim: param(&p, 0, 1)? }
            }
        }
        "median" => FilterKind::Median,
        "krum" => FilterKind::Krum { f: param(&p, 0, 1)? },
        "multikrum" => FilterKind::MultiKrum { f: param(&p, 0, 1)?, m: param(&p, 1, 2)? },
        "geomedian" => FilterKind::GeometricMedian,
        "bulyan" => FilterKind::Bulyan { f: param(&p, 0, 1)? },
        "centeredclip" => FilterKind::CenteredClip { tau: param(&p, 0, 1.0)? },
        "normbound" => FilterKind::NormBound { factor: param(&p, 0, 3.0)? },
        other => return Err(format!("unknown filter `{other}`")),
    })
}

/// Parses an upload strategy: `sparse`, `full` or `redundant:<k>`.
fn parse_upload(s: &str) -> Result<UploadStrategy, String> {
    let (kind, p) = parts(s);
    Ok(match kind {
        "sparse" => UploadStrategy::Sparse,
        "full" => UploadStrategy::Full,
        "redundant" => UploadStrategy::Redundant(param(&p, 0, 2)?),
        other => return Err(format!("unknown upload strategy `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3ISH: &str = r#"
[experiment]
name = "fig3ish"
seeds = [1, 2]
rounds = 4
scale = "tiny"
eval_every = 1

[base]
attack = "noise"

[grid]
epsilon = [0.0, 0.25]
filter = ["trimmed:matched", "mean"]
"#;

    #[test]
    fn parses_and_expands_the_grid() {
        let spec = SweepSpec::parse(FIG3ISH).unwrap();
        assert_eq!(spec.name, "fig3ish");
        assert_eq!(spec.seeds, vec![1, 2]);
        assert_eq!(spec.scale, Scale::Tiny);
        let trials = spec.expand().unwrap();
        // 2 eps × 2 filters × 2 seeds = 8; dedup removes the eps=0
        // trimmed:matched duplicate of... nothing (beta 0 vs mean differ),
        // so all 8 survive.
        assert_eq!(trials.len(), 8);
        // Axis order: epsilon declared first, so it is the slow axis.
        assert_eq!(trials[0].axes[0].0, "epsilon");
        assert!(trials.iter().all(|t| t.config.rounds == 4 && t.config.eval_every == 1));
        // matched beta resolves against the tiny federation (4 servers).
        let matched: Vec<_> =
            trials.iter().filter(|t| t.label.contains("trimmed:matched")).collect();
        assert!(matched.iter().any(|t| t.config.filter == FilterKind::TrimmedMean { beta: 0.0 }));
        assert!(matched.iter().any(|t| t.config.filter == FilterKind::TrimmedMean { beta: 0.25 }));
        // epsilon=0.25 of 4 servers → 1 Byzantine.
        assert!(trials
            .iter()
            .any(|t| t.label.contains("epsilon=0.25") && t.config.byzantine_count == 1));
        // Ids are unique and slug-shaped.
        let mut ids: Vec<_> = trials.iter().map(|t| t.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 8);
        assert!(ids.iter().all(|id| id.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')));
    }

    #[test]
    fn dedup_collapses_identical_cells() {
        let spec = SweepSpec::parse(
            "[experiment]\nname = \"dup\"\nscale = \"tiny\"\nrounds = 2\n\n[grid]\nfilter = [\"mean\", \"mean\"]\n",
        )
        .unwrap();
        assert_eq!(spec.expand().unwrap().len(), 1, "identical cells must deduplicate");
    }

    #[test]
    fn base_and_cell_merge_cell_wins() {
        let spec = SweepSpec::parse(
            "[experiment]\nname = \"m\"\nscale = \"tiny\"\nrounds = 2\n\n[base]\nbyzantine = 1\nattack = \"zero\"\n\n[grid]\nbyzantine = [0, 2]\n",
        )
        .unwrap();
        let trials = spec.expand().unwrap();
        assert_eq!(trials.len(), 2);
        assert_eq!(trials[0].config.byzantine_count, 0);
        assert_eq!(trials[1].config.byzantine_count, 2);
        assert!(trials.iter().all(|t| t.config.attack == AttackKind::Zero));
    }

    #[test]
    fn threat_schedule_and_estimator_keys_apply() {
        let spec = SweepSpec::parse(
            "[experiment]\nname = \"threat\"\nscale = \"tiny\"\nrounds = 2\n\n[base]\nthreat_schedule = \"1..: compromise=1, attack=zero\"\nestimate_b = true\n",
        )
        .unwrap();
        let trials = spec.expand().unwrap();
        assert_eq!(trials.len(), 1);
        let cfg = &trials[0].config;
        assert!(!cfg.threat.is_trivial());
        assert_eq!(cfg.threat.epochs.len(), 1);
        assert!(cfg.estimator.enabled);
        // A malformed schedule is rejected up front with context.
        let e = SweepSpec::parse(
            "[experiment]\nname = \"t2\"\nscale = \"tiny\"\nrounds = 2\n\n[base]\nthreat_schedule = \"1..: wat=3\"\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("threat_schedule"), "{e}");
    }

    #[test]
    fn rejects_bad_specs_with_context() {
        for (text, needle) in [
            ("rounds = 3\n", "keys before any table"),
            ("[experiment]\nrounds = 3\n", "needs a string `name`"),
            ("[experiment]\nname = \"x\"\n[grid]\nfilter = \"mean\"\n", "arrays"),
            ("[experiment]\nname = \"x\"\n[base]\nfilter = [\"mean\"]\n", "scalars"),
            ("[experiment]\nname = \"x\"\n[base]\nwat = 1\n", "unknown override key `wat`"),
            ("[experiment]\nname = \"x\"\n[weird]\na = 1\n", "unknown table"),
            ("[experiment]\nname = \"x\"\nrounds = 0\n", "positive"),
            ("[experiment]\nname = \"x\"\nseeds = []\n", "seeds"),
            (
                "[experiment]\nname = \"x\"\nscale = \"tiny\"\n[base]\nattack = \"martian\"\n",
                "unknown attack",
            ),
            ("[experiment]\nname = \"x\"\nscale = \"tiny\"\n[base]\nbyzantine = 9\n", "byzantine"),
        ] {
            let e = SweepSpec::parse(text).unwrap_err();
            assert!(e.to_string().contains(needle), "{text:?} -> {e}");
        }
    }

    #[test]
    fn attack_filter_upload_parsers() {
        assert_eq!(parse_attack("noise").unwrap(), AttackKind::Noise { std: 1.0 });
        assert_eq!(parse_attack("noise:2.5").unwrap(), AttackKind::Noise { std: 2.5 });
        assert_eq!(parse_attack("random:-1:1").unwrap(), AttackKind::Random { lo: -1.0, hi: 1.0 });
        assert_eq!(parse_attack("backward:5").unwrap(), AttackKind::Backward { delay: 5 });
        assert!(parse_attack("noise:abc").is_err());
        assert_eq!(
            parse_filter("trimmed:0.3", 0, 10).unwrap(),
            FilterKind::TrimmedMean { beta: 0.3 }
        );
        assert_eq!(
            parse_filter("trimmed:matched", 3, 10).unwrap(),
            FilterKind::TrimmedMean { beta: 0.3 }
        );
        assert_eq!(
            parse_filter("adaptive:matched", 2, 10).unwrap(),
            FilterKind::AdaptiveTrimmedMean { trim: 2 }
        );
        assert_eq!(
            parse_filter("multikrum:2:4", 0, 10).unwrap(),
            FilterKind::MultiKrum { f: 2, m: 4 }
        );
        assert_eq!(parse_upload("redundant:3").unwrap(), UploadStrategy::Redundant(3));
        assert!(parse_filter("quantum", 0, 10).is_err());
        assert!(parse_upload("carrier-pigeon").is_err());
    }

    #[test]
    fn env_overrides_guarded() {
        // Like the bench crate's env tests: only assert when the variables
        // are unset (tests run in parallel; we never mutate the env).
        if std::env::var("FEDMS_SEEDS").is_err()
            && std::env::var("FEDMS_ROUNDS").is_err()
            && std::env::var("FEDMS_FAST").is_err()
        {
            let mut spec = SweepSpec::parse(FIG3ISH).unwrap();
            spec.apply_env();
            assert_eq!(spec.seeds, vec![1, 2]);
            assert_eq!(spec.rounds, 4);
        }
    }

    #[test]
    fn run_id_is_deterministic_and_tracks_source() {
        let a = SweepSpec::parse(FIG3ISH).unwrap();
        let b = SweepSpec::parse(FIG3ISH).unwrap();
        assert_eq!(a.default_run_id(), b.default_run_id());
        assert!(a.default_run_id().starts_with("fig3ish-"));
        let c = SweepSpec::parse(&FIG3ISH.replace("rounds = 4", "rounds = 3")).unwrap();
        assert_ne!(a.default_run_id(), c.default_run_id());
    }

    #[test]
    fn slug_shapes() {
        assert_eq!(slug("attack=noise, filter=trimmed:0.2"), "attack-noise-filter-trimmed-0-2");
        assert_eq!(slug("***"), "cell");
    }
}
