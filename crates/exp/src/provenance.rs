//! Provenance-stamped results files.
//!
//! The old `save_json` wrote `results/<name>.json`, silently clobbering
//! whatever a previous run (possibly of different code, at a different git
//! rev) had produced. The stamped writer keeps history instead:
//!
//! * the artifact lands at `results/<name>-<hash8>.json`, where the hash is
//!   FNV-1a over the serialized payload — identical reruns land on the
//!   identical file, distinct results never collide;
//! * the artifact wraps the payload with a [`Provenance`] block (git rev,
//!   content hash, producing tool);
//! * `results/<name>.json` becomes a **symlink** to the newest artifact
//!   (with a JSON pointer file as the fallback where symlinks are
//!   unavailable), so the conventional path keeps working while prior
//!   artifacts survive.

use fedms_core::fnv1a64_hex;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Who/what produced a results artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// `git rev-parse --short HEAD` at write time (`"unknown"` outside a
    /// checkout).
    pub git_rev: String,
    /// FNV-1a hash (16 hex digits) of the serialized payload.
    pub content_hash: String,
    /// The producing binary or subsystem (e.g. `"fedms-bench/fig2"`).
    pub tool: String,
}

/// Writes `value` to `dir/<name>-<hash8>.json` with a [`Provenance`] stamp
/// and points `dir/<name>.json` at it.
///
/// Returns the artifact path.
///
/// # Errors
///
/// Propagates serialization and I/O failures.
pub fn save_json_stamped_in<T: Serialize>(
    dir: &Path,
    name: &str,
    value: &T,
    tool: &str,
) -> io::Result<PathBuf> {
    let payload =
        serde_json::to_string_pretty(value).map_err(|e| io::Error::other(e.to_string()))?;
    let content_hash = fnv1a64_hex(payload.as_bytes());
    let provenance = Provenance {
        git_rev: crate::store::git_rev(),
        content_hash: content_hash.clone(),
        tool: tool.to_string(),
    };
    let artifact_name = format!("{name}-{}.json", &content_hash[..8]);
    std::fs::create_dir_all(dir)?;
    let artifact = dir.join(&artifact_name);
    let mut stamped = serde_json::Map::new();
    stamped.insert(
        "provenance".to_string(),
        serde_json::to_value(&provenance).map_err(|e| io::Error::other(e.to_string()))?,
    );
    stamped.insert(
        "data".to_string(),
        serde_json::to_value(value).map_err(|e| io::Error::other(e.to_string()))?,
    );
    let body =
        serde_json::to_string_pretty(&stamped).map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(&artifact, body)?;
    point_latest(dir, name, &artifact_name)?;
    Ok(artifact)
}

/// Points `dir/<name>.json` at `artifact_name`: a relative symlink where
/// possible, a small JSON pointer file otherwise.
fn point_latest(dir: &Path, name: &str, artifact_name: &str) -> io::Result<()> {
    let latest = dir.join(format!("{name}.json"));
    // Remove whatever is there — a stale symlink, an old-style plain file,
    // or a pointer file. (`symlink_metadata` so a dangling link still
    // registers as present.)
    if std::fs::symlink_metadata(&latest).is_ok() {
        std::fs::remove_file(&latest)?;
    }
    #[cfg(unix)]
    {
        if std::os::unix::fs::symlink(artifact_name, &latest).is_ok() {
            return Ok(());
        }
    }
    let pointer = format!("{{\n  \"latest\": \"{artifact_name}\"\n}}\n");
    std::fs::write(&latest, pointer)
}

/// Stamped drop-in for the bench harness's historical `save_json`: writes
/// under `results/` relative to the working directory, best effort (a
/// warning on failure rather than aborting the experiment output).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    match save_json_stamped_in(Path::new("results"), name, value, "fedms-bench") {
        Ok(path) => println!("results saved to {} (latest: results/{name}.json)", path.display()),
        Err(e) => eprintln!("warning: could not save results/{name}.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fedms-exp-prov-{}-{tag}", std::process::id()))
    }

    #[test]
    fn stamps_and_points_latest_without_clobbering() {
        let dir = tmp("stamp");
        let _ = std::fs::remove_dir_all(&dir);
        let a = save_json_stamped_in(&dir, "fig9", &vec![1, 2, 3], "test").unwrap();
        let b = save_json_stamped_in(&dir, "fig9", &vec![4, 5, 6], "test").unwrap();
        assert_ne!(a, b, "distinct payloads must land on distinct artifacts");
        assert!(a.exists() && b.exists(), "history must survive");
        let latest = dir.join("fig9.json");
        let resolved = std::fs::read_to_string(&latest).unwrap();
        assert!(resolved.contains("4"), "latest must follow the newest artifact");
        // Identical payload → identical artifact, no duplicate history.
        let c = save_json_stamped_in(&dir, "fig9", &vec![4, 5, 6], "test").unwrap();
        assert_eq!(b, c);
        // The stamp carries provenance.
        let body = std::fs::read_to_string(&b).unwrap();
        for needle in ["provenance", "git_rev", "content_hash", "\"tool\": \"test\""] {
            assert!(body.contains(needle), "missing {needle} in {body}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaces_a_plain_file_latest() {
        let dir = tmp("plain");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("old.json"), b"{}").unwrap();
        save_json_stamped_in(&dir, "old", &42u32, "test").unwrap();
        let body = std::fs::read_to_string(dir.join("old.json")).unwrap();
        assert!(body.contains("42"), "pointer must now resolve to the stamped artifact");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
