//! # fedms-exp — parallel experiment orchestration
//!
//! The paper's evaluation is a grid — 4 attacks × ε ∈ {0,10,20,30}% ×
//! D_α ∈ {1,5,10,1000} × filters × seeds — and this crate turns any such
//! grid into a config file instead of a new binary:
//!
//! 1. **Declarative sweep specs** ([`SweepSpec`], [`toml`]): a TOML-subset
//!    document describing a base [`FedMsConfig`], a grid of overrides and a
//!    seed list, expanded into a deduplicated list of [`Trial`]s.
//! 2. **A work-stealing scheduler** ([`run_sweep`]): trials run in parallel
//!    across `--threads` workers with bounded-channel progress reporting
//!    and per-trial panic isolation — a poisoned trial is recorded as
//!    failed, the sweep continues.
//! 3. **A resumable run store** ([`RunStore`]): `results/runs/<run-id>/`
//!    holds a manifest (spec hash, git rev, seed list, trial roster) and
//!    one JSONL record per finished trial; a killed sweep re-run with the
//!    same spec (or `--resume <run-id>`) skips every trial whose completed
//!    record is already on disk, and long trials additionally checkpoint
//!    mid-flight through the engine's [`fedms_sim::Snapshot`].
//!
//! The headline invariant is **determinism**: a trial's record is a pure
//! function of its config and seed, so a sweep at `--threads 8` writes
//! byte-identical per-trial records to the same sweep at `--threads 1`,
//! interrupted-and-resumed or not. `tests/sweep.rs` enforces this by
//! proptest.
//!
//! Checked-in specs for the paper's figures live under `experiments/`; run
//! one with:
//!
//! ```text
//! fedms exp run experiments/fig3.toml --threads 8
//! ```
//!
//! [`FedMsConfig`]: fedms_core::FedMsConfig

mod harness;
mod provenance;
mod report;
mod scheduler;
mod spec;
mod store;
pub mod toml;
mod trial;

pub use harness::{harness_defaults, rounds_from_env, seeds_from_env, threads_from_env};
pub use provenance::{save_json, save_json_stamped_in, Provenance};
pub use report::{average_points, panels, print_series_table, Series};
pub use scheduler::{run_sweep, run_sweep_with, Progress, SweepReport};
pub use spec::{Scale, SpecError, SweepSpec};
pub use store::{git_rev, ManifestTrial, RunManifest, RunStore};
pub use trial::{execute_trial, Trial, TrialRecord, TrialStatus};

use std::path::Path;

/// Builds the [`RunManifest`] for a spec and its expanded trials.
pub fn manifest_for(spec: &SweepSpec, run_id: &str, trials: &[Trial]) -> RunManifest {
    RunManifest {
        run_id: run_id.to_string(),
        name: spec.name.clone(),
        spec_hash: spec.spec_hash(),
        git_rev: git_rev(),
        seeds: spec.seeds.clone(),
        rounds: spec.rounds,
        trials: trials
            .iter()
            .map(|t| ManifestTrial {
                id: t.id.clone(),
                label: t.label.clone(),
                seed: t.seed,
                config_hash: t.config_hash.clone(),
            })
            .collect(),
    }
}

/// Parses `source`, applies the harness environment overrides, expands the
/// grid, opens (or resumes) the run store under `base_dir`, and runs the
/// sweep on `threads` workers.
///
/// `run_id` overrides the spec-derived directory name (the `--resume`
/// path); when it names an existing run of a *different* spec, the call
/// fails rather than mixing records.
///
/// # Errors
///
/// Fails on spec errors, store I/O errors and spec-hash mismatches.
/// Individual trial failures do not fail the sweep — they are reported in
/// the returned [`SweepReport`].
pub fn run_spec_in(
    source: &str,
    base_dir: &Path,
    run_id: Option<&str>,
    threads: usize,
    on_progress: impl FnMut(&Progress),
) -> Result<(SweepSpec, RunStore, SweepReport), SpecError> {
    let mut spec = SweepSpec::parse(source)?;
    spec.apply_env();
    let trials = spec.expand()?;
    let run_id = run_id.map_or_else(|| spec.default_run_id(), str::to_string);
    let store = RunStore::create_or_open(base_dir, &run_id)
        .map_err(|e| SpecError(format!("open run store: {e}")))?;
    if let Ok(existing) = store.load_manifest() {
        if existing.spec_hash != spec.spec_hash() {
            return Err(SpecError(format!(
                "run {run_id} was created from spec hash {} but this spec hashes to {} — \
                 refusing to mix records (use a fresh run id or the matching spec)",
                existing.spec_hash,
                spec.spec_hash()
            )));
        }
    }
    store
        .write_manifest(&manifest_for(&spec, &run_id, &trials), &spec.source)
        .map_err(|e| SpecError(format!("write manifest: {e}")))?;
    let report = run_sweep(&trials, &store, threads, on_progress).map_err(SpecError)?;
    Ok((spec, store, report))
}

/// [`run_spec_in`] with the conventional store location `results/runs/`,
/// the `FEDMS_THREADS`/available-parallelism thread count, and progress
/// printed to stdout. The entry point for the figure binaries.
///
/// # Errors
///
/// As [`run_spec_in`].
pub fn run_spec(source: &str) -> Result<(SweepSpec, SweepReport), SpecError> {
    let threads = threads_from_env();
    let (spec, store, report) =
        run_spec_in(source, Path::new("results/runs"), None, threads, print_progress)?;
    println!(
        "sweep `{}`: {} executed, {} skipped, {} failed -> {}",
        spec.name,
        report.executed,
        report.skipped,
        report.failed,
        store.root().display()
    );
    Ok((spec, report))
}

/// The default progress printer: one line per finished trial.
pub fn print_progress(progress: &Progress) {
    match progress {
        Progress::Skipped { trial_id } => println!("  [skip] {trial_id} (already completed)"),
        Progress::Started { .. } => {}
        Progress::Finished { record } => match &record.status {
            TrialStatus::Completed => println!(
                "  [done] {} final={:.3}",
                record.trial_id,
                record.final_accuracy.unwrap_or(0.0)
            ),
            TrialStatus::Failed { error } => {
                println!("  [FAIL] {} {error}", record.trial_id);
            }
        },
    }
}
