//! Turning trial records back into figure series.
//!
//! The figure binaries are thin wrappers: they run a checked-in spec and
//! then use [`panels`] to regroup the flat record list into the paper's
//! panel/series structure — one panel per value of one grid axis, one
//! series per value of another, seeds averaged point-wise.

use crate::trial::TrialRecord;
use serde::Serialize;

/// One labelled accuracy curve: `(round, accuracy)` points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Curve label (e.g. `"trimmed:0.2"`).
    pub label: String,
    /// `(round, mean accuracy)` points.
    pub points: Vec<(usize, f32)>,
}

impl Series {
    /// The accuracy at the last recorded round.
    pub fn final_accuracy(&self) -> Option<f32> {
        self.points.last().map(|&(_, a)| a)
    }
}

/// Averages several point series point-wise (they share the round grid by
/// construction: same config modulo seed).
pub fn average_points(runs: &[&[(usize, f32)]]) -> Vec<(usize, f32)> {
    let Some(first) = runs.first() else { return Vec::new() };
    let mut acc: Vec<(usize, f64)> = first.iter().map(|&(r, a)| (r, f64::from(a))).collect();
    for run in &runs[1..] {
        for (slot, &(r, a)) in acc.iter_mut().zip(run.iter()) {
            debug_assert_eq!(slot.0, r);
            slot.1 += f64::from(a);
        }
    }
    let n = runs.len() as f64;
    acc.into_iter().map(|(r, a)| (r, (a / n) as f32)).collect()
}

fn axis_value<'r>(record: &'r TrialRecord, key: &str) -> Option<&'r str> {
    record.axes.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// Groups completed records into `(panel value, series list)` pairs.
///
/// `panel_key` and `series_key` name grid axes; records are grouped by
/// their `panel_key` value (first-seen order), then within each panel by
/// their `series_key` value, averaging across seeds. Pass `panel_key = ""`
/// for a single unnamed panel. Failed records and records missing either
/// axis are skipped — a partially-failed sweep still yields its surviving
/// curves.
pub fn panels(
    records: &[TrialRecord],
    panel_key: &str,
    series_key: &str,
) -> Vec<(String, Vec<Series>)> {
    // Records grouped by series value, nested under their panel value.
    type SeriesGroup<'r> = Vec<(String, Vec<&'r TrialRecord>)>;
    let mut out: Vec<(String, SeriesGroup)> = Vec::new();
    for record in records.iter().filter(|r| r.is_completed()) {
        let panel = if panel_key.is_empty() { Some("") } else { axis_value(record, panel_key) };
        let (Some(panel), Some(series)) = (panel, axis_value(record, series_key)) else {
            continue;
        };
        let panel_slot = match out.iter_mut().find(|(p, _)| p == panel) {
            Some(slot) => slot,
            None => {
                out.push((panel.to_string(), Vec::new()));
                out.last_mut().expect("just pushed")
            }
        };
        let series = series.to_string();
        match panel_slot.1.iter_mut().find(|(s, _)| *s == series) {
            Some((_, records)) => records.push(record),
            None => panel_slot.1.push((series, vec![record])),
        }
    }
    out.into_iter()
        .map(|(panel, series)| {
            let series = series
                .into_iter()
                .map(|(label, records)| {
                    let runs: Vec<&[(usize, f32)]> =
                        records.iter().map(|r| r.points.as_slice()).collect();
                    Series { label, points: average_points(&runs) }
                })
                .collect();
            (panel, series)
        })
        .collect()
}

/// Prints labelled curves as an aligned text table: one row per evaluated
/// round, one column per series.
pub fn print_series_table(title: &str, series: &[Series]) {
    println!("\n== {title} ==");
    if series.is_empty() {
        println!("(no data)");
        return;
    }
    print!("{:>6}", "round");
    for s in series {
        print!(" {:>12}", truncate_label(&s.label, 12));
    }
    println!();
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let round = series.iter().find_map(|s| s.points.get(i).map(|&(r, _)| r)).unwrap_or(i);
        print!("{round:>6}");
        for s in series {
            match s.points.get(i) {
                Some(&(_, a)) => print!(" {:>12.3}", a),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
    print!("{:>6}", "final");
    for s in series {
        match s.final_accuracy() {
            Some(a) => print!(" {:>12.3}", a),
            None => print!(" {:>12}", "-"),
        }
    }
    println!();
}

fn truncate_label(label: &str, width: usize) -> String {
    if label.chars().count() <= width {
        label.to_string()
    } else {
        label.chars().take(width - 1).chain(std::iter::once('…')).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::TrialStatus;

    fn record(axes: &[(&str, &str)], seed: u64, points: Vec<(usize, f32)>) -> TrialRecord {
        TrialRecord {
            trial_id: format!("t-{seed}-{}", axes.iter().map(|(_, v)| *v).collect::<String>()),
            label: String::new(),
            axes: axes.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
            seed,
            config_hash: String::new(),
            status: TrialStatus::Completed,
            final_accuracy: points.last().map(|&(_, a)| a),
            points,
            comm: None,
        }
    }

    #[test]
    fn series_final_accuracy() {
        let s = Series { label: "x".into(), points: vec![(0, 0.1), (5, 0.9)] };
        assert_eq!(s.final_accuracy(), Some(0.9));
        let empty = Series { label: "y".into(), points: vec![] };
        assert_eq!(empty.final_accuracy(), None);
    }

    #[test]
    fn panels_group_and_average_seeds() {
        let records = vec![
            record(&[("attack", "noise"), ("filter", "mean")], 1, vec![(0, 0.2), (1, 0.4)]),
            record(&[("attack", "noise"), ("filter", "mean")], 2, vec![(0, 0.4), (1, 0.6)]),
            record(&[("attack", "noise"), ("filter", "trimmed:0.2")], 1, vec![(0, 0.5), (1, 0.7)]),
            record(&[("attack", "zero"), ("filter", "mean")], 1, vec![(0, 0.1), (1, 0.2)]),
        ];
        let panels = panels(&records, "attack", "filter");
        assert_eq!(panels.len(), 2);
        assert_eq!(panels[0].0, "noise");
        assert_eq!(panels[0].1.len(), 2);
        let mean = &panels[0].1[0];
        assert_eq!(mean.label, "mean");
        assert_eq!(mean.points, vec![(0, 0.3), (1, 0.5)], "seeds must average point-wise");
        assert_eq!(panels[1].0, "zero");
    }

    #[test]
    fn failed_records_are_skipped() {
        let mut bad = record(&[("attack", "noise"), ("filter", "mean")], 1, vec![(0, 0.2)]);
        bad.status = TrialStatus::Failed { error: "boom".into() };
        let good = record(&[("attack", "noise"), ("filter", "mean")], 2, vec![(0, 0.4)]);
        let panels = panels(&[bad, good], "attack", "filter");
        assert_eq!(panels[0].1[0].points, vec![(0, 0.4)]);
    }

    #[test]
    fn empty_panel_key_gives_single_panel() {
        let records = vec![
            record(&[("filter", "mean")], 1, vec![(0, 0.2)]),
            record(&[("filter", "median")], 1, vec![(0, 0.3)]),
        ];
        let panels = panels(&records, "", "filter");
        assert_eq!(panels.len(), 1);
        assert_eq!(panels[0].1.len(), 2);
    }

    #[test]
    fn truncate_label_width() {
        assert_eq!(truncate_label("short", 12), "short");
        assert_eq!(truncate_label("averyverylonglabel", 6).chars().count(), 6);
    }
}
