//! Hand-rolled parser for the TOML subset used by experiment specs.
//!
//! The build environment is offline, so specs are parsed by this vendored
//! ~200-line parser instead of a registry crate. The accepted grammar is a
//! strict subset of TOML, enough for flat sweep specs:
//!
//! * `[table]` headers (no nesting, no dotted keys, no array-of-tables),
//! * `key = value` pairs with bare keys (`[A-Za-z0-9_-]+`),
//! * values: `"strings"` (with `\"`, `\\`, `\n`, `\t` escapes), integers,
//!   floats, booleans, and single-line arrays of those scalars,
//! * `#` comments and blank lines.
//!
//! Everything else is a [`TomlError`] carrying the offending line number —
//! a spec typo should fail loudly before any trial runs.

use std::fmt;

/// A scalar or array value in a spec document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A boolean literal.
    Bool(bool),
    /// A single-line array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// A short grammar-level name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }

    /// Canonical display form used in trial labels and axis values:
    /// strings verbatim, numbers/bools via their `Display`.
    pub fn display(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Array(v) => {
                let items: Vec<String> = v.iter().map(Value::display).collect();
                format!("[{}]", items.join(","))
            }
        }
    }
}

/// One `key = value` entry with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Entry {
    /// The bare key.
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-based source line, for error messages.
    pub line: usize,
}

/// One `[name]` table and its entries, in declaration order.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table name (`""` for keys before any header).
    pub name: String,
    /// Entries in declaration order.
    pub entries: Vec<Entry>,
}

impl Table {
    /// The value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|e| e.key == key).map(|e| &e.value)
    }
}

/// A parsed spec document: tables in declaration order.
#[derive(Debug, Clone, Default)]
pub struct Doc {
    /// Tables in declaration order (the root table, if any keys precede a
    /// header, is named `""`).
    pub tables: Vec<Table>,
}

impl Doc {
    /// The first table named `name`, if any.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }
}

/// A parse failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, msg: impl Into<String>) -> TomlError {
    TomlError { line, msg: msg.into() }
}

/// Strips a trailing `#` comment, respecting string quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_string(s: &str, line: usize) -> Result<(Value, usize), TomlError> {
    debug_assert!(s.starts_with('"'));
    let mut out = String::new();
    let mut chars = s.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((Value::Str(out), i + 1)),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => return Err(err(line, format!("unknown escape \\{other}"))),
                None => return Err(err(line, "unterminated escape")),
            },
            _ => out.push(c),
        }
    }
    Err(err(line, "unterminated string"))
}

fn parse_scalar(s: &str, line: usize) -> Result<Value, TomlError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(err(line, "missing value"));
    }
    if s.starts_with('"') {
        let (v, used) = parse_string(s, line)?;
        if !s[used..].trim().is_empty() {
            return Err(err(line, format!("trailing input after string: `{}`", &s[used..])));
        }
        return Ok(v);
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    // Floats must look like TOML floats (reject `nan`/`inf` spellings other
    // than what a spec legitimately needs — specs have no use for either).
    if s.contains(['.', 'e', 'E']) {
        if let Ok(f) = s.parse::<f64>() {
            if f.is_finite() {
                return Ok(Value::Float(f));
            }
        }
    }
    Err(err(line, format!("unrecognised value `{s}`")))
}

/// Splits an array body on top-level commas (commas inside strings do not
/// split).
fn split_array_items(body: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&body[start..]);
    items
}

fn parse_value(s: &str, line: usize) -> Result<Value, TomlError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('[') {
        let Some(body) = rest.strip_suffix(']') else {
            return Err(err(line, "unterminated array (arrays must be single-line)"));
        };
        if body.trim().is_empty() {
            return Ok(Value::Array(Vec::new()));
        }
        let mut items = Vec::new();
        for item in split_array_items(body) {
            let item = item.trim();
            if item.is_empty() {
                return Err(err(line, "empty array element"));
            }
            if item.starts_with('[') {
                return Err(err(line, "nested arrays are not supported"));
            }
            items.push(parse_scalar(item, line)?);
        }
        return Ok(Value::Array(items));
    }
    parse_scalar(s, line)
}

/// Parses a spec document.
///
/// # Errors
///
/// Returns the first [`TomlError`] encountered, with its source line.
pub fn parse(text: &str) -> Result<Doc, TomlError> {
    let mut doc = Doc::default();
    let mut current: Option<Table> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(err(line_no, "malformed table header"));
            };
            let name = name.trim();
            if !is_bare_key(name) {
                return Err(err(line_no, format!("invalid table name `{name}`")));
            }
            if doc.table(name).is_some() || current.as_ref().is_some_and(|t| t.name == name) {
                return Err(err(line_no, format!("duplicate table [{name}]")));
            }
            if let Some(t) = current.take() {
                doc.tables.push(t);
            }
            current = Some(Table { name: name.to_string(), entries: Vec::new() });
            continue;
        }
        let Some(eq) = find_top_level_eq(line) else {
            return Err(err(line_no, format!("expected `key = value`, got `{line}`")));
        };
        let key = line[..eq].trim();
        if !is_bare_key(key) {
            return Err(err(line_no, format!("invalid key `{key}`")));
        }
        let value = parse_value(&line[eq + 1..], line_no)?;
        let table =
            current.get_or_insert_with(|| Table { name: String::new(), entries: Vec::new() });
        if table.get(key).is_some() {
            return Err(err(line_no, format!("duplicate key `{key}` in [{}]", table.name)));
        }
        table.entries.push(Entry { key: key.to_string(), value, line: line_no });
    }
    if let Some(t) = current.take() {
        doc.tables.push(t);
    }
    Ok(doc)
}

/// The byte offset of the first `=` outside any string, if any.
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_keys_and_scalars() {
        let doc = parse(
            "# leading comment\n[experiment]\nname = \"fig9\" # trailing\nrounds = 60\n\
             alpha = 10.5\nfast = true\n[grid]\nfilter = [\"mean\", \"trimmed:0.2\"]\n\
             eps = [0.0, 0.1]\nns = [1, 2, 3]\n",
        )
        .unwrap();
        let exp = doc.table("experiment").unwrap();
        assert_eq!(exp.get("name").unwrap().as_str(), Some("fig9"));
        assert_eq!(exp.get("rounds").unwrap().as_int(), Some(60));
        assert_eq!(exp.get("alpha").unwrap().as_float(), Some(10.5));
        assert_eq!(exp.get("fast").unwrap().as_bool(), Some(true));
        let grid = doc.table("grid").unwrap();
        assert_eq!(grid.get("filter").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(grid.get("eps").unwrap().as_array().unwrap()[1], Value::Float(0.1));
        assert_eq!(grid.get("ns").unwrap().as_array().unwrap()[2], Value::Int(3));
    }

    #[test]
    fn string_escapes_and_hash_inside_string() {
        let doc = parse("title = \"a #\\\"quoted\\\"\\nthing\"\n").unwrap();
        let root = doc.table("").unwrap();
        assert_eq!(root.get("title").unwrap().as_str(), Some("a #\"quoted\"\nthing"));
    }

    #[test]
    fn int_widens_to_float() {
        let doc = parse("x = 3\n").unwrap();
        assert_eq!(doc.table("").unwrap().get("x").unwrap().as_float(), Some(3.0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, line, needle) in [
            ("a = 1\nb =\n", 2, "missing value"),
            ("[bad\n", 1, "malformed table"),
            ("a = 1\na = 2\n", 2, "duplicate key"),
            ("[t]\n[t]\n", 2, "duplicate table"),
            ("a = [1, [2]]\n", 1, "nested"),
            ("a = [1,\n2]\n", 1, "single-line"),
            ("a = \"open\n", 1, "unterminated string"),
            ("just a line\n", 1, "expected `key = value`"),
            ("a = wat\n", 1, "unrecognised value"),
            ("a = 1.0 trailing? no: `1.0t` unrecognised\n", 1, "unrecognised"),
        ] {
            let e = parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?} -> {e}");
            assert!(e.msg.contains(needle), "{text:?} -> {e}");
        }
    }

    #[test]
    fn empty_array_and_negative_numbers() {
        let doc = parse("a = []\nb = [-1, -2.5]\n").unwrap();
        let t = doc.table("").unwrap();
        assert!(t.get("a").unwrap().as_array().unwrap().is_empty());
        assert_eq!(t.get("b").unwrap().as_array().unwrap()[0], Value::Int(-1));
        assert_eq!(t.get("b").unwrap().as_array().unwrap()[1], Value::Float(-2.5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Float(1.0).display(), "1");
        assert_eq!(Value::Float(0.25).display(), "0.25");
        assert_eq!(Value::Str("trimmed:0.2".into()).display(), "trimmed:0.2");
        assert_eq!(Value::Int(-3).display(), "-3");
    }
}
