//! The resumable run store: `results/runs/<run-id>/`.
//!
//! Layout:
//!
//! ```text
//! results/runs/<run-id>/
//!   manifest.json          # RunManifest: spec hash, git rev, trial roster
//!   spec.toml              # verbatim copy of the spec that defined the run
//!   trials/<trial-id>.json # one JSONL record per finished trial
//!   trials/<trial-id>.ckpt.json  # transient engine snapshot (long trials)
//! ```
//!
//! The store is the sweep's source of truth for resume: a trial is done iff
//! its record file exists and parses as `Completed`. Records are written by
//! a single thread (the scheduler's collector) with a write-then-rename so
//! a kill never leaves a half-written record behind.

use crate::trial::TrialRecord;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// Per-trial roster entry in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestTrial {
    /// The trial's deterministic id (also its record file stem).
    pub id: String,
    /// Human-readable cell label.
    pub label: String,
    /// The trial's seed.
    pub seed: u64,
    /// The trial's config hash.
    pub config_hash: String,
}

/// The run's identity and provenance, written once at sweep start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// The run directory name, `<spec-name>-<spec-hash8>`.
    pub run_id: String,
    /// The spec's `[experiment] name`.
    pub name: String,
    /// FNV-1a hash (16 hex digits) of the spec source text.
    pub spec_hash: String,
    /// `git rev-parse --short HEAD` at sweep start (`"unknown"` outside a
    /// checkout).
    pub git_rev: String,
    /// The seed list the grid was crossed with.
    pub seeds: Vec<u64>,
    /// Training rounds per trial (after env overrides).
    pub rounds: usize,
    /// The full trial roster, in execution order.
    pub trials: Vec<ManifestTrial>,
}

/// `git rev-parse --short HEAD`, or `"unknown"` when git or the checkout is
/// unavailable. Best effort by design — provenance must never fail a sweep.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Handle to one run directory.
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
}

impl RunStore {
    /// Opens (creating if needed) `base/<run_id>` and its `trials/`
    /// subdirectory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create_or_open(base: &Path, run_id: &str) -> io::Result<RunStore> {
        let root = base.join(run_id);
        std::fs::create_dir_all(root.join("trials"))?;
        Ok(RunStore { root })
    }

    /// Opens an existing run directory as-is (for `exp check`).
    ///
    /// # Errors
    ///
    /// Fails when the directory or its manifest is missing.
    pub fn open_existing(root: &Path) -> io::Result<RunStore> {
        if !root.join("manifest.json").is_file() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} has no manifest.json — not a run directory", root.display()),
            ));
        }
        Ok(RunStore { root: root.to_path_buf() })
    }

    /// The run directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Writes the manifest and a verbatim copy of the spec source.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn write_manifest(&self, manifest: &RunManifest, spec_source: &str) -> io::Result<()> {
        let body =
            serde_json::to_string_pretty(manifest).map_err(|e| io::Error::other(e.to_string()))?;
        write_atomic(&self.root.join("manifest.json"), body.as_bytes())?;
        write_atomic(&self.root.join("spec.toml"), spec_source.as_bytes())
    }

    /// Loads the manifest.
    ///
    /// # Errors
    ///
    /// Fails when the manifest is missing or unparsable.
    pub fn load_manifest(&self) -> Result<RunManifest, String> {
        let path = self.root.join("manifest.json");
        let body =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        serde_json::from_str(&body).map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// The record path for `trial_id`.
    pub fn record_path(&self, trial_id: &str) -> PathBuf {
        self.root.join("trials").join(format!("{trial_id}.json"))
    }

    /// The transient engine-snapshot path for `trial_id`.
    pub fn checkpoint_path(&self, trial_id: &str) -> PathBuf {
        self.root.join("trials").join(format!("{trial_id}.ckpt.json"))
    }

    /// Writes one trial record (single JSONL line, atomic rename).
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn write_record(&self, record: &TrialRecord) -> io::Result<()> {
        let line = record.to_jsonl().map_err(io::Error::other)?;
        write_atomic(&self.record_path(&record.trial_id), line.as_bytes())
    }

    /// All stored records that parse as `Completed`, keyed by trial id —
    /// the skip set for resume. Unparsable or `Failed` records are left out
    /// (and therefore re-run).
    ///
    /// # Errors
    ///
    /// Propagates directory-scan failures (a missing `trials/` directory is
    /// an empty store, not an error).
    pub fn completed_records(&self) -> io::Result<HashMap<String, TrialRecord>> {
        let mut out = HashMap::new();
        let dir = self.root.join("trials");
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "json")
                || path.to_string_lossy().ends_with(".ckpt.json")
            {
                continue;
            }
            let Ok(body) = std::fs::read_to_string(&path) else { continue };
            let Ok(record) = TrialRecord::from_jsonl(&body) else { continue };
            if record.is_completed() {
                out.insert(record.trial_id.clone(), record);
            }
        }
        Ok(out)
    }

    /// Loads **every** record file, parsed or not: `(file stem, parse
    /// result)` pairs, sorted by stem. Used by `exp check`.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan failures.
    pub fn all_records(&self) -> io::Result<Vec<(String, Result<TrialRecord, String>)>> {
        let mut out = Vec::new();
        let dir = self.root.join("trials");
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "json")
                || path.to_string_lossy().ends_with(".ckpt.json")
            {
                continue;
            }
            let stem =
                path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
            let parsed = std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|body| TrialRecord::from_jsonl(&body));
            out.push((stem, parsed));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }
}

/// Write-then-rename so readers (and resumed sweeps) never observe a
/// half-written file.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::{Trial, TrialRecord, TrialStatus};
    use fedms_core::FedMsConfig;

    fn tmp_base(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fedms-exp-store-{}-{tag}", std::process::id()))
    }

    fn record(id: &str, completed: bool) -> TrialRecord {
        let config = FedMsConfig::tiny(1);
        let trial = Trial {
            id: id.into(),
            label: "base".into(),
            axes: vec![],
            seed: 1,
            config_hash: config.stable_hash_hex(),
            config,
            checkpoint_every: 0,
        };
        let mut r = TrialRecord::failed(&trial, "x".into());
        if completed {
            r.status = TrialStatus::Completed;
        }
        r
    }

    #[test]
    fn manifest_roundtrip_and_open_existing() {
        let base = tmp_base("manifest");
        let store = RunStore::create_or_open(&base, "demo-abc").unwrap();
        let manifest = RunManifest {
            run_id: "demo-abc".into(),
            name: "demo".into(),
            spec_hash: "deadbeefdeadbeef".into(),
            git_rev: git_rev(),
            seeds: vec![1, 2],
            rounds: 3,
            trials: vec![ManifestTrial {
                id: "t1".into(),
                label: "base".into(),
                seed: 1,
                config_hash: "00".into(),
            }],
        };
        store.write_manifest(&manifest, "[experiment]\nname = \"demo\"\n").unwrap();
        assert_eq!(store.load_manifest().unwrap(), manifest);
        let reopened = RunStore::open_existing(store.root()).unwrap();
        assert_eq!(reopened.load_manifest().unwrap(), manifest);
        assert!(RunStore::open_existing(&base.join("nope")).is_err());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn completed_records_skips_failed_corrupt_and_checkpoints() {
        let base = tmp_base("records");
        let store = RunStore::create_or_open(&base, "r").unwrap();
        store.write_record(&record("done", true)).unwrap();
        store.write_record(&record("boom", false)).unwrap();
        std::fs::write(store.record_path("corrupt"), b"{ not json").unwrap();
        std::fs::write(store.checkpoint_path("done"), b"{}").unwrap();

        let done = store.completed_records().unwrap();
        assert_eq!(done.len(), 1);
        assert!(done.contains_key("done"));

        let all = store.all_records().unwrap();
        assert_eq!(all.len(), 3, "checkpoint files are not records");
        assert!(all.iter().any(|(s, r)| s == "corrupt" && r.is_err()));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn empty_store_has_no_records() {
        let base = tmp_base("empty");
        let store = RunStore { root: base.join("missing") };
        assert!(store.completed_records().unwrap().is_empty());
        assert!(store.all_records().unwrap().is_empty());
    }
}
