//! Trials: the unit of scheduled work, and the record each one produces.
//!
//! A [`Trial`] is one fully-resolved [`FedMsConfig`] plus its seed — the
//! leaf of an expanded sweep grid. Its output, a [`TrialRecord`], is a
//! **pure function of the config and seed**: no timestamps, durations,
//! thread ids or scheduling artefacts are recorded, so the serialized
//! record is byte-identical whether the sweep ran on one thread or sixteen,
//! fresh or resumed. That invariant is what makes the run store's
//! skip-on-resume and the scheduler's parallelism safe, and it is enforced
//! by proptest in `tests/sweep.rs`.

use fedms_core::FedMsConfig;
use fedms_sim::{CommStats, Snapshot};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One fully-resolved unit of work: a config, its seed, and the sweep-cell
/// metadata used for grouping results into figure series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// Deterministic, filesystem-safe identity:
    /// `<label-slug>-s<seed>-<hash8>`.
    pub id: String,
    /// Human-readable cell label, e.g. `attack=noise, filter=trimmed:0.2`.
    pub label: String,
    /// The grid-axis assignment that produced this cell, in axis order —
    /// `(key, display value)` pairs (empty for a gridless spec).
    pub axes: Vec<(String, String)>,
    /// The experiment seed (also present in `config.seed`).
    pub seed: u64,
    /// The fully-resolved configuration.
    pub config: FedMsConfig,
    /// `config.stable_hash_hex()`, precomputed at expansion time.
    pub config_hash: String,
    /// Engine-snapshot cadence in rounds (0 = no mid-trial checkpoints).
    /// Long trials write a `Snapshot` every `checkpoint_every` rounds so a
    /// killed sweep resumes inside the trial, not just between trials.
    pub checkpoint_every: usize,
}

/// Terminal state of one executed trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrialStatus {
    /// The simulation ran to its final round.
    Completed,
    /// The simulation returned an error or panicked; the sweep continued.
    Failed {
        /// The error or panic message.
        error: String,
    },
}

/// The durable result of one trial — one JSONL line in the run store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// [`Trial::id`].
    pub trial_id: String,
    /// [`Trial::label`].
    pub label: String,
    /// [`Trial::axes`].
    pub axes: Vec<(String, String)>,
    /// [`Trial::seed`].
    pub seed: u64,
    /// [`Trial::config_hash`].
    pub config_hash: String,
    /// Completed or failed (with the error message).
    pub status: TrialStatus,
    /// `(round, mean accuracy)` at every evaluated round (empty on
    /// failure).
    pub points: Vec<(usize, f32)>,
    /// Accuracy at the last evaluated round.
    pub final_accuracy: Option<f32>,
    /// Total communication counters for the run.
    pub comm: Option<CommStats>,
}

impl TrialRecord {
    /// Whether the trial ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self.status, TrialStatus::Completed)
    }

    /// The canonical single-line JSON form stored in the run store
    /// (newline-terminated).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (none for well-formed records).
    pub fn to_jsonl(&self) -> Result<String, String> {
        serde_json::to_string(self)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| format!("serialise trial record: {e}"))
    }

    /// Parses a record from its stored JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a description of the parse failure.
    pub fn from_jsonl(line: &str) -> Result<Self, String> {
        serde_json::from_str(line.trim()).map_err(|e| format!("parse trial record: {e}"))
    }

    /// The failure record for `trial` with the given error message.
    pub fn failed(trial: &Trial, error: String) -> Self {
        TrialRecord {
            trial_id: trial.id.clone(),
            label: trial.label.clone(),
            axes: trial.axes.clone(),
            seed: trial.seed,
            config_hash: trial.config_hash.clone(),
            status: TrialStatus::Failed { error },
            points: Vec::new(),
            final_accuracy: None,
            comm: None,
        }
    }
}

/// Executes one trial to a record. Never panics for engine-level errors —
/// those become [`TrialStatus::Failed`]. (Panics out of the simulator
/// itself are caught one level up, by the scheduler's isolation boundary.)
///
/// When `checkpoint` names a path and [`Trial::checkpoint_every`] is
/// non-zero, the run proceeds in segments: after each segment the engine
/// [`Snapshot`] is written to the path, and an existing snapshot there is
/// restored before training (so a killed sweep loses at most one segment of
/// this trial). The snapshot is removed once the trial completes — record
/// presence, not snapshot presence, marks a finished trial.
pub fn execute_trial(trial: &Trial, checkpoint: Option<&Path>) -> TrialRecord {
    match run_config(trial, checkpoint) {
        Ok((points, comm)) => TrialRecord {
            trial_id: trial.id.clone(),
            label: trial.label.clone(),
            axes: trial.axes.clone(),
            seed: trial.seed,
            config_hash: trial.config_hash.clone(),
            status: TrialStatus::Completed,
            final_accuracy: points.last().map(|&(_, a)| a),
            points,
            comm: Some(comm),
        },
        Err(e) => TrialRecord::failed(trial, e),
    }
}

fn run_config(
    trial: &Trial,
    checkpoint: Option<&Path>,
) -> Result<(Vec<(usize, f32)>, CommStats), String> {
    let cfg = &trial.config;
    let segment = trial.checkpoint_every;
    let result = match checkpoint.filter(|_| segment > 0) {
        None => cfg.run().map_err(|e| e.to_string())?,
        Some(path) => {
            let mut engine = cfg.build_engine().map_err(|e| e.to_string())?;
            if let Ok(body) = std::fs::read_to_string(path) {
                let snap: Snapshot = serde_json::from_str(&body)
                    .map_err(|e| format!("corrupt trial checkpoint {}: {e}", path.display()))?;
                engine.restore(&snap).map_err(|e| e.to_string())?;
            }
            let mut result = engine.result().clone();
            while engine.round() < cfg.rounds {
                let step = segment.min(cfg.rounds - engine.round());
                result = engine.run(step).map_err(|e| e.to_string())?;
                if engine.round() < cfg.rounds {
                    let body =
                        serde_json::to_string(&engine.snapshot()).map_err(|e| e.to_string())?;
                    std::fs::write(path, body).map_err(|e| e.to_string())?;
                }
            }
            let _ = std::fs::remove_file(path);
            result
        }
    };
    Ok((result.accuracy_series(), result.total_comm))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trial(seed: u64) -> Trial {
        let mut config = FedMsConfig::tiny(seed);
        config.seed = seed;
        let config_hash = config.stable_hash_hex();
        Trial {
            id: format!("tiny-s{seed}"),
            label: "base".into(),
            axes: Vec::new(),
            seed,
            config,
            config_hash,
            checkpoint_every: 0,
        }
    }

    #[test]
    fn execute_produces_completed_record() {
        let t = tiny_trial(3);
        let r = execute_trial(&t, None);
        assert!(r.is_completed());
        assert_eq!(r.points.len(), 3);
        assert_eq!(r.final_accuracy, r.points.last().map(|&(_, a)| a));
        assert!(r.comm.is_some());
    }

    #[test]
    fn invalid_config_yields_failed_record() {
        let mut t = tiny_trial(3);
        t.config.byzantine_count = 100; // > servers: validate() rejects
        let r = execute_trial(&t, None);
        assert!(!r.is_completed());
        assert!(matches!(&r.status, TrialStatus::Failed { error } if error.contains("byzantine")));
        assert!(r.points.is_empty());
    }

    #[test]
    fn jsonl_roundtrip_is_exact() {
        let r = execute_trial(&tiny_trial(5), None);
        let line = r.to_jsonl().unwrap();
        assert!(line.ends_with('\n') && !line.trim().contains('\n'));
        let back = TrialRecord::from_jsonl(&line).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.to_jsonl().unwrap(), line, "re-serialisation must be byte-stable");
    }

    #[test]
    fn checkpointed_run_matches_straight_run_and_resumes() {
        let dir = std::env::temp_dir().join(format!("fedms-exp-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("t.ckpt.json");
        let _ = std::fs::remove_file(&ckpt);

        let straight = execute_trial(&tiny_trial(9), None);
        let mut seg = tiny_trial(9);
        seg.checkpoint_every = 1;
        let segmented = execute_trial(&seg, Some(&ckpt));
        assert_eq!(straight.points, segmented.points, "segmenting must not change the result");
        assert!(!ckpt.exists(), "completed trial must remove its checkpoint");

        // Simulate a mid-trial kill: run one segment by hand, leave the
        // snapshot behind, then re-execute — the result must still match.
        let mut engine = seg.config.build_engine().unwrap();
        engine.run(1).unwrap();
        std::fs::write(&ckpt, serde_json::to_string(&engine.snapshot()).unwrap()).unwrap();
        let resumed = execute_trial(&seg, Some(&ckpt));
        assert_eq!(straight.points, resumed.points, "resume from snapshot must be bit-exact");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
