//! Integration tests for the sweep scheduler's headline guarantees:
//!
//! 1. **Determinism** (proptest): a trial record is a pure function of
//!    config + seed, so `--threads 1` and `--threads 4` write byte-identical
//!    per-trial files.
//! 2. **Resume**: a killed sweep re-run over a partially-populated store
//!    never re-executes a completed trial, and the resumed store ends up
//!    byte-identical to an uninterrupted run.
//! 3. **Panic isolation**: a panicking trial becomes a `Failed` record; the
//!    rest of the sweep completes.

use fedms_exp::{
    run_spec_in, run_sweep_with, Progress, RunStore, SweepSpec, Trial, TrialRecord, TrialStatus,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp_base(tag: &str) -> PathBuf {
    let n = {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        COUNTER.fetch_add(1, Ordering::Relaxed)
    };
    std::env::temp_dir().join(format!("fedms-exp-sweep-{}-{tag}-{n}", std::process::id()))
}

/// A tiny two-trial spec parameterised by seed/rounds/attack so proptest
/// can vary the workload without leaving the fast path.
fn tiny_spec(seed: u64, rounds: usize, attack: &str) -> String {
    format!(
        "[experiment]\n\
         name = \"prop\"\n\
         scale = \"tiny\"\n\
         seeds = [{seed}]\n\
         rounds = {rounds}\n\
         eval_every = 1\n\
         \n\
         [base]\n\
         attack = \"{attack}\"\n\
         \n\
         [grid]\n\
         filter = [\"trimmed:0.25\", \"mean\"]\n"
    )
}

/// Reads every per-trial record file in a run directory as raw bytes.
fn record_bytes(run_dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(run_dir.join("trials")).expect("trials dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().expect("file name").to_string_lossy().into_owned();
        if name.ends_with(".ckpt.json") {
            continue;
        }
        out.insert(name, std::fs::read(&path).expect("read record"));
    }
    out
}

fn run_in(source: &str, base: &Path, threads: usize) -> PathBuf {
    let (spec, store, report) =
        run_spec_in(source, base, None, threads, |_| {}).expect("sweep runs");
    assert_eq!(report.failed, 0, "sweep `{}` had failed trials", spec.name);
    store.root().to_path_buf()
}

proptest! {
    /// The headline invariant: a parallel sweep writes byte-identical
    /// per-trial records to a serial sweep of the same spec.
    #[test]
    fn parallel_sweep_matches_serial_byte_for_byte(
        seed in 0u64..1_000,
        rounds in 1usize..3,
        attack_pick in 0usize..3,
    ) {
        let attack = ["benign", "noise", "random"][attack_pick];
        let source = tiny_spec(seed, rounds, attack);
        let (serial_base, parallel_base) = (tmp_base("serial"), tmp_base("parallel"));
        let serial = run_in(&source, &serial_base, 1);
        let parallel = run_in(&source, &parallel_base, 4);
        let (serial_records, parallel_records) = (record_bytes(&serial), record_bytes(&parallel));
        let _ = std::fs::remove_dir_all(&serial_base);
        let _ = std::fs::remove_dir_all(&parallel_base);
        prop_assert_eq!(serial_records.len(), 2, "spec expands to two trials");
        prop_assert_eq!(serial_records, parallel_records);
    }
}

/// Pre-seeding a store with a subset of completed records (as a killed
/// sweep leaves behind) must (a) never re-execute those trials and (b)
/// finish with records byte-identical to an uninterrupted run.
#[test]
fn resume_skips_completed_trials_and_matches_uninterrupted_run() {
    let source = tiny_spec(3, 2, "noise");
    let run_id = SweepSpec::parse(&source).expect("spec parses").default_run_id();

    let full_base = tmp_base("full");
    let full = run_in(&source, &full_base, 2);
    let full_records = record_bytes(&full);
    assert_eq!(full_records.len(), 2);

    // Simulate the kill: only the first record (in name order) survived.
    let resumed_base = tmp_base("resumed");
    let resumed_dir = resumed_base.join(&run_id);
    std::fs::create_dir_all(resumed_dir.join("trials")).expect("mkdir");
    let (preseeded_name, preseeded_body) = full_records.iter().next().expect("one record");
    std::fs::write(resumed_dir.join("trials").join(preseeded_name), preseeded_body)
        .expect("pre-seed record");
    let preseeded_id = preseeded_name.trim_end_matches(".json").to_string();

    let mut started = Vec::new();
    let mut skipped = Vec::new();
    let (_, store, report) = run_spec_in(&source, &resumed_base, None, 2, |p| match p {
        Progress::Started { trial_id, .. } => started.push(trial_id.clone()),
        Progress::Skipped { trial_id } => skipped.push(trial_id.clone()),
        Progress::Finished { .. } => {}
    })
    .expect("resumed sweep runs");

    assert_eq!(report.skipped, 1);
    assert_eq!(report.executed, 1);
    assert_eq!(skipped, vec![preseeded_id.clone()]);
    assert!(
        !started.contains(&preseeded_id),
        "completed trial {preseeded_id} must not execute twice"
    );
    assert_eq!(
        record_bytes(store.root()),
        full_records,
        "resumed store must match the uninterrupted run byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&full_base);
    let _ = std::fs::remove_dir_all(&resumed_base);
}

fn synthetic_record(trial: &Trial) -> TrialRecord {
    TrialRecord {
        trial_id: trial.id.clone(),
        label: trial.label.clone(),
        axes: trial.axes.clone(),
        seed: trial.seed,
        config_hash: trial.config_hash.clone(),
        status: TrialStatus::Completed,
        points: vec![(0, 0.5)],
        final_accuracy: Some(0.5),
        comm: None,
    }
}

/// One poisoned trial must not take down the sweep: it lands as a `Failed`
/// record, every other trial completes, and a re-run retries only the
/// failure.
#[test]
fn panicking_trial_is_isolated_and_retried_on_resume() {
    let source = tiny_spec(1, 1, "benign");
    let mut spec = SweepSpec::parse(&source).expect("spec parses");
    spec.apply_env();
    let trials = spec.expand().expect("spec expands");
    assert_eq!(trials.len(), 2);
    let poisoned = trials[0].id.clone();

    let base = tmp_base("panic");
    let store = RunStore::create_or_open(&base, &spec.default_run_id()).expect("store opens");
    let runner = |trial: &Trial, _ckpt: Option<&Path>| {
        assert!(trial.id == poisoned || trial.id == trials[1].id);
        if trial.id == poisoned {
            panic!("injected failure");
        }
        synthetic_record(trial)
    };
    let report = run_sweep_with(&trials, &store, 2, runner, |_| {}).expect("sweep survives");
    assert_eq!(report.executed, 2);
    assert_eq!(report.failed, 1);
    let failed: Vec<_> = report.records.iter().filter(|r| !r.is_completed()).collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].trial_id, poisoned);
    match &failed[0].status {
        TrialStatus::Failed { error } => assert!(
            error.contains("injected failure"),
            "panic payload must reach the record, got: {error}"
        ),
        TrialStatus::Completed => unreachable!("filtered above"),
    }

    // Failed records are not final: a re-run retries exactly the failure.
    let mut started = Vec::new();
    let report = run_sweep_with(
        &trials,
        &store,
        2,
        |trial, _| synthetic_record(trial),
        |p| {
            if let Progress::Started { trial_id, .. } = p {
                started.push(trial_id.clone());
            }
        },
    )
    .expect("retry sweep runs");
    assert_eq!(report.skipped, 1);
    assert_eq!(report.executed, 1);
    assert_eq!(started, vec![poisoned]);
    assert!(report.records.iter().all(TrialRecord::is_completed));
    let _ = std::fs::remove_dir_all(&base);
}
