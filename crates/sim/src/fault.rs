//! Fault injection: crash, omission, straggler and duplicate faults.
//!
//! The paper's threat model covers *Byzantine* servers — machines that stay
//! responsive but lie. Real edge deployments additionally suffer benign
//! faults: servers that crash mid-run, links that silently drop or
//! duplicate messages, and stragglers whose disseminations arrive rounds
//! late. This module describes such failures as a serializable
//! [`FaultPlan`] that the [`crate::SimulationEngine`] replays
//! deterministically, so every faulty run is exactly reproducible from
//! `(config, seed)`.
//!
//! Two layers:
//!
//! * [`FaultSpec`] — the *scenario* ("crash 2 servers at round 5, 10%
//!   downlink loss"), what experiment configs and CLI flags express;
//! * [`FaultPlan`] — the *realization* (which concrete servers fail),
//!   sampled from a spec with [`FaultPlan::sample`] using a seed-derived
//!   RNG stream, or written out explicitly for targeted tests.
//!
//! With faults active a client may receive only `P' ≤ P` models. The
//! engine then re-derives the trim from the survivors (effective rate
//! `β' = B/P'`): as long as `P' > 2B` an honest per-coordinate majority
//! remains and filtering degrades gracefully; at `P' ≤ 2B` the round
//! aborts with [`crate::SimError::DegradedQuorum`].
//!
//! Faults here are *benign* and sampled once up front. The companion
//! [`crate::ThreatSchedule`] layer covers the *adversarial* time axis —
//! servers that become Byzantine mid-run, link partitions, and wire
//! corruption — and composes with a `FaultPlan`: a server can be crashed
//! by the plan and (pointlessly) compromised by the schedule; the crash
//! wins because it never disseminates.

use fedms_tensor::rng::rng_for;
use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// RNG label for fault-plan sampling ("FALT").
const FAULT_LABEL: u64 = 0x46_41_4C_54;

/// How a failed delivery attempt should be classified by a recovery layer.
///
/// The distinction drives retry economics: a *transient* failure (channel
/// loss, omission) is worth retrying on the same link, while a *persistent*
/// one (the recipient is crashed for the rest of the run) makes every
/// retry futile — the only productive recovery is failover to another
/// server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// The loss was a per-message accident; an immediate retry on the same
    /// link may succeed.
    Transient,
    /// The recipient is down for this and every later round; retries on
    /// this link cannot succeed.
    Persistent,
}

/// The failure mode of a single server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ServerFault {
    /// Healthy: participates normally.
    #[default]
    None,
    /// Fail-stop crash: from `round` onward the server neither aggregates
    /// nor disseminates, and uploads addressed to it are lost.
    Crash {
        /// First round (0-based) in which the server is down.
        round: usize,
    },
    /// Straggler: disseminations arrive `delay` rounds late, so clients see
    /// the model the server computed `delay` rounds ago — and nothing at
    /// all during the first `delay` rounds.
    Straggler {
        /// Delivery delay in rounds (≥ 1).
        delay: usize,
    },
}

/// A fault *scenario*: how many servers fail and how lossy the links are,
/// without naming the victims. Sample a concrete [`FaultPlan`] from it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Number of servers that crash.
    #[serde(default)]
    pub crashed_servers: usize,
    /// Round at which the crashed servers go down.
    #[serde(default)]
    pub crash_round: usize,
    /// Number of straggler servers.
    #[serde(default)]
    pub straggler_servers: usize,
    /// Straggler delivery delay in rounds (≥ 1 when stragglers exist).
    #[serde(default)]
    pub straggler_delay: usize,
    /// Probability an individual server→client dissemination is lost.
    #[serde(default)]
    pub downlink_omission: f64,
    /// Probability a delivered dissemination arrives twice.
    #[serde(default)]
    pub duplicate_rate: f64,
}

impl FaultSpec {
    /// Whether the spec describes a fault-free run.
    pub fn is_trivial(&self) -> bool {
        self.crashed_servers == 0
            && self.straggler_servers == 0
            && self.downlink_omission == 0.0
            && self.duplicate_rate == 0.0
    }

    /// Validates the scenario against a federation of `num_servers`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if more servers fault than exist,
    /// probabilities fall outside `[0, 1)`, or stragglers have a zero
    /// delay.
    pub fn validate(&self, num_servers: usize) -> Result<()> {
        if self.crashed_servers + self.straggler_servers > num_servers {
            return Err(SimError::BadConfig(format!(
                "{} crashed + {} straggler servers exceed the {} available",
                self.crashed_servers, self.straggler_servers, num_servers
            )));
        }
        for (name, p) in
            [("downlink_omission", self.downlink_omission), ("duplicate_rate", self.duplicate_rate)]
        {
            if !(p.is_finite() && (0.0..1.0).contains(&p)) {
                return Err(SimError::BadConfig(format!("{name} must be in [0, 1), got {p}")));
            }
        }
        if self.straggler_servers > 0 && self.straggler_delay == 0 {
            return Err(SimError::BadConfig(
                "straggler_delay must be ≥ 1 when straggler_servers > 0".into(),
            ));
        }
        Ok(())
    }
}

/// A concrete, replayable fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-server fault, indexed by server id; servers past the end of the
    /// vector are healthy.
    #[serde(default)]
    pub server_faults: Vec<ServerFault>,
    /// Probability an individual server→client dissemination is lost.
    #[serde(default)]
    pub downlink_omission: f64,
    /// Probability a delivered dissemination arrives twice (the client's
    /// filter then sees that model with double weight).
    #[serde(default)]
    pub duplicate_rate: f64,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Samples a concrete plan from a scenario: the victims are drawn
    /// uniformly without replacement from the `num_servers` ids using an
    /// RNG derived purely from `seed`, so the same `(spec, seed)` always
    /// yields the same plan.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultSpec::validate`].
    pub fn sample(spec: &FaultSpec, num_servers: usize, seed: u64) -> Result<Self> {
        spec.validate(num_servers)?;
        let mut faults = vec![ServerFault::None; num_servers];
        if spec.crashed_servers + spec.straggler_servers > 0 {
            use rand::seq::SliceRandom;
            let mut ids: Vec<usize> = (0..num_servers).collect();
            let mut rng = rng_for(seed, &[FAULT_LABEL]);
            ids.shuffle(&mut rng);
            for &id in ids.iter().take(spec.crashed_servers) {
                faults[id] = ServerFault::Crash { round: spec.crash_round };
            }
            for &id in ids.iter().skip(spec.crashed_servers).take(spec.straggler_servers) {
                faults[id] = ServerFault::Straggler { delay: spec.straggler_delay };
            }
        }
        Ok(FaultPlan {
            server_faults: faults,
            downlink_omission: spec.downlink_omission,
            duplicate_rate: spec.duplicate_rate,
        })
    }

    /// Whether the plan injects no faults at all. A trivial plan leaves the
    /// engine's behaviour (including its RNG streams) bit-identical to a
    /// run without any plan.
    pub fn is_trivial(&self) -> bool {
        self.downlink_omission == 0.0
            && self.duplicate_rate == 0.0
            && self.server_faults.iter().all(|f| *f == ServerFault::None)
    }

    /// Whether any downlink-level fault (omission or duplication) is
    /// active.
    pub fn lossy_downlink(&self) -> bool {
        self.downlink_omission > 0.0 || self.duplicate_rate > 0.0
    }

    /// The fault assigned to `server`.
    pub fn fault_for(&self, server: usize) -> ServerFault {
        self.server_faults.get(server).copied().unwrap_or_default()
    }

    /// Whether `server` is down (crashed) in `round`.
    pub fn is_crashed(&self, server: usize, round: usize) -> bool {
        matches!(self.fault_for(server), ServerFault::Crash { round: r } if round >= r)
    }

    /// The straggler delay of `server`, if it straggles.
    pub fn straggler_delay(&self, server: usize) -> Option<usize> {
        match self.fault_for(server) {
            ServerFault::Straggler { delay } => Some(delay),
            _ => None,
        }
    }

    /// Classifies a failed upload to `server` in `round`: crash silence is
    /// [`FaultClass::Persistent`] (the server never comes back), anything
    /// else — channel loss on an otherwise healthy link —
    /// [`FaultClass::Transient`].
    pub fn upload_fault_class(&self, server: usize, round: usize) -> FaultClass {
        if self.is_crashed(server, round) {
            FaultClass::Persistent
        } else {
            FaultClass::Transient
        }
    }

    /// Ids of servers scheduled to crash (at any round).
    pub fn crashed_ids(&self) -> Vec<usize> {
        self.server_faults
            .iter()
            .enumerate()
            .filter_map(|(i, f)| matches!(f, ServerFault::Crash { .. }).then_some(i))
            .collect()
    }

    /// Validates the plan against a federation of `num_servers`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for out-of-range server ids, bad
    /// probabilities, or zero straggler delays.
    pub fn validate(&self, num_servers: usize) -> Result<()> {
        if self.server_faults.len() > num_servers {
            return Err(SimError::BadConfig(format!(
                "fault plan names {} servers but the federation has {num_servers}",
                self.server_faults.len()
            )));
        }
        for (name, p) in
            [("downlink_omission", self.downlink_omission), ("duplicate_rate", self.duplicate_rate)]
        {
            if !(p.is_finite() && (0.0..1.0).contains(&p)) {
                return Err(SimError::BadConfig(format!("{name} must be in [0, 1), got {p}")));
            }
        }
        if self.server_faults.iter().any(|f| matches!(f, ServerFault::Straggler { delay: 0 })) {
            return Err(SimError::BadConfig("straggler delay must be ≥ 1".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plans_and_specs() {
        assert!(FaultPlan::none().is_trivial());
        assert!(FaultSpec::default().is_trivial());
        let plan = FaultPlan {
            server_faults: vec![ServerFault::None, ServerFault::Crash { round: 0 }],
            ..FaultPlan::default()
        };
        assert!(!plan.is_trivial());
        assert!(!FaultSpec { duplicate_rate: 0.1, ..FaultSpec::default() }.is_trivial());
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let spec = FaultSpec {
            crashed_servers: 2,
            crash_round: 3,
            straggler_servers: 1,
            straggler_delay: 2,
            downlink_omission: 0.1,
            duplicate_rate: 0.05,
        };
        let a = FaultPlan::sample(&spec, 10, 7).unwrap();
        let b = FaultPlan::sample(&spec, 10, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.crashed_ids().len(), 2);
        assert_eq!(
            a.server_faults.iter().filter(|f| matches!(f, ServerFault::Straggler { .. })).count(),
            1
        );
        // Crash and straggler sets never overlap.
        for id in a.crashed_ids() {
            assert!(a.straggler_delay(id).is_none());
        }
        // A different seed eventually picks different victims.
        let picks: std::collections::BTreeSet<Vec<usize>> =
            (0..16).map(|s| FaultPlan::sample(&spec, 10, s).unwrap().crashed_ids()).collect();
        assert!(picks.len() > 1, "sampling should depend on the seed");
    }

    #[test]
    fn crash_schedule_respects_round() {
        let plan = FaultPlan {
            server_faults: vec![ServerFault::Crash { round: 2 }],
            ..FaultPlan::default()
        };
        assert!(!plan.is_crashed(0, 0));
        assert!(!plan.is_crashed(0, 1));
        assert!(plan.is_crashed(0, 2));
        assert!(plan.is_crashed(0, 99));
        // Unlisted servers are healthy.
        assert!(!plan.is_crashed(5, 99));
        assert_eq!(plan.fault_for(5), ServerFault::None);
    }

    #[test]
    fn upload_fault_class_tracks_crash_schedule() {
        let plan = FaultPlan {
            server_faults: vec![
                ServerFault::Crash { round: 2 },
                ServerFault::Straggler { delay: 1 },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.upload_fault_class(0, 1), FaultClass::Transient);
        assert_eq!(plan.upload_fault_class(0, 2), FaultClass::Persistent);
        // Stragglers and unlisted servers accept uploads: losses there are
        // per-message accidents.
        assert_eq!(plan.upload_fault_class(1, 9), FaultClass::Transient);
        assert_eq!(plan.upload_fault_class(7, 9), FaultClass::Transient);
    }

    #[test]
    fn spec_validation() {
        assert!(FaultSpec::default().validate(4).is_ok());
        let too_many =
            FaultSpec { crashed_servers: 3, straggler_servers: 2, ..FaultSpec::default() };
        assert!(too_many.validate(4).is_err());
        let bad_p = FaultSpec { downlink_omission: 1.0, ..FaultSpec::default() };
        assert!(bad_p.validate(4).is_err());
        let nan_p = FaultSpec { duplicate_rate: f64::NAN, ..FaultSpec::default() };
        assert!(nan_p.validate(4).is_err());
        let zero_delay =
            FaultSpec { straggler_servers: 1, straggler_delay: 0, ..FaultSpec::default() };
        assert!(zero_delay.validate(4).is_err());
    }

    #[test]
    fn plan_validation() {
        assert!(FaultPlan::none().validate(4).is_ok());
        let oversized =
            FaultPlan { server_faults: vec![ServerFault::None; 5], ..FaultPlan::default() };
        assert!(oversized.validate(4).is_err());
        let zero_delay = FaultPlan {
            server_faults: vec![ServerFault::Straggler { delay: 0 }],
            ..FaultPlan::default()
        };
        assert!(zero_delay.validate(4).is_err());
        let bad_p = FaultPlan { duplicate_rate: -0.1, ..FaultPlan::default() };
        assert!(bad_p.validate(4).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let spec = FaultSpec {
            crashed_servers: 2,
            crash_round: 5,
            straggler_servers: 1,
            straggler_delay: 3,
            downlink_omission: 0.25,
            duplicate_rate: 0.125,
        };
        let plan = FaultPlan::sample(&spec, 10, 11).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        let json = serde_json::to_string(&spec).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Missing fields deserialize to the trivial default.
        let empty: FaultPlan = serde_json::from_str("{}").unwrap();
        assert!(empty.is_trivial());
        let empty: FaultSpec = serde_json::from_str("{}").unwrap();
        assert!(empty.is_trivial());
    }
}
