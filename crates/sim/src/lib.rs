//! The federated edge learning (FEEL) network simulator.
//!
//! This crate is the substrate on which the Fed-MS algorithm (in
//! `fedms-core`) runs: a deterministic, single-process simulation of the
//! paper's system model — `K` end clients, `P` edge parameter servers of
//! which `B` are Byzantine, synchronized rounds of local training → sparse
//! upload → aggregation → dissemination → client-side filtering.
//!
//! Main pieces:
//!
//! * [`Topology`] — client/server counts and the (hidden) Byzantine set,
//! * [`UploadStrategy`] — the paper's sparse upload, plus full and
//!   k-redundant ablations,
//! * [`Client`] / [`Server`] — stateful simulation entities,
//! * [`Partitions`] — explicit or procedural (`O(1)`-storage) per-client
//!   data assignment; the engine stores clients as metadata and rehydrates
//!   them lazily, so memory follows the per-round cohort
//!   ([`EngineConfig::cohort`]), not the federation size,
//! * [`Transport`] / [`LocalTransport`] — the message layer: typed
//!   [`Upload`]/[`Broadcast`] protocol messages, delivery outcomes,
//!   fault realization and all [`CommStats`] accounting,
//! * [`net::NetTransport`] — the concurrent message-passing transport:
//!   per-server actors exchanging versioned wire frames over bounded
//!   channels (or loopback TCP), under a seed-deterministic
//!   latency/bandwidth model ([`net::NetModel`]),
//! * [`ResilientTransport`] / [`RecoveryPolicy`] — the recovery layer:
//!   deadline-driven retries with seed-deterministic backoff, and upload
//!   failover to alternate servers, layered over any transport,
//! * [`SimulationEngine`] — a thin orchestrator that runs each round as an
//!   explicit phase pipeline (train → upload → aggregate → disseminate →
//!   filter) over the transport, generic over the client-side model filter
//!   (`Def(·)`) and per-server attacks,
//! * [`CommStats`] — message/byte accounting (the communication-efficiency
//!   claims of Section IV-A),
//! * [`RoundMetrics`] / [`RunResult`] — per-round accuracy/loss series, the
//!   data behind every accuracy figure in the paper.
//!
//! Determinism: every stochastic decision (mini-batches, upload choices,
//! attack noise) draws from an RNG stream derived from one experiment seed
//! via [`fedms_tensor::rng`], so runs are bit-reproducible — including under
//! the optional scoped-thread parallel client training.

mod client;
mod comm;
mod engine;
mod error;
mod events;
mod fault;
mod metrics;
mod model_spec;
pub mod net;
mod phases;
mod recovery;
mod server;
mod store;
mod threat;
mod topology;
mod transport;
mod upload;

pub use client::Client;
pub use comm::CommStats;
pub use engine::{EngineConfig, SimulationEngine, Snapshot, SNAPSHOT_VERSION};
pub use error::SimError;
pub use events::{EventLog, RoundEvent};
pub use fault::{FaultClass, FaultPlan, FaultSpec, ServerFault};
pub use metrics::{RoundDiagnostics, RoundMetrics, RunResult, RunSummary};
pub use model_spec::ModelSpec;
pub use net::{NetModel, NetStats, NetTransport, WireError, FRAME_VERSION};
pub use phases::sample_cohort;
pub use recovery::{
    downlink_id, uplink_id, DegradedMode, RecoveryPolicy, ResilientTransport, UploadReport,
};
pub use server::Server;
pub use store::Partitions;
pub use threat::{
    parse_attack_kind, NetThreat, ThreatEpoch, ThreatSchedule, ThreatView,
    DEFAULT_COMPROMISE_ATTACK,
};
pub use topology::Topology;
pub use transport::{
    Broadcast, Delivery, DeliveryOutcome, Dissemination, LocalTransport, Transport, Upload,
};
pub use upload::UploadStrategy;

/// Crate-wide `Result` alias using [`SimError`].
pub type Result<T> = std::result::Result<T, SimError>;
