//! The edge-side parameter-server entity.
//!
//! A [`Server`] is pure protocol logic: it aggregates whatever uploads the
//! transport put in its inbox and produces a [`Dissemination`] — honestly,
//! or through its Byzantine attack. Delivery concerns (crash silence,
//! straggler delays, message loss) live in [`crate::transport`], not here.

use fedms_aggregation::AggregationRule;
use fedms_attacks::{AttackContext, ServerAttack};
use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;

use crate::transport::Dissemination;
use crate::Result;

/// One edge parameter server (Algorithm 1 lines 1–5): averages the client
/// uploads it receives, then disseminates — honestly, or through its
/// Byzantine [`ServerAttack`].
pub struct Server {
    id: usize,
    attack: Option<Box<dyn ServerAttack>>,
    history: Vec<Tensor>,
    last_aggregate: Option<Tensor>,
    seed: u64,
    max_history: usize,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("id", &self.id)
            .field("byzantine", &self.attack.is_some())
            .field("history_len", &self.history.len())
            .finish()
    }
}

impl Server {
    /// Creates a benign server.
    pub fn benign(id: usize, seed: u64) -> Self {
        Server {
            id,
            attack: None,
            history: Vec::new(),
            last_aggregate: None,
            seed,
            max_history: 64,
        }
    }

    /// Creates a Byzantine server mounting `attack`.
    pub fn byzantine(id: usize, attack: Box<dyn ServerAttack>, seed: u64) -> Self {
        let mut s = Server::benign(id, seed);
        s.attack = Some(attack);
        s
    }

    /// This server's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether this server is Byzantine.
    pub fn is_byzantine(&self) -> bool {
        self.attack.is_some()
    }

    /// Replaces this server's behaviour mid-run: `Some(attack)` compromises
    /// it, `None` heals it back to benign. Used by the dynamic threat
    /// schedule ([`crate::ThreatSchedule`]); the attack history is kept so
    /// adaptive attacks (Backward, ALIE) see the honest past immediately.
    pub(crate) fn set_attack(&mut self, attack: Option<Box<dyn ServerAttack>>) {
        self.attack = attack;
    }

    /// Aggregation stage: combines the received local models with `rule`
    /// (the paper's benign servers use the plain mean,
    /// `a_{t+1}^i = 1/|N_i| Σ w_{t,E}^k`; a robust rule here extends Fed-MS
    /// to Byzantine *clients*). A server that received nothing this round
    /// (possible under sparse upload) re-uses its previous aggregate,
    /// falling back to `fallback` (the initial model) in round 0.
    ///
    /// # Errors
    ///
    /// Propagates aggregation shape errors.
    pub fn aggregate(
        &mut self,
        received: &[Tensor],
        fallback: &Tensor,
        rule: &dyn AggregationRule,
    ) -> Result<Tensor> {
        let agg = if received.is_empty() {
            self.last_aggregate.clone().unwrap_or_else(|| fallback.clone())
        } else {
            rule.aggregate(received)?
        };
        self.last_aggregate = Some(agg.clone());
        Ok(agg)
    }

    /// Installs an aggregate computed *outside* the server (the engine's
    /// streaming accumulator path), with the same state effect as
    /// [`Server::aggregate`]: the value becomes this server's
    /// `last_aggregate` fallback for future empty rounds.
    pub(crate) fn install_aggregate(&mut self, agg: Tensor) -> Tensor {
        self.last_aggregate = Some(agg.clone());
        agg
    }

    /// Dissemination stage: a benign server broadcasts `aggregate`
    /// unchanged; a Byzantine server tampers with it (per client if the
    /// attack equivocates). The *true* aggregate is appended to the attack
    /// history either way (the adversary knows the honest state).
    ///
    /// # Errors
    ///
    /// Propagates attack errors.
    pub fn disseminate(
        &mut self,
        aggregate: &Tensor,
        round: usize,
        num_clients: usize,
    ) -> Result<Dissemination> {
        let out = match &self.attack {
            None => Dissemination::Broadcast(aggregate.clone()),
            Some(attack) => {
                let ctx = AttackContext::new(round, self.id, aggregate, &self.history, num_clients);
                // Attack randomness is a pure function of
                // (seed, server, round), which makes dissemination
                // replayable from a checkpoint.
                let mut rng = rng_for(self.seed, &[0x53_52_56, self.id as u64, round as u64]); // "SRV"
                if attack.is_equivocating() {
                    let mut per_client = Vec::with_capacity(num_clients);
                    for k in 0..num_clients {
                        per_client.push(attack.tamper_for(&ctx, k, &mut rng)?);
                    }
                    Dissemination::PerClient(per_client)
                } else {
                    Dissemination::Broadcast(attack.tamper(&ctx, &mut rng)?)
                }
            }
        };
        self.history.push(aggregate.clone());
        if self.history.len() > self.max_history {
            self.history.remove(0);
        }
        Ok(out)
    }

    /// Number of past aggregates retained for the adaptive adversary.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Snapshot of the evolving state (attack history, last aggregate) for
    /// checkpointing. The straggler outbox lives in the transport
    /// ([`crate::Transport::state_snapshot`]).
    pub(crate) fn state_snapshot(&self) -> (Vec<Tensor>, Option<Tensor>) {
        (self.history.clone(), self.last_aggregate.clone())
    }

    /// Restores the evolving state from a checkpoint.
    pub(crate) fn restore_state(&mut self, history: Vec<Tensor>, last: Option<Tensor>) {
        self.history = history;
        self.last_aggregate = last;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_aggregation::Mean;
    use fedms_attacks::{Equivocation, RandomAttack, SignFlipAttack};

    #[test]
    fn benign_aggregate_is_mean() {
        let mut s = Server::benign(0, 1);
        let models = vec![Tensor::from_slice(&[1.0]), Tensor::from_slice(&[3.0])];
        let agg = s.aggregate(&models, &Tensor::zeros(&[1]), &Mean::new()).unwrap();
        assert_eq!(agg.as_slice(), &[2.0]);
        assert!(!s.is_byzantine());
    }

    #[test]
    fn robust_server_rule_trims_client_garbage() {
        let mut s = Server::benign(0, 1);
        let mut models = vec![Tensor::from_slice(&[1.0]); 4];
        models.push(Tensor::from_slice(&[1e9]));
        let rule = fedms_aggregation::TrimmedMean::new(0.2).unwrap();
        let agg = s.aggregate(&models, &Tensor::zeros(&[1]), &rule).unwrap();
        assert_eq!(agg.as_slice(), &[1.0]);
    }

    #[test]
    fn empty_round_reuses_previous() {
        let mut s = Server::benign(0, 1);
        let fallback = Tensor::from_slice(&[9.0]);
        let mean = Mean::new();
        // Round 0 with nothing received → fallback (initial model).
        let a0 = s.aggregate(&[], &fallback, &mean).unwrap();
        assert_eq!(a0.as_slice(), &[9.0]);
        // Aggregate something, then go empty again → previous aggregate.
        s.aggregate(&[Tensor::from_slice(&[4.0])], &fallback, &mean).unwrap();
        let a2 = s.aggregate(&[], &fallback, &mean).unwrap();
        assert_eq!(a2.as_slice(), &[4.0]);
    }

    #[test]
    fn benign_dissemination_is_identity_broadcast() {
        let mut s = Server::benign(2, 1);
        let agg = Tensor::from_slice(&[1.0, 2.0]);
        let d = s.disseminate(&agg, 0, 5).unwrap();
        assert_eq!(d.for_client(3).unwrap(), &agg);
        assert_eq!(s.history_len(), 1);
    }

    #[test]
    fn byzantine_dissemination_tampers() {
        let mut s = Server::byzantine(1, Box::new(SignFlipAttack::new(1.0).unwrap()), 1);
        let agg = Tensor::from_slice(&[2.0]);
        let d = s.disseminate(&agg, 0, 3).unwrap();
        assert_eq!(d.for_client(0).unwrap().as_slice(), &[-2.0]);
        assert!(s.is_byzantine());
    }

    #[test]
    fn history_feeds_adaptive_attacks() {
        let mut s =
            Server::byzantine(1, Box::new(fedms_attacks::BackwardAttack::paper_default()), 1);
        let fallback = Tensor::zeros(&[1]);
        let mean = Mean::new();
        for v in [1.0f32, 2.0, 3.0, 4.0] {
            let agg = s.aggregate(&[Tensor::from_slice(&[v])], &fallback, &mean).unwrap();
            s.disseminate(&agg, 0, 1).unwrap();
        }
        // Next dissemination should replay the aggregate from 2 rounds ago.
        let agg = s.aggregate(&[Tensor::from_slice(&[5.0])], &fallback, &mean).unwrap();
        let d = s.disseminate(&agg, 4, 1).unwrap();
        assert_eq!(d.for_client(0).unwrap().as_slice(), &[3.0]);
    }

    #[test]
    fn equivocating_server_sends_distinct_models() {
        let attack = Equivocation::new(RandomAttack::default_range(), 3);
        let mut s = Server::byzantine(0, Box::new(attack), 1);
        let agg = Tensor::zeros(&[8]);
        let d = s.disseminate(&agg, 0, 4).unwrap();
        match &d {
            Dissemination::PerClient(ms) => {
                assert_eq!(ms.len(), 4);
                assert_ne!(ms[0], ms[1]);
            }
            Dissemination::Broadcast(_) => panic!("expected per-client dissemination"),
        }
        assert!(d.check_coverage(4).is_ok());
        assert!(d.check_coverage(5).is_err());
    }

    #[test]
    fn state_survives_snapshot_roundtrip() {
        let mut s = Server::benign(0, 1);
        let fallback = Tensor::zeros(&[1]);
        let mean = Mean::new();
        let agg = s.aggregate(&[Tensor::from_slice(&[4.0])], &fallback, &mean).unwrap();
        s.disseminate(&agg, 0, 1).unwrap();
        let (history, last) = s.state_snapshot();
        let mut restored = Server::benign(0, 1);
        restored.restore_state(history, last);
        assert_eq!(restored.history_len(), 1);
        // The restored server re-uses the restored aggregate when starved.
        let a = restored.aggregate(&[], &fallback, &mean).unwrap();
        assert_eq!(a.as_slice(), &[4.0]);
    }

    #[test]
    fn history_is_bounded() {
        let mut s = Server::benign(0, 1);
        let fallback = Tensor::zeros(&[1]);
        let mean = Mean::new();
        for i in 0..200 {
            let agg = s.aggregate(&[Tensor::from_slice(&[i as f32])], &fallback, &mean).unwrap();
            s.disseminate(&agg, i, 1).unwrap();
        }
        assert!(s.history_len() <= 64);
    }
}
