//! The end-side client entity.

use fedms_data::{BatchSampler, Dataset};
use fedms_nn::{Layer, LrSchedule, NeuralNet, Sgd};
use fedms_tensor::rng::derive_seed;
use fedms_tensor::Tensor;

use crate::{Result, SimError};

/// One end client: a local model, a local data shard, and a mini-batch SGD
/// loop (Algorithm 1 lines 6–11).
///
/// All client randomness (mini-batch order) is derived per training call
/// from `(seed, id, global_step)`, so a client's behaviour is a pure
/// function of its state — the property behind the engine's bit-exact
/// checkpoint/resume.
///
/// **Rehydration contract** (relied on by [`crate::SimulationEngine`]'s
/// lazy [`Client`] construction): the parameter vector is a client's
/// *entire* evolving state. The optimizer is stateless between calls
/// (its step index is set from `global_step`), the batch stream is a pure
/// function of `(seed, id, global_step)`, and the shard is immutable —
/// so dropping a [`Client`] and rebuilding it from `(id, shard, seed)`
/// plus its last parameter vector continues training bit-identically.
/// Any new per-client mutable state added here must move into the
/// engine's client store to keep that true.
pub struct Client {
    id: usize,
    model: Box<dyn Layer>,
    data: Dataset,
    batch_size: usize,
    seed: u64,
    optimizer: Sgd,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.id)
            .field("model", &self.model.name())
            .field("shard", &self.data.len())
            .finish()
    }
}

impl Client {
    /// Creates a client.
    ///
    /// `data` is this client's local shard, already in the layout the model
    /// expects (flattened for MLPs). `seed` feeds the client's private
    /// mini-batch stream.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the sampler or learning-rate
    /// schedule.
    pub fn new(
        id: usize,
        model: Box<dyn Layer>,
        data: Dataset,
        batch_size: usize,
        schedule: LrSchedule,
        seed: u64,
    ) -> Result<Self> {
        if batch_size == 0 {
            return Err(SimError::BadConfig("batch size must be positive".into()));
        }
        let optimizer = Sgd::new(schedule)?;
        Ok(Client { id, model, data, batch_size, seed, optimizer })
    }

    /// Routes the model's dense kernels and the optimizer's update loop
    /// through `backend` (the scalar reference backend by default).
    pub fn set_backend(&mut self, backend: fedms_tensor::BackendHandle) {
        self.model.set_backend(backend);
        self.optimizer.set_backend(backend);
    }

    /// This client's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of local samples.
    pub fn shard_size(&self) -> usize {
        self.data.len()
    }

    /// The flat parameter vector of the local model.
    pub fn model_vector(&self) -> Tensor {
        self.model.param_vector()
    }

    /// Number of model parameters.
    pub fn model_len(&self) -> usize {
        self.model.num_params()
    }

    /// Replaces the local model parameters (the filtered global model
    /// becoming `w_{t+1,0}^k`).
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error for an incompatible vector.
    pub fn set_model_vector(&mut self, v: &Tensor) -> Result<()> {
        self.model.set_param_vector(v)?;
        Ok(())
    }

    /// Rotates the client's training labels (`c → c + offset mod classes`)
    /// — the data-poisoning side of the label-flip client attack.
    pub fn poison_labels(&mut self, offset: usize) {
        self.data = self.data.with_rotated_labels(offset);
    }

    /// Runs `epochs` local mini-batch SGD iterations starting at global
    /// step `global_step` (so the decaying schedule `η_t` is synchronised
    /// across clients). Returns the mean training loss over the iterations.
    ///
    /// # Errors
    ///
    /// Propagates training errors; returns [`SimError::BadConfig`] for
    /// zero epochs.
    pub fn local_train(&mut self, epochs: usize, global_step: usize) -> Result<f32> {
        if epochs == 0 {
            return Err(SimError::BadConfig("local epochs must be positive".into()));
        }
        self.optimizer.set_step(global_step);
        let mut sampler = BatchSampler::new(
            self.data.len(),
            self.batch_size,
            derive_seed(self.seed, &[self.id as u64, global_step as u64]),
        )?;
        let mut total = 0.0f64;
        for _ in 0..epochs {
            let indices = sampler.next_batch();
            let (x, labels) = self.data.batch(&indices)?;
            let loss = self.model.train_batch(&x, &labels, &mut self.optimizer)?;
            if !loss.is_finite() {
                return Err(SimError::BadConfig(format!(
                    "client {} diverged: non-finite loss",
                    self.id
                )));
            }
            total += loss as f64;
        }
        Ok((total / epochs as f64) as f32)
    }

    /// Test accuracy of the local model on a shared test set (already in
    /// the model's input layout).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> Result<f32> {
        Ok(self.model.evaluate(x, labels)?)
    }

    /// Test loss of the local model on a shared test set.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn evaluate_loss(&mut self, x: &Tensor, labels: &[usize]) -> Result<f32> {
        Ok(self.model.evaluate_loss(x, labels)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelSpec;
    use fedms_data::SynthVisionConfig;

    fn make_client(seed: u64) -> Client {
        let (train, _) = SynthVisionConfig::small().generate(1).unwrap();
        let spec = ModelSpec::Mlp { widths: vec![16, 8, 4] };
        Client::new(
            0,
            spec.build(seed).unwrap(),
            train.flattened(),
            8,
            LrSchedule::Constant(0.1),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let c = make_client(1);
        assert_eq!(c.id(), 0);
        assert_eq!(c.shard_size(), 40);
        assert_eq!(c.model_len(), 16 * 8 + 8 + 8 * 4 + 4);
    }

    #[test]
    fn local_train_returns_finite_loss() {
        let mut c = make_client(2);
        let loss = c.local_train(3, 0).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
        assert!(c.local_train(0, 0).is_err());
    }

    #[test]
    fn training_changes_model() {
        let mut c = make_client(3);
        let before = c.model_vector();
        c.local_train(3, 0).unwrap();
        assert_ne!(before, c.model_vector());
    }

    #[test]
    fn set_model_roundtrip() {
        let mut c = make_client(4);
        let v = c.model_vector().scaled(0.5);
        c.set_model_vector(&v).unwrap();
        assert_eq!(c.model_vector(), v);
        assert!(c.set_model_vector(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn evaluation_runs() {
        let (_, test) = SynthVisionConfig::small().generate(1).unwrap();
        let flat = test.flattened();
        let mut c = make_client(5);
        let acc = c.evaluate(flat.samples(), flat.labels()).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        let loss = c.evaluate_loss(flat.samples(), flat.labels()).unwrap();
        assert!(loss > 0.0);
    }

    #[test]
    fn training_learns_over_many_rounds() {
        let (train, test) = SynthVisionConfig::small().generate(6).unwrap();
        let spec = ModelSpec::Mlp { widths: vec![16, 16, 4] };
        let mut c = Client::new(
            0,
            spec.build(6).unwrap(),
            train.flattened(),
            16,
            LrSchedule::Constant(0.1),
            6,
        )
        .unwrap();
        let flat = test.flattened();
        let before = c.evaluate(flat.samples(), flat.labels()).unwrap();
        for step in 0..100 {
            c.local_train(3, step * 3).unwrap();
        }
        let after = c.evaluate(flat.samples(), flat.labels()).unwrap();
        assert!(after > before.max(0.5), "accuracy {before} → {after}");
    }
}
