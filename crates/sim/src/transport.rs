//! The message layer: typed protocol messages over a [`Transport`].
//!
//! Fed-MS's round is an explicit message-passing protocol — sparse uploads
//! to one random PS, per-server aggregation, all-server dissemination,
//! client-side filtering. This module makes the messages and their fates
//! first-class:
//!
//! * [`Upload`] / [`Broadcast`] — the two protocol message types,
//! * [`DeliveryOutcome`] / [`Delivery`] — what actually happened to each
//!   message on the wire,
//! * [`Transport`] — the delivery substrate the
//!   [`crate::SimulationEngine`]'s phase pipeline runs over,
//! * [`LocalTransport`] — the seed-deterministic in-process implementation.
//!
//! `LocalTransport` absorbs the *entire* benign-fault realization of a
//! [`FaultPlan`] — crash silence, straggler outboxes, uplink channel loss,
//! downlink omission and duplication — together with all [`CommStats`]
//! accounting, so the engine and its phases never touch a fault branch or a
//! byte counter directly. Alternate delivery models (a lossier WAN, a
//! future async/networked backend) drop in by implementing [`Transport`]
//! and handing the implementation to
//! [`crate::SimulationEngine::set_transport`].
//!
//! Determinism: all transport randomness derives from the run seed and the
//! round index (`"DROP"` stream for uplink channel loss, `"OMIT"` stream
//! for downlink omission/duplication), and the RNGs are only instantiated
//! when the corresponding loss probability is non-zero — a trivial plan is
//! bit-identical to no plan at all, and every faulty run replays exactly
//! from `(config, seed)`.

use std::collections::VecDeque;

use fedms_tensor::pool::BufferPool;
use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::recovery::UploadReport;
use crate::threat::NetThreat;
use crate::{CommStats, FaultPlan, Result, SimError};

/// RNG label for uplink channel loss ("DROP"). Shared with
/// [`crate::net::NetTransport`], which must replay the identical stream
/// for Local≡Net equivalence.
pub(crate) const DROP_LABEL: u64 = 0x44_52_4F_50;
/// RNG label for downlink omission/duplication ("OMIT"); shared like
/// [`DROP_LABEL`].
pub(crate) const OMIT_LABEL: u64 = 0x4F_4D_49_54;

/// What a server sends out in the dissemination stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Dissemination {
    /// The same model is broadcast to every client.
    Broadcast(Tensor),
    /// Client `k` receives `models[k]` (equivocating Byzantine server).
    PerClient(Vec<Tensor>),
}

impl Dissemination {
    /// The model delivered to `client_id`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DisseminationCoverage`] for a per-client
    /// dissemination that does not cover `client_id` (an equivocating
    /// server's message shorter than the federation), instead of an
    /// out-of-bounds panic.
    pub fn for_client(&self, client_id: usize) -> Result<&Tensor> {
        match self {
            Dissemination::Broadcast(m) => Ok(m),
            Dissemination::PerClient(ms) => ms
                .get(client_id)
                .ok_or(SimError::DisseminationCoverage { client: client_id, covered: ms.len() }),
        }
    }

    /// Validates that the dissemination covers `num_clients` clients.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for a per-client dissemination that
    /// does not name every client.
    pub fn check_coverage(&self, num_clients: usize) -> Result<()> {
        if let Dissemination::PerClient(ms) = self {
            if ms.len() != num_clients {
                return Err(SimError::BadConfig(format!(
                    "per-client dissemination covers {} of {num_clients} clients",
                    ms.len()
                )));
            }
        }
        Ok(())
    }
}

/// One client→server model upload (Algorithm 1 line 11).
#[derive(Debug, Clone, PartialEq)]
pub struct Upload {
    /// Sender client id.
    pub client: usize,
    /// Destination server id.
    pub server: usize,
    /// The (possibly client-attack-tampered) local model.
    pub model: Tensor,
}

/// One server→clients dissemination message.
#[derive(Debug, Clone, PartialEq)]
pub struct Broadcast {
    /// Sender server id.
    pub server: usize,
    /// The disseminated model(s); per-client when the server equivocates.
    pub model: Dissemination,
}

/// The realized fate of one protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryOutcome {
    /// The message arrived this round.
    Delivered,
    /// Lost in transit: uplink channel loss or a crashed recipient.
    Dropped,
    /// Delivered twice — the duplicate is a second, separately accounted
    /// transmission. The filter phase suppresses the repeat (first delivery
    /// wins), so duplication costs bandwidth but never filter weight.
    Duplicated,
    /// Held back by a straggler pipeline; the payload surfaces (stale) in a
    /// later round, or never if the pipeline is still warming up.
    Delayed,
}

/// One realized server→client delivery on the downlink.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The originating server.
    pub server: usize,
    /// The delivered model.
    pub model: Tensor,
    /// [`DeliveryOutcome::Delivered`] for a first copy,
    /// [`DeliveryOutcome::Duplicated`] for a fault-injected repeat.
    /// Duplicates never count toward the filter quorum and are suppressed
    /// before filtering.
    pub outcome: DeliveryOutcome,
}

/// The delivery substrate one federated round runs over.
///
/// The engine's phase pipeline is written purely against this trait:
/// uploads go in via [`Transport::send_upload`], per-server inboxes come
/// back out via [`Transport::take_inbox`], disseminations are queued with
/// [`Transport::broadcast`] and realized per client with
/// [`Transport::drain_deliveries`]. Fault realization (who is crashed,
/// which pipeline straggles, which links lose or duplicate messages) and
/// all [`CommStats`] accounting live behind the implementation.
pub trait Transport: Send {
    /// A short name for banners and diagnostics (e.g. `"local"`).
    fn name(&self) -> &'static str;

    /// Starts a new round: clears per-round buffers and counters and
    /// re-derives the round's RNG streams. `model_len` is the parameter
    /// count used for byte accounting.
    fn begin_round(&mut self, round: usize, model_len: usize);

    /// Routes one client→server upload and returns its realized fate
    /// ([`DeliveryOutcome::Delivered`] or [`DeliveryOutcome::Dropped`]).
    /// The sender pays for the attempt either way.
    fn send_upload(&mut self, upload: Upload) -> DeliveryOutcome;

    /// Routes one upload and reports its attempt-level history. Plain
    /// transports make exactly one attempt; a recovering transport (see
    /// [`crate::ResilientTransport`]) may retry, back off and fail over,
    /// and reports how the exchange actually went.
    fn send_upload_tracked(&mut self, upload: Upload) -> UploadReport {
        let server = upload.server;
        UploadReport::direct(self.send_upload(upload), server)
    }

    /// Whether this transport can route uploads *without* taking ownership
    /// of the payload ([`Transport::route_upload`]), letting the caller
    /// stream the model straight into a running aggregate instead of
    /// queueing it in the server inbox. Recovery layers that may need to
    /// retransmit a payload later keep the default `false`.
    fn supports_streaming(&self) -> bool {
        false
    }

    /// Routes one client→server upload *by reference*: performs exactly
    /// the accounting and channel-loss draws of [`Transport::send_upload`]
    /// but never stores the payload, returning the realized fate so the
    /// caller can fold a delivered model into a streaming aggregate
    /// itself. Returns `None` on transports that do not support streaming
    /// (see [`Transport::supports_streaming`]); callers must then fall
    /// back to [`Transport::send_upload`].
    fn route_upload(&mut self, client: usize, server: usize) -> Option<DeliveryOutcome> {
        let _ = (client, server);
        None
    }

    /// Declares how many clients actually receive this round's
    /// disseminations (a sampled cohort may be far smaller than the
    /// federation). Affects download accounting only; transports that do
    /// not track per-recipient costs may ignore it. Reset to the full
    /// federation by [`Transport::begin_round`].
    fn set_round_recipients(&mut self, recipients: usize) {
        let _ = recipients;
    }

    /// Whether `server` can participate this round (a crashed server
    /// cannot).
    fn server_online(&self, server: usize) -> bool;

    /// Passes a freshly computed aggregate through the server's delivery
    /// pipeline. A healthy pipeline returns it unchanged
    /// ([`DeliveryOutcome::Delivered`]); a straggler pipeline returns the
    /// aggregate from `delay` rounds ago, or `None` while still filling
    /// (both [`DeliveryOutcome::Delayed`]).
    fn release_aggregate(
        &mut self,
        server: usize,
        aggregate: Tensor,
    ) -> (DeliveryOutcome, Option<Tensor>);

    /// Queues one server's dissemination for delivery to every client.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the dissemination does not cover
    /// every client.
    fn broadcast(&mut self, message: Broadcast) -> Result<()>;

    /// Takes the uplink inbox of `server`: the uploads that actually
    /// arrived this round, in send order.
    fn take_inbox(&mut self, server: usize) -> Vec<Tensor>;

    /// Realizes the downlink for `client`: every queued dissemination, in
    /// broadcast order, minus omissions, plus duplicates. Each client sees
    /// its own realization of a lossy downlink.
    fn drain_deliveries(&mut self, client: usize) -> Vec<Delivery>;

    /// [`Transport::drain_deliveries`], materializing the delivered
    /// tensors through `pool` so their storage can be recycled after
    /// filtering. Value-transparent: the deliveries are bit-identical to
    /// the unpooled drain. The default ignores the pool.
    fn drain_deliveries_pooled(&mut self, client: usize, pool: &BufferPool) -> Vec<Delivery> {
        let _ = pool;
        self.drain_deliveries(client)
    }

    /// Takes the communication counters accumulated since
    /// [`Transport::begin_round`].
    fn take_comm(&mut self) -> CommStats;

    /// Installs a benign-fault schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the plan does not fit the
    /// federation (see [`FaultPlan::validate`]).
    fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<()>;

    /// The active fault schedule (trivial by default).
    fn fault_plan(&self) -> &FaultPlan;

    /// Sets the probability that any single upload message is lost in
    /// transit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] unless `0 ≤ rate < 1`.
    fn set_upload_drop_rate(&mut self, rate: f64) -> Result<()>;

    /// Installs this round's network-layer threat (link partitions, frame
    /// corruption) from the dynamic [`crate::ThreatSchedule`]. Effective
    /// from the next [`Transport::begin_round`]. Only transports with an
    /// actual wire ([`crate::net::NetTransport`]) realize it; the default
    /// ignores it — [`LocalTransport`] models no network, so there is no
    /// link to cut or frame to corrupt. Decorators must forward it.
    fn set_net_threat(&mut self, threat: NetThreat) {
        let _ = threat;
    }

    /// The evolving cross-round state (per-server straggler outboxes,
    /// oldest first) for bit-exact checkpointing.
    fn state_snapshot(&self) -> Vec<Vec<Tensor>>;

    /// Restores the evolving state captured by
    /// [`Transport::state_snapshot`].
    fn restore_state(&mut self, outboxes: Vec<Vec<Tensor>>);

    /// The recovery layer's evolving cross-round state (per-server
    /// delivery records steering failover), for bit-exact checkpointing.
    /// Empty for transports without a recovery layer.
    fn recovery_state(&self) -> Vec<u32> {
        Vec::new()
    }

    /// Restores the state captured by [`Transport::recovery_state`]. A
    /// no-op for transports without a recovery layer.
    fn restore_recovery_state(&mut self, _state: Vec<u32>) {}
}

/// The seed-deterministic in-process transport.
///
/// Reproduces the paper's synchronous, reliable network by default; with a
/// [`FaultPlan`] installed it realizes crash silence, straggler delays and
/// lossy/duplicating downlinks exactly as described in DESIGN.md §6, with
/// every random draw a pure function of `(seed, round, link)`.
pub struct LocalTransport {
    seed: u64,
    num_clients: usize,
    num_servers: usize,
    fault_plan: FaultPlan,
    upload_drop_rate: f64,
    round: usize,
    model_len: usize,
    /// Clients receiving this round's disseminations (download
    /// accounting); the full federation unless the engine samples a
    /// smaller cohort.
    recipients: usize,
    /// A cohort size declared *before* the round opened, applied by the
    /// next [`Transport::begin_round`] instead of being silently reset.
    pending_recipients: Option<usize>,
    /// Whether a round is open (between `begin_round` and `take_comm`);
    /// gates whether `set_round_recipients` applies now or at next round.
    round_open: bool,
    drop_rng: Option<StdRng>,
    downlink_rng: Option<StdRng>,
    inboxes: Vec<Vec<Tensor>>,
    queued: Vec<Broadcast>,
    /// Aggregates awaiting delayed dissemination per straggler server,
    /// oldest first (FIFO, popped front). Persists across rounds
    /// (checkpointed state).
    outboxes: Vec<VecDeque<Tensor>>,
    comm: CommStats,
}

impl std::fmt::Debug for LocalTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalTransport")
            .field("round", &self.round)
            .field("clients", &self.num_clients)
            .field("servers", &self.num_servers)
            .field("faulty", &!self.fault_plan.is_trivial())
            .finish()
    }
}

impl LocalTransport {
    /// Creates a fault-free transport for a `num_clients` × `num_servers`
    /// federation, deriving all channel randomness from `seed`.
    pub fn new(seed: u64, num_clients: usize, num_servers: usize) -> Self {
        LocalTransport {
            seed,
            num_clients,
            num_servers,
            fault_plan: FaultPlan::none(),
            upload_drop_rate: 0.0,
            round: 0,
            model_len: 0,
            recipients: num_clients,
            pending_recipients: None,
            round_open: false,
            drop_rng: None,
            downlink_rng: None,
            inboxes: vec![Vec::new(); num_servers],
            queued: Vec::new(),
            outboxes: vec![VecDeque::new(); num_servers],
            comm: CommStats::new(),
        }
    }

    /// Shared downlink realization; `materialize` copies a queued model
    /// into its delivered form (a plain clone, or a pooled copy whose
    /// storage the filter phase recycles). The fault draws and accounting
    /// are identical either way.
    fn drain_with<F: FnMut(&Tensor) -> Tensor>(
        &mut self,
        client: usize,
        mut materialize: F,
    ) -> Vec<Delivery> {
        let mut out = Vec::with_capacity(self.queued.len());
        for b in &self.queued {
            // Coverage is validated when the broadcast is queued, so a miss
            // here means an upstream bug; skip rather than panic.
            let Ok(model) = b.model.for_client(client) else {
                debug_assert!(false, "queued dissemination misses client {client}");
                continue;
            };
            if let Some(rng) = &mut self.downlink_rng {
                if self.fault_plan.downlink_omission > 0.0
                    && rng.gen_bool(self.fault_plan.downlink_omission)
                {
                    self.comm.record_dropped_download();
                    continue;
                }
                out.push(Delivery {
                    server: b.server,
                    model: materialize(model),
                    outcome: DeliveryOutcome::Delivered,
                });
                if self.fault_plan.duplicate_rate > 0.0
                    && rng.gen_bool(self.fault_plan.duplicate_rate)
                {
                    // Delivered twice: double filter weight, and the
                    // network carried it twice.
                    self.comm.record_duplicated_download(self.model_len);
                    out.push(Delivery {
                        server: b.server,
                        model: materialize(model),
                        outcome: DeliveryOutcome::Duplicated,
                    });
                }
            } else {
                out.push(Delivery {
                    server: b.server,
                    model: materialize(model),
                    outcome: DeliveryOutcome::Delivered,
                });
            }
        }
        out
    }
}

impl Transport for LocalTransport {
    fn name(&self) -> &'static str {
        "local"
    }

    fn begin_round(&mut self, round: usize, model_len: usize) {
        self.round = round;
        self.model_len = model_len;
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        self.queued.clear();
        self.comm = CommStats::new();
        self.round_open = true;
        // A cohort declared before the round opened takes effect now
        // instead of being silently reset to the full federation.
        self.recipients = match self.pending_recipients.take() {
            Some(n) => n.min(self.num_clients),
            None => self.num_clients,
        };
        // The loss streams are derived per round so any round is replayable
        // in isolation; they are only instantiated (and drawn from) when
        // the corresponding probability is non-zero, keeping the reliable
        // path bit-identical to the pre-fault engine.
        self.drop_rng =
            (self.upload_drop_rate > 0.0).then(|| rng_for(self.seed, &[DROP_LABEL, round as u64]));
        self.downlink_rng = self
            .fault_plan
            .lossy_downlink()
            .then(|| rng_for(self.seed, &[OMIT_LABEL, round as u64]));
    }

    fn send_upload(&mut self, upload: Upload) -> DeliveryOutcome {
        let outcome = self
            .route_upload(upload.client, upload.server)
            .expect("local transport routes uploads");
        if outcome == DeliveryOutcome::Delivered {
            self.inboxes[upload.server].push(upload.model);
        }
        outcome
    }

    fn supports_streaming(&self) -> bool {
        true
    }

    fn route_upload(&mut self, _client: usize, server: usize) -> Option<DeliveryOutcome> {
        // The sender pays for the attempt whether or not it lands.
        self.comm.record_uploads(1, self.model_len);
        // The channel draw happens regardless of the recipient's health, so
        // a fault plan perturbs nothing else.
        let channel_loss = match &mut self.drop_rng {
            Some(rng) => rng.gen_bool(self.upload_drop_rate),
            None => false,
        };
        Some(if channel_loss || self.fault_plan.is_crashed(server, self.round) {
            self.comm.record_dropped_upload();
            DeliveryOutcome::Dropped
        } else {
            DeliveryOutcome::Delivered
        })
    }

    fn set_round_recipients(&mut self, recipients: usize) {
        if self.round_open {
            self.recipients = recipients.min(self.num_clients);
        } else {
            // Declared between rounds: defer to the next `begin_round` so
            // its reset cannot silently overwrite the declaration.
            self.pending_recipients = Some(recipients);
        }
    }

    fn server_online(&self, server: usize) -> bool {
        !self.fault_plan.is_crashed(server, self.round)
    }

    fn release_aggregate(
        &mut self,
        server: usize,
        aggregate: Tensor,
    ) -> (DeliveryOutcome, Option<Tensor>) {
        match self.fault_plan.straggler_delay(server) {
            Some(delay) => {
                let outbox = &mut self.outboxes[server];
                outbox.push_back(aggregate);
                if outbox.len() > delay {
                    (DeliveryOutcome::Delayed, outbox.pop_front())
                } else {
                    (DeliveryOutcome::Delayed, None)
                }
            }
            None => (DeliveryOutcome::Delivered, Some(aggregate)),
        }
    }

    fn broadcast(&mut self, message: Broadcast) -> Result<()> {
        message.model.check_coverage(self.num_clients)?;
        self.comm.record_downloads(self.recipients as u64, self.model_len);
        self.queued.push(message);
        Ok(())
    }

    fn take_inbox(&mut self, server: usize) -> Vec<Tensor> {
        std::mem::take(&mut self.inboxes[server])
    }

    fn drain_deliveries(&mut self, client: usize) -> Vec<Delivery> {
        self.drain_with(client, Tensor::clone)
    }

    fn drain_deliveries_pooled(&mut self, client: usize, pool: &BufferPool) -> Vec<Delivery> {
        self.drain_with(client, |m| pool.fetch_tensor(m))
    }

    fn take_comm(&mut self) -> CommStats {
        self.round_open = false;
        std::mem::take(&mut self.comm)
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<()> {
        plan.validate(self.num_servers)?;
        self.fault_plan = plan;
        Ok(())
    }

    fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    fn set_upload_drop_rate(&mut self, rate: f64) -> Result<()> {
        if !(rate.is_finite() && (0.0..1.0).contains(&rate)) {
            return Err(SimError::BadConfig(format!("drop rate must be in [0, 1), got {rate}")));
        }
        self.upload_drop_rate = rate;
        Ok(())
    }

    fn state_snapshot(&self) -> Vec<Vec<Tensor>> {
        self.outboxes.iter().map(|q| q.iter().cloned().collect()).collect()
    }

    fn restore_state(&mut self, outboxes: Vec<Vec<Tensor>>) {
        self.outboxes = outboxes.into_iter().map(VecDeque::from).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerFault;

    fn plain(seed: u64) -> LocalTransport {
        let mut t = LocalTransport::new(seed, 4, 3);
        t.begin_round(0, 2);
        t
    }

    fn up(client: usize, server: usize, v: f32) -> Upload {
        Upload { client, server, model: Tensor::from_slice(&[v, v]) }
    }

    #[test]
    fn reliable_uplink_delivers_in_order() {
        let mut t = plain(1);
        assert_eq!(t.send_upload(up(0, 1, 1.0)), DeliveryOutcome::Delivered);
        assert_eq!(t.send_upload(up(2, 1, 2.0)), DeliveryOutcome::Delivered);
        let inbox = t.take_inbox(1);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0].as_slice(), &[1.0, 1.0]);
        assert_eq!(inbox[1].as_slice(), &[2.0, 2.0]);
        assert!(t.take_inbox(1).is_empty(), "inbox is drained once");
        let comm = t.take_comm();
        assert_eq!(comm.upload_messages, 2);
        assert_eq!(comm.upload_bytes, 2 * 4 * 2);
        assert_eq!(comm.dropped_uploads, 0);
    }

    #[test]
    fn crashed_recipient_drops_uploads() {
        let mut t = LocalTransport::new(1, 4, 3);
        t.install_fault_plan(FaultPlan {
            server_faults: vec![ServerFault::None, ServerFault::Crash { round: 1 }],
            ..FaultPlan::default()
        })
        .unwrap();
        t.begin_round(0, 2);
        assert_eq!(t.send_upload(up(0, 1, 1.0)), DeliveryOutcome::Delivered);
        assert!(t.server_online(1));
        t.begin_round(1, 2);
        assert_eq!(t.send_upload(up(0, 1, 1.0)), DeliveryOutcome::Dropped);
        assert!(!t.server_online(1));
        assert!(t.take_inbox(1).is_empty());
        let comm = t.take_comm();
        // The sender still pays for the dropped attempt.
        assert_eq!(comm.upload_messages, 1);
        assert_eq!(comm.dropped_uploads, 1);
    }

    #[test]
    fn straggler_pipeline_delays_by_exactly_d_rounds() {
        let mut t = LocalTransport::new(1, 4, 3);
        t.install_fault_plan(FaultPlan {
            server_faults: vec![ServerFault::Straggler { delay: 2 }],
            ..FaultPlan::default()
        })
        .unwrap();
        t.begin_round(0, 1);
        // delay = 2: rounds 0 and 1 release nothing, round t ≥ 2 releases
        // the aggregate from round t − 2.
        let (o, m) = t.release_aggregate(0, Tensor::from_slice(&[0.0]));
        assert_eq!((o, m), (DeliveryOutcome::Delayed, None));
        let (o, m) = t.release_aggregate(0, Tensor::from_slice(&[1.0]));
        assert_eq!((o, m), (DeliveryOutcome::Delayed, None));
        let (o, m) = t.release_aggregate(0, Tensor::from_slice(&[2.0]));
        assert_eq!(o, DeliveryOutcome::Delayed);
        assert_eq!(m.unwrap().as_slice(), &[0.0]);
        // A healthy server's aggregate flows straight through.
        let (o, m) = t.release_aggregate(1, Tensor::from_slice(&[7.0]));
        assert_eq!(o, DeliveryOutcome::Delivered);
        assert_eq!(m.unwrap().as_slice(), &[7.0]);
    }

    #[test]
    fn outbox_survives_snapshot_roundtrip() {
        let mut t = LocalTransport::new(1, 4, 3);
        let plan = FaultPlan {
            server_faults: vec![ServerFault::Straggler { delay: 3 }],
            ..FaultPlan::default()
        };
        t.install_fault_plan(plan.clone()).unwrap();
        t.begin_round(0, 1);
        t.release_aggregate(0, Tensor::from_slice(&[7.0]));
        let state = t.state_snapshot();
        assert_eq!(state[0].len(), 1);

        let mut restored = LocalTransport::new(1, 4, 3);
        restored.install_fault_plan(plan).unwrap();
        restored.restore_state(state);
        // The restored pipeline continues where the original left off.
        assert!(restored.release_aggregate(0, Tensor::from_slice(&[8.0])).1.is_none());
        assert!(restored.release_aggregate(0, Tensor::from_slice(&[9.0])).1.is_none());
        let out = restored.release_aggregate(0, Tensor::from_slice(&[10.0])).1.unwrap();
        assert_eq!(out.as_slice(), &[7.0]);
    }

    #[test]
    fn broadcast_checks_coverage_and_accounts() {
        let mut t = plain(1);
        let bad = Broadcast {
            server: 0,
            model: Dissemination::PerClient(vec![Tensor::from_slice(&[1.0, 1.0]); 3]),
        };
        assert!(t.broadcast(bad).is_err());
        let good = Broadcast {
            server: 0,
            model: Dissemination::Broadcast(Tensor::from_slice(&[1.0, 1.0])),
        };
        t.broadcast(good).unwrap();
        for k in 0..4 {
            let d = t.drain_deliveries(k);
            assert_eq!(d.len(), 1);
            assert_eq!(d[0].server, 0);
            assert_eq!(d[0].outcome, DeliveryOutcome::Delivered);
        }
        let comm = t.take_comm();
        // One broadcast to 4 clients, nothing lost or duplicated.
        assert_eq!(comm.download_messages, 4);
        assert_eq!(comm.download_bytes, 4 * 4 * 2);
        assert_eq!(comm.dropped_downloads + comm.duplicated_downloads, 0);
    }

    #[test]
    fn lossy_downlink_realizes_per_client_and_accounts() {
        let mut t = LocalTransport::new(9, 16, 2);
        t.install_fault_plan(FaultPlan {
            downlink_omission: 0.4,
            duplicate_rate: 0.4,
            ..FaultPlan::default()
        })
        .unwrap();
        t.begin_round(0, 1);
        for s in 0..2 {
            t.broadcast(Broadcast {
                server: s,
                model: Dissemination::Broadcast(Tensor::from_slice(&[s as f32])),
            })
            .unwrap();
        }
        let mut delivered = 0u64;
        let mut duplicated = 0u64;
        for k in 0..16 {
            for d in t.drain_deliveries(k) {
                match d.outcome {
                    DeliveryOutcome::Delivered => delivered += 1,
                    DeliveryOutcome::Duplicated => duplicated += 1,
                    other => panic!("unexpected downlink outcome {other:?}"),
                }
            }
        }
        let comm = t.take_comm();
        assert!(comm.dropped_downloads > 0, "40% omission must drop something");
        assert!(duplicated > 0, "40% duplication must duplicate something");
        assert_eq!(comm.duplicated_downloads, duplicated);
        assert_eq!(comm.download_messages, 2 * 16 + duplicated);
        assert_eq!(delivered, 2 * 16 - comm.dropped_downloads);
    }

    #[test]
    fn for_client_is_checked_not_panicking() {
        let d = Dissemination::PerClient(vec![Tensor::from_slice(&[1.0]); 2]);
        assert!(d.for_client(1).is_ok());
        assert_eq!(
            d.for_client(5).unwrap_err(),
            SimError::DisseminationCoverage { client: 5, covered: 2 }
        );
        let b = Dissemination::Broadcast(Tensor::from_slice(&[2.0]));
        assert_eq!(b.for_client(99).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn recipients_declared_before_begin_round_survive_the_reset() {
        // Regression: `begin_round` used to reset `recipients` back to the
        // full federation, silently overcounting downlink bytes whenever
        // the cohort was declared first.
        let mut t = LocalTransport::new(1, 8, 2);
        t.set_round_recipients(3);
        t.begin_round(0, 2);
        t.broadcast(Broadcast {
            server: 0,
            model: Dissemination::Broadcast(Tensor::from_slice(&[1.0, 1.0])),
        })
        .unwrap();
        let comm = t.take_comm();
        assert_eq!(comm.download_messages, 3, "pre-round cohort must not be reset");
        assert_eq!(comm.download_bytes, 3 * 4 * 2);
        // The declaration is consumed: the next round reverts to the full
        // federation unless declared again.
        t.begin_round(1, 2);
        t.broadcast(Broadcast {
            server: 0,
            model: Dissemination::Broadcast(Tensor::from_slice(&[1.0, 1.0])),
        })
        .unwrap();
        assert_eq!(t.take_comm().download_messages, 8);
        // Declared mid-round (the engine's order) it still applies directly.
        t.begin_round(2, 2);
        t.set_round_recipients(5);
        t.broadcast(Broadcast {
            server: 0,
            model: Dissemination::Broadcast(Tensor::from_slice(&[1.0, 1.0])),
        })
        .unwrap();
        assert_eq!(t.take_comm().download_messages, 5);
    }

    #[test]
    fn deque_outbox_matches_vec_remove_semantics() {
        // Bit-exactness of the VecDeque straggler pipeline against the old
        // `Vec::remove(0)` reference over a mixed push/pop schedule.
        let delay = 3usize;
        let mut t = LocalTransport::new(1, 4, 1);
        t.install_fault_plan(FaultPlan {
            server_faults: vec![ServerFault::Straggler { delay }],
            ..FaultPlan::default()
        })
        .unwrap();
        t.begin_round(0, 1);
        let mut reference: Vec<Vec<f32>> = Vec::new();
        for i in 0..32 {
            let v = (i * 7 % 13) as f32;
            reference.push(vec![v]);
            let expected = (reference.len() > delay).then(|| reference.remove(0));
            let (o, m) = t.release_aggregate(0, Tensor::from_slice(&[v]));
            assert_eq!(o, DeliveryOutcome::Delayed);
            assert_eq!(m.map(|m| m.as_slice().to_vec()), expected);
        }
        // And the snapshot round-trip preserves FIFO order bit-exactly.
        let state = t.state_snapshot();
        assert_eq!(state[0].len(), delay);
        let mut r = LocalTransport::new(1, 4, 1);
        r.restore_state(state);
        assert_eq!(r.state_snapshot(), t.state_snapshot());
    }

    #[test]
    fn validation_of_plan_and_drop_rate() {
        let mut t = LocalTransport::new(1, 4, 3);
        assert!(t
            .install_fault_plan(FaultPlan {
                server_faults: vec![ServerFault::None; 5],
                ..FaultPlan::default()
            })
            .is_err());
        assert!(t.set_upload_drop_rate(1.0).is_err());
        assert!(t.set_upload_drop_rate(-0.1).is_err());
        assert!(t.set_upload_drop_rate(f64::NAN).is_err());
        assert!(t.set_upload_drop_rate(0.5).is_ok());
        assert_eq!(t.name(), "local");
        assert!(t.fault_plan().is_trivial());
    }
}
