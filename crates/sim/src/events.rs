//! Structured event log for auditing a federation run.
//!
//! When enabled on the engine, every stage of every round appends a
//! [`RoundEvent`] — who trained, which uploads went where (and which were
//! dropped), what each server aggregated and disseminated, and what each
//! filter decided. The log is bounded (oldest events evicted) and
//! queryable, turning "why did round 17 go wrong?" into a lookup instead of
//! a re-run.

use serde::{Deserialize, Serialize};

/// One structured event emitted by the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RoundEvent {
    /// A client finished its local-training stage.
    LocalTrainingCompleted {
        /// Round index.
        round: usize,
        /// Client id.
        client: usize,
        /// Mean training loss over the local iterations.
        loss: f32,
    },
    /// A client's model was sent to a server (post client-attack tampering,
    /// pre channel loss).
    UploadSent {
        /// Round index.
        round: usize,
        /// Sender client id.
        client: usize,
        /// Destination server id.
        server: usize,
        /// Whether the message was lost in transit.
        dropped: bool,
    },
    /// The recovery layer intervened in an upload exchange: it retried,
    /// failed over, or abandoned the exchange on its deadline. Emitted only
    /// when something beyond a clean first attempt happened.
    UploadRecovery {
        /// Round index.
        round: usize,
        /// Sender client id.
        client: usize,
        /// The originally targeted server.
        server: usize,
        /// The server that finally received the upload (differs from
        /// `server` after failover), if any attempt landed.
        delivered_to: Option<usize>,
        /// Total attempts placed on the wire.
        attempts: u32,
        /// Whether the exchange re-targeted an alternate server.
        failed_over: bool,
        /// Whether the exchange stopped on the per-message deadline.
        deadline_missed: bool,
    },
    /// A server produced its aggregate.
    Aggregated {
        /// Round index.
        round: usize,
        /// Server id.
        server: usize,
        /// Number of uploads received this round.
        received: usize,
        /// L2 norm of the (true) aggregate.
        aggregate_norm: f32,
    },
    /// A server disseminated (broadcast view; per-client equivocation is
    /// flagged).
    Disseminated {
        /// Round index.
        round: usize,
        /// Server id.
        server: usize,
        /// Whether the server is Byzantine.
        byzantine: bool,
        /// Whether dissemination differed per client.
        equivocating: bool,
    },
    /// A server contributed no dissemination this round — crashed, or a
    /// straggler still warming up its delayed pipeline.
    ServerSilent {
        /// Round index.
        round: usize,
        /// The silent server's id.
        server: usize,
        /// Whether the silence is a permanent crash (`true`) or a
        /// straggler's delay (`false`).
        crashed: bool,
    },
    /// A client applied its model filter.
    Filtered {
        /// Round index.
        round: usize,
        /// Client id.
        client: usize,
        /// L2 distance between the filter output and the plain mean of the
        /// received models.
        displacement: f32,
    },
    /// The dynamic threat schedule changed the world this round: servers
    /// were compromised or healed, links partitioned or restored, frame
    /// corruption turned on or off (see [`crate::ThreatSchedule`]).
    ThreatEpoch {
        /// Round index.
        round: usize,
        /// Index of the dominant active epoch in the schedule, if any
        /// (`None` when the schedule returned to quiescence).
        epoch: Option<usize>,
        /// Ids of the servers currently running a scheduled compromise.
        compromised: Vec<usize>,
        /// Ids of the servers currently cut off by a link partition.
        partitioned: Vec<usize>,
        /// Per-frame corruption probability currently injected at the wire.
        corrupt_rate: f64,
    },
    /// The online Byzantine-count estimator moved its trim level: the
    /// adaptive filter will trim `trim` servers per side from here on
    /// (see [`fedms_aggregation::ByzantineEstimator`]).
    BetaAdjusted {
        /// Round index.
        round: usize,
        /// The trim level used before this adjustment.
        previous: usize,
        /// The new per-side trim level `β̂·P`.
        trim: usize,
        /// How many servers currently score above the suspicion threshold.
        suspects: usize,
    },
}

impl RoundEvent {
    /// The round this event belongs to.
    pub fn round(&self) -> usize {
        match *self {
            RoundEvent::LocalTrainingCompleted { round, .. }
            | RoundEvent::UploadSent { round, .. }
            | RoundEvent::UploadRecovery { round, .. }
            | RoundEvent::Aggregated { round, .. }
            | RoundEvent::Disseminated { round, .. }
            | RoundEvent::ServerSilent { round, .. }
            | RoundEvent::Filtered { round, .. }
            | RoundEvent::ThreatEpoch { round, .. }
            | RoundEvent::BetaAdjusted { round, .. } => round,
        }
    }

    /// A short tag for filtering (`"train"`, `"upload"`, `"recovery"`,
    /// `"aggregate"`, `"disseminate"`, `"silent"`, `"filter"`, `"threat"`,
    /// `"beta"`).
    pub fn kind(&self) -> &'static str {
        match self {
            RoundEvent::LocalTrainingCompleted { .. } => "train",
            RoundEvent::UploadSent { .. } => "upload",
            RoundEvent::UploadRecovery { .. } => "recovery",
            RoundEvent::Aggregated { .. } => "aggregate",
            RoundEvent::Disseminated { .. } => "disseminate",
            RoundEvent::ServerSilent { .. } => "silent",
            RoundEvent::Filtered { .. } => "filter",
            RoundEvent::ThreatEpoch { .. } => "threat",
            RoundEvent::BetaAdjusted { .. } => "beta",
        }
    }
}

/// A bounded, append-only event buffer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: std::collections::VecDeque<RoundEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// Creates a log retaining at most `capacity` events (oldest evicted).
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if full.
    pub fn push(&mut self, event: RoundEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted (or rejected by a zero-capacity log).
    pub fn evicted(&self) -> u64 {
        self.dropped
    }

    /// Iterates the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RoundEvent> {
        self.events.iter()
    }

    /// All retained events of one round.
    pub fn round(&self, round: usize) -> Vec<&RoundEvent> {
        self.events.iter().filter(|e| e.round() == round).collect()
    }

    /// All retained events of one kind (see [`RoundEvent::kind`]).
    pub fn of_kind(&self, kind: &str) -> Vec<&RoundEvent> {
        self.events.iter().filter(|e| e.kind() == kind).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: usize) -> RoundEvent {
        RoundEvent::Aggregated { round, server: 0, received: 3, aggregate_norm: 1.0 }
    }

    #[test]
    fn push_and_query() {
        let mut log = EventLog::with_capacity(10);
        assert!(log.is_empty());
        log.push(ev(0));
        log.push(RoundEvent::Filtered { round: 0, client: 2, displacement: 0.5 });
        log.push(ev(1));
        assert_eq!(log.len(), 3);
        assert_eq!(log.round(0).len(), 2);
        assert_eq!(log.of_kind("aggregate").len(), 2);
        assert_eq!(log.of_kind("filter").len(), 1);
        assert_eq!(log.evicted(), 0);
    }

    #[test]
    fn eviction_keeps_newest() {
        let mut log = EventLog::with_capacity(3);
        for r in 0..5 {
            log.push(ev(r));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        let rounds: Vec<usize> = log.iter().map(RoundEvent::round).collect();
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_rejects_all() {
        let mut log = EventLog::with_capacity(0);
        log.push(ev(0));
        assert!(log.is_empty());
        assert_eq!(log.evicted(), 1);
    }

    #[test]
    fn kinds_and_rounds_cover_all_variants() {
        let events = [
            RoundEvent::LocalTrainingCompleted { round: 7, client: 0, loss: 1.0 },
            RoundEvent::UploadSent { round: 7, client: 0, server: 1, dropped: false },
            RoundEvent::UploadRecovery {
                round: 7,
                client: 0,
                server: 1,
                delivered_to: Some(2),
                attempts: 3,
                failed_over: true,
                deadline_missed: false,
            },
            RoundEvent::Aggregated { round: 7, server: 1, received: 1, aggregate_norm: 2.0 },
            RoundEvent::Disseminated { round: 7, server: 1, byzantine: true, equivocating: false },
            RoundEvent::ServerSilent { round: 7, server: 2, crashed: true },
            RoundEvent::Filtered { round: 7, client: 0, displacement: 0.1 },
            RoundEvent::ThreatEpoch {
                round: 7,
                epoch: Some(1),
                compromised: vec![2],
                partitioned: vec![5],
                corrupt_rate: 0.01,
            },
            RoundEvent::BetaAdjusted { round: 7, previous: 0, trim: 2, suspects: 2 },
        ];
        let kinds: Vec<_> = events.iter().map(RoundEvent::kind).collect();
        assert_eq!(
            kinds,
            vec![
                "train",
                "upload",
                "recovery",
                "aggregate",
                "disseminate",
                "silent",
                "filter",
                "threat",
                "beta"
            ]
        );
        assert!(events.iter().all(|e| e.round() == 7));
    }
}
