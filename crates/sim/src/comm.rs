//! Communication accounting.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Message and byte counters for one round or one whole run.
///
/// Models are `f32` vectors, so one model transfer costs `4 · d` bytes.
/// These counters back the Section IV-A claim that sparse uploading keeps
/// Fed-MS's aggregation cost equal to single-server FL (`K` messages per
/// round instead of `K·P`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Client → server model uploads.
    pub upload_messages: u64,
    /// Server → client model disseminations.
    pub download_messages: u64,
    /// Bytes uploaded.
    pub upload_bytes: u64,
    /// Bytes downloaded.
    pub download_bytes: u64,
    /// Uploads lost in transit (channel loss or crashed recipient). These
    /// are included in `upload_messages` — the sender pays for the attempt.
    #[serde(default)]
    pub dropped_uploads: u64,
    /// Disseminations lost in transit (fault-plan downlink omission).
    /// Included in `download_messages`.
    #[serde(default)]
    pub dropped_downloads: u64,
    /// Disseminations delivered twice (fault-plan duplication). Each
    /// duplicate also adds one extra message to `download_messages`.
    #[serde(default)]
    pub duplicated_downloads: u64,
    /// Upload retransmissions placed by the recovery layer (attempts past
    /// the first, on any target). Included in `upload_messages`.
    #[serde(default)]
    pub retried_uploads: u64,
    /// Uploads re-targeted to a failover server after the original target
    /// exhausted its budget. The failover attempts themselves are counted
    /// in `upload_messages` (first one) and `retried_uploads` (the rest).
    #[serde(default)]
    pub failover_uploads: u64,
    /// Dissemination retransmissions placed by the recovery layer to repair
    /// downlink omission. Included in `download_messages`.
    #[serde(default)]
    pub retried_downloads: u64,
    /// Exchanges the recovery layer abandoned on the per-message deadline.
    #[serde(default)]
    pub deadline_misses: u64,
}

impl CommStats {
    /// An empty counter.
    pub fn new() -> Self {
        CommStats::default()
    }

    /// Records `count` uploads of a model with `model_len` parameters.
    pub fn record_uploads(&mut self, count: u64, model_len: usize) {
        self.upload_messages += count;
        self.upload_bytes += count * 4 * model_len as u64;
    }

    /// Records `count` disseminations of a model with `model_len`
    /// parameters.
    pub fn record_downloads(&mut self, count: u64, model_len: usize) {
        self.download_messages += count;
        self.download_bytes += count * 4 * model_len as u64;
    }

    /// Records one lost upload (already counted in `upload_messages`).
    pub fn record_dropped_upload(&mut self) {
        self.dropped_uploads += 1;
    }

    /// Records one lost dissemination (already counted in
    /// `download_messages`).
    pub fn record_dropped_download(&mut self) {
        self.dropped_downloads += 1;
    }

    /// Records one duplicated dissemination: the repeat transmission costs
    /// another message and its bytes.
    pub fn record_duplicated_download(&mut self, model_len: usize) {
        self.duplicated_downloads += 1;
        self.record_downloads(1, model_len);
    }

    /// Records one recovery-layer upload retransmission. The attempt
    /// itself is paid for by the transport's normal
    /// [`CommStats::record_uploads`] when it hits the wire.
    pub fn record_retried_upload(&mut self) {
        self.retried_uploads += 1;
    }

    /// Records one failover re-targeting decision.
    pub fn record_failover_upload(&mut self) {
        self.failover_uploads += 1;
    }

    /// Records one recovery-layer dissemination retransmission of a model
    /// with `model_len` parameters (a real message, paid in full).
    pub fn record_retried_download(&mut self, model_len: usize) {
        self.retried_downloads += 1;
        self.record_downloads(1, model_len);
    }

    /// Records one exchange abandoned on its deadline.
    pub fn record_deadline_miss(&mut self) {
        self.deadline_misses += 1;
    }

    /// Total messages in both directions.
    pub fn total_messages(&self) -> u64 {
        self.upload_messages + self.download_messages
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.upload_bytes + self.download_bytes
    }
}

impl AddAssign for CommStats {
    fn add_assign(&mut self, rhs: CommStats) {
        self.upload_messages += rhs.upload_messages;
        self.download_messages += rhs.download_messages;
        self.upload_bytes += rhs.upload_bytes;
        self.download_bytes += rhs.download_bytes;
        self.dropped_uploads += rhs.dropped_uploads;
        self.dropped_downloads += rhs.dropped_downloads;
        self.duplicated_downloads += rhs.duplicated_downloads;
        self.retried_uploads += rhs.retried_uploads;
        self.failover_uploads += rhs.failover_uploads;
        self.retried_downloads += rhs.retried_downloads;
        self.deadline_misses += rhs.deadline_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut c = CommStats::new();
        c.record_uploads(50, 100);
        c.record_downloads(500, 100);
        assert_eq!(c.upload_messages, 50);
        assert_eq!(c.upload_bytes, 50 * 400);
        assert_eq!(c.download_messages, 500);
        assert_eq!(c.download_bytes, 500 * 400);
        assert_eq!(c.total_messages(), 550);
        assert_eq!(c.total_bytes(), 550 * 400);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = CommStats::new();
        a.record_uploads(1, 10);
        let mut b = CommStats::new();
        b.record_downloads(2, 10);
        a += b;
        assert_eq!(a.total_messages(), 3);
        assert_eq!(a.total_bytes(), 3 * 40);
    }

    #[test]
    fn fault_counters_accumulate() {
        let mut c = CommStats::new();
        c.record_downloads(4, 10);
        c.record_dropped_upload();
        c.record_dropped_download();
        c.record_duplicated_download(10);
        assert_eq!(c.dropped_uploads, 1);
        assert_eq!(c.dropped_downloads, 1);
        assert_eq!(c.duplicated_downloads, 1);
        // The duplicate is an extra real transmission.
        assert_eq!(c.download_messages, 5);
        assert_eq!(c.download_bytes, 5 * 40);
        let mut total = CommStats::new();
        total += c;
        total += c;
        assert_eq!(total.dropped_uploads, 2);
        assert_eq!(total.duplicated_downloads, 2);
    }

    #[test]
    fn recovery_counters_accumulate() {
        let mut c = CommStats::new();
        c.record_retried_upload();
        c.record_failover_upload();
        c.record_retried_download(10);
        c.record_deadline_miss();
        assert_eq!(c.retried_uploads, 1);
        assert_eq!(c.failover_uploads, 1);
        assert_eq!(c.retried_downloads, 1);
        assert_eq!(c.deadline_misses, 1);
        // A downlink retransmission is a real message; the upload retry is
        // paid by the transport when it actually sends.
        assert_eq!(c.download_messages, 1);
        assert_eq!(c.download_bytes, 40);
        assert_eq!(c.upload_messages, 0);
        let mut total = CommStats::new();
        total += c;
        total += c;
        assert_eq!(total.retried_uploads, 2);
        assert_eq!(total.failover_uploads, 2);
        assert_eq!(total.retried_downloads, 2);
        assert_eq!(total.deadline_misses, 2);
        // Old serialized stats without the new fields still deserialize.
        let old: CommStats = serde_json::from_str(
            r#"{"upload_messages":1,"download_messages":2,"upload_bytes":4,"download_bytes":8}"#,
        )
        .unwrap();
        assert_eq!(old.retried_uploads + old.failover_uploads + old.deadline_misses, 0);
    }
}
