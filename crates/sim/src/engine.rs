//! The round-loop engine: local training → sparse upload → aggregation →
//! (possibly Byzantine) dissemination → client-side filtering.

use fedms_aggregation::{AggregationRule, Mean};
use fedms_attacks::{ClientAttack, ClientAttackContext, ServerAttack};
use fedms_data::Dataset;
use fedms_nn::LrSchedule;
use fedms_tensor::rng::{derive_seed, rng_for};
use fedms_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::server::Dissemination;
use crate::{
    Client, CommStats, EventLog, FaultPlan, ModelSpec, Result, RoundEvent, RoundMetrics,
    RunResult, Server, SimError, Topology, UploadStrategy,
};

/// Static configuration of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Client/server counts and the Byzantine set.
    pub topology: Topology,
    /// The training model all clients share.
    pub model: ModelSpec,
    /// Client→server upload strategy (the paper uses sparse).
    pub upload: UploadStrategy,
    /// Local SGD iterations per round (the paper's `E`, set to 3).
    pub local_epochs: usize,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// Learning-rate schedule, indexed by global step `t·E + i`.
    pub schedule: LrSchedule,
    /// Root seed; every stochastic component derives from it.
    pub seed: u64,
    /// Evaluate every `eval_every` rounds (the final round is always
    /// evaluated). Must be ≥ 1.
    pub eval_every: usize,
    /// Number of clients whose local models are averaged for the accuracy
    /// metric (0 = all clients). The paper averages all 50.
    pub eval_clients: usize,
    /// Train clients on multiple threads (bit-identical to sequential).
    pub parallel: bool,
    /// When true (the paper's protocol), accuracy is measured on the
    /// clients' *local* models right after local training; when false, on
    /// the post-filter models at the end of the round. Under strong
    /// heterogeneity (small `D_α`) local models are biased toward their
    /// shard's classes, which is exactly the effect Figure 5 reports.
    pub eval_after_local: bool,
}

impl EngineConfig {
    /// The paper's federated-learning settings (Table II): `K = 50`
    /// clients, `P = 10` servers, `E = 3` local iterations, sparse upload.
    /// The Byzantine set is empty here; callers add attacks per experiment.
    pub fn paper_defaults(seed: u64) -> Result<Self> {
        Ok(EngineConfig {
            topology: Topology::new(50, 10, [])?,
            model: ModelSpec::default_mlp(),
            upload: UploadStrategy::Sparse,
            local_epochs: 3,
            batch_size: 32,
            schedule: LrSchedule::Constant(0.1),
            seed,
            eval_every: 1,
            eval_clients: 0,
            parallel: true,
            eval_after_local: true,
        })
    }

    fn validate(&self) -> Result<()> {
        if self.local_epochs == 0 {
            return Err(SimError::BadConfig("local_epochs must be positive".into()));
        }
        if self.batch_size == 0 {
            return Err(SimError::BadConfig("batch_size must be positive".into()));
        }
        if self.eval_every == 0 {
            return Err(SimError::BadConfig("eval_every must be positive".into()));
        }
        self.schedule.validate().map_err(SimError::from)?;
        Ok(())
    }
}

/// A bit-exact checkpoint of a running federation: everything that evolves
/// during training and is not re-derivable from the configuration.
///
/// Because every stochastic stream in the engine is a pure function of
/// `(seed, round, entity)`, restoring a snapshot into a freshly built
/// engine (same config, datasets and adversaries) and continuing produces
/// results identical to the uninterrupted run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Completed rounds.
    pub round: usize,
    /// Every client's flat model vector, in client order.
    pub client_models: Vec<Tensor>,
    /// Per-server evolving state: (attack history, last aggregate,
    /// straggler outbox).
    pub server_state: Vec<(Vec<Tensor>, Option<Tensor>, Vec<Tensor>)>,
    /// Metrics recorded so far.
    pub result: RunResult,
}

/// A running federation.
///
/// Generic over the client-side model filter (`Def(·)` in the problem
/// definition): [`fedms_aggregation::TrimmedMean`] makes this Fed-MS,
/// [`fedms_aggregation::Mean`] makes it the Vanilla-FL baseline, and any
/// other [`AggregationRule`] gives an ablation.
pub struct SimulationEngine {
    config: EngineConfig,
    clients: Vec<Client>,
    servers: Vec<Server>,
    filter: Box<dyn AggregationRule>,
    server_rule: Box<dyn AggregationRule>,
    client_attacks: Vec<Option<Box<dyn ClientAttack>>>,
    participation: f64,
    upload_drop_rate: f64,
    fault_plan: FaultPlan,
    record_diagnostics: bool,
    event_log: Option<EventLog>,
    initial_model: Tensor,
    test_samples: Tensor,
    test_labels: Vec<usize>,
    round: usize,
    result: RunResult,
}

impl std::fmt::Debug for SimulationEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationEngine")
            .field("round", &self.round)
            .field("clients", &self.clients.len())
            .field("servers", &self.servers.len())
            .field("filter", &self.filter.name())
            .finish()
    }
}

impl SimulationEngine {
    /// Builds a federation.
    ///
    /// * `train`/`test` — the global dataset splits (image layout; the
    ///   engine flattens them if the model wants flat input),
    /// * `partitions` — per-client sample indices into `train` (from
    ///   [`fedms_data::DirichletPartitioner`]),
    /// * `filter` — the client-side defence `Def(·)`,
    /// * `attacks` — one attack per Byzantine server id declared in the
    ///   topology; ids must match exactly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for mismatched partitions/attacks or
    /// invalid configuration values, and propagates substrate errors.
    pub fn new(
        config: EngineConfig,
        train: &Dataset,
        test: &Dataset,
        partitions: &[Vec<usize>],
        filter: Box<dyn AggregationRule>,
        attacks: Vec<(usize, Box<dyn ServerAttack>)>,
    ) -> Result<Self> {
        Self::with_adversaries(
            config,
            train,
            test,
            partitions,
            filter,
            Box::new(Mean::new()),
            attacks,
            Vec::new(),
        )
    }

    /// Builds a federation with the full dual threat model: Byzantine
    /// *servers* (as in [`SimulationEngine::new`]) **and** Byzantine
    /// *clients* (`client_attacks`, one per malicious client id), with a
    /// configurable server-side aggregation rule (`server_rule`; the
    /// paper's benign servers use the plain mean, a robust rule extends
    /// Fed-MS to the client threat the paper leaves as future work).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SimulationEngine::new`], plus
    /// [`SimError::BadConfig`] for duplicate or out-of-range Byzantine
    /// client ids.
    #[allow(clippy::too_many_arguments)]
    pub fn with_adversaries(
        config: EngineConfig,
        train: &Dataset,
        test: &Dataset,
        partitions: &[Vec<usize>],
        filter: Box<dyn AggregationRule>,
        server_rule: Box<dyn AggregationRule>,
        attacks: Vec<(usize, Box<dyn ServerAttack>)>,
        client_attacks: Vec<(usize, Box<dyn ClientAttack>)>,
    ) -> Result<Self> {
        config.validate()?;
        let topo = &config.topology;
        if partitions.len() != topo.num_clients() {
            return Err(SimError::BadConfig(format!(
                "{} partitions for {} clients",
                partitions.len(),
                topo.num_clients()
            )));
        }
        {
            let mut attack_ids: Vec<usize> = attacks.iter().map(|(id, _)| *id).collect();
            attack_ids.sort_unstable();
            let mut byz_ids: Vec<usize> = topo.byzantine_ids().collect();
            byz_ids.sort_unstable();
            if attack_ids != byz_ids {
                return Err(SimError::BadConfig(format!(
                    "attack ids {attack_ids:?} do not match byzantine ids {byz_ids:?}"
                )));
            }
        }

        // All clients start from the same w₀ (Algorithm 1 line 6).
        let init_seed = derive_seed(config.seed, &[0x494E_4954]); // "INIT"
        let reference = config.model.build(init_seed)?;
        let initial_model = fedms_nn::NeuralNet::param_vector(reference.as_ref());

        let flat = config.model.wants_flat_input();
        let test_set = if flat { test.flattened() } else { test.clone() };
        let mut clients = Vec::with_capacity(topo.num_clients());
        for (k, part) in partitions.iter().enumerate() {
            let shard = train.subset(part)?;
            let shard = if flat { shard.flattened() } else { shard };
            let model = config.model.build(init_seed)?;
            clients.push(Client::new(
                k,
                model,
                shard,
                config.batch_size,
                config.schedule,
                derive_seed(config.seed, &[0x434C_4E54, k as u64]), // "CLNT"
            )?);
        }

        let mut attack_map: std::collections::BTreeMap<usize, Box<dyn ServerAttack>> =
            attacks.into_iter().collect();
        let mut servers = Vec::with_capacity(topo.num_servers());
        for i in 0..topo.num_servers() {
            let seed = config.seed;
            servers.push(match attack_map.remove(&i) {
                Some(attack) => Server::byzantine(i, attack, seed),
                None => Server::benign(i, seed),
            });
        }

        let mut client_attack_slots: Vec<Option<Box<dyn ClientAttack>>> =
            (0..topo.num_clients()).map(|_| None).collect();
        for (id, attack) in client_attacks {
            if id >= client_attack_slots.len() {
                return Err(SimError::BadConfig(format!(
                    "byzantine client id {id} out of range for {} clients",
                    client_attack_slots.len()
                )));
            }
            if client_attack_slots[id].is_some() {
                return Err(SimError::BadConfig(format!(
                    "duplicate attack for client {id}"
                )));
            }
            client_attack_slots[id] = Some(attack);
        }

        Ok(SimulationEngine {
            participation: 1.0,
            upload_drop_rate: 0.0,
            fault_plan: FaultPlan::none(),
            record_diagnostics: false,
            event_log: None,
            client_attacks: client_attack_slots,
            server_rule,
            config,
            clients,
            servers,
            filter,
            initial_model,
            test_samples: test_set.samples().clone(),
            test_labels: test_set.labels().to_vec(),
            round: 0,
            result: RunResult::new(),
        })
    }

    /// Ids of the Byzantine clients (empty under the paper's base model).
    pub fn byzantine_client_ids(&self) -> Vec<usize> {
        self.client_attacks
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_ref().map(|_| i))
            .collect()
    }

    /// Rotates the labels of one client's training shard (the data-level
    /// side of a label-flip Byzantine client).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for an out-of-range client id.
    pub fn poison_client_labels(&mut self, client: usize, offset: usize) -> Result<()> {
        let Some(c) = self.clients.get_mut(client) else {
            return Err(SimError::BadConfig(format!(
                "client {client} out of range for {} clients",
                self.clients.len()
            )));
        };
        c.poison_labels(offset);
        Ok(())
    }

    /// Sets the per-round client participation fraction: each round only a
    /// uniformly sampled `⌈fraction·K⌉` clients train and upload (classic
    /// partial device participation; the paper's Lemma 3 machinery covers
    /// it). Everyone still receives the dissemination and filters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] unless `0 < fraction ≤ 1`.
    pub fn set_participation(&mut self, fraction: f64) -> Result<()> {
        if !(fraction.is_finite() && fraction > 0.0 && fraction <= 1.0) {
            return Err(SimError::BadConfig(format!(
                "participation must be in (0, 1], got {fraction}"
            )));
        }
        self.participation = fraction;
        Ok(())
    }

    /// Sets the probability that any single client→server upload message is
    /// lost in transit (outdoor edge links are lossy; the fallback of
    /// re-using the previous aggregate covers servers that receive
    /// nothing). Dropped messages are still counted as sent — the sender
    /// pays for the attempt.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] unless `0 ≤ rate < 1`.
    pub fn set_upload_drop_rate(&mut self, rate: f64) -> Result<()> {
        if !(rate.is_finite() && (0.0..1.0).contains(&rate)) {
            return Err(SimError::BadConfig(format!(
                "drop rate must be in [0, 1), got {rate}"
            )));
        }
        self.upload_drop_rate = rate;
        Ok(())
    }

    /// Installs a benign-fault schedule (crash/straggler/omission/duplicate
    /// faults; see [`crate::FaultPlan`]). The trivial plan restores
    /// fault-free behaviour bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the plan does not fit this
    /// topology (see [`FaultPlan::validate`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<()> {
        plan.validate(self.config.topology.num_servers())?;
        self.fault_plan = plan;
        Ok(())
    }

    /// The active fault schedule (trivial by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Enables the structured event log with the given retention capacity
    /// (see [`crate::EventLog`]); pass 0 to disable recording again.
    pub fn enable_event_log(&mut self, capacity: usize) {
        self.event_log = if capacity == 0 { None } else { Some(EventLog::with_capacity(capacity)) };
    }

    /// The event log, if enabled.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.event_log.as_ref()
    }

    /// Enables per-round defence diagnostics (see
    /// [`crate::RoundDiagnostics`]). Costs a few extra vector passes per
    /// evaluated round.
    pub fn set_record_diagnostics(&mut self, on: bool) {
        self.record_diagnostics = on;
    }

    /// The static configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current round (number of completed rounds).
    pub fn round(&self) -> usize {
        self.round
    }

    /// The shared initial model `w₀`.
    pub fn initial_model(&self) -> &Tensor {
        &self.initial_model
    }

    /// Metrics recorded so far.
    pub fn result(&self) -> &RunResult {
        &self.result
    }

    /// The current flat model vector of each client.
    pub fn client_models(&self) -> Vec<Tensor> {
        self.clients.iter().map(Client::model_vector).collect()
    }

    /// Runs `rounds` training rounds, evaluating per the configuration.
    /// Returns the accumulated result (clone of [`SimulationEngine::result`]).
    ///
    /// # Errors
    ///
    /// Propagates any substrate error; the engine is left at the round that
    /// failed.
    pub fn run(&mut self, rounds: usize) -> Result<RunResult> {
        for r in 0..rounds {
            let evaluate =
                self.round.is_multiple_of(self.config.eval_every) || (r + 1 == rounds);
            self.step_round(evaluate)?;
        }
        Ok(self.result.clone())
    }

    /// Executes exactly one round; records metrics if `evaluate`.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn step_round(&mut self, evaluate: bool) -> Result<()> {
        let topo = self.config.topology.clone();
        let (num_clients, num_servers) = (topo.num_clients(), topo.num_servers());
        let model_len = self.initial_model.len();
        let mut comm = CommStats::new();

        // The global model each client starts this round from (context for
        // update-amplification client attacks).
        let start_vectors: Vec<Tensor> =
            self.clients.iter().map(Client::model_vector).collect();

        // All engine-level randomness is derived per round from the root
        // seed, making every round a pure function of (config, round,
        // client/server state) — the property behind bit-exact
        // checkpoint/resume ([`SimulationEngine::snapshot`]).
        let round_label = self.round as u64;
        let mut upload_rng = rng_for(self.config.seed, &[0x55_50_4C_44, round_label]); // "UPLD"
        let mut participation_rng =
            rng_for(self.config.seed, &[0x50_41_52_54, round_label]); // "PART"
        let mut client_attack_rng =
            rng_for(self.config.seed, &[0x43_41_54, round_label]); // "CAT"

        // Partial participation: sample this round's active clients.
        let active: Vec<usize> = if self.participation >= 1.0 {
            (0..num_clients).collect()
        } else {
            let take = ((self.participation * num_clients as f64).ceil() as usize)
                .clamp(1, num_clients);
            let mut ids: Vec<usize> = (0..num_clients).collect();
            use rand::seq::SliceRandom;
            ids.shuffle(&mut participation_rng);
            let mut chosen = ids[..take].to_vec();
            chosen.sort_unstable();
            chosen
        };

        // 1. Local training (Algorithm 1 lines 8–10) — active clients only.
        let global_step = self.round * self.config.local_epochs;
        let epochs = self.config.local_epochs;
        let losses = self.for_clients(&active, |c| c.local_train(epochs, global_step))?;
        let mean_train_loss =
            losses.iter().map(|&l| l as f64).sum::<f64>() / losses.len() as f64;
        if let Some(log) = &mut self.event_log {
            for (&client, &loss) in active.iter().zip(losses.iter()) {
                log.push(RoundEvent::LocalTrainingCompleted {
                    round: self.round,
                    client,
                    loss,
                });
            }
        }

        // Accuracy of the freshly trained *local* models (the paper's
        // metric), measured before aggregation touches them.
        let local_accuracy = if evaluate && self.config.eval_after_local {
            Some(self.evaluate_mean_accuracy()?)
        } else {
            None
        };

        // 2. Sparse upload (line 11).
        let assignment =
            self.config.upload.assign(num_clients, num_servers, &mut upload_rng)?;
        let uploads: u64 = active.iter().map(|&k| assignment[k].len() as u64).sum();
        comm.record_uploads(uploads, model_len);
        let mut client_vectors: Vec<Tensor> =
            self.clients.iter().map(Client::model_vector).collect();
        // Byzantine clients tamper with their uploads (extension beyond the
        // paper's server-only threat model).
        for (k, slot) in self.client_attacks.iter().enumerate() {
            if let Some(attack) = slot {
                let global = if self.round == 0 { None } else { Some(&start_vectors[k]) };
                let ctx = ClientAttackContext::new(self.round, k, &client_vectors[k], global);
                client_vectors[k] = attack.tamper_upload(&ctx, &mut client_attack_rng)?;
            }
        }
        let is_active = {
            let mut mask = vec![false; num_clients];
            for &k in &active {
                mask[k] = true;
            }
            mask
        };
        let mut drop_rng = rng_for(self.config.seed, &[0x44_52_4F_50, round_label]); // "DROP"
        let mut received: Vec<Vec<Tensor>> = vec![Vec::new(); num_servers];
        for (k, servers) in assignment.iter().enumerate() {
            if !is_active[k] {
                continue;
            }
            for &s in servers {
                // A message is lost to channel noise (the RNG draw happens
                // regardless of the recipient's health, so a fault plan
                // perturbs nothing else) or because the recipient crashed.
                let channel_loss = if self.upload_drop_rate > 0.0 {
                    use rand::Rng;
                    drop_rng.gen_bool(self.upload_drop_rate)
                } else {
                    false
                };
                let dropped = channel_loss || self.fault_plan.is_crashed(s, self.round);
                if let Some(log) = &mut self.event_log {
                    log.push(RoundEvent::UploadSent {
                        round: self.round,
                        client: k,
                        server: s,
                        dropped,
                    });
                }
                if dropped {
                    comm.record_dropped_upload();
                    continue; // lost in transit
                }
                received[s].push(client_vectors[k].clone());
            }
        }

        // 3. Aggregation and dissemination (lines 3–5), Byzantine or not.
        // Faulted servers may contribute nothing: a crashed server is
        // permanently silent, a straggler is silent while its delayed
        // pipeline fills. Silent servers are `None` here — clients filter
        // over whatever actually arrives.
        let mut disseminations: Vec<Option<Dissemination>> =
            Vec::with_capacity(num_servers);
        let mut silent_servers = 0usize;
        for (i, server) in self.servers.iter_mut().enumerate() {
            if self.fault_plan.is_crashed(i, self.round) {
                silent_servers += 1;
                if let Some(log) = &mut self.event_log {
                    log.push(RoundEvent::ServerSilent {
                        round: self.round,
                        server: i,
                        crashed: true,
                    });
                }
                disseminations.push(None);
                continue;
            }
            let agg =
                server.aggregate(&received[i], &self.initial_model, self.server_rule.as_ref())?;
            if let Some(log) = &mut self.event_log {
                log.push(RoundEvent::Aggregated {
                    round: self.round,
                    server: i,
                    received: received[i].len(),
                    aggregate_norm: agg.norm_l2(),
                });
            }
            // A straggler disseminates the aggregate it computed `delay`
            // rounds ago (or nothing while warming up).
            let to_send = match self.fault_plan.straggler_delay(i) {
                Some(delay) => server.delay_aggregate(agg, delay),
                None => Some(agg),
            };
            let Some(out) = to_send else {
                silent_servers += 1;
                if let Some(log) = &mut self.event_log {
                    log.push(RoundEvent::ServerSilent {
                        round: self.round,
                        server: i,
                        crashed: false,
                    });
                }
                disseminations.push(None);
                continue;
            };
            let d = server.disseminate(&out, self.round, num_clients)?;
            Server::check_dissemination(&d, num_clients)?;
            comm.record_downloads(num_clients as u64, model_len);
            if let Some(log) = &mut self.event_log {
                log.push(RoundEvent::Disseminated {
                    round: self.round,
                    server: i,
                    byzantine: server.is_byzantine(),
                    equivocating: matches!(d, Dissemination::PerClient(_)),
                });
            }
            disseminations.push(Some(d));
        }

        // 4. Client-side filtering (lines 12–13): w_{t+1,0}^k = Def(ã…),
        // over however many models survive the faults. The downlink RNG is
        // only instantiated when the plan is lossy, so a trivial plan is
        // bit-identical to the fault-free path.
        let byz_servers = topo.byzantine_ids().count();
        let mut downlink_rng = if self.fault_plan.lossy_downlink() {
            Some(rng_for(self.config.seed, &[0x4F_4D_49_54, round_label])) // "OMIT"
        } else {
            None
        };
        let mut client0_views: Vec<Tensor> = Vec::new();
        let mut filtered: Vec<Tensor> = Vec::with_capacity(num_clients);
        for k in 0..num_clients {
            // Each client sees its own realization of the lossy downlink.
            let mut views: Vec<Tensor> = Vec::with_capacity(num_servers);
            let mut distinct = 0usize;
            for d in disseminations.iter().flatten() {
                let model = d.for_client(k);
                if let Some(rng) = &mut downlink_rng {
                    use rand::Rng;
                    if self.fault_plan.downlink_omission > 0.0
                        && rng.gen_bool(self.fault_plan.downlink_omission)
                    {
                        comm.record_dropped_download();
                        continue;
                    }
                    views.push(model.clone());
                    distinct += 1;
                    if self.fault_plan.duplicate_rate > 0.0
                        && rng.gen_bool(self.fault_plan.duplicate_rate)
                    {
                        // Delivered twice: the filter sees the model with
                        // double weight (and the network carried it twice).
                        comm.record_duplicated_download(model_len);
                        views.push(model.clone());
                    }
                } else {
                    views.push(model.clone());
                    distinct += 1;
                }
            }
            // Graceful-degradation guard: trimming B per side needs a
            // strict honest majority among the *distinct* deliveries
            // (duplicates of one server must not count towards quorum).
            // Only fault-degraded views (`P' < P`) are guarded — a
            // deliberately infeasible fault-free federation (B ≥ P/2) is
            // let through so experiments can demonstrate filter defeat.
            if byz_servers > 0 && distinct < num_servers && distinct <= 2 * byz_servers {
                return Err(SimError::DegradedQuorum {
                    round: self.round,
                    client: k,
                    received: distinct,
                    needed: 2 * byz_servers,
                });
            }
            let out = if views.is_empty() {
                // Total blackout (only reachable with B = 0): the client
                // keeps its locally trained model this round.
                self.clients[k].model_vector()
            } else {
                self.filter.aggregate(&views)?
            };
            if let Some(log) = &mut self.event_log {
                let displacement = if views.is_empty() {
                    0.0
                } else {
                    out.sub(&Mean::new().aggregate(&views)?)?.norm_l2()
                };
                log.push(RoundEvent::Filtered {
                    round: self.round,
                    client: k,
                    displacement,
                });
            }
            if k == 0 && self.record_diagnostics && evaluate {
                client0_views = views.clone();
            }
            filtered.push(out);
        }

        // Defence diagnostics from client 0's viewpoint (its realized,
        // post-fault view — not the idealized full dissemination).
        let diagnostics = if self.record_diagnostics && evaluate {
            let views = client0_views;
            let mut pair_sum = 0.0f64;
            let mut pairs = 0usize;
            for i in 0..views.len() {
                for j in (i + 1)..views.len() {
                    pair_sum += views[i].sub(&views[j])?.norm_l2() as f64;
                    pairs += 1;
                }
            }
            let displacement = if views.is_empty() {
                0.0
            } else {
                let naive = Mean::new().aggregate(&views)?;
                filtered[0].sub(&naive)?.norm_l2()
            };
            let mut max_update = 0.0f32;
            for &k in &active {
                let update =
                    client_vectors[k].sub(&start_vectors[k])?.norm_l2();
                max_update = max_update.max(update);
            }
            Some(crate::RoundDiagnostics {
                server_disagreement: if pairs > 0 {
                    (pair_sum / pairs as f64) as f32
                } else {
                    0.0
                },
                filter_displacement: displacement,
                max_update_norm: max_update,
                silent_servers,
            })
        } else {
            None
        };

        for (client, model) in self.clients.iter_mut().zip(filtered.iter()) {
            client.set_model_vector(model)?;
        }

        self.round += 1;
        self.result.total_comm += comm;

        // 5. Evaluation: mean test accuracy of the local models.
        if evaluate {
            let mean_accuracy = match local_accuracy {
                Some(acc) => acc,
                None => self.evaluate_mean_accuracy()?,
            };
            self.result.rounds.push(RoundMetrics {
                round: self.round - 1,
                mean_accuracy,
                mean_train_loss: mean_train_loss as f32,
                comm,
                diagnostics,
            });
        }
        Ok(())
    }

    /// Captures a bit-exact checkpoint of the federation's evolving state.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            round: self.round,
            client_models: self.client_models(),
            server_state: self.servers.iter().map(Server::state_snapshot).collect(),
            result: self.result.clone(),
        }
    }

    /// Restores a checkpoint taken from an engine with the same
    /// configuration, datasets and adversaries. Continuing afterwards is
    /// bit-identical to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the snapshot's entity counts or
    /// model sizes do not match this engine.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<()> {
        if snapshot.client_models.len() != self.clients.len() {
            return Err(SimError::BadConfig(format!(
                "snapshot has {} clients, engine has {}",
                snapshot.client_models.len(),
                self.clients.len()
            )));
        }
        if snapshot.server_state.len() != self.servers.len() {
            return Err(SimError::BadConfig(format!(
                "snapshot has {} servers, engine has {}",
                snapshot.server_state.len(),
                self.servers.len()
            )));
        }
        if snapshot.client_models.iter().any(|m| m.len() != self.initial_model.len()) {
            return Err(SimError::BadConfig(
                "snapshot model size does not match the engine's model".into(),
            ));
        }
        for (client, model) in self.clients.iter_mut().zip(&snapshot.client_models) {
            client.set_model_vector(model)?;
        }
        for (server, (history, last, outbox)) in
            self.servers.iter_mut().zip(snapshot.server_state.iter())
        {
            server.restore_state(history.clone(), last.clone(), outbox.clone());
        }
        self.round = snapshot.round;
        self.result = snapshot.result.clone();
        Ok(())
    }

    /// Mean test accuracy over the configured number of **benign** clients
    /// (Byzantine clients train on purpose-poisoned objectives; excluding
    /// them from the quality metric is the robust-FL convention).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; returns [`SimError::BadConfig`] if
    /// every client is Byzantine.
    pub fn evaluate_mean_accuracy(&mut self) -> Result<f32> {
        let mut indices: Vec<usize> = (0..self.clients.len())
            .filter(|&i| self.client_attacks[i].is_none())
            .collect();
        if indices.is_empty() {
            return Err(SimError::BadConfig("no benign clients to evaluate".into()));
        }
        if self.config.eval_clients != 0 {
            indices.truncate(self.config.eval_clients);
        }
        let samples = self.test_samples.clone();
        let labels = self.test_labels.clone();
        let accs = self.for_clients(&indices, |c| c.evaluate(&samples, &labels))?;
        Ok((accs.iter().map(|&a| a as f64).sum::<f64>() / accs.len() as f64) as f32)
    }

    /// Applies `f` to the clients at `indices` (strictly increasing),
    /// optionally in parallel, preserving index order in the returned
    /// vector.
    fn for_clients<F>(&mut self, indices: &[usize], f: F) -> Result<Vec<f32>>
    where
        F: Fn(&mut Client) -> Result<f32> + Sync,
    {
        let mut selected: Vec<&mut Client> = Vec::with_capacity(indices.len());
        {
            let mut rest = &mut self.clients[..];
            let mut offset = 0usize;
            for &i in indices {
                let (_, tail) = rest.split_at_mut(i - offset);
                let (one, tail) = tail.split_at_mut(1);
                selected.push(&mut one[0]);
                rest = tail;
                offset = i + 1;
            }
        }
        let n = selected.len();
        if !self.config.parallel || n < 4 {
            return selected.into_iter().map(&f).collect();
        }
        let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);
        let chunk = n.div_ceil(threads.min(n));
        let mut outputs: Vec<Result<Vec<f32>>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for group in selected.chunks_mut(chunk) {
                let f = &f;
                handles.push(scope.spawn(move || -> Result<Vec<f32>> {
                    group.iter_mut().map(|c| f(c)).collect()
                }));
            }
            for h in handles {
                outputs.push(h.join().expect("client worker panicked"));
            }
        });
        let mut flat = Vec::with_capacity(n);
        for out in outputs {
            flat.extend(out?);
        }
        Ok(flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_aggregation::{Mean, TrimmedMean};
    use fedms_attacks::AttackKind;
    use fedms_data::{DirichletPartitioner, SynthVisionConfig};

    fn small_setup(
        byzantine: Vec<usize>,
        attack: AttackKind,
        filter: Box<dyn AggregationRule>,
        parallel: bool,
    ) -> SimulationEngine {
        let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
        let topo = Topology::new(8, 4, byzantine.clone()).unwrap();
        let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 8, 3).unwrap();
        let config = EngineConfig {
            topology: topo,
            model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
            upload: UploadStrategy::Sparse,
            local_epochs: 2,
            batch_size: 4,
            schedule: LrSchedule::Constant(0.05),
            seed: 9,
            eval_every: 1,
            eval_clients: 0,
            parallel,
            eval_after_local: false,
        };
        let attacks = byzantine
            .into_iter()
            .map(|id| (id, attack.build().unwrap()))
            .collect();
        SimulationEngine::new(config, &train, &test, &parts, filter, attacks).unwrap()
    }

    #[test]
    fn engine_runs_and_records() {
        let mut e = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
        let result = e.run(3).unwrap();
        assert_eq!(result.rounds.len(), 3);
        assert_eq!(e.round(), 3);
        assert!(result.final_accuracy().unwrap() > 0.0);
        assert!(result.total_comm.upload_messages > 0);
    }

    #[test]
    fn all_clients_share_filtered_model_under_broadcast() {
        // With consistent dissemination every client applies the same filter
        // to the same inputs → identical post-filter models.
        let mut e = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
        e.step_round(false).unwrap();
        let models = e.client_models();
        for m in &models[1..] {
            assert_eq!(m, &models[0]);
        }
    }

    #[test]
    fn deterministic_across_parallelism() {
        let mut seq = small_setup(vec![1], AttackKind::Noise { std: 0.5 },
            Box::new(TrimmedMean::new(0.25).unwrap()), false);
        let mut par = small_setup(vec![1], AttackKind::Noise { std: 0.5 },
            Box::new(TrimmedMean::new(0.25).unwrap()), true);
        seq.run(2).unwrap();
        par.run(2).unwrap();
        assert_eq!(seq.client_models(), par.client_models());
        assert_eq!(seq.result().rounds, par.result().rounds);
    }

    #[test]
    fn sparse_upload_comm_matches_formula() {
        let mut e = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
        e.run(2).unwrap();
        let comm = e.result().total_comm;
        // K=8 uploads and K·P=32 downloads per round, 2 rounds.
        assert_eq!(comm.upload_messages, 16);
        assert_eq!(comm.download_messages, 64);
    }

    #[test]
    fn attack_ids_must_match_topology() {
        let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
        let topo = Topology::new(4, 3, [1]).unwrap();
        let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 4, 3).unwrap();
        let config = EngineConfig {
            topology: topo,
            model: ModelSpec::Mlp { widths: vec![16, 4] },
            upload: UploadStrategy::Sparse,
            local_epochs: 1,
            batch_size: 4,
            schedule: LrSchedule::Constant(0.05),
            seed: 0,
            eval_every: 1,
            eval_clients: 0,
            parallel: false,
            eval_after_local: false,
        };
        // No attack supplied for byzantine server 1 → error.
        let err = SimulationEngine::new(
            config,
            &train,
            &test,
            &parts,
            Box::new(Mean::new()),
            vec![],
        );
        assert!(err.is_err());
    }

    #[test]
    fn config_validation() {
        let mut cfg = EngineConfig::paper_defaults(0).unwrap();
        cfg.local_epochs = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = EngineConfig::paper_defaults(0).unwrap();
        cfg.batch_size = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = EngineConfig::paper_defaults(0).unwrap();
        cfg.eval_every = 0;
        assert!(cfg.validate().is_err());
        assert!(EngineConfig::paper_defaults(0).unwrap().validate().is_ok());
    }

    #[test]
    fn trimmed_mean_resists_random_attack_in_miniature() {
        // 1 Byzantine of 4 servers with the Random attack: the mean filter
        // absorbs garbage while the trimmed filter (β=0.25 trims 1/side)
        // stays near the honest aggregate.
        let mut vanilla =
            small_setup(vec![2], AttackKind::Random { lo: -10.0, hi: 10.0 },
                Box::new(Mean::new()), false);
        let mut fedms =
            small_setup(vec![2], AttackKind::Random { lo: -10.0, hi: 10.0 },
                Box::new(TrimmedMean::new(0.25).unwrap()), false);
        vanilla.run(4).unwrap();
        fedms.run(4).unwrap();
        let v_norm = vanilla.client_models()[0].norm_l2();
        let f_norm = fedms.client_models()[0].norm_l2();
        // The random attack injects coordinates of magnitude ~10; a mean
        // over 4 servers keeps ~1/4 of that, blowing up the model norm.
        assert!(
            v_norm > 2.0 * f_norm,
            "vanilla norm {v_norm} should dwarf fed-ms norm {f_norm}"
        );
    }

    #[test]
    fn byzantine_clients_are_filtered_by_robust_server_rule() {
        use fedms_attacks::ClientAttackKind;
        let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
        let topo = Topology::new(8, 2, []).unwrap();
        let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 8, 3).unwrap();
        let config = EngineConfig {
            topology: topo,
            model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
            upload: UploadStrategy::Full,
            local_epochs: 2,
            batch_size: 4,
            schedule: LrSchedule::Constant(0.05),
            seed: 9,
            eval_every: 1,
            eval_clients: 0,
            parallel: false,
            eval_after_local: false,
        };
        let client_attacks = vec![
            (1usize, ClientAttackKind::Random { lo: -10.0, hi: 10.0 }.build().unwrap()),
        ];
        // Robust server rule: trimmed mean over the 8 uploads (trim 1/side).
        let mut robust = SimulationEngine::with_adversaries(
            config.clone(),
            &train,
            &test,
            &parts,
            Box::new(Mean::new()),
            Box::new(TrimmedMean::new(0.13).unwrap()),
            vec![],
            client_attacks,
        )
        .unwrap();
        assert_eq!(robust.byzantine_client_ids(), vec![1]);
        robust.run(3).unwrap();
        let robust_norm = robust.client_models()[0].norm_l2();

        // Same attack with the plain mean at the servers: garbage leaks in.
        let client_attacks = vec![
            (1usize, ClientAttackKind::Random { lo: -10.0, hi: 10.0 }.build().unwrap()),
        ];
        let mut naive = SimulationEngine::with_adversaries(
            config,
            &train,
            &test,
            &parts,
            Box::new(Mean::new()),
            Box::new(Mean::new()),
            vec![],
            client_attacks,
        )
        .unwrap();
        naive.run(3).unwrap();
        let naive_norm = naive.client_models()[0].norm_l2();
        assert!(
            naive_norm > 1.5 * robust_norm,
            "naive server mean {naive_norm} should blow up vs robust {robust_norm}"
        );
    }

    #[test]
    fn client_attack_validation() {
        use fedms_attacks::ClientAttackKind;
        let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
        let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 4, 3).unwrap();
        let config = EngineConfig {
            topology: Topology::new(4, 2, []).unwrap(),
            model: ModelSpec::Mlp { widths: vec![16, 4] },
            upload: UploadStrategy::Sparse,
            local_epochs: 1,
            batch_size: 4,
            schedule: LrSchedule::Constant(0.05),
            seed: 0,
            eval_every: 1,
            eval_clients: 0,
            parallel: false,
            eval_after_local: false,
        };
        let atk = || ClientAttackKind::SignFlip { scale: 1.0 }.build().unwrap();
        // Out-of-range id.
        assert!(SimulationEngine::with_adversaries(
            config.clone(), &train, &test, &parts,
            Box::new(Mean::new()), Box::new(Mean::new()),
            vec![], vec![(4, atk())],
        ).is_err());
        // Duplicate id.
        assert!(SimulationEngine::with_adversaries(
            config.clone(), &train, &test, &parts,
            Box::new(Mean::new()), Box::new(Mean::new()),
            vec![], vec![(1, atk()), (1, atk())],
        ).is_err());
        // All clients Byzantine → evaluation impossible.
        let all: Vec<_> = (0..4).map(|i| (i, atk())).collect();
        let mut engine = SimulationEngine::with_adversaries(
            config, &train, &test, &parts,
            Box::new(Mean::new()), Box::new(Mean::new()),
            vec![], all,
        ).unwrap();
        assert!(engine.evaluate_mean_accuracy().is_err());
    }

    #[test]
    fn partial_participation_trains_fewer_clients() {
        let mut e = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
        e.set_participation(0.5).unwrap();
        e.step_round(false).unwrap();
        // 8 clients at 50% → 4 uploads this round (sparse = 1 per client).
        assert_eq!(e.result().total_comm.upload_messages, 4);
        assert!(e.set_participation(0.0).is_err());
        assert!(e.set_participation(1.5).is_err());
        assert!(e.set_participation(f64::NAN).is_err());
    }

    #[test]
    fn event_log_records_every_stage() {
        let mut e = small_setup(
            vec![1],
            AttackKind::Random { lo: -10.0, hi: 10.0 },
            Box::new(TrimmedMean::new(0.25).unwrap()),
            false,
        );
        e.enable_event_log(10_000);
        e.step_round(false).unwrap();
        let log = e.event_log().unwrap();
        // 8 clients train, 8 sparse uploads, 4 aggregations, 4
        // disseminations, 8 filters.
        assert_eq!(log.of_kind("train").len(), 8);
        assert_eq!(log.of_kind("upload").len(), 8);
        assert_eq!(log.of_kind("aggregate").len(), 4);
        assert_eq!(log.of_kind("disseminate").len(), 4);
        assert_eq!(log.of_kind("filter").len(), 8);
        // The Byzantine server is flagged.
        let byz: Vec<bool> = log
            .of_kind("disseminate")
            .iter()
            .map(|ev| matches!(ev, RoundEvent::Disseminated { byzantine: true, .. }))
            .collect();
        assert_eq!(byz.iter().filter(|&&b| b).count(), 1);
        // Disabling stops recording.
        e.enable_event_log(0);
        e.step_round(false).unwrap();
        assert!(e.event_log().is_none());
    }

    #[test]
    fn upload_drops_are_survivable() {
        let mut e = small_setup(vec![], AttackKind::Benign,
            Box::new(TrimmedMean::new(0.25).unwrap()), false);
        e.set_upload_drop_rate(0.5).unwrap();
        e.run(4).unwrap();
        assert!(e.result().final_accuracy().unwrap().is_finite());
        // Senders still pay for dropped messages.
        assert_eq!(e.result().total_comm.upload_messages, 8 * 4);
        assert!(e.set_upload_drop_rate(1.0).is_err());
        assert!(e.set_upload_drop_rate(-0.1).is_err());
    }

    #[test]
    fn diagnostics_reflect_attack_intensity() {
        let mut clean =
            small_setup(vec![], AttackKind::Benign, Box::new(TrimmedMean::new(0.25).unwrap()), false);
        clean.set_record_diagnostics(true);
        clean.step_round(true).unwrap();
        let clean_d = clean.result().rounds[0].diagnostics.clone().unwrap();

        let mut attacked = small_setup(
            vec![1],
            AttackKind::Random { lo: -10.0, hi: 10.0 },
            Box::new(TrimmedMean::new(0.25).unwrap()),
            false,
        );
        attacked.set_record_diagnostics(true);
        attacked.step_round(true).unwrap();
        let attacked_d = attacked.result().rounds[0].diagnostics.clone().unwrap();

        assert!(
            attacked_d.server_disagreement > 5.0 * clean_d.server_disagreement,
            "random attack should explode disagreement: {} vs {}",
            attacked_d.server_disagreement,
            clean_d.server_disagreement
        );
        assert!(
            attacked_d.filter_displacement > clean_d.filter_displacement,
            "filter must move further under attack"
        );
        assert!(clean_d.max_update_norm > 0.0);
        // Without recording, no diagnostics appear.
        let mut off = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
        off.step_round(true).unwrap();
        assert!(off.result().rounds[0].diagnostics.is_none());
    }

    #[test]
    fn snapshot_resume_is_bit_exact() {
        let make = || {
            small_setup(
                vec![1],
                AttackKind::Backward { delay: 2 }, // history-dependent attack
                Box::new(TrimmedMean::new(0.25).unwrap()),
                false,
            )
        };
        // Reference: uninterrupted 6-round run.
        let mut reference = make();
        reference.run(6).unwrap();

        // Checkpointed: 3 rounds, snapshot, fresh engine, restore, 3 more.
        let mut first = make();
        first.run(3).unwrap();
        let snap = first.snapshot();
        assert_eq!(snap.round, 3);
        let mut resumed = make();
        resumed.restore(&snap).unwrap();
        resumed.run(3).unwrap();

        assert_eq!(reference.client_models(), resumed.client_models());
        assert_eq!(reference.result().rounds, resumed.result().rounds);
    }

    #[test]
    fn restore_validates_shape() {
        let mut a = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
        let mut snap = a.snapshot();
        snap.client_models.pop();
        assert!(a.restore(&snap).is_err());
        let mut snap = a.snapshot();
        snap.server_state.pop();
        assert!(a.restore(&snap).is_err());
        let mut snap = a.snapshot();
        snap.client_models[0] = Tensor::zeros(&[3]);
        assert!(a.restore(&snap).is_err());
    }

    #[test]
    fn paper_defaults_match_table_ii() {
        let cfg = EngineConfig::paper_defaults(1).unwrap();
        assert_eq!(cfg.topology.num_clients(), 50);
        assert_eq!(cfg.topology.num_servers(), 10);
        assert_eq!(cfg.local_epochs, 3);
        assert_eq!(cfg.upload, UploadStrategy::Sparse);
    }

    #[test]
    fn trivial_fault_plan_is_bit_identical_to_no_plan() {
        let mut plain = small_setup(vec![1], AttackKind::Noise { std: 0.5 },
            Box::new(TrimmedMean::new(0.25).unwrap()), false);
        let mut planned = small_setup(vec![1], AttackKind::Noise { std: 0.5 },
            Box::new(TrimmedMean::new(0.25).unwrap()), false);
        planned.set_fault_plan(crate::FaultPlan::none()).unwrap();
        plain.run(3).unwrap();
        planned.run(3).unwrap();
        assert_eq!(plain.client_models(), planned.client_models());
        assert_eq!(plain.result(), planned.result());
    }

    #[test]
    fn crashed_server_goes_silent_and_run_survives() {
        use crate::{FaultPlan, ServerFault};
        let mut e = small_setup(vec![], AttackKind::Benign,
            Box::new(TrimmedMean::new(0.25).unwrap()), false);
        e.enable_event_log(10_000);
        e.set_record_diagnostics(true);
        e.set_fault_plan(FaultPlan {
            server_faults: vec![ServerFault::None, ServerFault::Crash { round: 1 }],
            ..FaultPlan::default()
        })
        .unwrap();
        e.run(3).unwrap();
        assert!(e.result().final_accuracy().unwrap().is_finite());
        let log = e.event_log().unwrap();
        // Server 1 is up in round 0, silent in rounds 1 and 2.
        assert_eq!(log.of_kind("silent").len(), 2);
        assert!(log.of_kind("silent").iter().all(|ev| matches!(
            ev,
            RoundEvent::ServerSilent { server: 1, crashed: true, .. }
        )));
        // Round 0 disseminates from 4 servers, later rounds from 3.
        assert_eq!(log.round(0).iter().filter(|e| e.kind() == "disseminate").count(), 4);
        assert_eq!(log.round(2).iter().filter(|e| e.kind() == "disseminate").count(), 3);
        // Uploads routed to the dead server are lost and accounted.
        let comm = e.result().total_comm;
        assert_eq!(
            comm.download_messages,
            (4 + 3 + 3) * 8 // live servers × clients per round
        );
        let diag = e.result().rounds[2].diagnostics.clone().unwrap();
        assert_eq!(diag.silent_servers, 1);
    }

    #[test]
    fn adaptive_filter_survives_crash_plus_byzantine() {
        use crate::{FaultPlan, ServerFault};
        use fedms_aggregation::AdaptiveTrimmedMean;
        // 4 servers, B = 1 Byzantine, 1 crashed from round 1: clients see
        // P' = 3 > 2B models; the fixed-count trim still removes the
        // Byzantine extreme.
        let mut e = small_setup(vec![1], AttackKind::Random { lo: -10.0, hi: 10.0 },
            Box::new(AdaptiveTrimmedMean::new(1)), false);
        e.set_fault_plan(FaultPlan {
            server_faults: vec![ServerFault::None, ServerFault::None,
                ServerFault::Crash { round: 1 }, ServerFault::None],
            ..FaultPlan::default()
        })
        .unwrap();
        e.run(4).unwrap();
        // The random attack injects coordinates ~10; a surviving filter
        // keeps the model norm modest.
        assert!(e.client_models()[0].norm_l2() < 50.0);
    }

    #[test]
    fn degraded_quorum_is_a_typed_error() {
        use crate::{FaultPlan, ServerFault};
        // 4 servers, B = 1: two crashes leave P' = 2 ≤ 2B.
        let mut e = small_setup(vec![1], AttackKind::Noise { std: 0.5 },
            Box::new(TrimmedMean::new(0.25).unwrap()), false);
        e.set_fault_plan(FaultPlan {
            server_faults: vec![ServerFault::Crash { round: 1 }, ServerFault::None,
                ServerFault::Crash { round: 1 }, ServerFault::None],
            ..FaultPlan::default()
        })
        .unwrap();
        // Round 0 is healthy…
        e.step_round(false).unwrap();
        // …round 1 must fail fast with the structured error, not panic.
        match e.step_round(false) {
            Err(SimError::DegradedQuorum { round, client, received, needed }) => {
                assert_eq!(round, 1);
                assert_eq!(client, 0);
                assert_eq!(received, 2);
                assert_eq!(needed, 2);
            }
            other => panic!("expected DegradedQuorum, got {other:?}"),
        }
    }

    #[test]
    fn straggler_delays_then_delivers_stale_models() {
        use crate::{FaultPlan, ServerFault};
        let mut e = small_setup(vec![], AttackKind::Benign,
            Box::new(TrimmedMean::new(0.25).unwrap()), false);
        e.enable_event_log(10_000);
        e.set_fault_plan(FaultPlan {
            server_faults: vec![ServerFault::Straggler { delay: 2 }],
            ..FaultPlan::default()
        })
        .unwrap();
        e.run(4).unwrap();
        let log = e.event_log().unwrap();
        // Warm-up: silent in rounds 0 and 1, delivering from round 2 on.
        let silent: Vec<usize> =
            log.of_kind("silent").iter().map(|ev| ev.round()).collect();
        assert_eq!(silent, vec![0, 1]);
        assert_eq!(log.round(3).iter().filter(|e| e.kind() == "disseminate").count(), 4);
        assert!(e.result().final_accuracy().unwrap().is_finite());
    }

    #[test]
    fn lossy_downlink_is_deterministic_and_accounted() {
        use crate::FaultPlan;
        let make = || {
            let mut e = small_setup(vec![], AttackKind::Benign,
                Box::new(TrimmedMean::new(0.25).unwrap()), false);
            e.set_fault_plan(FaultPlan {
                downlink_omission: 0.3,
                duplicate_rate: 0.2,
                ..FaultPlan::default()
            })
            .unwrap();
            e
        };
        let mut a = make();
        let mut b = make();
        a.run(3).unwrap();
        b.run(3).unwrap();
        assert_eq!(a.client_models(), b.client_models());
        assert_eq!(a.result(), b.result());
        let comm = a.result().total_comm;
        assert!(comm.dropped_downloads > 0, "30% omission must drop something");
        assert!(comm.duplicated_downloads > 0, "20% duplication must duplicate something");
        // Duplicates add real traffic on top of the 4·8·3 base messages.
        assert_eq!(comm.download_messages, 4 * 8 * 3 + comm.duplicated_downloads);
    }

    #[test]
    fn set_fault_plan_validates_against_topology() {
        use crate::{FaultPlan, ServerFault};
        let mut e = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
        // 5 entries for a 4-server federation.
        assert!(e
            .set_fault_plan(FaultPlan {
                server_faults: vec![ServerFault::None; 5],
                ..FaultPlan::default()
            })
            .is_err());
        assert!(e
            .set_fault_plan(FaultPlan { downlink_omission: 1.5, ..FaultPlan::default() })
            .is_err());
        assert!(e.set_fault_plan(FaultPlan::none()).is_ok());
    }

    #[test]
    fn snapshot_resume_is_bit_exact_under_faults() {
        use crate::{FaultPlan, ServerFault};
        // No Byzantine set here: with B = 0 the quorum guard stays out of
        // the way and arbitrarily harsh fault realizations stay runnable.
        let make = || {
            let mut e = small_setup(
                vec![],
                AttackKind::Benign,
                Box::new(TrimmedMean::new(0.25).unwrap()),
                false,
            );
            e.set_fault_plan(FaultPlan {
                server_faults: vec![ServerFault::Straggler { delay: 1 },
                    ServerFault::Crash { round: 4 }],
                downlink_omission: 0.1,
                ..FaultPlan::default()
            })
            .unwrap();
            e
        };
        let mut reference = make();
        reference.run(6).unwrap();
        let mut first = make();
        first.run(3).unwrap();
        let snap = first.snapshot();
        let mut resumed = make();
        resumed.restore(&snap).unwrap();
        resumed.run(3).unwrap();
        assert_eq!(reference.client_models(), resumed.client_models());
        assert_eq!(reference.result().rounds, resumed.result().rounds);
    }
}
