//! The recovery layer: deadline-driven retries, backoff and upload failover.
//!
//! The paper's protocol assumes every honest link eventually delivers; the
//! fault layer (DESIGN.md §6) broke that assumption, and until now a lost
//! upload or broadcast was simply gone — every transient fault permanently
//! shrank the filter's view `P' ≤ P` and eroded the trimmed-mean margin.
//! This module turns the fire-and-forget upload/broadcast phases into
//! *deadline-driven exchanges*:
//!
//! * [`RecoveryPolicy`] — the knobs: per-attempt timeout, retry budget,
//!   exponential-backoff-with-jitter schedule, upload failover, a
//!   per-message virtual deadline, and what to do when a round still ends
//!   up degraded ([`DegradedMode`]);
//! * [`ResilientTransport`] — a decorator over any [`Transport`] that
//!   realizes the policy per message and accounts every extra transmission;
//! * [`UploadReport`] — the attempt-level outcome of one tracked upload
//!   (attempts, failover, deadline misses, virtual time consumed).
//!
//! Determinism: every retry decision is a pure function of
//! `(seed, round, link, attempt)` — backoff jitter draws from the `"RTRY"`
//! stream, downlink retransmission loss from the `"RCVR"` stream, each RNG
//! constructed fresh per draw from its full label path, never carried
//! across messages. A disabled policy ([`RecoveryPolicy::is_disabled`])
//! makes the decorator delivery-for-delivery identical to the wrapped
//! transport: no extra RNG draw, no extra counter, bit-exact behaviour
//! (property-tested in `crates/sim/tests/recovery.rs`).
//!
//! Time is *virtual*: the simulator has no wall clock, so timeouts,
//! backoff waits and deadlines are modelled in milliseconds of simulated
//! link time per message. A failed attempt costs
//! [`RecoveryPolicy::attempt_timeout_ms`] (the sender waited that long for
//! an ack that never came), each retry first waits its backoff delay, and
//! once a message's accumulated virtual time would overrun
//! [`RecoveryPolicy::round_deadline_ms`] the exchange stops with a
//! recorded deadline miss instead of retrying forever.

use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::fault::FaultClass;
use crate::threat::NetThreat;
use crate::transport::{Broadcast, Delivery, DeliveryOutcome, Dissemination, Transport, Upload};
use crate::{CommStats, FaultPlan, Result, SimError};

/// RNG label for backoff jitter ("RTRY").
const RETRY_LABEL: u64 = 0x52_54_52_59;
/// RNG label for downlink retransmission loss ("RCVR").
const RECOVER_LABEL: u64 = 0x52_43_56_52;

/// Stable identifier of one client→server uplink, used as an RNG label so
/// backoff schedules are a pure function of `(seed, round, link, attempt)`.
pub fn uplink_id(client: usize, server: usize) -> u64 {
    (1u64 << 40) | ((client as u64) << 20) | server as u64
}

/// Stable identifier of one server→client downlink (see [`uplink_id`]).
pub fn downlink_id(server: usize, client: usize) -> u64 {
    (2u64 << 40) | ((server as u64) << 20) | client as u64
}

/// What to do when, even after recovery, a client's view is too degraded
/// for the quorum guard (`P' ≤ 2B` distinct models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DegradedMode {
    /// Abort the round with the typed [`SimError::DegradedQuorum`] (the
    /// pre-recovery behaviour, and the safe default).
    #[default]
    Abort,
    /// Proceed degraded: the affected client skips the global update and
    /// keeps its locally trained model for the round. Filtering a
    /// sub-quorum view would let Byzantine servers dominate it, so local
    /// continuation is the only safe degraded action; clients whose view
    /// stayed above quorum still filter normally (the
    /// `AdaptiveTrimmedMean` path handles their shrunken `P'`).
    Proceed,
}

/// Retry/backoff/failover policy of a [`ResilientTransport`].
///
/// The default policy is [`RecoveryPolicy::disabled`]: zero retry budget,
/// no failover — the decorator then behaves exactly like the transport it
/// wraps. [`RecoveryPolicy::standard`] is a sane starting point for lossy
/// federations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retries per message *beyond* the first attempt, per target (the
    /// original server and, separately, the failover server each get a
    /// full budget). 0 = never retry.
    #[serde(default)]
    pub retry_budget: u32,
    /// Virtual cost in ms of a failed attempt: how long the sender waits
    /// for an ack before declaring the attempt lost.
    #[serde(default)]
    pub attempt_timeout_ms: u64,
    /// Base of the exponential backoff, in ms. Retry `n` waits roughly
    /// `base · 2ⁿ` (half deterministic, half jitter), capped at
    /// [`RecoveryPolicy::backoff_cap_ms`].
    #[serde(default)]
    pub backoff_base_ms: u64,
    /// Upper bound on a single backoff wait, in ms.
    #[serde(default)]
    pub backoff_cap_ms: u64,
    /// When the target server stays unresponsive across the whole retry
    /// budget (or is crashed — a persistent fault skips the futile
    /// retries), re-upload to a deterministically chosen alternate server.
    #[serde(default)]
    pub failover: bool,
    /// Per-message virtual deadline in ms; an exchange whose next attempt
    /// could not complete inside it stops with a recorded deadline miss.
    /// 0 = no deadline.
    #[serde(default)]
    pub round_deadline_ms: u64,
    /// Proceed degraded or abort when a client's view ends up below
    /// quorum anyway.
    #[serde(default)]
    pub on_degraded: DegradedMode,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::disabled()
    }
}

impl RecoveryPolicy {
    /// The no-op policy: no retries, no failover, no deadline. A
    /// [`ResilientTransport`] running this policy is bit-identical to the
    /// transport it wraps.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            retry_budget: 0,
            attempt_timeout_ms: 50,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
            failover: false,
            round_deadline_ms: 0,
            on_degraded: DegradedMode::Abort,
        }
    }

    /// A sane starting point for lossy federations: 3 retries per target,
    /// 50 ms attempt timeout, 10 ms backoff base capped at 1 s, failover
    /// on, 2 s per-message deadline, abort on degraded quorum.
    pub fn standard() -> Self {
        RecoveryPolicy {
            retry_budget: 3,
            failover: true,
            round_deadline_ms: 2_000,
            ..RecoveryPolicy::disabled()
        }
    }

    /// Whether the policy never changes delivery behaviour (no retries and
    /// no failover). `on_degraded` is deliberately ignored: it gates the
    /// filter phase, not the transport.
    pub fn is_disabled(&self) -> bool {
        self.retry_budget == 0 && !self.failover
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for an absurd retry budget (> 32,
    /// which would mean 2³² backoff growth) or a zero backoff base with a
    /// non-zero budget (the schedule would busy-spin).
    pub fn validate(&self) -> Result<()> {
        if self.retry_budget > 32 {
            return Err(SimError::BadConfig(format!(
                "retry_budget must be ≤ 32, got {}",
                self.retry_budget
            )));
        }
        if self.retry_budget > 0 && self.backoff_base_ms == 0 {
            return Err(SimError::BadConfig(
                "backoff_base_ms must be ≥ 1 when retries are enabled".into(),
            ));
        }
        if self.backoff_cap_ms < self.backoff_base_ms {
            return Err(SimError::BadConfig(format!(
                "backoff_cap_ms {} below backoff_base_ms {}",
                self.backoff_cap_ms, self.backoff_base_ms
            )));
        }
        Ok(())
    }

    /// The backoff wait before retry `attempt` (1-based) of `link` in
    /// `round`: `base · 2^(attempt−1)` capped at `backoff_cap_ms`, half
    /// deterministic and half uniform jitter. A pure function of
    /// `(seed, round, link, attempt)` — calling it twice with the same
    /// arguments returns the same delay, and no RNG state leaks between
    /// messages.
    pub fn backoff_delay_ms(&self, seed: u64, round: usize, link: u64, attempt: u32) -> u64 {
        if self.backoff_base_ms == 0 || attempt == 0 {
            return 0;
        }
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << (attempt - 1).min(32))
            .min(self.backoff_cap_ms);
        let half = exp / 2;
        let mut rng = rng_for(seed, &[RETRY_LABEL, round as u64, link, attempt as u64]);
        half + rng.gen_range(0..=exp - half)
    }

    /// Whether an exchange at `elapsed_ms` of virtual time can no longer
    /// complete another attempt inside the deadline.
    fn misses_deadline(&self, elapsed_ms: u64) -> bool {
        self.round_deadline_ms > 0 && elapsed_ms + self.attempt_timeout_ms > self.round_deadline_ms
    }
}

/// Attempt-level outcome of one tracked upload (see
/// [`Transport::send_upload_tracked`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UploadReport {
    /// The final fate: [`DeliveryOutcome::Delivered`] if *any* attempt —
    /// original target or failover — landed, [`DeliveryOutcome::Dropped`]
    /// otherwise.
    pub outcome: DeliveryOutcome,
    /// The server that (finally) received the upload — the failover target
    /// when `failed_over` and the exchange succeeded there.
    pub server: usize,
    /// Total send attempts actually placed on the wire (≥ 1 unless the
    /// deadline expired before the first attempt).
    pub attempts: u32,
    /// Whether the exchange re-targeted an alternate server.
    pub failed_over: bool,
    /// Whether the exchange stopped on the per-message deadline.
    pub deadline_missed: bool,
    /// Virtual link time consumed (timeouts + backoff waits), in ms.
    pub elapsed_ms: u64,
}

impl UploadReport {
    /// The report of a plain, untracked transport: one attempt, whatever
    /// the wire said.
    pub fn direct(outcome: DeliveryOutcome, server: usize) -> Self {
        UploadReport {
            outcome,
            server,
            attempts: 1,
            failed_over: false,
            deadline_missed: false,
            elapsed_ms: 0,
        }
    }
}

/// A decorator that adds deadline-driven retries, exponential backoff and
/// upload failover to any [`Transport`].
///
/// * **Uplink** — [`Transport::send_upload_tracked`] retries a dropped
///   upload against its original target up to the budget (skipping the
///   futile retries when [`FaultPlan`] marks the target's failure
///   *persistent*, i.e. crashed), then — with failover enabled — re-uploads
///   once more, full budget, to a deterministically chosen alternate: the
///   online server with the cleanest delivery record, ties broken by ring
///   distance from the original target.
/// * **Downlink** — [`Transport::drain_deliveries`] repairs omission
///   losses: any queued broadcast that did not reach this client is
///   retransmitted up to the budget, each retransmission a fresh
///   seed-deterministic Bernoulli draw against the plan's omission rate,
///   paid for in [`CommStats`] like any other message.
///
/// Cross-round state (the per-server delivery records that steer failover)
/// round-trips through [`Transport::recovery_state`] for bit-exact
/// checkpointing.
pub struct ResilientTransport<T: Transport> {
    inner: T,
    policy: RecoveryPolicy,
    seed: u64,
    num_clients: usize,
    num_servers: usize,
    round: usize,
    model_len: usize,
    /// This round's queued disseminations, mirrored for downlink repair.
    queued: Vec<(usize, Dissemination)>,
    /// Consecutive failed exchanges per server (0 = healthy record); the
    /// failover selector prefers low counts. Evolves across rounds and is
    /// checkpointed.
    suspicion: Vec<u32>,
    /// Recovery-layer traffic on top of the inner transport's accounting.
    extra: CommStats,
}

impl<T: Transport> std::fmt::Debug for ResilientTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientTransport")
            .field("round", &self.round)
            .field("budget", &self.policy.retry_budget)
            .field("failover", &self.policy.failover)
            .finish()
    }
}

impl<T: Transport> ResilientTransport<T> {
    /// Wraps `inner` with `policy`. `seed` must be the run seed (all
    /// retry randomness derives from it), `num_clients` the federation's
    /// client count (mirrored disseminations must cover it) and
    /// `num_servers` its width (failover candidates).
    ///
    /// # Errors
    ///
    /// Propagates [`RecoveryPolicy::validate`].
    pub fn new(
        inner: T,
        policy: RecoveryPolicy,
        seed: u64,
        num_clients: usize,
        num_servers: usize,
    ) -> Result<Self> {
        policy.validate()?;
        Ok(ResilientTransport {
            inner,
            policy,
            seed,
            num_clients,
            num_servers,
            round: 0,
            model_len: 0,
            queued: Vec::new(),
            suspicion: vec![0; num_servers],
            extra: CommStats::new(),
        })
    }

    /// The active policy.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The alternate target for an upload whose exchange with `original`
    /// exhausted its budget: the online server (≠ original) with the
    /// lowest consecutive-failure count, ties broken by ring distance from
    /// `original`. Deterministic given the delivery record.
    fn failover_target(&self, original: usize) -> Option<usize> {
        (1..self.num_servers)
            .map(|offset| (original + offset) % self.num_servers)
            .filter(|&s| self.inner.server_online(s))
            .min_by_key(|&s| self.suspicion[s])
    }

    /// Runs one exchange — first attempt plus budgeted retries — against
    /// `server`, charging timeouts and backoff waits to `report`.
    fn exchange(
        &mut self,
        client: usize,
        server: usize,
        model: &Tensor,
        report: &mut UploadReport,
    ) {
        // A persistent fault (crashed target) makes retries futile: probe
        // once, then hand straight over to failover.
        let retries = match self.inner.fault_plan().upload_fault_class(server, self.round) {
            FaultClass::Persistent => 0,
            FaultClass::Transient => self.policy.retry_budget,
        };
        let link = uplink_id(client, server);
        for attempt in 0..=retries {
            if attempt > 0 {
                report.elapsed_ms +=
                    self.policy.backoff_delay_ms(self.seed, self.round, link, report.attempts);
            }
            if self.policy.misses_deadline(report.elapsed_ms) {
                if !report.deadline_missed {
                    report.deadline_missed = true;
                    self.extra.record_deadline_miss();
                }
                return;
            }
            if attempt > 0 {
                self.extra.record_retried_upload();
            }
            report.attempts += 1;
            let outcome = self.inner.send_upload(Upload { client, server, model: model.clone() });
            if outcome == DeliveryOutcome::Delivered {
                report.outcome = DeliveryOutcome::Delivered;
                report.server = server;
                return;
            }
            report.elapsed_ms += self.policy.attempt_timeout_ms;
        }
    }

    /// Full recovery pipeline for one upload: exchange with the original
    /// target, then (policy permitting) one failover exchange.
    fn deliver_upload(&mut self, upload: Upload) -> UploadReport {
        let Upload { client, server: original, model } = upload;
        let mut report = UploadReport {
            outcome: DeliveryOutcome::Dropped,
            server: original,
            attempts: 0,
            failed_over: false,
            deadline_missed: false,
            elapsed_ms: 0,
        };
        self.exchange(client, original, &model, &mut report);
        if report.outcome == DeliveryOutcome::Delivered {
            self.suspicion[original] = 0;
            return report;
        }
        self.suspicion[original] = self.suspicion[original].saturating_add(1);
        if !self.policy.failover || report.deadline_missed {
            return report;
        }
        if self.policy.misses_deadline(report.elapsed_ms) {
            report.deadline_missed = true;
            self.extra.record_deadline_miss();
            return report;
        }
        let Some(alternate) = self.failover_target(original) else {
            return report;
        };
        report.failed_over = true;
        self.extra.record_failover_upload();
        self.exchange(client, alternate, &model, &mut report);
        if report.outcome == DeliveryOutcome::Delivered {
            self.suspicion[alternate] = 0;
        } else {
            self.suspicion[alternate] = self.suspicion[alternate].saturating_add(1);
        }
        report
    }

    /// Repairs omission losses on one client's downlink: every queued
    /// broadcast that did not arrive is retransmitted up to the budget.
    fn repair_downlink(&mut self, client: usize, deliveries: &mut Vec<Delivery>) {
        let omission = self.inner.fault_plan().downlink_omission;
        if self.policy.retry_budget == 0 || omission <= 0.0 {
            return;
        }
        let arrived: Vec<usize> = deliveries.iter().map(|d| d.server).collect();
        for qi in 0..self.queued.len() {
            let server = self.queued[qi].0;
            if arrived.contains(&server) {
                continue;
            }
            let link = downlink_id(server, client);
            let mut elapsed = self.policy.attempt_timeout_ms; // the lost first copy
            for attempt in 1..=self.policy.retry_budget {
                elapsed += self.policy.backoff_delay_ms(self.seed, self.round, link, attempt);
                if self.policy.misses_deadline(elapsed) {
                    self.extra.record_deadline_miss();
                    break;
                }
                // The retransmission is real traffic whether or not it lands.
                self.extra.record_retried_download(self.model_len);
                let mut rng =
                    rng_for(self.seed, &[RECOVER_LABEL, self.round as u64, link, attempt as u64]);
                if rng.gen_bool(omission) {
                    self.extra.record_dropped_download();
                    elapsed += self.policy.attempt_timeout_ms;
                    continue;
                }
                // Coverage was validated when the broadcast was mirrored,
                // so a miss here means an upstream bug; skip the repair
                // rather than panic.
                let Ok(model) = self.queued[qi].1.for_client(client) else {
                    debug_assert!(false, "mirrored dissemination misses client {client}");
                    break;
                };
                let model = model.clone();
                deliveries.push(Delivery { server, model, outcome: DeliveryOutcome::Delivered });
                break;
            }
        }
    }
}

impl<T: Transport> Transport for ResilientTransport<T> {
    fn name(&self) -> &'static str {
        "resilient"
    }

    fn begin_round(&mut self, round: usize, model_len: usize) {
        self.round = round;
        self.model_len = model_len;
        self.queued.clear();
        self.extra = CommStats::new();
        self.inner.begin_round(round, model_len);
    }

    fn send_upload(&mut self, upload: Upload) -> DeliveryOutcome {
        self.deliver_upload(upload).outcome
    }

    fn send_upload_tracked(&mut self, upload: Upload) -> UploadReport {
        self.deliver_upload(upload)
    }

    // `supports_streaming`/`route_upload` deliberately keep the trait
    // defaults: retries and failover need to own the payload, so the
    // recovery layer always routes full uploads and the engine falls back
    // to buffered per-server inboxes.

    fn set_round_recipients(&mut self, recipients: usize) {
        self.inner.set_round_recipients(recipients);
    }

    fn server_online(&self, server: usize) -> bool {
        self.inner.server_online(server)
    }

    fn release_aggregate(
        &mut self,
        server: usize,
        aggregate: Tensor,
    ) -> (DeliveryOutcome, Option<Tensor>) {
        self.inner.release_aggregate(server, aggregate)
    }

    fn broadcast(&mut self, message: Broadcast) -> Result<()> {
        // Validate coverage *before* mirroring: an equivocating
        // dissemination shorter than the federation must be rejected with
        // a typed error, never queued where `repair_downlink` would later
        // index past its end.
        message.model.check_coverage(self.num_clients)?;
        let mirror = (!self.policy.is_disabled()).then(|| (message.server, message.model.clone()));
        // Mirror only after the inner transport accepted the broadcast, so
        // a rejected message cannot be retransmitted on repair.
        self.inner.broadcast(message)?;
        if let Some(entry) = mirror {
            self.queued.push(entry);
        }
        Ok(())
    }

    fn take_inbox(&mut self, server: usize) -> Vec<Tensor> {
        self.inner.take_inbox(server)
    }

    fn drain_deliveries(&mut self, client: usize) -> Vec<Delivery> {
        let mut deliveries = self.inner.drain_deliveries(client);
        self.repair_downlink(client, &mut deliveries);
        deliveries
    }

    fn take_comm(&mut self) -> CommStats {
        let mut comm = self.inner.take_comm();
        comm += std::mem::take(&mut self.extra);
        comm
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<()> {
        self.inner.install_fault_plan(plan)
    }

    fn fault_plan(&self) -> &FaultPlan {
        self.inner.fault_plan()
    }

    fn set_upload_drop_rate(&mut self, rate: f64) -> Result<()> {
        self.inner.set_upload_drop_rate(rate)
    }

    fn set_net_threat(&mut self, threat: NetThreat) {
        // The trait default swallows the threat; a decorator must hand it
        // to whatever transport actually owns the wire.
        self.inner.set_net_threat(threat);
    }

    fn state_snapshot(&self) -> Vec<Vec<Tensor>> {
        self.inner.state_snapshot()
    }

    fn restore_state(&mut self, outboxes: Vec<Vec<Tensor>>) {
        self.inner.restore_state(outboxes);
    }

    fn recovery_state(&self) -> Vec<u32> {
        self.suspicion.clone()
    }

    fn restore_recovery_state(&mut self, state: Vec<u32>) {
        if state.len() == self.num_servers {
            self.suspicion = state;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalTransport;
    use crate::ServerFault;

    fn up(client: usize, server: usize, v: f32) -> Upload {
        Upload { client, server, model: Tensor::from_slice(&[v, v]) }
    }

    fn resilient(
        seed: u64,
        policy: RecoveryPolicy,
        plan: FaultPlan,
        drop_rate: f64,
    ) -> ResilientTransport<LocalTransport> {
        let mut inner = LocalTransport::new(seed, 4, 3);
        inner.install_fault_plan(plan).unwrap();
        inner.set_upload_drop_rate(drop_rate).unwrap();
        let mut t = ResilientTransport::new(inner, policy, seed, 4, 3).unwrap();
        t.begin_round(0, 2);
        t
    }

    #[test]
    fn policy_validation() {
        assert!(RecoveryPolicy::disabled().validate().is_ok());
        assert!(RecoveryPolicy::standard().validate().is_ok());
        let bad = RecoveryPolicy { retry_budget: 33, ..RecoveryPolicy::disabled() };
        assert!(bad.validate().is_err());
        let bad =
            RecoveryPolicy { retry_budget: 1, backoff_base_ms: 0, ..RecoveryPolicy::disabled() };
        assert!(bad.validate().is_err());
        let bad = RecoveryPolicy { backoff_cap_ms: 1, ..RecoveryPolicy::disabled() };
        assert!(bad.validate().is_err());
        assert!(RecoveryPolicy::disabled().is_disabled());
        assert!(!RecoveryPolicy::standard().is_disabled());
    }

    #[test]
    fn backoff_grows_and_stays_capped() {
        let p = RecoveryPolicy::standard();
        let mut prev_floor = 0;
        for attempt in 1..=10 {
            let d = p.backoff_delay_ms(7, 3, uplink_id(0, 1), attempt);
            let exp = (p.backoff_base_ms << (attempt - 1) as u64).min(p.backoff_cap_ms);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: {d} outside [{}, {exp}]",
                exp / 2
            );
            assert!(exp / 2 >= prev_floor);
            prev_floor = exp / 2;
        }
        // Huge attempt indices saturate instead of overflowing.
        assert!(p.backoff_delay_ms(7, 3, uplink_id(0, 1), u32::MAX) <= p.backoff_cap_ms);
    }

    #[test]
    fn retries_recover_transient_uplink_loss() {
        // 70% channel loss: with a healthy budget nearly every upload
        // still lands, and every extra attempt is accounted.
        let policy =
            RecoveryPolicy { retry_budget: 8, round_deadline_ms: 0, ..RecoveryPolicy::standard() };
        let mut t = resilient(11, policy, FaultPlan::none(), 0.7);
        let mut delivered = 0;
        for k in 0..4 {
            let report = t.send_upload_tracked(up(k, 1, k as f32));
            if report.outcome == DeliveryOutcome::Delivered {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 4, "budgeted retries should beat 70% transient loss");
        // Every upload landed somewhere — the original target or, for an
        // exchange whose whole budget drowned, the failover server.
        let landed: usize = (0..3).map(|s| t.take_inbox(s).len()).sum();
        assert_eq!(landed, 4);
        let comm = t.take_comm();
        assert!(comm.retried_uploads > 0);
        // Every attempt the inner transport saw is either the first try
        // of a message or an accounted retry.
        assert_eq!(comm.upload_messages, 4 + comm.retried_uploads + comm.failover_uploads);
    }

    #[test]
    fn crashed_target_fails_over_without_futile_retries() {
        let plan = FaultPlan {
            server_faults: vec![ServerFault::None, ServerFault::Crash { round: 0 }],
            ..FaultPlan::default()
        };
        let policy = RecoveryPolicy { retry_budget: 5, ..RecoveryPolicy::standard() };
        let mut t = resilient(3, policy, plan, 0.0);
        let report = t.send_upload_tracked(up(0, 1, 7.0));
        assert_eq!(report.outcome, DeliveryOutcome::Delivered);
        assert!(report.failed_over);
        assert_ne!(report.server, 1);
        // Persistent fault: one probe + one failover attempt, no retries.
        assert_eq!(report.attempts, 2);
        assert_eq!(t.take_inbox(report.server).len(), 1);
        let comm = t.take_comm();
        assert_eq!(comm.failover_uploads, 1);
        assert_eq!(comm.retried_uploads, 0);
    }

    #[test]
    fn deadline_bounds_the_exchange() {
        let policy = RecoveryPolicy {
            retry_budget: 8,
            attempt_timeout_ms: 100,
            round_deadline_ms: 250, // room for two, maybe three attempts
            failover: false,
            ..RecoveryPolicy::disabled()
        };
        let mut t = resilient(1, policy, FaultPlan::none(), 0.999);
        let report = t.send_upload_tracked(up(0, 1, 1.0));
        assert_eq!(report.outcome, DeliveryOutcome::Dropped);
        assert!(report.deadline_missed);
        assert!(report.attempts < 9, "deadline must cut the budget short");
        assert!(report.elapsed_ms + policy.attempt_timeout_ms > policy.round_deadline_ms);
        assert_eq!(t.take_comm().deadline_misses, 1);
    }

    #[test]
    fn downlink_repair_restores_omitted_broadcasts() {
        let plan = FaultPlan { downlink_omission: 0.6, ..FaultPlan::default() };
        let policy = RecoveryPolicy { retry_budget: 10, ..RecoveryPolicy::standard() };
        let mut t = resilient(5, policy, plan, 0.0);
        for s in 0..3 {
            t.broadcast(Broadcast {
                server: s,
                model: Dissemination::Broadcast(Tensor::from_slice(&[s as f32, 0.0])),
            })
            .unwrap();
        }
        for k in 0..4 {
            let d = t.drain_deliveries(k);
            assert_eq!(d.len(), 3, "client {k} should see every broadcast after repair");
        }
        let comm = t.take_comm();
        assert!(comm.retried_downloads > 0, "60% omission must need retransmissions");
        assert_eq!(
            comm.download_messages,
            3 * 4 + comm.duplicated_downloads + comm.retried_downloads
        );
    }

    #[test]
    fn disabled_policy_is_delivery_identical_to_inner() {
        let plan = FaultPlan {
            server_faults: vec![ServerFault::Crash { round: 0 }],
            downlink_omission: 0.3,
            duplicate_rate: 0.2,
        };
        let run = |wrap: bool| {
            let mut inner = LocalTransport::new(9, 4, 3);
            inner.install_fault_plan(plan.clone()).unwrap();
            inner.set_upload_drop_rate(0.4).unwrap();
            let mut t: Box<dyn Transport> = if wrap {
                Box::new(
                    ResilientTransport::new(inner, RecoveryPolicy::disabled(), 9, 4, 3).unwrap(),
                )
            } else {
                Box::new(inner)
            };
            t.begin_round(0, 2);
            let mut fates = Vec::new();
            for k in 0..4 {
                fates.push(t.send_upload(up(k, k % 3, k as f32)));
            }
            for s in 0..3 {
                let inbox = t.take_inbox(s);
                fates.push(if inbox.is_empty() {
                    DeliveryOutcome::Dropped
                } else {
                    DeliveryOutcome::Delivered
                });
                t.broadcast(Broadcast {
                    server: s,
                    model: Dissemination::Broadcast(Tensor::from_slice(&[s as f32, 1.0])),
                })
                .unwrap();
            }
            let mut drains = Vec::new();
            for k in 0..4 {
                for d in t.drain_deliveries(k) {
                    drains.push((k, d.server, d.outcome));
                }
            }
            (fates, drains, t.take_comm())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn short_equivocation_is_rejected_not_queued() {
        // Regression: a per-client dissemination shorter than the
        // federation used to be mirrored unchecked, and `repair_downlink`
        // later panicked indexing past its end. It must now be rejected
        // with a typed error before anything is queued.
        let plan = FaultPlan { downlink_omission: 0.9, ..FaultPlan::default() };
        let policy = RecoveryPolicy { retry_budget: 10, ..RecoveryPolicy::standard() };
        let mut t = resilient(5, policy, plan, 0.0);
        let short = Broadcast {
            server: 0,
            // Covers 2 of the 4 clients.
            model: Dissemination::PerClient(vec![Tensor::from_slice(&[1.0, 1.0]); 2]),
        };
        assert!(t.broadcast(short).is_err());
        // Nothing was mirrored, so repairing the high-omission downlink of
        // the uncovered client 3 has nothing to retransmit — and must not
        // panic.
        assert!(t.drain_deliveries(3).is_empty());
        assert_eq!(t.take_comm().retried_downloads, 0);
    }

    #[test]
    fn failover_prefers_clean_delivery_records() {
        let plan = FaultPlan {
            server_faults: vec![ServerFault::Crash { round: 0 }],
            ..FaultPlan::default()
        };
        let policy =
            RecoveryPolicy { retry_budget: 0, failover: true, ..RecoveryPolicy::disabled() };
        let mut t = resilient(2, policy, plan, 0.0);
        // Poison server 1's record; server 2 becomes the preferred alternate.
        t.restore_recovery_state(vec![0, 5, 0]);
        let report = t.send_upload_tracked(up(0, 0, 1.0));
        assert_eq!(report.server, 2);
        assert_eq!(t.recovery_state(), vec![1, 5, 0], "probe failure recorded, success reset");
    }
}
