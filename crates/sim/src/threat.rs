//! Dynamic threat schedules: time-varying compromise, partitions and
//! frame corruption.
//!
//! Fed-MS assumes a *static* Byzantine census — `B` of `P` servers are
//! malicious from round 0. Real edge deployments are messier: an honest
//! aggregator can be compromised mid-run and later re-imaged, links
//! partition and heal, and frames arrive corrupted. A [`ThreatSchedule`]
//! describes such an adversary as a list of [`ThreatEpoch`]s, each active
//! over a half-open round range, and the engine replays it
//! deterministically: which servers lie (and how), which are unreachable,
//! and how lossy the wire is are all pure functions of `(schedule, round)`.
//!
//! Three effect layers:
//!
//! * **Compromise** — an honest server's `ServerAttack` switches from
//!   `Benign` to the epoch's [`AttackKind`] while the epoch is active, then
//!   heals. Only *honest* servers may be scheduled: the static Byzantine
//!   set from [`crate::Topology`] is permanent.
//! * **Partition** — at the network layer, the scheduled servers become
//!   unreachable: uploads to them are dropped at the sender and their
//!   disseminations never leave the router. Partitions are realized by
//!   [`crate::net::NetTransport`] (there is a wire to cut);
//!   [`crate::LocalTransport`] models no wire and ignores them.
//! * **Corruption** — each frame on the wire is independently corrupted
//!   with probability `corrupt_rate` (a seed-deterministic bit flip in the
//!   frame header), so the receiver surfaces a typed
//!   [`crate::WireError`] and the payload is lost to the round.
//!
//! The trivial schedule (`ThreatSchedule::default()`) instantiates no
//! machinery at all: engine runs are bit-identical to a build without this
//! module (property-tested in `tests/threat.rs`).
//!
//! # Schedule grammar
//!
//! [`ThreatSchedule::parse`] accepts a compact one-line form for the CLI
//! (`--threat-schedule`) and experiment specs:
//!
//! ```text
//! schedule  := epoch (';' epoch)*
//! epoch     := range ':' directive (',' directive)*
//! range     := START '..' END        half-open [START, END)
//!            | START '..'            open-ended
//!            | START                 open-ended (same as START..)
//! directive := 'compromise=' ids     servers to compromise
//!            | 'attack=' kind        attack mounted (default random:-10:10)
//!            | 'partition=' ids      servers cut off at the network layer
//!            | 'corrupt=' rate       per-frame corruption probability
//! ids       := id ('|' id)*
//! kind      := name (':' param)*     e.g. noise:1.0, random:-10:10, ipm:0.5
//! ```
//!
//! Example: `50..80:compromise=1|3,attack=random:-10:10;60..:partition=2`
//! compromises servers 1 and 3 for rounds 50–79 with the paper's random
//! attack, and partitions server 2 from round 60 onward.

use std::collections::{BTreeMap, BTreeSet};

use fedms_attacks::AttackKind;
use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// The attack mounted on compromised servers when an epoch names none:
/// the paper's uniform-replacement attack on `[-10, 10)`.
pub const DEFAULT_COMPROMISE_ATTACK: AttackKind = AttackKind::Random { lo: -10.0, hi: 10.0 };

/// One contiguous phase of the threat timeline: over rounds
/// `[start, end)` the listed servers are compromised and/or partitioned
/// and frames corrupt at `corrupt_rate`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ThreatEpoch {
    /// First round (0-based, inclusive) in which the epoch is active.
    #[serde(default)]
    pub start: usize,
    /// First round in which the epoch is no longer active (exclusive);
    /// `None` keeps it active for the rest of the run.
    #[serde(default)]
    pub end: Option<usize>,
    /// Honest servers compromised while the epoch is active.
    #[serde(default)]
    pub compromise: Vec<usize>,
    /// The attack the compromised servers mount; `None` means
    /// [`DEFAULT_COMPROMISE_ATTACK`].
    #[serde(default)]
    pub attack: Option<AttackKind>,
    /// Servers unreachable at the network layer while the epoch is active.
    #[serde(default)]
    pub partition: Vec<usize>,
    /// Probability an individual wire frame is corrupted in transit.
    #[serde(default)]
    pub corrupt_rate: f64,
}

impl ThreatEpoch {
    /// Whether the epoch is active in `round`.
    pub fn active(&self, round: usize) -> bool {
        round >= self.start && self.end.is_none_or(|end| round < end)
    }

    /// Whether the epoch injects nothing even when active.
    pub fn is_trivial(&self) -> bool {
        self.compromise.is_empty() && self.partition.is_empty() && self.corrupt_rate == 0.0
    }

    /// The attack compromised servers mount
    /// ([`DEFAULT_COMPROMISE_ATTACK`] unless the epoch names one).
    pub fn attack_kind(&self) -> AttackKind {
        self.attack.unwrap_or(DEFAULT_COMPROMISE_ATTACK)
    }
}

/// A full threat timeline: an ordered list of epochs. Later epochs win
/// where they overlap an earlier one (per server for compromise; the
/// partition set is the union, the corruption rate the maximum).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ThreatSchedule {
    /// The epochs, in declaration order.
    #[serde(default)]
    pub epochs: Vec<ThreatEpoch>,
}

/// The resolved threat state for one round, computed by
/// [`ThreatSchedule::view`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ThreatView {
    /// Compromised servers and the attack each mounts this round.
    pub compromised: BTreeMap<usize, AttackKind>,
    /// Servers unreachable at the network layer this round.
    pub partitioned: BTreeSet<usize>,
    /// Per-frame corruption probability this round.
    pub corrupt_rate: f64,
}

impl ThreatView {
    /// Whether the view injects nothing this round.
    pub fn is_trivial(&self) -> bool {
        self.compromised.is_empty() && self.partitioned.is_empty() && self.corrupt_rate == 0.0
    }

    /// The network-layer slice of this view, handed to the transport.
    pub fn net_threat(&self) -> NetThreat {
        NetThreat {
            partitioned: self.partitioned.iter().copied().collect(),
            corrupt_rate: self.corrupt_rate,
        }
    }
}

/// The network-layer effects of the current threat view: which servers are
/// unreachable and how lossy the wire is. Passed to
/// [`crate::Transport::set_net_threat`] each round the schedule is
/// non-trivial.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetThreat {
    /// Servers cut off from every client (uplink and downlink).
    pub partitioned: Vec<usize>,
    /// Probability an individual wire frame is corrupted in transit.
    pub corrupt_rate: f64,
}

impl NetThreat {
    /// Whether this carries no network-layer effect.
    pub fn is_trivial(&self) -> bool {
        self.partitioned.is_empty() && self.corrupt_rate == 0.0
    }

    /// Whether `server` is partitioned.
    pub fn is_partitioned(&self, server: usize) -> bool {
        self.partitioned.contains(&server)
    }
}

impl ThreatSchedule {
    /// The empty schedule: no epochs, no effects.
    pub fn none() -> Self {
        ThreatSchedule::default()
    }

    /// Whether the schedule can never inject anything. A trivial schedule
    /// leaves the engine bit-identical to a run without one.
    pub fn is_trivial(&self) -> bool {
        self.epochs.iter().all(ThreatEpoch::is_trivial)
    }

    /// Resolves the threat state for `round`: which servers are
    /// compromised (and with what), which are partitioned, and the frame
    /// corruption rate.
    pub fn view(&self, round: usize) -> ThreatView {
        let mut view = ThreatView::default();
        for epoch in self.epochs.iter().filter(|e| e.active(round)) {
            for &id in &epoch.compromise {
                view.compromised.insert(id, epoch.attack_kind());
            }
            view.partitioned.extend(epoch.partition.iter().copied());
            view.corrupt_rate = view.corrupt_rate.max(epoch.corrupt_rate);
        }
        view
    }

    /// Index of the last declared epoch active in `round`, if any — the
    /// "current epoch" reported in events and degraded-quorum errors.
    pub fn epoch_index(&self, round: usize) -> Option<usize> {
        self.epochs.iter().rposition(|e| e.active(round) && !e.is_trivial())
    }

    /// Validates the schedule against a federation of `num_servers` with
    /// the given static Byzantine set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for out-of-range server ids, a
    /// compromise of an already-Byzantine server (the static set is
    /// permanent), empty round ranges, bad corruption rates, or attacks
    /// whose parameters fail to build.
    pub fn validate(&self, num_servers: usize, byzantine: &[usize]) -> Result<()> {
        for (i, epoch) in self.epochs.iter().enumerate() {
            if let Some(end) = epoch.end {
                if end <= epoch.start {
                    return Err(SimError::BadConfig(format!(
                        "threat epoch {i}: empty round range {}..{end}",
                        epoch.start
                    )));
                }
            }
            for &id in epoch.compromise.iter().chain(&epoch.partition) {
                if id >= num_servers {
                    return Err(SimError::BadConfig(format!(
                        "threat epoch {i}: server {id} out of range (federation has {num_servers})"
                    )));
                }
            }
            for &id in &epoch.compromise {
                if byzantine.contains(&id) {
                    return Err(SimError::BadConfig(format!(
                        "threat epoch {i}: server {id} is already statically Byzantine"
                    )));
                }
            }
            if !(epoch.corrupt_rate.is_finite() && (0.0..1.0).contains(&epoch.corrupt_rate)) {
                return Err(SimError::BadConfig(format!(
                    "threat epoch {i}: corrupt rate must be in [0, 1), got {}",
                    epoch.corrupt_rate
                )));
            }
            if !epoch.compromise.is_empty() {
                epoch.attack_kind().build().map_err(|e| {
                    SimError::BadConfig(format!("threat epoch {i}: bad attack: {e}"))
                })?;
            }
        }
        Ok(())
    }

    /// Parses the compact one-line schedule grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] describing the offending token.
    pub fn parse(spec: &str) -> Result<Self> {
        let mut epochs = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (range, directives) = part.split_once(':').ok_or_else(|| {
                SimError::BadConfig(format!("threat epoch '{part}': expected RANGE:DIRECTIVES"))
            })?;
            let mut epoch = ThreatEpoch::default();
            let range = range.trim();
            if let Some((start, end)) = range.split_once("..") {
                epoch.start = parse_usize("epoch start", start)?;
                let end = end.trim();
                epoch.end =
                    if end.is_empty() { None } else { Some(parse_usize("epoch end", end)?) };
            } else {
                epoch.start = parse_usize("epoch start", range)?;
            }
            for directive in directives.split(',') {
                let directive = directive.trim();
                if directive.is_empty() {
                    continue;
                }
                let (key, value) = directive.split_once('=').ok_or_else(|| {
                    SimError::BadConfig(format!(
                        "threat directive '{directive}': expected key=value"
                    ))
                })?;
                match key.trim() {
                    "compromise" => epoch.compromise = parse_ids(value)?,
                    "partition" => epoch.partition = parse_ids(value)?,
                    "attack" => epoch.attack = Some(parse_attack_kind(value.trim())?),
                    "corrupt" => {
                        epoch.corrupt_rate = value.trim().parse().map_err(|_| {
                            SimError::BadConfig(format!("bad corrupt rate '{}'", value.trim()))
                        })?;
                    }
                    other => {
                        return Err(SimError::BadConfig(format!(
                            "unknown threat directive '{other}' \
                             (expected compromise/attack/partition/corrupt)"
                        )));
                    }
                }
            }
            epochs.push(epoch);
        }
        Ok(ThreatSchedule { epochs })
    }
}

fn parse_usize(what: &str, s: &str) -> Result<usize> {
    s.trim().parse().map_err(|_| SimError::BadConfig(format!("bad {what} '{}'", s.trim())))
}

fn parse_ids(s: &str) -> Result<Vec<usize>> {
    s.split('|').map(|id| parse_usize("server id", id)).collect()
}

/// Parses the compact `name[:param[:param]]` attack form used by the
/// schedule grammar and experiment specs, e.g. `noise:1.0`, `random:-10:10`,
/// `safeguard:0.6`, `backward:2`, `ipm:0.5`.
///
/// # Errors
///
/// Returns [`SimError::BadConfig`] for unknown names or malformed
/// parameters.
pub fn parse_attack_kind(spec: &str) -> Result<AttackKind> {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or("").trim();
    let params: Vec<&str> = parts.map(str::trim).collect();
    let bad = |what: &str| SimError::BadConfig(format!("attack '{spec}': {what}"));
    let float =
        |s: &str| -> Result<f32> { s.parse().map_err(|_| bad(&format!("bad number '{s}'"))) };
    let one = || -> Result<&str> {
        match params.as_slice() {
            [p] => Ok(p),
            _ => Err(bad("expected exactly one parameter")),
        }
    };
    Ok(match name {
        "benign" => {
            if !params.is_empty() {
                return Err(bad("takes no parameters"));
            }
            AttackKind::Benign
        }
        "zero" => {
            if !params.is_empty() {
                return Err(bad("takes no parameters"));
            }
            AttackKind::Zero
        }
        "noise" => AttackKind::Noise { std: float(one()?)? },
        "random" => match params.as_slice() {
            [lo, hi] => AttackKind::Random { lo: float(lo)?, hi: float(hi)? },
            _ => return Err(bad("expected random:LO:HI")),
        },
        "safeguard" => AttackKind::Safeguard { gamma: float(one()?)? },
        "backward" => AttackKind::Backward { delay: one()?.parse().map_err(|_| bad("bad delay"))? },
        "sign_flip" => AttackKind::SignFlip { scale: float(one()?)? },
        "alie" => AttackKind::Alie { z: float(one()?)? },
        "ipm" => AttackKind::Ipm { epsilon: float(one()?)? },
        other => return Err(bad(&format!("unknown attack kind '{other}'"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_trivial_everywhere() {
        let s = ThreatSchedule::none();
        assert!(s.is_trivial());
        for round in [0, 7, 100] {
            assert!(s.view(round).is_trivial());
            assert_eq!(s.epoch_index(round), None);
        }
    }

    #[test]
    fn epoch_ranges_are_half_open() {
        let e = ThreatEpoch { start: 5, end: Some(8), ..ThreatEpoch::default() };
        assert!(!e.active(4));
        assert!(e.active(5));
        assert!(e.active(7));
        assert!(!e.active(8));
        let open = ThreatEpoch { start: 3, end: None, ..ThreatEpoch::default() };
        assert!(open.active(1_000_000));
        assert!(!open.active(2));
    }

    #[test]
    fn view_resolves_overlaps_later_epoch_wins() {
        let s = ThreatSchedule {
            epochs: vec![
                ThreatEpoch {
                    start: 0,
                    end: None,
                    compromise: vec![1],
                    attack: Some(AttackKind::Zero),
                    partition: vec![2],
                    corrupt_rate: 0.1,
                },
                ThreatEpoch {
                    start: 10,
                    end: Some(20),
                    compromise: vec![1, 3],
                    attack: Some(AttackKind::SignFlip { scale: 1.0 }),
                    partition: vec![4],
                    corrupt_rate: 0.05,
                },
            ],
        };
        let early = s.view(5);
        assert_eq!(early.compromised.get(&1), Some(&AttackKind::Zero));
        assert_eq!(early.partitioned.iter().copied().collect::<Vec<_>>(), vec![2]);
        assert_eq!(early.corrupt_rate, 0.1);
        assert_eq!(s.epoch_index(5), Some(0));
        let mid = s.view(15);
        // Later epoch rebinds server 1's attack and adds server 3.
        assert_eq!(mid.compromised.get(&1), Some(&AttackKind::SignFlip { scale: 1.0 }));
        assert_eq!(mid.compromised.get(&3), Some(&AttackKind::SignFlip { scale: 1.0 }));
        // Partition is the union, corruption the max over active epochs.
        assert_eq!(mid.partitioned.iter().copied().collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(mid.corrupt_rate, 0.1);
        assert_eq!(s.epoch_index(15), Some(1));
        assert_eq!(s.epoch_index(25), Some(0));
    }

    #[test]
    fn parse_full_grammar() {
        let s = ThreatSchedule::parse(
            "50..80:compromise=1|3,attack=random:-10:10;60..:partition=2,corrupt=0.01;90:compromise=5",
        )
        .unwrap();
        assert_eq!(s.epochs.len(), 3);
        assert_eq!(s.epochs[0].start, 50);
        assert_eq!(s.epochs[0].end, Some(80));
        assert_eq!(s.epochs[0].compromise, vec![1, 3]);
        assert_eq!(s.epochs[0].attack, Some(AttackKind::Random { lo: -10.0, hi: 10.0 }));
        assert_eq!(s.epochs[1].start, 60);
        assert_eq!(s.epochs[1].end, None);
        assert_eq!(s.epochs[1].partition, vec![2]);
        assert_eq!(s.epochs[1].corrupt_rate, 0.01);
        // Bare round = open-ended; default attack applies.
        assert_eq!(s.epochs[2].start, 90);
        assert_eq!(s.epochs[2].end, None);
        assert_eq!(s.epochs[2].attack, None);
        assert_eq!(s.epochs[2].attack_kind(), DEFAULT_COMPROMISE_ATTACK);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "compromise=1",           // no range separator
            "5..3:compromise=1",      // parses, fails validate below
            "1..2:compromise=",       // empty id
            "1..2:frobnicate=3",      // unknown directive
            "1..2:corrupt=sometimes", // bad rate
            "x..2:compromise=1",      // bad start
            "1..y:compromise=1",      // bad end
            "1..2:attack=warp:1",     // unknown attack
            "1..2:attack=random:1",   // wrong arity
            "1..2:compromise",        // directive without '='
        ] {
            if bad == "5..3:compromise=1" {
                let s = ThreatSchedule::parse(bad).unwrap();
                assert!(s.validate(10, &[]).is_err(), "{bad} should fail validation");
            } else {
                assert!(ThreatSchedule::parse(bad).is_err(), "{bad} should fail to parse");
            }
        }
    }

    #[test]
    fn parse_attack_kinds() {
        assert_eq!(parse_attack_kind("benign").unwrap(), AttackKind::Benign);
        assert_eq!(parse_attack_kind("zero").unwrap(), AttackKind::Zero);
        assert_eq!(parse_attack_kind("noise:1.5").unwrap(), AttackKind::Noise { std: 1.5 });
        assert_eq!(
            parse_attack_kind("random:-10:10").unwrap(),
            AttackKind::Random { lo: -10.0, hi: 10.0 }
        );
        assert_eq!(
            parse_attack_kind("safeguard:0.6").unwrap(),
            AttackKind::Safeguard { gamma: 0.6 }
        );
        assert_eq!(parse_attack_kind("backward:2").unwrap(), AttackKind::Backward { delay: 2 });
        assert_eq!(
            parse_attack_kind("sign_flip:2.0").unwrap(),
            AttackKind::SignFlip { scale: 2.0 }
        );
        assert_eq!(parse_attack_kind("alie:1.0").unwrap(), AttackKind::Alie { z: 1.0 });
        assert_eq!(parse_attack_kind("ipm:0.5").unwrap(), AttackKind::Ipm { epsilon: 0.5 });
        assert!(parse_attack_kind("benign:1").is_err());
        assert!(parse_attack_kind("noise").is_err());
        assert!(parse_attack_kind("").is_err());
    }

    #[test]
    fn validation_guards_ids_ranges_and_rates() {
        let ok = ThreatSchedule::parse("5..10:compromise=1,partition=2").unwrap();
        assert!(ok.validate(4, &[0]).is_ok());
        // Out-of-range server.
        assert!(ok.validate(2, &[0]).is_err());
        // Compromise of a statically Byzantine server.
        assert!(ok.validate(4, &[1]).is_err());
        // Empty range.
        let empty = ThreatSchedule {
            epochs: vec![ThreatEpoch { start: 5, end: Some(5), ..ThreatEpoch::default() }],
        };
        assert!(empty.validate(4, &[]).is_err());
        // Bad corruption rate.
        let hot = ThreatSchedule {
            epochs: vec![ThreatEpoch { corrupt_rate: 1.0, ..ThreatEpoch::default() }],
        };
        assert!(hot.validate(4, &[]).is_err());
        // Bad attack parameters surface at validation time.
        let bad_attack = ThreatSchedule {
            epochs: vec![ThreatEpoch {
                compromise: vec![1],
                attack: Some(AttackKind::Noise { std: -1.0 }),
                ..ThreatEpoch::default()
            }],
        };
        assert!(bad_attack.validate(4, &[]).is_err());
    }

    #[test]
    fn serde_roundtrip_and_defaults() {
        let s = ThreatSchedule::parse("50..80:compromise=1,attack=ipm:0.5,corrupt=0.01").unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: ThreatSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        let empty: ThreatSchedule = serde_json::from_str("{}").unwrap();
        assert!(empty.is_trivial());
    }

    #[test]
    fn net_threat_slice() {
        let s = ThreatSchedule::parse("0..:partition=1|3,corrupt=0.25").unwrap();
        let net = s.view(0).net_threat();
        assert!(!net.is_trivial());
        assert!(net.is_partitioned(1));
        assert!(net.is_partitioned(3));
        assert!(!net.is_partitioned(2));
        assert_eq!(net.corrupt_rate, 0.25);
        assert!(NetThreat::default().is_trivial());
    }
}
