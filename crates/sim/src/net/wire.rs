//! The wire protocol: length-prefixed, versioned serialized frames.
//!
//! Every message a [`crate::net::NetTransport`] actor or the loopback-TCP
//! pair exchanges is one *frame*:
//!
//! ```text
//! [u32 len LE][u16 version LE][u8 kind][payload...]
//! ```
//!
//! `len` counts everything after the prefix. The layout is versioned like
//! the engine's [`crate::Snapshot`]: [`FRAME_VERSION`] is bumped on any
//! incompatible change, and a frame written by a different version decodes
//! to the typed [`WireError::Version`] instead of being silently
//! reinterpreted. All integers are little-endian; tensors are encoded as
//! `u32` length plus raw `f32` little-endian words, so a decode round-trip
//! is bit-exact.

use std::fmt;
use std::io::{Read, Write};

use fedms_tensor::Tensor;

use crate::transport::Dissemination;

/// Version of the frame layout this build reads and writes.
pub const FRAME_VERSION: u16 = 1;

/// Upper bound on a single frame body; larger prefixes decode to
/// [`WireError::Oversized`] instead of attempting a huge allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 28;

const KIND_HELLO: u8 = 1;
const KIND_UPLOAD: u8 = 2;
const KIND_UPLOAD_BATCH: u8 = 3;
const KIND_BROADCAST: u8 = 4;
const KIND_AGGREGATE: u8 = 5;
const KIND_BYE: u8 = 6;

const DISS_BROADCAST: u8 = 0;
const DISS_PER_CLIENT: u8 = 1;

/// A typed frame-decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before its declared payload did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        got: usize,
    },
    /// The frame was written by an incompatible layout version.
    Version {
        /// Version recorded in the frame.
        found: u16,
        /// Version this build reads ([`FRAME_VERSION`]).
        expected: u16,
    },
    /// The frame kind byte names no known message type.
    UnknownKind(u8),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// Declared frame length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The payload decoded cleanly but left unconsumed bytes.
    TrailingBytes {
        /// Number of leftover bytes.
        extra: usize,
    },
    /// An I/O failure while reading or writing a frame (TCP mode). The
    /// message is carried as text so the error stays `Clone + PartialEq`.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "frame truncated: needed {needed} bytes, got {got}")
            }
            WireError::Version { found, expected } => write!(
                f,
                "frame has layout version {found} but this build reads version {expected}"
            ),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "frame payload left {extra} trailing bytes")
            }
            WireError::Io(msg) => write!(f, "frame i/o failed: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// One upload inside a coalesced [`Frame::UploadBatch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedUpload {
    /// Sender client id.
    pub client: u32,
    /// Modelled arrival time (ms since round start) under the sender's
    /// latency draw.
    pub arrival_ms: u64,
    /// The uploaded model.
    pub model: Tensor,
}

/// One protocol message on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A client introducing itself (TCP mode handshake).
    Hello {
        /// Sender client id.
        client: u32,
    },
    /// One client→server model upload.
    Upload {
        /// Round the upload belongs to.
        round: u32,
        /// Sender client id.
        client: u32,
        /// Destination server id.
        server: u32,
        /// Modelled arrival time (ms since round start).
        arrival_ms: u64,
        /// The uploaded model.
        model: Tensor,
    },
    /// Several uploads to the same server coalesced into one frame.
    UploadBatch {
        /// Round the uploads belong to.
        round: u32,
        /// Destination server id.
        server: u32,
        /// The coalesced uploads, in send order.
        uploads: Vec<BatchedUpload>,
    },
    /// One server→clients dissemination.
    Broadcast {
        /// Round the dissemination belongs to.
        round: u32,
        /// Sender server id.
        server: u32,
        /// The disseminated model(s).
        model: Dissemination,
    },
    /// A server's aggregate, sent back to a client (TCP mode reply).
    Aggregate {
        /// Round the aggregate belongs to.
        round: u32,
        /// Number of uploads folded into the aggregate so far.
        contributors: u32,
        /// The aggregate model.
        model: Tensor,
    },
    /// Orderly end of a connection (TCP mode).
    Bye,
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let got = self.buf.len() - self.pos;
        if got < n {
            return Err(WireError::Truncated { needed: n, got });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn tensor(&mut self) -> Result<Tensor, WireError> {
        let len = self.u32()? as usize;
        if len.saturating_mul(4) > MAX_FRAME_BYTES {
            return Err(WireError::Oversized { len: len * 4, max: MAX_FRAME_BYTES });
        }
        let raw = self.take(len * 4)?;
        let mut data = Vec::with_capacity(len);
        for chunk in raw.chunks_exact(4) {
            data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        Ok(Tensor::from_slice(&data))
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    let data = t.as_slice();
    put_u32(out, data.len() as u32);
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes `frame` as one length-prefixed wire frame (prefix included).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut body = Vec::new();
    put_u16(&mut body, FRAME_VERSION);
    match frame {
        Frame::Hello { client } => {
            body.push(KIND_HELLO);
            put_u32(&mut body, *client);
        }
        Frame::Upload { round, client, server, arrival_ms, model } => {
            body.push(KIND_UPLOAD);
            put_u32(&mut body, *round);
            put_u32(&mut body, *client);
            put_u32(&mut body, *server);
            put_u64(&mut body, *arrival_ms);
            put_tensor(&mut body, model);
        }
        Frame::UploadBatch { round, server, uploads } => {
            body.push(KIND_UPLOAD_BATCH);
            put_u32(&mut body, *round);
            put_u32(&mut body, *server);
            put_u32(&mut body, uploads.len() as u32);
            for u in uploads {
                put_u32(&mut body, u.client);
                put_u64(&mut body, u.arrival_ms);
                put_tensor(&mut body, &u.model);
            }
        }
        Frame::Broadcast { round, server, model } => {
            body.push(KIND_BROADCAST);
            put_u32(&mut body, *round);
            put_u32(&mut body, *server);
            match model {
                Dissemination::Broadcast(m) => {
                    body.push(DISS_BROADCAST);
                    put_tensor(&mut body, m);
                }
                Dissemination::PerClient(ms) => {
                    body.push(DISS_PER_CLIENT);
                    put_u32(&mut body, ms.len() as u32);
                    for m in ms {
                        put_tensor(&mut body, m);
                    }
                }
            }
        }
        Frame::Aggregate { round, contributors, model } => {
            body.push(KIND_AGGREGATE);
            put_u32(&mut body, *round);
            put_u32(&mut body, *contributors);
            put_tensor(&mut body, model);
        }
        Frame::Bye => body.push(KIND_BYE),
    }
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor { buf: body, pos: 0 };
    let version = c.u16()?;
    if version != FRAME_VERSION {
        return Err(WireError::Version { found: version, expected: FRAME_VERSION });
    }
    let kind = c.u8()?;
    let frame = match kind {
        KIND_HELLO => Frame::Hello { client: c.u32()? },
        KIND_UPLOAD => Frame::Upload {
            round: c.u32()?,
            client: c.u32()?,
            server: c.u32()?,
            arrival_ms: c.u64()?,
            model: c.tensor()?,
        },
        KIND_UPLOAD_BATCH => {
            let round = c.u32()?;
            let server = c.u32()?;
            let count = c.u32()? as usize;
            let mut uploads = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                uploads.push(BatchedUpload {
                    client: c.u32()?,
                    arrival_ms: c.u64()?,
                    model: c.tensor()?,
                });
            }
            Frame::UploadBatch { round, server, uploads }
        }
        KIND_BROADCAST => {
            let round = c.u32()?;
            let server = c.u32()?;
            let model = match c.u8()? {
                DISS_BROADCAST => Dissemination::Broadcast(c.tensor()?),
                DISS_PER_CLIENT => {
                    let count = c.u32()? as usize;
                    let mut ms = Vec::with_capacity(count.min(1 << 16));
                    for _ in 0..count {
                        ms.push(c.tensor()?);
                    }
                    Dissemination::PerClient(ms)
                }
                tag => return Err(WireError::UnknownKind(tag)),
            };
            Frame::Broadcast { round, server, model }
        }
        KIND_AGGREGATE => {
            Frame::Aggregate { round: c.u32()?, contributors: c.u32()?, model: c.tensor()? }
        }
        KIND_BYE => Frame::Bye,
        other => return Err(WireError::UnknownKind(other)),
    };
    let extra = body.len() - c.pos;
    if extra > 0 {
        return Err(WireError::TrailingBytes { extra });
    }
    Ok(frame)
}

/// Decodes one length-prefixed frame from `bytes`, returning the frame and
/// the total number of bytes consumed (prefix included).
///
/// # Errors
///
/// Returns the typed [`WireError`] describing the first decode failure.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    let len = c.u32()? as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized { len, max: MAX_FRAME_BYTES });
    }
    let body = c.take(len)?;
    Ok((decode_body(body)?, 4 + len))
}

/// Writes one frame to `w` (blocking, TCP mode).
///
/// # Errors
///
/// Returns [`WireError::Io`] when the write fails.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&encode_frame(frame))?;
    Ok(())
}

/// Reads one length-prefixed frame from `r` (blocking, TCP mode).
///
/// # Errors
///
/// Returns [`WireError::Io`] on a short or failed read, or the typed
/// decode error for a malformed frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized { len, max: MAX_FRAME_BYTES });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode_body(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let (decoded, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn frames_roundtrip_bit_exactly() {
        roundtrip(Frame::Hello { client: 7 });
        roundtrip(Frame::Upload {
            round: 3,
            client: 1,
            server: 2,
            arrival_ms: 450,
            model: Tensor::from_slice(&[1.5, -2.25, f32::MIN_POSITIVE, 0.1 + 0.2]),
        });
        roundtrip(Frame::UploadBatch {
            round: 9,
            server: 0,
            uploads: vec![
                BatchedUpload { client: 0, arrival_ms: 1, model: Tensor::from_slice(&[0.5]) },
                BatchedUpload { client: 3, arrival_ms: 2, model: Tensor::from_slice(&[-0.5]) },
            ],
        });
        roundtrip(Frame::Broadcast {
            round: 1,
            server: 4,
            model: Dissemination::Broadcast(Tensor::from_slice(&[9.0, 8.0])),
        });
        roundtrip(Frame::Broadcast {
            round: 1,
            server: 4,
            model: Dissemination::PerClient(vec![Tensor::from_slice(&[1.0]); 3]),
        });
        roundtrip(Frame::Aggregate {
            round: 2,
            contributors: 5,
            model: Tensor::from_slice(&[0.25]),
        });
        roundtrip(Frame::Bye);
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = encode_frame(&Frame::Bye);
        // The version field sits right after the 4-byte length prefix.
        bytes[4] = 99;
        assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            WireError::Version { found: 99, expected: FRAME_VERSION }
        );
    }

    #[test]
    fn truncation_unknown_kind_and_trailing_are_typed() {
        let bytes = encode_frame(&Frame::Hello { client: 1 });
        assert!(matches!(
            decode_frame(&bytes[..bytes.len() - 2]).unwrap_err(),
            WireError::Truncated { .. }
        ));
        let mut unknown = encode_frame(&Frame::Bye);
        unknown[6] = 250;
        assert_eq!(decode_frame(&unknown).unwrap_err(), WireError::UnknownKind(250));
        let mut trailing = encode_frame(&Frame::Bye);
        trailing.push(0);
        trailing[0] += 1; // declare the junk byte part of the body
        assert_eq!(decode_frame(&trailing).unwrap_err(), WireError::TrailingBytes { extra: 1 });
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode_frame(&bytes).unwrap_err(), WireError::Oversized { .. }));
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let frames = vec![
            Frame::Hello { client: 2 },
            Frame::Upload {
                round: 0,
                client: 2,
                server: 1,
                arrival_ms: 0,
                model: Tensor::from_slice(&[1.0, 2.0, 3.0]),
            },
            Frame::Bye,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(matches!(read_frame(&mut r).unwrap_err(), WireError::Io(_)));
    }
}
