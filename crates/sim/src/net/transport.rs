//! [`NetTransport`]: concurrent message-passing over in-process channels.
//!
//! Unlike [`crate::LocalTransport`] — a synchronous bookkeeping structure —
//! this transport actually *moves messages between threads*: every server
//! runs as its own actor consuming length-prefixed
//! [`Frame`](crate::net::Frame)s from a bounded channel (backpressure: a
//! sender that outruns a server blocks), and one downlink-router actor
//! owns the queued disseminations and realizes each client's downlink on
//! request. Uploads to the same server are coalesced into
//! `Frame::UploadBatch` frames (flushed at the batch bound or when the
//! inbox is taken), which is where the frames/s vs bytes/s trade-off of
//! the bench lives.
//!
//! Determinism: message *content* and *fate* never depend on thread
//! scheduling. All loss draws (the `"DROP"`/`"OMIT"` streams shared with
//! `LocalTransport`) happen in protocol order — uplink draws on the
//! sending side in send order, downlink draws inside the router in drain
//! order — and the [`NetModel`] delay draws are pure functions of
//! `(seed, round, link)`. Server inboxes sort stably by modelled arrival
//! time, so under [`NetModel::ideal`] (all delays zero) the inbox order
//! is send order and a round is message-for-message and counter-for-
//! counter identical to `LocalTransport` (property-tested in
//! `crates/sim/tests/net.rs`). Under a non-trivial model, stragglers and
//! deadline misses *emerge* from the delay arithmetic instead of being
//! injected by a [`FaultPlan`].

use std::collections::VecDeque;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;

use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

use crate::net::model::NetModel;
use crate::net::wire::{decode_frame, encode_frame, BatchedUpload, Frame, WireError};
use crate::recovery::{downlink_id, uplink_id, UploadReport};
use crate::threat::NetThreat;
use crate::transport::{
    Broadcast, Delivery, DeliveryOutcome, Dissemination, Transport, Upload, DROP_LABEL, OMIT_LABEL,
};
use crate::{CommStats, FaultPlan, Result, SimError};

/// Default uploads coalesced per frame.
const DEFAULT_COALESCE: usize = 8;
/// Default bound of each actor channel (frames in flight before the
/// sender blocks).
const DEFAULT_CHANNEL_BOUND: usize = 64;
/// RNG label for threat-injected frame corruption ("CRPT").
const CORRUPT_LABEL: u64 = 0x43_52_50_54;

/// Frame-level traffic counters of a [`NetTransport`] (cumulative since
/// construction; the criterion bench reads frames/s and bytes/s off them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames placed on any channel.
    pub frames_sent: u64,
    /// Encoded bytes placed on any channel (length prefixes included).
    pub frame_bytes: u64,
    /// Frames that carried more than one coalesced upload.
    pub coalesced_batches: u64,
    /// Frames corrupted in flight by the active threat schedule (each one
    /// surfaces as a typed [`WireError`] at the receiver).
    pub corrupted_frames: u64,
}

enum ServerMsg {
    Begin { round: usize },
    Frame(Vec<u8>),
    TakeInbox { reply: Sender<InboxReply> },
    Shutdown,
}

struct InboxReply {
    models: Vec<Tensor>,
    error: Option<WireError>,
}

enum RouterMsg {
    Begin { round: usize, omission: f64, duplicate: f64, lossy: bool, partitioned: Vec<usize> },
    Frame(Vec<u8>),
    Drain { client: usize, reply: Sender<DrainReply> },
    Shutdown,
}

struct DrainReply {
    deliveries: Vec<Delivery>,
    dropped: u64,
    duplicated: u64,
    deadline_missed: u64,
    error: Option<WireError>,
}

/// One server's uplink actor: decodes incoming frames into an inbox,
/// ordered stably by modelled arrival time (ties keep receive order, which
/// equals send order — bounded mpsc channels are FIFO).
fn server_actor(rx: Receiver<ServerMsg>) {
    let mut round = 0usize;
    let mut entries: Vec<(u64, Tensor)> = Vec::new();
    let mut error: Option<WireError> = None;
    while let Ok(msg) = rx.recv() {
        match msg {
            ServerMsg::Begin { round: r } => {
                round = r;
                entries.clear();
                error = None;
            }
            ServerMsg::Frame(bytes) => match decode_frame(&bytes) {
                Ok((Frame::Upload { round: r, arrival_ms, model, .. }, _))
                    if r as usize == round =>
                {
                    entries.push((arrival_ms, model));
                }
                Ok((Frame::UploadBatch { round: r, uploads, .. }, _)) if r as usize == round => {
                    for u in uploads {
                        entries.push((u.arrival_ms, u.model));
                    }
                }
                // Stale (previous-round) or non-uplink frames are dropped;
                // channel FIFO ordering makes them unreachable from this
                // crate, but a TCP peer could replay one.
                Ok(_) => {}
                Err(e) => {
                    error.get_or_insert(e);
                }
            },
            ServerMsg::TakeInbox { reply } => {
                let mut taken = std::mem::take(&mut entries);
                // Stable: equal arrival times keep send order, so the ideal
                // model reproduces LocalTransport's send-order inbox.
                taken.sort_by_key(|&(arrival, _)| arrival);
                let _ = reply.send(InboxReply {
                    models: taken.into_iter().map(|(_, m)| m).collect(),
                    error: error.take(),
                });
            }
            ServerMsg::Shutdown => break,
        }
    }
}

/// The downlink router actor: owns the queued disseminations and realizes
/// each client's downlink — fault draws in LocalTransport's exact order,
/// then the latency model's delay/deadline arithmetic.
fn router_actor(rx: Receiver<RouterMsg>, seed: u64, model: NetModel) {
    let mut round = 0usize;
    let mut queued: Vec<(usize, Dissemination)> = Vec::new();
    let mut omission = 0.0f64;
    let mut duplicate = 0.0f64;
    let mut partitioned: Vec<usize> = Vec::new();
    let mut downlink_rng: Option<StdRng> = None;
    let mut error: Option<WireError> = None;
    while let Ok(msg) = rx.recv() {
        match msg {
            RouterMsg::Begin { round: r, omission: o, duplicate: d, lossy, partitioned: p } => {
                round = r;
                queued.clear();
                omission = o;
                duplicate = d;
                partitioned = p;
                error = None;
                // Derived exactly like LocalTransport::begin_round, and
                // only when the plan is lossy, so the draw sequence across
                // drains matches the oracle bit for bit.
                downlink_rng = lossy.then(|| rng_for(seed, &[OMIT_LABEL, r as u64]));
            }
            RouterMsg::Frame(bytes) => match decode_frame(&bytes) {
                Ok((Frame::Broadcast { round: r, server, model }, _)) if r as usize == round => {
                    queued.push((server as usize, model));
                }
                Ok(_) => {}
                Err(e) => {
                    error.get_or_insert(e);
                }
            },
            RouterMsg::Drain { client, reply } => {
                let mut deliveries = Vec::with_capacity(queued.len());
                let mut dropped = 0u64;
                let mut duplicated = 0u64;
                let mut deadline_missed = 0u64;
                for (server, diss) in &queued {
                    // Coverage is validated at broadcast; skip, not panic.
                    let Ok(m) = diss.for_client(client) else {
                        debug_assert!(false, "queued dissemination misses client {client}");
                        continue;
                    };
                    // A partitioned server's dissemination never traverses
                    // the link: dropped before any loss draw, so the draw
                    // streams of surviving links are unaffected.
                    if partitioned.contains(server) {
                        dropped += 1;
                        continue;
                    }
                    if let Some(rng) = &mut downlink_rng {
                        if omission > 0.0 && rng.gen_bool(omission) {
                            dropped += 1;
                            continue;
                        }
                        let arrival = model.link_delay_ms(
                            seed,
                            round,
                            downlink_id(*server, client),
                            (m.as_slice().len() * 4) as u64,
                        );
                        if model.misses_deadline(arrival) {
                            dropped += 1;
                            deadline_missed += 1;
                            continue;
                        }
                        deliveries.push(Delivery {
                            server: *server,
                            model: m.clone(),
                            outcome: DeliveryOutcome::Delivered,
                        });
                        if duplicate > 0.0 && rng.gen_bool(duplicate) {
                            duplicated += 1;
                            deliveries.push(Delivery {
                                server: *server,
                                model: m.clone(),
                                outcome: DeliveryOutcome::Duplicated,
                            });
                        }
                    } else {
                        let arrival = model.link_delay_ms(
                            seed,
                            round,
                            downlink_id(*server, client),
                            (m.as_slice().len() * 4) as u64,
                        );
                        if model.misses_deadline(arrival) {
                            dropped += 1;
                            deadline_missed += 1;
                            continue;
                        }
                        deliveries.push(Delivery {
                            server: *server,
                            model: m.clone(),
                            outcome: DeliveryOutcome::Delivered,
                        });
                    }
                }
                let _ = reply.send(DrainReply {
                    deliveries,
                    dropped,
                    duplicated,
                    deadline_missed,
                    error: error.take(),
                });
            }
            RouterMsg::Shutdown => break,
        }
    }
}

struct PendingUpload {
    client: usize,
    arrival_ms: u64,
    model: Tensor,
}

/// The concurrent in-process transport: per-server uplink actors and a
/// downlink router exchanging versioned wire frames over bounded channels,
/// under a seed-deterministic [`NetModel`].
pub struct NetTransport {
    seed: u64,
    num_clients: usize,
    num_servers: usize,
    model: NetModel,
    coalesce: usize,
    fault_plan: FaultPlan,
    upload_drop_rate: f64,
    round: usize,
    model_len: usize,
    recipients: usize,
    pending_recipients: Option<usize>,
    round_open: bool,
    drop_rng: Option<StdRng>,
    /// Network-layer slice of the active threat view ([`NetThreat`]):
    /// which servers are cut off and how corrupt the wire is. Trivial
    /// unless a [`crate::ThreatSchedule`] is driving the run.
    net_threat: NetThreat,
    /// Per-frame corruption draws ("CRPT" stream); only instantiated while
    /// `net_threat.corrupt_rate > 0`, so a trivial threat costs no RNG.
    corrupt_rng: Option<StdRng>,
    uplinks: Vec<SyncSender<ServerMsg>>,
    router: SyncSender<RouterMsg>,
    handles: Vec<JoinHandle<()>>,
    /// Per-server coalescing buffers, flushed at the batch bound or on
    /// `take_inbox`.
    pending: Vec<Vec<PendingUpload>>,
    /// Straggler/lag outboxes, oldest first (same FIFO as LocalTransport).
    outboxes: Vec<VecDeque<Tensor>>,
    comm: CommStats,
    stats: NetStats,
    wire_error: Option<WireError>,
}

impl std::fmt::Debug for NetTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetTransport")
            .field("round", &self.round)
            .field("clients", &self.num_clients)
            .field("servers", &self.num_servers)
            .field("ideal", &self.model.is_ideal())
            .finish()
    }
}

impl NetTransport {
    /// Creates a transport for a `num_clients` × `num_servers` federation
    /// under `model`, spawning one uplink actor per server plus the
    /// downlink router, with default coalescing and channel bounds.
    pub fn new(seed: u64, num_clients: usize, num_servers: usize, model: NetModel) -> Self {
        Self::with_options(
            seed,
            num_clients,
            num_servers,
            model,
            DEFAULT_COALESCE,
            DEFAULT_CHANNEL_BOUND,
        )
    }

    /// [`NetTransport::new`] with explicit tuning: `coalesce` uploads per
    /// frame (≥ 1; 1 disables batching) and `channel_bound` frames in
    /// flight per actor before senders block (backpressure).
    pub fn with_options(
        seed: u64,
        num_clients: usize,
        num_servers: usize,
        model: NetModel,
        coalesce: usize,
        channel_bound: usize,
    ) -> Self {
        let bound = channel_bound.max(1);
        let mut uplinks = Vec::with_capacity(num_servers);
        let mut handles = Vec::with_capacity(num_servers + 1);
        for _ in 0..num_servers {
            let (tx, rx) = sync_channel(bound);
            uplinks.push(tx);
            handles.push(std::thread::spawn(move || server_actor(rx)));
        }
        let (router, router_rx) = sync_channel(bound);
        handles.push(std::thread::spawn(move || router_actor(router_rx, seed, model)));
        NetTransport {
            seed,
            num_clients,
            num_servers,
            model,
            coalesce: coalesce.max(1),
            fault_plan: FaultPlan::none(),
            upload_drop_rate: 0.0,
            round: 0,
            model_len: 0,
            recipients: num_clients,
            pending_recipients: None,
            round_open: false,
            drop_rng: None,
            net_threat: NetThreat::default(),
            corrupt_rng: None,
            uplinks,
            router,
            handles,
            pending: (0..num_servers).map(|_| Vec::new()).collect(),
            outboxes: vec![VecDeque::new(); num_servers],
            comm: CommStats::new(),
            stats: NetStats::default(),
            wire_error: None,
        }
    }

    /// The active network model.
    pub fn model(&self) -> &NetModel {
        &self.model
    }

    /// Cumulative frame-level traffic counters.
    pub fn net_stats(&self) -> NetStats {
        self.stats
    }

    /// Takes the first wire decode error surfaced by any actor since the
    /// last call, if one occurred. A healthy run never produces one.
    pub fn take_wire_error(&mut self) -> Option<WireError> {
        self.wire_error.take()
    }

    /// Realizes threat-scheduled frame corruption: with probability
    /// `corrupt_rate` one deterministic-random bit of the frame's version
    /// field is flipped in transit, so the receiver decodes a typed
    /// [`WireError::Version`] and the whole payload is lost to the round —
    /// the error emerges from the wire, not from injection at the inbox.
    fn maybe_corrupt(&mut self, bytes: &mut [u8]) {
        let Some(rng) = &mut self.corrupt_rng else {
            return;
        };
        if bytes.len() < 6 || !rng.gen_bool(self.net_threat.corrupt_rate) {
            return;
        }
        // The version field is bytes 4..6 of the encoded frame; flipping
        // any of its 16 bits guarantees a decode-time version mismatch.
        let bit = rng.gen_range(0..16usize);
        bytes[4 + bit / 8] ^= 1 << (bit % 8);
        self.stats.corrupted_frames += 1;
    }

    fn send_frame_to_server(&mut self, server: usize, frame: &Frame) {
        let mut bytes = encode_frame(frame);
        self.maybe_corrupt(&mut bytes);
        self.stats.frames_sent += 1;
        self.stats.frame_bytes += bytes.len() as u64;
        // A send can only fail if the actor died, which only happens at
        // shutdown; losing the frame then is fine.
        let _ = self.uplinks[server].send(ServerMsg::Frame(bytes));
    }

    fn flush_uplink(&mut self, server: usize) {
        if self.pending[server].is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending[server]);
        let round = self.round as u32;
        let frame = if pending.len() == 1 {
            let u = pending.into_iter().next().expect("len checked");
            Frame::Upload {
                round,
                client: u.client as u32,
                server: server as u32,
                arrival_ms: u.arrival_ms,
                model: u.model,
            }
        } else {
            self.stats.coalesced_batches += 1;
            Frame::UploadBatch {
                round,
                server: server as u32,
                uploads: pending
                    .into_iter()
                    .map(|u| BatchedUpload {
                        client: u.client as u32,
                        arrival_ms: u.arrival_ms,
                        model: u.model,
                    })
                    .collect(),
            }
        };
        self.send_frame_to_server(server, &frame);
    }

    /// The accounting + loss draws of one upload attempt, in the exact
    /// order of [`crate::LocalTransport::route_upload`], plus the network
    /// model's delay/deadline arithmetic. Returns the realized fate and
    /// the modelled arrival time.
    fn route_net_upload(&mut self, client: usize, server: usize) -> (DeliveryOutcome, u64) {
        self.comm.record_uploads(1, self.model_len);
        let channel_loss = match &mut self.drop_rng {
            Some(rng) => rng.gen_bool(self.upload_drop_rate),
            None => false,
        };
        if channel_loss
            || self.fault_plan.is_crashed(server, self.round)
            || self.net_threat.is_partitioned(server)
        {
            self.comm.record_dropped_upload();
            return (DeliveryOutcome::Dropped, 0);
        }
        let arrival = self.model.link_delay_ms(
            self.seed,
            self.round,
            uplink_id(client, server),
            (self.model_len * 4) as u64,
        );
        if self.model.misses_deadline(arrival) {
            // The payload is in flight but too late for this round's
            // aggregation: lost to the round, and a recorded miss.
            self.comm.record_dropped_upload();
            self.comm.record_deadline_miss();
            return (DeliveryOutcome::Delayed, arrival);
        }
        (DeliveryOutcome::Delivered, arrival)
    }

    fn send_net_upload(&mut self, upload: Upload) -> (DeliveryOutcome, u64) {
        let (outcome, arrival) = self.route_net_upload(upload.client, upload.server);
        if outcome == DeliveryOutcome::Delivered {
            self.pending[upload.server].push(PendingUpload {
                client: upload.client,
                arrival_ms: arrival,
                model: upload.model,
            });
            if self.pending[upload.server].len() >= self.coalesce {
                self.flush_uplink(upload.server);
            }
        }
        (outcome, arrival)
    }
}

impl Transport for NetTransport {
    fn name(&self) -> &'static str {
        "net"
    }

    fn begin_round(&mut self, round: usize, model_len: usize) {
        self.round = round;
        self.model_len = model_len;
        self.comm = CommStats::new();
        self.round_open = true;
        self.recipients = match self.pending_recipients.take() {
            Some(n) => n.min(self.num_clients),
            None => self.num_clients,
        };
        for s in 0..self.num_servers {
            self.pending[s].clear();
            let _ = self.uplinks[s].send(ServerMsg::Begin { round });
        }
        let _ = self.router.send(RouterMsg::Begin {
            round,
            omission: self.fault_plan.downlink_omission,
            duplicate: self.fault_plan.duplicate_rate,
            lossy: self.fault_plan.lossy_downlink(),
            partitioned: self.net_threat.partitioned.clone(),
        });
        self.drop_rng =
            (self.upload_drop_rate > 0.0).then(|| rng_for(self.seed, &[DROP_LABEL, round as u64]));
        self.corrupt_rng = (self.net_threat.corrupt_rate > 0.0)
            .then(|| rng_for(self.seed, &[CORRUPT_LABEL, round as u64]));
    }

    fn send_upload(&mut self, upload: Upload) -> DeliveryOutcome {
        self.send_net_upload(upload).0
    }

    fn send_upload_tracked(&mut self, upload: Upload) -> UploadReport {
        let server = upload.server;
        let (outcome, arrival) = self.send_net_upload(upload);
        let mut report = UploadReport::direct(outcome, server);
        report.elapsed_ms = arrival;
        report.deadline_missed = outcome == DeliveryOutcome::Delayed;
        report
    }

    // `supports_streaming` stays `false`: a networked transport must move
    // the payload itself, so the engine uses buffered per-server inboxes
    // (and the PR-3 recovery decorator composes unchanged on top).

    fn set_round_recipients(&mut self, recipients: usize) {
        if self.round_open {
            self.recipients = recipients.min(self.num_clients);
        } else {
            self.pending_recipients = Some(recipients);
        }
    }

    fn server_online(&self, server: usize) -> bool {
        !self.fault_plan.is_crashed(server, self.round)
    }

    fn release_aggregate(
        &mut self,
        server: usize,
        aggregate: Tensor,
    ) -> (DeliveryOutcome, Option<Tensor>) {
        // Straggling is the *sum* of injected delay (FaultPlan) and
        // emergent processing lag (NetModel); under the ideal model the
        // arithmetic collapses to LocalTransport's exactly.
        let injected = self.fault_plan.straggler_delay(server).unwrap_or(0);
        let emergent = self.model.server_lag_rounds(self.seed, self.round, server);
        let delay = injected + emergent;
        if delay == 0 {
            return (DeliveryOutcome::Delivered, Some(aggregate));
        }
        let outbox = &mut self.outboxes[server];
        outbox.push_back(aggregate);
        if outbox.len() > delay {
            (DeliveryOutcome::Delayed, outbox.pop_front())
        } else {
            (DeliveryOutcome::Delayed, None)
        }
    }

    fn broadcast(&mut self, message: Broadcast) -> Result<()> {
        message.model.check_coverage(self.num_clients)?;
        self.comm.record_downloads(self.recipients as u64, self.model_len);
        let frame = Frame::Broadcast {
            round: self.round as u32,
            server: message.server as u32,
            model: message.model,
        };
        let mut bytes = encode_frame(&frame);
        self.maybe_corrupt(&mut bytes);
        self.stats.frames_sent += 1;
        self.stats.frame_bytes += bytes.len() as u64;
        let _ = self.router.send(RouterMsg::Frame(bytes));
        Ok(())
    }

    fn take_inbox(&mut self, server: usize) -> Vec<Tensor> {
        self.flush_uplink(server);
        let (tx, rx) = channel();
        if self.uplinks[server].send(ServerMsg::TakeInbox { reply: tx }).is_err() {
            return Vec::new();
        }
        match rx.recv() {
            Ok(reply) => {
                if let Some(e) = reply.error {
                    self.wire_error.get_or_insert(e);
                }
                reply.models
            }
            Err(_) => Vec::new(),
        }
    }

    fn drain_deliveries(&mut self, client: usize) -> Vec<Delivery> {
        let (tx, rx) = channel();
        if self.router.send(RouterMsg::Drain { client, reply: tx }).is_err() {
            return Vec::new();
        }
        let Ok(reply) = rx.recv() else {
            return Vec::new();
        };
        if let Some(e) = reply.error {
            self.wire_error.get_or_insert(e);
        }
        for _ in 0..reply.dropped {
            self.comm.record_dropped_download();
        }
        for _ in 0..reply.duplicated {
            self.comm.record_duplicated_download(self.model_len);
        }
        for _ in 0..reply.deadline_missed {
            self.comm.record_deadline_miss();
        }
        reply.deliveries
    }

    fn take_comm(&mut self) -> CommStats {
        self.round_open = false;
        std::mem::take(&mut self.comm)
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<()> {
        plan.validate(self.num_servers)?;
        self.fault_plan = plan;
        Ok(())
    }

    fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    fn set_upload_drop_rate(&mut self, rate: f64) -> Result<()> {
        if !(rate.is_finite() && (0.0..1.0).contains(&rate)) {
            return Err(SimError::BadConfig(format!("drop rate must be in [0, 1), got {rate}")));
        }
        self.upload_drop_rate = rate;
        Ok(())
    }

    fn set_net_threat(&mut self, threat: NetThreat) {
        self.net_threat = threat;
    }

    fn state_snapshot(&self) -> Vec<Vec<Tensor>> {
        self.outboxes.iter().map(|q| q.iter().cloned().collect()).collect()
    }

    fn restore_state(&mut self, outboxes: Vec<Vec<Tensor>>) {
        self.outboxes = outboxes.into_iter().map(VecDeque::from).collect();
    }
}

impl Drop for NetTransport {
    fn drop(&mut self) {
        for tx in &self.uplinks {
            let _ = tx.send(ServerMsg::Shutdown);
        }
        let _ = self.router.send(RouterMsg::Shutdown);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerFault;

    fn up(client: usize, server: usize, v: f32) -> Upload {
        Upload { client, server, model: Tensor::from_slice(&[v, v]) }
    }

    #[test]
    fn ideal_round_delivers_in_send_order() {
        let mut t = NetTransport::new(1, 4, 3, NetModel::ideal());
        t.begin_round(0, 2);
        assert_eq!(t.send_upload(up(0, 1, 1.0)), DeliveryOutcome::Delivered);
        assert_eq!(t.send_upload(up(2, 1, 2.0)), DeliveryOutcome::Delivered);
        let inbox = t.take_inbox(1);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0].as_slice(), &[1.0, 1.0]);
        assert_eq!(inbox[1].as_slice(), &[2.0, 2.0]);
        assert!(t.take_inbox(1).is_empty());
        let comm = t.take_comm();
        assert_eq!(comm.upload_messages, 2);
        assert_eq!(comm.upload_bytes, 2 * 4 * 2);
        assert!(t.take_wire_error().is_none());
    }

    #[test]
    fn coalescing_batches_frames_without_changing_delivery() {
        let mut batched = NetTransport::with_options(1, 8, 2, NetModel::ideal(), 4, 16);
        let mut single = NetTransport::with_options(1, 8, 2, NetModel::ideal(), 1, 16);
        for t in [&mut batched, &mut single] {
            t.begin_round(0, 2);
            for k in 0..8 {
                t.send_upload(up(k, 0, k as f32));
            }
        }
        let b = batched.take_inbox(0);
        let s = single.take_inbox(0);
        assert_eq!(b, s, "coalescing must not change inbox content or order");
        assert!(batched.net_stats().coalesced_batches > 0);
        assert!(batched.net_stats().frames_sent < single.net_stats().frames_sent);
        assert!(batched.net_stats().frame_bytes < single.net_stats().frame_bytes);
    }

    #[test]
    fn crashed_recipient_drops_and_accounts_like_local() {
        let mut t = NetTransport::new(1, 4, 3, NetModel::ideal());
        t.install_fault_plan(FaultPlan {
            server_faults: vec![ServerFault::None, ServerFault::Crash { round: 1 }],
            ..FaultPlan::default()
        })
        .unwrap();
        t.begin_round(1, 2);
        assert_eq!(t.send_upload(up(0, 1, 1.0)), DeliveryOutcome::Dropped);
        assert!(!t.server_online(1));
        assert!(t.take_inbox(1).is_empty());
        let comm = t.take_comm();
        assert_eq!(comm.upload_messages, 1);
        assert_eq!(comm.dropped_uploads, 1);
    }

    #[test]
    fn tight_deadline_produces_delayed_uploads_without_a_fault_plan() {
        // 2-parameter model = 8 bytes; at 1 byte/ms that is 8 ms transfer
        // against a 5 ms deadline: every upload misses, produced purely by
        // the network model.
        let model = NetModel { bytes_per_ms: 1, deadline_ms: 5, ..NetModel::ideal() };
        let mut t = NetTransport::new(1, 4, 2, model);
        t.begin_round(0, 2);
        let report = t.send_upload_tracked(up(0, 0, 1.0));
        assert_eq!(report.outcome, DeliveryOutcome::Delayed);
        assert!(report.deadline_missed);
        assert!(report.elapsed_ms > 5);
        assert!(t.take_inbox(0).is_empty());
        let comm = t.take_comm();
        assert_eq!(comm.deadline_misses, 1);
        assert_eq!(comm.dropped_uploads, 1);
    }

    #[test]
    fn server_lag_produces_delayed_aggregates_without_a_fault_plan() {
        let model = NetModel { server_lag_ms: 500, round_ms: 100, ..NetModel::ideal() };
        let mut t = NetTransport::new(3, 4, 1, model);
        let mut delayed = 0;
        for round in 0..12 {
            t.begin_round(round, 1);
            let (o, _) = t.release_aggregate(0, Tensor::from_slice(&[round as f32]));
            if o == DeliveryOutcome::Delayed {
                delayed += 1;
            }
        }
        assert!(delayed > 0, "a 5-round mean lag must delay some aggregate in 12 rounds");
    }

    #[test]
    fn broadcast_and_drain_roundtrip_with_coverage_check() {
        let mut t = NetTransport::new(1, 4, 2, NetModel::ideal());
        t.begin_round(0, 2);
        let short = Broadcast {
            server: 0,
            model: Dissemination::PerClient(vec![Tensor::from_slice(&[1.0, 1.0]); 2]),
        };
        assert!(t.broadcast(short).is_err());
        t.broadcast(Broadcast {
            server: 1,
            model: Dissemination::Broadcast(Tensor::from_slice(&[2.0, 2.0])),
        })
        .unwrap();
        for k in 0..4 {
            let d = t.drain_deliveries(k);
            assert_eq!(d.len(), 1);
            assert_eq!(d[0].server, 1);
            assert_eq!(d[0].model.as_slice(), &[2.0, 2.0]);
        }
        let comm = t.take_comm();
        assert_eq!(comm.download_messages, 4);
    }

    #[test]
    fn partitioned_server_is_unreachable_both_ways() {
        let mut t = NetTransport::new(1, 4, 3, NetModel::ideal());
        t.set_net_threat(NetThreat { partitioned: vec![1], corrupt_rate: 0.0 });
        t.begin_round(0, 2);
        // Uplink: dropped at the sender, the server stays online (it is
        // up, just unreachable — unlike a crash).
        assert_eq!(t.send_upload(up(0, 1, 1.0)), DeliveryOutcome::Dropped);
        assert!(t.server_online(1));
        assert_eq!(t.send_upload(up(0, 2, 1.0)), DeliveryOutcome::Delivered);
        assert!(t.take_inbox(1).is_empty());
        assert_eq!(t.take_inbox(2).len(), 1);
        // Downlink: its dissemination never leaves the router.
        for s in [1usize, 2] {
            t.broadcast(Broadcast {
                server: s,
                model: Dissemination::Broadcast(Tensor::from_slice(&[s as f32, 0.0])),
            })
            .unwrap();
        }
        let d = t.drain_deliveries(0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].server, 2);
        let comm = t.take_comm();
        assert_eq!(comm.dropped_uploads, 1);
        assert!(comm.dropped_downloads >= 1);
        // Healing the partition restores both directions.
        t.set_net_threat(NetThreat::default());
        t.begin_round(1, 2);
        assert_eq!(t.send_upload(up(0, 1, 9.0)), DeliveryOutcome::Delivered);
        assert_eq!(t.take_inbox(1).len(), 1);
        assert!(t.take_wire_error().is_none());
    }

    #[test]
    fn corrupted_frames_surface_typed_version_errors() {
        let mut t = NetTransport::new(7, 4, 2, NetModel::ideal());
        t.set_net_threat(NetThreat { partitioned: vec![], corrupt_rate: 1.0 });
        t.begin_round(0, 2);
        // Every uplink frame is corrupted: the payload is lost to the
        // round and the actor reports a typed version error.
        assert_eq!(t.send_upload(up(0, 0, 1.0)), DeliveryOutcome::Delivered);
        assert!(t.take_inbox(0).is_empty());
        match t.take_wire_error() {
            Some(WireError::Version { expected, .. }) => {
                assert_eq!(expected, crate::net::FRAME_VERSION);
            }
            other => panic!("expected a version error, got {other:?}"),
        }
        // Downlink frames corrupt the same way.
        t.broadcast(Broadcast {
            server: 1,
            model: Dissemination::Broadcast(Tensor::from_slice(&[2.0, 2.0])),
        })
        .unwrap();
        assert!(t.drain_deliveries(0).is_empty());
        assert!(matches!(t.take_wire_error(), Some(WireError::Version { .. })));
        assert_eq!(t.net_stats().corrupted_frames, 2);
    }

    #[test]
    fn corruption_draws_are_seed_deterministic() {
        let run = |seed: u64| {
            let mut t = NetTransport::new(seed, 4, 2, NetModel::ideal());
            t.set_net_threat(NetThreat { partitioned: vec![], corrupt_rate: 0.5 });
            let mut survivors = Vec::new();
            for round in 0..6 {
                t.begin_round(round, 2);
                for k in 0..4 {
                    t.send_upload(up(k, 0, k as f32));
                }
                survivors.push(t.take_inbox(0).len());
                t.take_wire_error();
                t.take_comm();
            }
            (survivors, t.net_stats().corrupted_frames)
        };
        assert_eq!(run(3), run(3));
        let (survivors, corrupted) = run(3);
        assert!(corrupted > 0, "rate 0.5 over 24 uploads must corrupt something");
        assert!(survivors.iter().any(|&n| n > 0), "and some frames must survive");
    }

    #[test]
    fn outboxes_roundtrip_through_snapshots() {
        let mut t = NetTransport::new(1, 4, 2, NetModel::ideal());
        t.install_fault_plan(FaultPlan {
            server_faults: vec![ServerFault::Straggler { delay: 2 }, ServerFault::None],
            ..FaultPlan::default()
        })
        .unwrap();
        t.begin_round(0, 1);
        t.release_aggregate(0, Tensor::from_slice(&[7.0]));
        let state = t.state_snapshot();
        assert_eq!(state[0].len(), 1);
        let mut r = NetTransport::new(1, 4, 2, NetModel::ideal());
        r.restore_state(state.clone());
        assert_eq!(r.state_snapshot(), state);
    }
}
