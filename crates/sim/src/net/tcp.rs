//! Loopback-TCP mode: one aggregation round over real sockets.
//!
//! This is the `fedms serve` / `fedms client` pair: a [`TcpRound`] binds a
//! listener and plays one parameter server for one round, while
//! [`run_client`] connects, uploads a model and reads back the server's
//! running aggregate. The exchange per connection is strictly
//! request/response — `Hello`, `Upload`, then an `Aggregate` reply and
//! `Bye` — so neither side can deadlock, and every message is a
//! length-prefixed versioned [`Frame`] exactly as in the in-process
//! channel mode. Frames from an incompatible build are rejected with the
//! typed [`crate::net::WireError::Version`].

use std::net::{TcpListener, TcpStream};

use fedms_aggregation::MeanAccumulator;
use fedms_tensor::Tensor;

use crate::net::wire::{read_frame, write_frame, Frame, WireError};
use crate::{Result, SimError};

/// What one [`TcpRound::serve`] call processed.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpRoundReport {
    /// Uploads folded into the aggregate.
    pub uploads: usize,
    /// Frames read off accepted connections.
    pub frames_read: u64,
    /// Frames written back (aggregate replies).
    pub frames_written: u64,
    /// The final mean aggregate, if at least one upload arrived.
    pub aggregate: Option<Tensor>,
}

/// One parameter server bound to a TCP listener for one round.
pub struct TcpRound {
    listener: TcpListener,
}

impl TcpRound {
    /// Binds `addr` (e.g. `127.0.0.1:7070`; port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Wire`] when the bind fails.
    pub fn bind(addr: &str) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(WireError::from)?;
        Ok(TcpRound { listener })
    }

    /// The bound address, e.g. to print after a port-0 bind.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Wire`] when the socket has no local address.
    pub fn local_addr(&self) -> Result<String> {
        Ok(self.listener.local_addr().map_err(WireError::from)?.to_string())
    }

    /// Serves one round: accepts connections until `expect` uploads have
    /// been folded into the running mean, replying to each upload with the
    /// aggregate-so-far. Connections are handled sequentially — each one
    /// is a short request/response exchange — so the round is
    /// deterministic in arrival order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Wire`] on socket failures or malformed frames,
    /// and [`SimError::Agg`] if the uploads disagree on dimension.
    pub fn serve(&self, expect: usize) -> Result<TcpRoundReport> {
        let mut acc = MeanAccumulator::new();
        let mut report =
            TcpRoundReport { uploads: 0, frames_read: 0, frames_written: 0, aggregate: None };
        while report.uploads < expect {
            let (stream, _) = self.listener.accept().map_err(WireError::from)?;
            self.serve_connection(stream, &mut acc, &mut report)?;
        }
        if acc.count() > 0 {
            report.aggregate = Some(acc.finish().map_err(SimError::from)?);
        }
        Ok(report)
    }

    fn serve_connection(
        &self,
        mut stream: TcpStream,
        acc: &mut MeanAccumulator,
        report: &mut TcpRoundReport,
    ) -> Result<()> {
        loop {
            let frame = match read_frame(&mut stream) {
                Ok(f) => f,
                // A peer hanging up between frames ends the connection.
                Err(WireError::Io(_)) => return Ok(()),
                Err(e) => return Err(e.into()),
            };
            report.frames_read += 1;
            match frame {
                Frame::Hello { .. } => {}
                Frame::Upload { round, model, .. } => {
                    acc.push(&model).map_err(SimError::from)?;
                    report.uploads += 1;
                    // Reply with the running mean so the client learns the
                    // aggregate-so-far; a full protocol would broadcast the
                    // final mean, but one reply per upload keeps the
                    // exchange deadlock-free.
                    let reply = Frame::Aggregate {
                        round,
                        contributors: acc.count() as u32,
                        model: acc.clone().finish().map_err(SimError::from)?,
                    };
                    write_frame(&mut stream, &reply)?;
                    report.frames_written += 1;
                }
                Frame::Bye => return Ok(()),
                // Downlink/batch frames are not part of the TCP exchange.
                _ => return Err(SimError::Wire(WireError::UnknownKind(0))),
            }
        }
    }
}

/// Connection attempts before `run_client` gives up on a refused or
/// reset connect.
pub const CONNECT_ATTEMPTS: u32 = 5;

/// Base backoff between connect attempts; attempt `n` sleeps
/// `CONNECT_BACKOFF_MS << n` milliseconds (capped at the final attempt's
/// delay, ~800 ms total across all retries).
pub const CONNECT_BACKOFF_MS: u64 = 50;

/// Connects to `addr` with bounded retry: a refused or reset connect —
/// the normal race when the client launches before `fedms serve` has
/// bound its listener — is retried [`CONNECT_ATTEMPTS`] times with
/// exponential backoff instead of failing the whole upload on the first
/// `ECONNREFUSED`. Other errors (unresolvable address, unreachable
/// network) fail immediately: waiting cannot fix them.
fn connect_with_retry(addr: &str) -> std::result::Result<TcpStream, WireError> {
    let mut last = None;
    for attempt in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::ConnectionReset
                ) =>
            {
                last = Some(e);
                if attempt + 1 < CONNECT_ATTEMPTS {
                    std::thread::sleep(std::time::Duration::from_millis(
                        CONNECT_BACKOFF_MS << attempt,
                    ));
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(last.expect("loop ran at least once").into())
}

/// Connects to a [`TcpRound`] server at `addr`, uploads `model` as
/// `client`, and returns `(contributors, aggregate)` from the server's
/// reply. A refused or reset connect is retried with bounded exponential
/// backoff (see [`CONNECT_ATTEMPTS`]), so launching the client a moment
/// before the server is not fatal.
///
/// # Errors
///
/// Returns [`SimError::Wire`] on connection failures that outlive the
/// retry budget, malformed frames or an unexpected reply type.
pub fn run_client(addr: &str, client: usize, model: &Tensor) -> Result<(u32, Tensor)> {
    let mut stream = connect_with_retry(addr)?;
    write_frame(&mut stream, &Frame::Hello { client: client as u32 })?;
    write_frame(
        &mut stream,
        &Frame::Upload {
            round: 0,
            client: client as u32,
            server: 0,
            arrival_ms: 0,
            model: model.clone(),
        },
    )?;
    let reply = read_frame(&mut stream)?;
    write_frame(&mut stream, &Frame::Bye)?;
    match reply {
        Frame::Aggregate { contributors, model, .. } => Ok((contributors, model)),
        _ => Err(SimError::Wire(WireError::UnknownKind(0))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_aggregates_all_uploads() {
        let server = TcpRound::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve(3).unwrap());
        let mut last = None;
        for k in 0..3 {
            let model = Tensor::from_slice(&[k as f32, 1.0]);
            let (contributors, agg) = run_client(&addr, k, &model).unwrap();
            assert_eq!(contributors, k as u32 + 1);
            last = Some(agg);
        }
        let report = handle.join().unwrap();
        assert_eq!(report.uploads, 3);
        assert_eq!(report.frames_written, 3);
        // mean of [0,1],[1,1],[2,1] = [1,1]
        assert_eq!(report.aggregate.as_ref().unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(last.unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn client_launched_before_the_server_retries_until_it_binds() {
        // Learn a free port, then *drop* the listener so the first connect
        // attempts are refused — the race `fedms client` hits when started
        // a moment before `fedms serve`.
        let probe = TcpRound::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let client_addr = addr.clone();
        let client = std::thread::spawn(move || {
            run_client(&client_addr, 0, &Tensor::from_slice(&[2.0, 4.0])).unwrap()
        });
        // Rebind while the client is inside its backoff window. The port
        // could in principle be snatched in between; the retry budget
        // (~800 ms) dwarfs the bind latency, so this stays deterministic
        // in practice.
        std::thread::sleep(std::time::Duration::from_millis(120));
        let server = TcpRound::bind(&addr).unwrap();
        let report = server.serve(1).unwrap();
        let (contributors, agg) = client.join().unwrap();
        assert_eq!(contributors, 1);
        assert_eq!(agg.as_slice(), &[2.0, 4.0]);
        assert_eq!(report.uploads, 1);
    }

    #[test]
    fn unresolvable_address_fails_without_burning_the_retry_budget() {
        let start = std::time::Instant::now();
        let err = run_client("definitely-not-a-host.invalid:1", 0, &Tensor::from_slice(&[1.0]))
            .unwrap_err();
        assert!(matches!(err, SimError::Wire(WireError::Io(_))), "{err:?}");
        // A non-retryable failure must not sleep through the backoff
        // schedule (~800 ms); allow generous slack for slow resolvers.
        assert!(start.elapsed() < std::time::Duration::from_millis(700), "{:?}", start.elapsed());
    }
}
