//! Loopback-TCP mode: one aggregation round over real sockets.
//!
//! This is the `fedms serve` / `fedms client` pair: a [`TcpRound`] binds a
//! listener and plays one parameter server for one round, while
//! [`run_client`] connects, uploads a model and reads back the server's
//! running aggregate. The exchange per connection is strictly
//! request/response — `Hello`, `Upload`, then an `Aggregate` reply and
//! `Bye` — so neither side can deadlock, and every message is a
//! length-prefixed versioned [`Frame`] exactly as in the in-process
//! channel mode. Frames from an incompatible build are rejected with the
//! typed [`crate::net::WireError::Version`].

use std::net::{TcpListener, TcpStream};

use fedms_aggregation::MeanAccumulator;
use fedms_tensor::Tensor;

use crate::net::wire::{read_frame, write_frame, Frame, WireError};
use crate::{Result, SimError};

/// What one [`TcpRound::serve`] call processed.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpRoundReport {
    /// Uploads folded into the aggregate.
    pub uploads: usize,
    /// Frames read off accepted connections.
    pub frames_read: u64,
    /// Frames written back (aggregate replies).
    pub frames_written: u64,
    /// The final mean aggregate, if at least one upload arrived.
    pub aggregate: Option<Tensor>,
}

/// One parameter server bound to a TCP listener for one round.
pub struct TcpRound {
    listener: TcpListener,
}

impl TcpRound {
    /// Binds `addr` (e.g. `127.0.0.1:7070`; port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Wire`] when the bind fails.
    pub fn bind(addr: &str) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(WireError::from)?;
        Ok(TcpRound { listener })
    }

    /// The bound address, e.g. to print after a port-0 bind.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Wire`] when the socket has no local address.
    pub fn local_addr(&self) -> Result<String> {
        Ok(self.listener.local_addr().map_err(WireError::from)?.to_string())
    }

    /// Serves one round: accepts connections until `expect` uploads have
    /// been folded into the running mean, replying to each upload with the
    /// aggregate-so-far. Connections are handled sequentially — each one
    /// is a short request/response exchange — so the round is
    /// deterministic in arrival order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Wire`] on socket failures or malformed frames,
    /// and [`SimError::Agg`] if the uploads disagree on dimension.
    pub fn serve(&self, expect: usize) -> Result<TcpRoundReport> {
        let mut acc = MeanAccumulator::new();
        let mut report =
            TcpRoundReport { uploads: 0, frames_read: 0, frames_written: 0, aggregate: None };
        while report.uploads < expect {
            let (stream, _) = self.listener.accept().map_err(WireError::from)?;
            self.serve_connection(stream, &mut acc, &mut report)?;
        }
        if acc.count() > 0 {
            report.aggregate = Some(acc.finish().map_err(SimError::from)?);
        }
        Ok(report)
    }

    fn serve_connection(
        &self,
        mut stream: TcpStream,
        acc: &mut MeanAccumulator,
        report: &mut TcpRoundReport,
    ) -> Result<()> {
        loop {
            let frame = match read_frame(&mut stream) {
                Ok(f) => f,
                // A peer hanging up between frames ends the connection.
                Err(WireError::Io(_)) => return Ok(()),
                Err(e) => return Err(e.into()),
            };
            report.frames_read += 1;
            match frame {
                Frame::Hello { .. } => {}
                Frame::Upload { round, model, .. } => {
                    acc.push(&model).map_err(SimError::from)?;
                    report.uploads += 1;
                    // Reply with the running mean so the client learns the
                    // aggregate-so-far; a full protocol would broadcast the
                    // final mean, but one reply per upload keeps the
                    // exchange deadlock-free.
                    let reply = Frame::Aggregate {
                        round,
                        contributors: acc.count() as u32,
                        model: acc.clone().finish().map_err(SimError::from)?,
                    };
                    write_frame(&mut stream, &reply)?;
                    report.frames_written += 1;
                }
                Frame::Bye => return Ok(()),
                // Downlink/batch frames are not part of the TCP exchange.
                _ => return Err(SimError::Wire(WireError::UnknownKind(0))),
            }
        }
    }
}

/// Connects to a [`TcpRound`] server at `addr`, uploads `model` as
/// `client`, and returns `(contributors, aggregate)` from the server's
/// reply.
///
/// # Errors
///
/// Returns [`SimError::Wire`] on connection failures, malformed frames or
/// an unexpected reply type.
pub fn run_client(addr: &str, client: usize, model: &Tensor) -> Result<(u32, Tensor)> {
    let mut stream = TcpStream::connect(addr).map_err(WireError::from)?;
    write_frame(&mut stream, &Frame::Hello { client: client as u32 })?;
    write_frame(
        &mut stream,
        &Frame::Upload {
            round: 0,
            client: client as u32,
            server: 0,
            arrival_ms: 0,
            model: model.clone(),
        },
    )?;
    let reply = read_frame(&mut stream)?;
    write_frame(&mut stream, &Frame::Bye)?;
    match reply {
        Frame::Aggregate { contributors, model, .. } => Ok((contributors, model)),
        _ => Err(SimError::Wire(WireError::UnknownKind(0))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_aggregates_all_uploads() {
        let server = TcpRound::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve(3).unwrap());
        let mut last = None;
        for k in 0..3 {
            let model = Tensor::from_slice(&[k as f32, 1.0]);
            let (contributors, agg) = run_client(&addr, k, &model).unwrap();
            assert_eq!(contributors, k as u32 + 1);
            last = Some(agg);
        }
        let report = handle.join().unwrap();
        assert_eq!(report.uploads, 3);
        assert_eq!(report.frames_written, 3);
        // mean of [0,1],[1,1],[2,1] = [1,1]
        assert_eq!(report.aggregate.as_ref().unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(last.unwrap().as_slice(), &[1.0, 1.0]);
    }
}
