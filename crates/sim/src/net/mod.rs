//! Real concurrent message-passing: the network transport layer.
//!
//! This module is the second [`crate::Transport`] implementation (ROADMAP
//! item "a second Transport implementation over threads/sockets"):
//!
//! * [`wire`] — the length-prefixed, versioned frame protocol
//!   ([`FRAME_VERSION`], typed [`WireError`] decode errors),
//! * [`model`] — the seed-deterministic latency/bandwidth/jitter model
//!   ([`NetModel`]; [`NetModel::ideal`] is the zero-delay oracle
//!   configuration),
//! * [`transport`] — [`NetTransport`]: per-server uplink actors and a
//!   downlink router exchanging frames over bounded in-process channels,
//! * [`tcp`] — the loopback-TCP mode behind `fedms serve` /
//!   `fedms client` ([`TcpRound`], [`run_client`]).
//!
//! The contract that keeps all of this honest: under [`NetModel::ideal`]
//! a `NetTransport` round produces the same delivered-message multiset and
//! [`crate::CommStats`] totals as [`crate::LocalTransport`]
//! (property-tested in `crates/sim/tests/net.rs`), while a non-trivial
//! model makes straggler and deadline-miss outcomes *emerge* from delay
//! arithmetic instead of fault injection.

pub mod model;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use model::NetModel;
pub use tcp::{run_client, TcpRound, TcpRoundReport};
pub use transport::{NetStats, NetTransport};
pub use wire::{Frame, WireError, FRAME_VERSION};
