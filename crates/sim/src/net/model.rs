//! The seed-deterministic latency/bandwidth/jitter model.
//!
//! A [`NetModel`] turns each link transmission into a virtual delay:
//!
//! ```text
//! delay(link, bytes) = base_latency_ms + U(0..=jitter_ms) + bytes / bytes_per_ms
//! ```
//!
//! The jitter draw comes from its own labeled RNG stream
//! (`"LTNC"`, keyed by `(seed, round, link)` using the same link ids as
//! the recovery layer), so every delay is a pure function of the run seed
//! — never of thread scheduling. Server-side processing lag draws from the
//! `"SLAG"` stream and converts into whole-round delivery delays, which is
//! how network-produced stragglers and deadline misses arise *without* a
//! [`crate::FaultPlan`] injecting them.
//!
//! [`NetModel::ideal`] (zero latency, infinite bandwidth, no deadline) is
//! the oracle configuration: a [`crate::net::NetTransport`] round under it
//! is message-for-message identical to [`crate::LocalTransport`].

use fedms_tensor::rng::rng_for;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// RNG label for per-link latency jitter ("LTNC").
const LATENCY_LABEL: u64 = 0x4C_54_4E_43;
/// RNG label for server processing lag ("SLAG").
const LAG_LABEL: u64 = 0x53_4C_41_47;

/// Latency/bandwidth/jitter parameters of a simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// Fixed propagation delay per transmission, in virtual ms.
    #[serde(default)]
    pub base_latency_ms: u64,
    /// Upper bound of the uniform per-transmission jitter, in virtual ms.
    /// 0 disables the jitter draw entirely (no RNG is consumed).
    #[serde(default)]
    pub jitter_ms: u64,
    /// Link throughput in bytes per virtual ms; 0 = infinite bandwidth
    /// (no serialization delay).
    #[serde(default)]
    pub bytes_per_ms: u64,
    /// Mean server-side processing lag in virtual ms; the per-round draw
    /// is uniform over `0..=2·server_lag_ms`. 0 = no lag draw.
    #[serde(default)]
    pub server_lag_ms: u64,
    /// Virtual length of one round in ms: server lag is quantized into
    /// whole-round delivery delays as `lag / round_ms`. 0 disables the
    /// conversion (lag never spills into later rounds).
    #[serde(default)]
    pub round_ms: u64,
    /// Per-message delivery deadline in virtual ms; a transmission whose
    /// modelled arrival exceeds it misses the round. 0 = no deadline.
    #[serde(default)]
    pub deadline_ms: u64,
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel::ideal()
    }
}

impl NetModel {
    /// The oracle configuration: zero latency, infinite bandwidth, no
    /// jitter, no lag, no deadline. Under it every modelled delay is 0 and
    /// a [`crate::net::NetTransport`] round is message-for-message
    /// identical to [`crate::LocalTransport`].
    pub fn ideal() -> Self {
        NetModel {
            base_latency_ms: 0,
            jitter_ms: 0,
            bytes_per_ms: 0,
            server_lag_ms: 0,
            round_ms: 0,
            deadline_ms: 0,
        }
    }

    /// A lossy-edge preset: 20 ms base latency, up to 30 ms jitter,
    /// ~10 Mbit/s links (1250 bytes/ms), 40 ms mean server lag against a
    /// 100 ms round, 250 ms delivery deadline. Stragglers and deadline
    /// misses emerge from these numbers alone.
    pub fn edge() -> Self {
        NetModel {
            base_latency_ms: 20,
            jitter_ms: 30,
            bytes_per_ms: 1250,
            server_lag_ms: 40,
            round_ms: 100,
            deadline_ms: 250,
        }
    }

    /// Whether every modelled delay is identically zero (no draws, no
    /// deadline) — the oracle configuration.
    pub fn is_ideal(&self) -> bool {
        *self == NetModel::ideal()
    }

    /// The modelled delay of transmitting `payload_bytes` over `link` in
    /// `round`: base latency plus uniform jitter plus serialization time.
    /// A pure function of `(seed, round, link)` — no RNG state is carried
    /// between transmissions, and zero-jitter models consume no RNG.
    pub fn link_delay_ms(&self, seed: u64, round: usize, link: u64, payload_bytes: u64) -> u64 {
        let jitter = if self.jitter_ms > 0 {
            let mut rng = rng_for(seed, &[LATENCY_LABEL, round as u64, link]);
            rng.gen_range(0..=self.jitter_ms)
        } else {
            0
        };
        let transfer =
            if self.bytes_per_ms > 0 { payload_bytes.div_ceil(self.bytes_per_ms) } else { 0 };
        self.base_latency_ms + jitter + transfer
    }

    /// Whether a transmission arriving at `arrival_ms` misses the round's
    /// delivery deadline.
    pub fn misses_deadline(&self, arrival_ms: u64) -> bool {
        self.deadline_ms > 0 && arrival_ms > self.deadline_ms
    }

    /// The number of whole rounds `server`'s aggregate is held back by
    /// processing lag this round: a uniform lag draw over
    /// `0..=2·server_lag_ms` (stream `"SLAG"`, keyed per server and
    /// round), quantized by [`NetModel::round_ms`]. 0 when lag modelling
    /// is disabled.
    pub fn server_lag_rounds(&self, seed: u64, round: usize, server: usize) -> usize {
        if self.server_lag_ms == 0 || self.round_ms == 0 {
            return 0;
        }
        let mut rng = rng_for(seed, &[LAG_LABEL, round as u64, server as u64]);
        let lag = rng.gen_range(0..=2 * self.server_lag_ms);
        (lag / self.round_ms) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_model_is_all_zero_and_deterministic() {
        let m = NetModel::ideal();
        assert!(m.is_ideal());
        assert_eq!(m.link_delay_ms(7, 0, 42, 1 << 20), 0);
        assert!(!m.misses_deadline(u64::MAX));
        assert_eq!(m.server_lag_rounds(7, 0, 0), 0);
    }

    #[test]
    fn delays_are_pure_functions_of_seed_round_link() {
        let m = NetModel::edge();
        let a = m.link_delay_ms(7, 3, 99, 5_000);
        let b = m.link_delay_ms(7, 3, 99, 5_000);
        assert_eq!(a, b, "same (seed, round, link) must draw the same delay");
        assert!(a >= m.base_latency_ms + 5_000u64.div_ceil(m.bytes_per_ms));
        assert!(a <= m.base_latency_ms + m.jitter_ms + 5_000u64.div_ceil(m.bytes_per_ms));
        // Different links draw independently (almost surely different).
        let other = m.link_delay_ms(7, 3, 100, 5_000);
        let _ = other; // value may coincide; determinism is what matters
        assert_eq!(other, m.link_delay_ms(7, 3, 100, 5_000));
    }

    #[test]
    fn bandwidth_and_deadline_interact() {
        let m = NetModel {
            base_latency_ms: 10,
            jitter_ms: 0,
            bytes_per_ms: 100,
            deadline_ms: 50,
            ..NetModel::ideal()
        };
        // 1000 bytes at 100 B/ms = 10 ms transfer + 10 ms base = 20 ms.
        assert_eq!(m.link_delay_ms(1, 0, 5, 1_000), 20);
        assert!(!m.misses_deadline(20));
        // 100 KB takes 1000 ms — far past the 50 ms deadline.
        assert!(m.misses_deadline(m.link_delay_ms(1, 0, 5, 100_000)));
    }

    #[test]
    fn server_lag_quantizes_into_rounds() {
        let m = NetModel { server_lag_ms: 300, round_ms: 100, ..NetModel::ideal() };
        let lag = m.server_lag_rounds(9, 4, 1);
        assert!(lag <= 6, "lag draw is bounded by 2·mean / round_ms");
        assert_eq!(lag, m.server_lag_rounds(9, 4, 1), "per-round draw is deterministic");
    }

    #[test]
    fn serde_roundtrip_with_defaults() {
        let m: NetModel = serde_json::from_str("{}").unwrap();
        assert!(m.is_ideal());
        let text = serde_json::to_string(&NetModel::edge()).unwrap();
        let back: NetModel = serde_json::from_str(&text).unwrap();
        assert_eq!(back, NetModel::edge());
    }
}
