//! Per-round metrics and whole-run results.

use serde::{Deserialize, Serialize};

use crate::CommStats;

/// Optional per-round health diagnostics, recorded when
/// [`crate::SimulationEngine::set_record_diagnostics`] is enabled.
///
/// These quantify what the defence is doing: how far the servers' views
/// disagree (a proxy for attack intensity plus sparse-upload variance) and
/// how far the filter had to move from naive averaging to stay safe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundDiagnostics {
    /// Mean pairwise L2 distance between the models the servers
    /// disseminated this round (client 0's view).
    pub server_disagreement: f32,
    /// L2 distance between the filtered model and the plain mean of the
    /// disseminated models — zero when the filter agrees with averaging,
    /// large when it actively discards tampering.
    pub filter_displacement: f32,
    /// Largest L2 norm of a client's local update (post-training minus
    /// round-start model) this round.
    pub max_update_norm: f32,
    /// Servers that disseminated nothing this round (crashed, or straggler
    /// pipelines still warming up). Clients filtered over `P` minus this
    /// many models.
    #[serde(default)]
    pub silent_servers: usize,
    /// Duplicate deliveries suppressed before filtering this round (summed
    /// over clients): fault-injected repeats never reach the filter, so a
    /// duplicating downlink cannot double a server's weight.
    #[serde(default)]
    pub suppressed_duplicates: usize,
}

/// Measurements taken at the end of one training round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// Round index (0-based).
    pub round: usize,
    /// Mean test accuracy over the evaluated clients' local models (the
    /// paper's headline metric: "average test accuracy of the 50 local
    /// models on the CIFAR-10 test dataset").
    pub mean_accuracy: f32,
    /// Mean training loss over clients' local iterations this round.
    pub mean_train_loss: f32,
    /// Communication spent in this round.
    pub comm: CommStats,
    /// Defence diagnostics, if recording was enabled.
    #[serde(default)]
    pub diagnostics: Option<RoundDiagnostics>,
}

/// The complete record of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunResult {
    /// Per-round metrics, in round order (only rounds where evaluation ran).
    pub rounds: Vec<RoundMetrics>,
    /// Total communication across all rounds.
    pub total_comm: CommStats,
}

/// Headline statistics distilled from a [`RunResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Accuracy at the last evaluated round.
    pub final_accuracy: f32,
    /// Best accuracy over the run.
    pub best_accuracy: f32,
    /// First round at which accuracy reached 90% of the final value
    /// (a convergence-speed proxy), if any.
    pub rounds_to_90pct_of_final: Option<usize>,
    /// Mean accuracy across evaluated rounds (area-under-curve proxy).
    pub mean_accuracy: f32,
    /// Total uploaded bytes.
    pub upload_bytes: u64,
}

impl RunResult {
    /// An empty result.
    pub fn new() -> Self {
        RunResult::default()
    }

    /// Distils the headline statistics; `None` for an empty result.
    pub fn summary(&self) -> Option<RunSummary> {
        let final_accuracy = self.final_accuracy()?;
        let best_accuracy = self.best_accuracy()?;
        let threshold = 0.9 * final_accuracy;
        let rounds_to_90pct_of_final =
            self.rounds.iter().find(|m| m.mean_accuracy >= threshold).map(|m| m.round);
        let mean_accuracy = (self.rounds.iter().map(|m| m.mean_accuracy as f64).sum::<f64>()
            / self.rounds.len() as f64) as f32;
        Some(RunSummary {
            final_accuracy,
            best_accuracy,
            rounds_to_90pct_of_final,
            mean_accuracy,
            upload_bytes: self.total_comm.upload_bytes,
        })
    }

    /// The final recorded accuracy, if any round was evaluated.
    pub fn final_accuracy(&self) -> Option<f32> {
        self.rounds.last().map(|r| r.mean_accuracy)
    }

    /// The best recorded accuracy.
    pub fn best_accuracy(&self) -> Option<f32> {
        self.rounds
            .iter()
            .map(|r| r.mean_accuracy)
            .fold(None, |acc: Option<f32>, v| Some(acc.map_or(v, |a| a.max(v))))
    }

    /// The accuracy series as `(round, accuracy)` pairs — one figure line.
    pub fn accuracy_series(&self) -> Vec<(usize, f32)> {
        self.rounds.iter().map(|r| (r.round, r.mean_accuracy)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(accs: &[f32]) -> RunResult {
        let mut r = RunResult::new();
        for (i, &a) in accs.iter().enumerate() {
            r.rounds.push(RoundMetrics {
                round: i,
                mean_accuracy: a,
                mean_train_loss: 1.0,
                comm: CommStats::new(),
                diagnostics: None,
            });
        }
        r
    }

    #[test]
    fn empty_result_has_no_accuracy() {
        let r = RunResult::new();
        assert!(r.final_accuracy().is_none());
        assert!(r.best_accuracy().is_none());
        assert!(r.accuracy_series().is_empty());
    }

    #[test]
    fn final_and_best() {
        let r = result_with(&[0.1, 0.7, 0.5]);
        assert_eq!(r.final_accuracy(), Some(0.5));
        assert_eq!(r.best_accuracy(), Some(0.7));
        assert_eq!(r.accuracy_series(), vec![(0, 0.1), (1, 0.7), (2, 0.5)]);
    }

    #[test]
    fn summary_statistics() {
        assert!(RunResult::new().summary().is_none());
        let r = result_with(&[0.2, 0.5, 0.62, 0.7]);
        let s = r.summary().unwrap();
        assert_eq!(s.final_accuracy, 0.7);
        assert_eq!(s.best_accuracy, 0.7);
        // 90% of final = 0.63 → first reached at round 3.
        assert_eq!(s.rounds_to_90pct_of_final, Some(3));
        assert!((s.mean_accuracy - 0.505).abs() < 1e-5);
        assert_eq!(s.upload_bytes, 0);
    }
}
