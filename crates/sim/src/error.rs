//! Error type for the simulator.

use std::fmt;

use fedms_aggregation::AggError;
use fedms_attacks::AttackError;
use fedms_data::DataError;
use fedms_nn::NnError;
use fedms_tensor::TensorError;

use crate::net::WireError;

/// Errors produced while constructing or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Tensor-level failure.
    Tensor(TensorError),
    /// Model/training failure.
    Nn(NnError),
    /// Dataset/partitioning failure.
    Data(DataError),
    /// Aggregation-rule failure.
    Agg(AggError),
    /// Attack failure.
    Attack(AttackError),
    /// Invalid simulation configuration.
    BadConfig(String),
    /// A client received too few server models to filter safely.
    ///
    /// Raised when faults leave a client with `P' ≤ 2B` surviving models:
    /// the trimmed-mean filter can no longer guarantee an honest majority
    /// per coordinate, so the round aborts with a typed error instead of
    /// silently aggregating a possibly Byzantine-dominated sample.
    DegradedQuorum {
        /// Round in which the quorum was lost.
        round: usize,
        /// The client whose view degraded.
        client: usize,
        /// Number of server models that actually arrived (`P'`).
        received: usize,
        /// The strict lower bound `2B`: safety needs `received > needed`.
        needed: usize,
        /// The federation's full server count `P`, so operators can see how
        /// badly the view degraded (`received` of `total` survived).
        total: usize,
        /// The online estimator's current trim level `β̂·P`, when the
        /// adaptive defence is running: tells operators whether the
        /// estimator over-trimmed or servers actually died.
        beta_hat: Option<usize>,
        /// Index of the active threat epoch when the quorum was lost, if a
        /// dynamic threat schedule was driving the run.
        threat_epoch: Option<usize>,
    },
    /// A checkpoint was written with a different [`crate::Snapshot`]
    /// layout version than this build produces
    /// ([`crate::SNAPSHOT_VERSION`]). Raised by
    /// [`crate::SimulationEngine::restore`] instead of silently
    /// reinterpreting an incompatible layout.
    SnapshotVersion {
        /// Version recorded in the snapshot (0 for pre-versioning files).
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// A per-client dissemination was asked for a client it does not
    /// cover (see [`crate::Dissemination::for_client`]). Raised instead
    /// of an out-of-bounds panic when an equivocating server's message
    /// is shorter than the federation.
    DisseminationCoverage {
        /// The client whose model was requested.
        client: usize,
        /// How many clients the dissemination actually covers.
        covered: usize,
    },
    /// A network frame failed to decode (see [`crate::net::WireError`]).
    Wire(WireError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Tensor(e) => write!(f, "tensor error: {e}"),
            SimError::Nn(e) => write!(f, "model error: {e}"),
            SimError::Data(e) => write!(f, "data error: {e}"),
            SimError::Agg(e) => write!(f, "aggregation error: {e}"),
            SimError::Attack(e) => write!(f, "attack error: {e}"),
            SimError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            SimError::DegradedQuorum {
                round,
                client,
                received,
                needed,
                total,
                beta_hat,
                threat_epoch,
            } => {
                write!(
                    f,
                    "round {round}: client {client} received only {received} of {total} server \
                     models but Byzantine tolerance needs more than {needed}"
                )?;
                if let Some(trim) = beta_hat {
                    write!(f, " (estimator trimming {trim} per side)")?;
                }
                if let Some(epoch) = threat_epoch {
                    write!(f, " (threat epoch {epoch} active)")?;
                }
                Ok(())
            }
            SimError::SnapshotVersion { found, expected } => write!(
                f,
                "snapshot has layout version {found} but this build reads \
                 version {expected}"
            ),
            SimError::DisseminationCoverage { client, covered } => write!(
                f,
                "dissemination covers only {covered} clients but client \
                 {client} was addressed"
            ),
            SimError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Tensor(e) => Some(e),
            SimError::Nn(e) => Some(e),
            SimError::Data(e) => Some(e),
            SimError::Agg(e) => Some(e),
            SimError::Attack(e) => Some(e),
            SimError::Wire(e) => Some(e),
            SimError::BadConfig(_)
            | SimError::DegradedQuorum { .. }
            | SimError::SnapshotVersion { .. }
            | SimError::DisseminationCoverage { .. } => None,
        }
    }
}

impl From<WireError> for SimError {
    fn from(e: WireError) -> Self {
        SimError::Wire(e)
    }
}

impl From<TensorError> for SimError {
    fn from(e: TensorError) -> Self {
        SimError::Tensor(e)
    }
}

impl From<NnError> for SimError {
    fn from(e: NnError) -> Self {
        SimError::Nn(e)
    }
}

impl From<DataError> for SimError {
    fn from(e: DataError) -> Self {
        SimError::Data(e)
    }
}

impl From<AggError> for SimError {
    fn from(e: AggError) -> Self {
        SimError::Agg(e)
    }
}

impl From<AttackError> for SimError {
    fn from(e: AttackError) -> Self {
        SimError::Attack(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e: SimError = TensorError::Empty("x").into();
        assert!(e.to_string().contains("tensor"));
        assert!(e.source().is_some());
        assert!(SimError::BadConfig("k".into()).source().is_none());
    }

    #[test]
    fn degraded_quorum_display_names_parties() {
        let e = SimError::DegradedQuorum {
            round: 7,
            client: 3,
            received: 4,
            needed: 4,
            total: 10,
            beta_hat: None,
            threat_epoch: None,
        };
        let msg = e.to_string();
        assert!(msg.contains("round 7"));
        assert!(msg.contains("client 3"));
        assert!(msg.contains("4 of 10"));
        assert!(!msg.contains("estimator"));
        assert!(!msg.contains("threat epoch"));
        assert!(e.source().is_none());
    }

    #[test]
    fn degraded_quorum_display_reports_threat_context() {
        let e = SimError::DegradedQuorum {
            round: 7,
            client: 3,
            received: 4,
            needed: 4,
            total: 10,
            beta_hat: Some(2),
            threat_epoch: Some(1),
        };
        let msg = e.to_string();
        assert!(msg.contains("estimator trimming 2 per side"));
        assert!(msg.contains("threat epoch 1 active"));
    }

    #[test]
    fn snapshot_version_display_names_versions() {
        let e = SimError::SnapshotVersion { found: 0, expected: 1 };
        let msg = e.to_string();
        assert!(msg.contains("version 0"));
        assert!(msg.contains("version 1"));
        assert!(e.source().is_none());
    }

    #[test]
    fn conversions_compile() {
        let _: SimError = NnError::NoForwardCache("l").into();
        let _: SimError = DataError::BadConfig("d".into()).into();
        let _: SimError = AggError::Empty.into();
        let _: SimError = AttackError::BadParameter("p".into()).into();
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
