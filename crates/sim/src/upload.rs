//! Client→server upload strategies (Section IV-A's communication trade-off).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// How clients choose which parameter servers receive their local model
/// each round.
///
/// The paper's key design is [`UploadStrategy::Sparse`]: each client
/// uploads to **one** uniformly random PS, keeping the aggregation
/// communication at `K` messages per round — the same as classic
/// single-server FL — at the cost of extra aggregate variance (Lemma 3).
/// [`UploadStrategy::Full`] is the trivial `K × P` alternative discussed
/// and rejected in Section IV-A; [`UploadStrategy::Redundant`] interpolates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UploadStrategy {
    /// Each client uploads to one uniformly random server (the paper).
    Sparse,
    /// Each client uploads to every server (`K·P` messages).
    Full,
    /// Each client uploads to `k` distinct uniformly random servers.
    Redundant(usize),
}

impl UploadStrategy {
    /// Messages sent per round for `num_clients` clients and `num_servers`
    /// servers.
    pub fn messages_per_round(&self, num_clients: usize, num_servers: usize) -> usize {
        match *self {
            UploadStrategy::Sparse => num_clients,
            UploadStrategy::Full => num_clients * num_servers,
            UploadStrategy::Redundant(k) => num_clients * k.min(num_servers),
        }
    }

    /// Draws this round's assignment: `out[k]` is the list of server ids
    /// client `k` uploads to (distinct, unordered).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for a zero-redundancy strategy or
    /// zero servers.
    pub fn assign(
        &self,
        num_clients: usize,
        num_servers: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Vec<usize>>> {
        if num_servers == 0 {
            return Err(SimError::BadConfig("no servers to upload to".into()));
        }
        match *self {
            UploadStrategy::Sparse => {
                Ok((0..num_clients).map(|_| vec![rng.gen_range(0..num_servers)]).collect())
            }
            UploadStrategy::Full => {
                let all: Vec<usize> = (0..num_servers).collect();
                Ok(vec![all; num_clients])
            }
            UploadStrategy::Redundant(k) => {
                if k == 0 {
                    return Err(SimError::BadConfig("redundancy must be positive".into()));
                }
                let k = k.min(num_servers);
                let mut out = Vec::with_capacity(num_clients);
                let mut pool: Vec<usize> = (0..num_servers).collect();
                for _ in 0..num_clients {
                    pool.shuffle(rng);
                    out.push(pool[..k].to_vec());
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;
    use std::collections::HashSet;

    #[test]
    fn message_counts() {
        assert_eq!(UploadStrategy::Sparse.messages_per_round(50, 10), 50);
        assert_eq!(UploadStrategy::Full.messages_per_round(50, 10), 500);
        assert_eq!(UploadStrategy::Redundant(3).messages_per_round(50, 10), 150);
        assert_eq!(UploadStrategy::Redundant(20).messages_per_round(50, 10), 500);
    }

    #[test]
    fn sparse_assigns_exactly_one() {
        let mut rng = rng_for(1, &[]);
        let a = UploadStrategy::Sparse.assign(20, 5, &mut rng).unwrap();
        assert_eq!(a.len(), 20);
        assert!(a.iter().all(|s| s.len() == 1 && s[0] < 5));
    }

    #[test]
    fn sparse_is_roughly_uniform() {
        let mut rng = rng_for(2, &[]);
        let mut counts = vec![0usize; 5];
        for _ in 0..200 {
            for s in UploadStrategy::Sparse.assign(10, 5, &mut rng).unwrap() {
                counts[s[0]] += 1;
            }
        }
        // 2000 uploads over 5 servers → expect 400 each; allow wide slack.
        assert!(counts.iter().all(|&c| c > 300 && c < 500), "{counts:?}");
    }

    #[test]
    fn full_assigns_everyone() {
        let mut rng = rng_for(3, &[]);
        let a = UploadStrategy::Full.assign(4, 3, &mut rng).unwrap();
        assert!(a.iter().all(|s| s == &vec![0, 1, 2]));
    }

    #[test]
    fn redundant_assigns_distinct() {
        let mut rng = rng_for(4, &[]);
        let a = UploadStrategy::Redundant(3).assign(30, 8, &mut rng).unwrap();
        for s in &a {
            assert_eq!(s.len(), 3);
            let set: HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 3, "servers must be distinct");
        }
    }

    #[test]
    fn redundant_clamps_to_server_count() {
        let mut rng = rng_for(5, &[]);
        let a = UploadStrategy::Redundant(10).assign(3, 4, &mut rng).unwrap();
        assert!(a.iter().all(|s| s.len() == 4));
    }

    #[test]
    fn validation() {
        let mut rng = rng_for(6, &[]);
        assert!(UploadStrategy::Redundant(0).assign(3, 4, &mut rng).is_err());
        assert!(UploadStrategy::Sparse.assign(3, 0, &mut rng).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = UploadStrategy::Sparse.assign(10, 5, &mut rng_for(7, &[])).unwrap();
        let b = UploadStrategy::Sparse.assign(10, 5, &mut rng_for(7, &[])).unwrap();
        assert_eq!(a, b);
    }
}
