//! Versioned bit-exact checkpointing of a running federation.

use fedms_tensor::Tensor;
use serde::{Deserialize, Serialize};

use super::SimulationEngine;
use crate::{Result, RunResult, Server, SimError};

/// The snapshot layout produced by this build; [`SimulationEngine::restore`]
/// rejects any other version with [`SimError::SnapshotVersion`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// A bit-exact checkpoint of a running federation: everything that evolves
/// during training and is not re-derivable from the configuration.
///
/// Because every stochastic stream in the engine is a pure function of
/// `(seed, round, entity)`, restoring a snapshot into a freshly built
/// engine (same config, datasets and adversaries) and continuing produces
/// results identical to the uninterrupted run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Snapshot layout version ([`SNAPSHOT_VERSION`]). Serde-defaulted to
    /// 0, so snapshots that predate versioning are explicitly rejected by
    /// [`SimulationEngine::restore`] rather than silently reinterpreted.
    #[serde(default)]
    pub version: u32,
    /// Completed rounds.
    pub round: usize,
    /// Every client's flat model vector, in client order.
    pub client_models: Vec<Tensor>,
    /// Per-server evolving state: (attack history, last aggregate,
    /// straggler outbox).
    pub server_state: Vec<(Vec<Tensor>, Option<Tensor>, Vec<Tensor>)>,
    /// Metrics recorded so far.
    pub result: RunResult,
    /// The recovery layer's cross-round state (per-server delivery records
    /// steering failover); empty when recovery is disabled, so snapshots
    /// from older builds restore cleanly.
    #[serde(default)]
    pub recovery_state: Vec<u32>,
}

impl SimulationEngine {
    /// Captures a bit-exact checkpoint of the federation's evolving state.
    pub fn snapshot(&self) -> Snapshot {
        let outboxes = self.transport.state_snapshot();
        Snapshot {
            version: SNAPSHOT_VERSION,
            round: self.round,
            client_models: self.client_models(),
            server_state: self
                .servers
                .iter()
                .map(Server::state_snapshot)
                .zip(outboxes)
                .map(|((history, last), outbox)| (history, last, outbox))
                .collect(),
            result: self.result.clone(),
            recovery_state: self.transport.recovery_state(),
        }
    }

    /// Restores a checkpoint taken from an engine with the same
    /// configuration, datasets and adversaries. Continuing afterwards is
    /// bit-identical to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotVersion`] for a snapshot written with a
    /// different layout version, and [`SimError::BadConfig`] if the
    /// snapshot's entity counts or model sizes do not match this engine.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<()> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SimError::SnapshotVersion {
                found: snapshot.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        if snapshot.client_models.len() != self.clients.len() {
            return Err(SimError::BadConfig(format!(
                "snapshot has {} clients, engine has {}",
                snapshot.client_models.len(),
                self.clients.len()
            )));
        }
        if snapshot.server_state.len() != self.servers.len() {
            return Err(SimError::BadConfig(format!(
                "snapshot has {} servers, engine has {}",
                snapshot.server_state.len(),
                self.servers.len()
            )));
        }
        if snapshot.client_models.iter().any(|m| m.len() != self.initial_model.len()) {
            return Err(SimError::BadConfig(
                "snapshot model size does not match the engine's model".into(),
            ));
        }
        for (client, model) in self.clients.iter_mut().zip(&snapshot.client_models) {
            client.set_model_vector(model)?;
        }
        let mut outboxes = Vec::with_capacity(snapshot.server_state.len());
        for (server, (history, last, outbox)) in
            self.servers.iter_mut().zip(snapshot.server_state.iter())
        {
            server.restore_state(history.clone(), last.clone());
            outboxes.push(outbox.clone());
        }
        self.transport.restore_state(outboxes);
        self.transport.restore_recovery_state(snapshot.recovery_state.clone());
        self.round = snapshot.round;
        self.result = snapshot.result.clone();
        Ok(())
    }
}
