//! Versioned bit-exact checkpointing of a running federation.

use fedms_tensor::Tensor;
use serde::{Deserialize, Serialize};

use super::SimulationEngine;
use crate::{Result, RunResult, Server, SimError};

/// The snapshot layout produced by this build; [`SimulationEngine::restore`]
/// accepts this version and the dense version-1 layout, and rejects
/// anything else with [`SimError::SnapshotVersion`].
///
/// Version history:
/// * **1** — dense `client_models`: one tensor per client.
/// * **2** — interned model bank: `model_pool` (distinct vectors) +
///   `model_refs` (one `u32` per client). Snapshot size scales with the
///   number of *distinct* client states, which cohort-sampled
///   million-client runs keep far below `K`.
pub const SNAPSHOT_VERSION: u32 = 2;

/// A bit-exact checkpoint of a running federation: everything that evolves
/// during training and is not re-derivable from the configuration.
///
/// Because every stochastic stream in the engine is a pure function of
/// `(seed, round, entity)`, restoring a snapshot into a freshly built
/// engine (same config, datasets and adversaries) and continuing produces
/// results identical to the uninterrupted run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Snapshot layout version ([`SNAPSHOT_VERSION`]). Serde-defaulted to
    /// 0, so snapshots that predate versioning are explicitly rejected by
    /// [`SimulationEngine::restore`] rather than silently reinterpreted.
    #[serde(default)]
    pub version: u32,
    /// Completed rounds.
    pub round: usize,
    /// Every client's flat model vector, in client order (version-1
    /// layout; empty in version-2 snapshots, which carry the interned
    /// bank instead).
    #[serde(default)]
    pub client_models: Vec<Tensor>,
    /// The distinct model vectors referenced by `model_refs` (version-2
    /// layout).
    #[serde(default)]
    pub model_pool: Vec<Tensor>,
    /// One index into `model_pool` per client, in client order (version-2
    /// layout).
    #[serde(default)]
    pub model_refs: Vec<u32>,
    /// Per-server evolving state: (attack history, last aggregate,
    /// straggler outbox).
    pub server_state: Vec<(Vec<Tensor>, Option<Tensor>, Vec<Tensor>)>,
    /// Metrics recorded so far.
    pub result: RunResult,
    /// The recovery layer's cross-round state (per-server delivery records
    /// steering failover); empty when recovery is disabled, so snapshots
    /// from older builds restore cleanly.
    #[serde(default)]
    pub recovery_state: Vec<u32>,
    /// The online B̂ estimator's per-server suspicion scores; empty when
    /// the estimator is disabled (and in snapshots from older builds,
    /// which restore cleanly with a fresh estimator).
    #[serde(default)]
    pub estimator_scores: Vec<f64>,
    /// The estimator's current trim level, paired with `estimator_scores`.
    #[serde(default)]
    pub estimator_trim: usize,
}

impl SimulationEngine {
    /// Captures a bit-exact checkpoint of the federation's evolving state.
    pub fn snapshot(&self) -> Snapshot {
        let outboxes = self.transport.state_snapshot();
        let (model_pool, model_refs) = self.store.bank_parts();
        Snapshot {
            version: SNAPSHOT_VERSION,
            round: self.round,
            client_models: Vec::new(),
            model_pool,
            model_refs,
            server_state: self
                .servers
                .iter()
                .map(Server::state_snapshot)
                .zip(outboxes)
                .map(|((history, last), outbox)| (history, last, outbox))
                .collect(),
            result: self.result.clone(),
            recovery_state: self.transport.recovery_state(),
            estimator_scores: self
                .estimator
                .as_ref()
                .map(|e| e.scores().to_vec())
                .unwrap_or_default(),
            estimator_trim: self.estimator.as_ref().map(|e| e.trim()).unwrap_or(0),
        }
    }

    /// Restores a checkpoint taken from an engine with the same
    /// configuration, datasets and adversaries. Continuing afterwards is
    /// bit-identical to the uninterrupted run. Both the current interned
    /// layout and the dense version-1 layout are accepted (a v1 snapshot's
    /// models are interned on the way in).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotVersion`] for a snapshot written with an
    /// unknown layout version, and [`SimError::BadConfig`] if the
    /// snapshot's entity counts or model sizes do not match this engine.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<()> {
        match snapshot.version {
            1 => {
                if snapshot.client_models.len() != self.store.num_clients() {
                    return Err(SimError::BadConfig(format!(
                        "snapshot has {} clients, engine has {}",
                        snapshot.client_models.len(),
                        self.store.num_clients()
                    )));
                }
                if snapshot.client_models.iter().any(|m| m.len() != self.store.model_len()) {
                    return Err(SimError::BadConfig(
                        "snapshot model size does not match the engine's model".into(),
                    ));
                }
            }
            SNAPSHOT_VERSION => {
                if snapshot.model_refs.len() != self.store.num_clients() {
                    return Err(SimError::BadConfig(format!(
                        "snapshot has {} clients, engine has {}",
                        snapshot.model_refs.len(),
                        self.store.num_clients()
                    )));
                }
                if snapshot.model_pool.iter().any(|m| m.len() != self.store.model_len()) {
                    return Err(SimError::BadConfig(
                        "snapshot model size does not match the engine's model".into(),
                    ));
                }
                if snapshot.model_refs.iter().any(|&r| r as usize >= snapshot.model_pool.len()) {
                    return Err(SimError::BadConfig(
                        "snapshot model reference out of range of its model pool".into(),
                    ));
                }
            }
            other => {
                return Err(SimError::SnapshotVersion { found: other, expected: SNAPSHOT_VERSION });
            }
        }
        if snapshot.server_state.len() != self.servers.len() {
            return Err(SimError::BadConfig(format!(
                "snapshot has {} servers, engine has {}",
                snapshot.server_state.len(),
                self.servers.len()
            )));
        }
        if snapshot.version == 1 {
            self.store.restore_dense(&snapshot.client_models);
        } else {
            self.store.restore_parts(snapshot.model_pool.clone(), snapshot.model_refs.clone());
        }
        let mut outboxes = Vec::with_capacity(snapshot.server_state.len());
        for (server, (history, last, outbox)) in
            self.servers.iter_mut().zip(snapshot.server_state.iter())
        {
            server.restore_state(history.clone(), last.clone());
            outboxes.push(outbox.clone());
        }
        self.transport.restore_state(outboxes);
        self.transport.restore_recovery_state(snapshot.recovery_state.clone());
        if let Some(estimator) = self.estimator.as_mut() {
            // Pre-estimator snapshots carry no scores; a fresh estimator is
            // the right state for them.
            if !snapshot.estimator_scores.is_empty() {
                estimator.restore(snapshot.estimator_scores.clone(), snapshot.estimator_trim);
            }
        }
        self.round = snapshot.round;
        self.result = snapshot.result.clone();
        Ok(())
    }
}
