//! Static configuration of a simulation run.

use fedms_aggregation::EstimatorPolicy;
use fedms_nn::LrSchedule;
use fedms_tensor::{BackendHandle, BackendKind};
use serde::{Deserialize, Serialize};

use crate::{
    ModelSpec, RecoveryPolicy, Result, SimError, ThreatSchedule, Topology, UploadStrategy,
};

/// Static configuration of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Client/server counts and the Byzantine set.
    pub topology: Topology,
    /// The training model all clients share.
    pub model: ModelSpec,
    /// Client→server upload strategy (the paper uses sparse).
    pub upload: UploadStrategy,
    /// Local SGD iterations per round (the paper's `E`, set to 3).
    pub local_epochs: usize,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// Learning-rate schedule, indexed by global step `t·E + i`.
    pub schedule: LrSchedule,
    /// Root seed; every stochastic component derives from it.
    pub seed: u64,
    /// Evaluate every `eval_every` rounds (the final round is always
    /// evaluated). Must be ≥ 1.
    pub eval_every: usize,
    /// Number of clients whose local models are averaged for the accuracy
    /// metric (0 = all clients). The paper averages all 50.
    pub eval_clients: usize,
    /// Train clients on multiple threads (bit-identical to sequential).
    pub parallel: bool,
    /// Worker-thread count for the client-parallel phases when `parallel`
    /// is on: 0 picks one thread per available core. Results are
    /// bit-identical across thread counts.
    #[serde(default)]
    pub threads: usize,
    /// When true (the paper's protocol), accuracy is measured on the
    /// clients' *local* models right after local training; when false, on
    /// the post-filter models at the end of the round. Under strong
    /// heterogeneity (small `D_α`) local models are biased toward their
    /// shard's classes, which is exactly the effect Figure 5 reports.
    pub eval_after_local: bool,
    /// Transport recovery policy (retries, backoff, failover). Disabled by
    /// default, which leaves delivery bit-identical to a bare
    /// [`crate::LocalTransport`].
    #[serde(default)]
    pub recovery: RecoveryPolicy,
    /// Per-round cohort size: each round uniformly samples this many
    /// clients (without replacement, from its own `"CHRT"` seed stream) to
    /// train, upload, receive and filter; everyone else keeps their banked
    /// model. 0 (the default) or any value ≥ `K` runs the full federation
    /// every round, bit-identical to the pre-cohort engine. Round memory
    /// scales with the cohort, not `K` — the knob that makes
    /// million-client federations simulable.
    #[serde(default)]
    pub cohort: usize,
    /// Dynamic threat schedule: per-round epochs that compromise honest
    /// servers mid-run, partition links and corrupt frames (see
    /// [`ThreatSchedule`]). The trivial schedule (the default) leaves the
    /// engine bit-identical to a build without the threat layer.
    #[serde(default)]
    pub threat: ThreatSchedule,
    /// Online Byzantine-count estimator feeding the adaptive trimmed-mean
    /// filter a per-round `β̂` (see
    /// [`fedms_aggregation::EstimatorPolicy`]). Disabled by default, which
    /// keeps the statically configured filter bit-identically in charge.
    #[serde(default)]
    pub estimator: EstimatorPolicy,
    /// Compute backend for every client's dense kernels (matmul, conv,
    /// SGD). The default scalar backend is the deterministic CI oracle;
    /// [`BackendKind::Blocked`] (compiled in with the `backend-blocked`
    /// feature) runs the cache-blocked vectorized kernels and changes
    /// results only by f32 reassociation error.
    #[serde(default)]
    pub backend: BackendKind,
}

impl EngineConfig {
    /// The paper's federated-learning settings (Table II): `K = 50`
    /// clients, `P = 10` servers, `E = 3` local iterations, sparse upload.
    /// The Byzantine set is empty here; callers add attacks per experiment.
    pub fn paper_defaults(seed: u64) -> Result<Self> {
        Ok(EngineConfig {
            topology: Topology::new(50, 10, [])?,
            model: ModelSpec::default_mlp(),
            upload: UploadStrategy::Sparse,
            local_epochs: 3,
            batch_size: 32,
            schedule: LrSchedule::Constant(0.1),
            seed,
            eval_every: 1,
            eval_clients: 0,
            parallel: true,
            threads: 0,
            eval_after_local: true,
            recovery: RecoveryPolicy::disabled(),
            cohort: 0,
            threat: ThreatSchedule::none(),
            estimator: EstimatorPolicy::default(),
            backend: BackendKind::Scalar,
        })
    }

    /// Resolves the configured compute backend to a handle.
    ///
    /// Intra-op threading composes with the engine's own client
    /// parallelism: when the client-parallel phases own the cores
    /// (`parallel`), the backend runs single-threaded per client to avoid
    /// oversubscription; a sequential engine hands its `threads` budget to
    /// the backend instead.
    pub(crate) fn resolve_backend(&self) -> Result<BackendHandle> {
        let intra_threads = if self.parallel { 1 } else { self.threads };
        self.backend.resolve(intra_threads).map_err(|e| SimError::BadConfig(e.to_string()))
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.local_epochs == 0 {
            return Err(SimError::BadConfig("local_epochs must be positive".into()));
        }
        if self.batch_size == 0 {
            return Err(SimError::BadConfig("batch_size must be positive".into()));
        }
        if self.eval_every == 0 {
            return Err(SimError::BadConfig("eval_every must be positive".into()));
        }
        self.schedule.validate().map_err(SimError::from)?;
        self.recovery.validate()?;
        let byz: Vec<usize> = self.topology.byzantine_ids().collect();
        self.threat.validate(self.topology.num_servers(), &byz)?;
        self.estimator.validate().map_err(SimError::BadConfig)?;
        self.resolve_backend()?;
        Ok(())
    }
}
