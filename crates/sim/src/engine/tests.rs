//! Tests for the engine orchestrator and its phase pipeline (child module
//! of `engine`, relocated to keep the orchestrator readable).

use super::*;
use fedms_aggregation::{EstimatorPolicy, Mean, TrimmedMean};
use fedms_attacks::AttackKind;
use fedms_data::{DirichletPartitioner, SynthVisionConfig};

use crate::{ModelSpec, RecoveryPolicy, RoundEvent, ThreatSchedule, Topology, UploadStrategy};
use fedms_nn::LrSchedule;

fn small_setup(
    byzantine: Vec<usize>,
    attack: AttackKind,
    filter: Box<dyn AggregationRule>,
    parallel: bool,
) -> SimulationEngine {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(8, 4, byzantine.clone()).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 8, 3).unwrap();
    let config = EngineConfig {
        topology: topo,
        model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 2,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed: 9,
        eval_every: 1,
        eval_clients: 0,
        parallel,
        threads: 0,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    let attacks = byzantine.into_iter().map(|id| (id, attack.build().unwrap())).collect();
    SimulationEngine::new(config, &train, &test, &parts, filter, attacks).unwrap()
}

#[test]
fn engine_runs_and_records() {
    let mut e = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
    let result = e.run(3).unwrap();
    assert_eq!(result.rounds.len(), 3);
    assert_eq!(e.round(), 3);
    assert!(result.final_accuracy().unwrap() > 0.0);
    assert!(result.total_comm.upload_messages > 0);
}

#[test]
fn all_clients_share_filtered_model_under_broadcast() {
    // With consistent dissemination every client applies the same filter
    // to the same inputs → identical post-filter models.
    let mut e = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
    e.step_round(false).unwrap();
    let models = e.client_models();
    for m in &models[1..] {
        assert_eq!(m, &models[0]);
    }
}

#[test]
fn deterministic_across_parallelism() {
    let mut seq = small_setup(
        vec![1],
        AttackKind::Noise { std: 0.5 },
        Box::new(TrimmedMean::new(0.25).unwrap()),
        false,
    );
    let mut par = small_setup(
        vec![1],
        AttackKind::Noise { std: 0.5 },
        Box::new(TrimmedMean::new(0.25).unwrap()),
        true,
    );
    seq.run(2).unwrap();
    par.run(2).unwrap();
    assert_eq!(seq.client_models(), par.client_models());
    assert_eq!(seq.result().rounds, par.result().rounds);
}

#[test]
fn sparse_upload_comm_matches_formula() {
    let mut e = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
    e.run(2).unwrap();
    let comm = e.result().total_comm;
    // K=8 uploads and K·P=32 downloads per round, 2 rounds.
    assert_eq!(comm.upload_messages, 16);
    assert_eq!(comm.download_messages, 64);
}

#[test]
fn attack_ids_must_match_topology() {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(4, 3, [1]).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 4, 3).unwrap();
    let config = EngineConfig {
        topology: topo,
        model: ModelSpec::Mlp { widths: vec![16, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 1,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed: 0,
        eval_every: 1,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    // No attack supplied for byzantine server 1 → error.
    let err = SimulationEngine::new(config, &train, &test, &parts, Box::new(Mean::new()), vec![]);
    assert!(err.is_err());
}

#[test]
fn config_validation() {
    let mut cfg = EngineConfig::paper_defaults(0).unwrap();
    cfg.local_epochs = 0;
    assert!(cfg.validate().is_err());
    let mut cfg = EngineConfig::paper_defaults(0).unwrap();
    cfg.batch_size = 0;
    assert!(cfg.validate().is_err());
    let mut cfg = EngineConfig::paper_defaults(0).unwrap();
    cfg.eval_every = 0;
    assert!(cfg.validate().is_err());
    assert!(EngineConfig::paper_defaults(0).unwrap().validate().is_ok());
}

#[test]
fn trimmed_mean_resists_random_attack_in_miniature() {
    // 1 Byzantine of 4 servers with the Random attack: the mean filter
    // absorbs garbage while the trimmed filter (β=0.25 trims 1/side)
    // stays near the honest aggregate.
    let mut vanilla = small_setup(
        vec![2],
        AttackKind::Random { lo: -10.0, hi: 10.0 },
        Box::new(Mean::new()),
        false,
    );
    let mut fedms = small_setup(
        vec![2],
        AttackKind::Random { lo: -10.0, hi: 10.0 },
        Box::new(TrimmedMean::new(0.25).unwrap()),
        false,
    );
    vanilla.run(4).unwrap();
    fedms.run(4).unwrap();
    let v_norm = vanilla.client_models()[0].norm_l2();
    let f_norm = fedms.client_models()[0].norm_l2();
    // The random attack injects coordinates of magnitude ~10; a mean
    // over 4 servers keeps ~1/4 of that, blowing up the model norm.
    assert!(v_norm > 2.0 * f_norm, "vanilla norm {v_norm} should dwarf fed-ms norm {f_norm}");
}

#[test]
fn byzantine_clients_are_filtered_by_robust_server_rule() {
    use fedms_attacks::ClientAttackKind;
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(8, 2, []).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 8, 3).unwrap();
    let config = EngineConfig {
        topology: topo,
        model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
        upload: UploadStrategy::Full,
        local_epochs: 2,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed: 9,
        eval_every: 1,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    let client_attacks =
        vec![(1usize, ClientAttackKind::Random { lo: -10.0, hi: 10.0 }.build().unwrap())];
    // Robust server rule: trimmed mean over the 8 uploads (trim 1/side).
    let mut robust = SimulationEngine::with_adversaries(
        config.clone(),
        &train,
        &test,
        &parts,
        Box::new(Mean::new()),
        Box::new(TrimmedMean::new(0.13).unwrap()),
        vec![],
        client_attacks,
    )
    .unwrap();
    assert_eq!(robust.byzantine_client_ids(), vec![1]);
    robust.run(3).unwrap();
    let robust_norm = robust.client_models()[0].norm_l2();

    // Same attack with the plain mean at the servers: garbage leaks in.
    let client_attacks =
        vec![(1usize, ClientAttackKind::Random { lo: -10.0, hi: 10.0 }.build().unwrap())];
    let mut naive = SimulationEngine::with_adversaries(
        config,
        &train,
        &test,
        &parts,
        Box::new(Mean::new()),
        Box::new(Mean::new()),
        vec![],
        client_attacks,
    )
    .unwrap();
    naive.run(3).unwrap();
    let naive_norm = naive.client_models()[0].norm_l2();
    assert!(
        naive_norm > 1.5 * robust_norm,
        "naive server mean {naive_norm} should blow up vs robust {robust_norm}"
    );
}

#[test]
fn client_attack_validation() {
    use fedms_attacks::ClientAttackKind;
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 4, 3).unwrap();
    let config = EngineConfig {
        topology: Topology::new(4, 2, []).unwrap(),
        model: ModelSpec::Mlp { widths: vec![16, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 1,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed: 0,
        eval_every: 1,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    let atk = || ClientAttackKind::SignFlip { scale: 1.0 }.build().unwrap();
    // Out-of-range id.
    assert!(SimulationEngine::with_adversaries(
        config.clone(),
        &train,
        &test,
        &parts,
        Box::new(Mean::new()),
        Box::new(Mean::new()),
        vec![],
        vec![(4, atk())],
    )
    .is_err());
    // Duplicate id.
    assert!(SimulationEngine::with_adversaries(
        config.clone(),
        &train,
        &test,
        &parts,
        Box::new(Mean::new()),
        Box::new(Mean::new()),
        vec![],
        vec![(1, atk()), (1, atk())],
    )
    .is_err());
    // All clients Byzantine → evaluation impossible.
    let all: Vec<_> = (0..4).map(|i| (i, atk())).collect();
    let engine = SimulationEngine::with_adversaries(
        config,
        &train,
        &test,
        &parts,
        Box::new(Mean::new()),
        Box::new(Mean::new()),
        vec![],
        all,
    )
    .unwrap();
    assert!(engine.evaluate_mean_accuracy().is_err());
}

#[test]
fn partial_participation_trains_fewer_clients() {
    let mut e = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
    e.set_participation(0.5).unwrap();
    e.step_round(false).unwrap();
    // 8 clients at 50% → 4 uploads this round (sparse = 1 per client).
    assert_eq!(e.result().total_comm.upload_messages, 4);
    assert!(e.set_participation(0.0).is_err());
    assert!(e.set_participation(1.5).is_err());
    assert!(e.set_participation(f64::NAN).is_err());
}

#[test]
fn event_log_records_every_stage() {
    let mut e = small_setup(
        vec![1],
        AttackKind::Random { lo: -10.0, hi: 10.0 },
        Box::new(TrimmedMean::new(0.25).unwrap()),
        false,
    );
    e.enable_event_log(10_000);
    e.step_round(false).unwrap();
    let log = e.event_log().unwrap();
    // 8 clients train, 8 sparse uploads, 4 aggregations, 4
    // disseminations, 8 filters.
    assert_eq!(log.of_kind("train").len(), 8);
    assert_eq!(log.of_kind("upload").len(), 8);
    assert_eq!(log.of_kind("aggregate").len(), 4);
    assert_eq!(log.of_kind("disseminate").len(), 4);
    assert_eq!(log.of_kind("filter").len(), 8);
    // The Byzantine server is flagged.
    let byz: Vec<bool> = log
        .of_kind("disseminate")
        .iter()
        .map(|ev| matches!(ev, RoundEvent::Disseminated { byzantine: true, .. }))
        .collect();
    assert_eq!(byz.iter().filter(|&&b| b).count(), 1);
    // Disabling stops recording.
    e.enable_event_log(0);
    e.step_round(false).unwrap();
    assert!(e.event_log().is_none());
}

#[test]
fn upload_drops_are_survivable() {
    let mut e =
        small_setup(vec![], AttackKind::Benign, Box::new(TrimmedMean::new(0.25).unwrap()), false);
    e.set_upload_drop_rate(0.5).unwrap();
    e.run(4).unwrap();
    assert!(e.result().final_accuracy().unwrap().is_finite());
    // Senders still pay for dropped messages.
    assert_eq!(e.result().total_comm.upload_messages, 8 * 4);
    assert!(e.set_upload_drop_rate(1.0).is_err());
    assert!(e.set_upload_drop_rate(-0.1).is_err());
}

#[test]
fn diagnostics_reflect_attack_intensity() {
    let mut clean =
        small_setup(vec![], AttackKind::Benign, Box::new(TrimmedMean::new(0.25).unwrap()), false);
    clean.set_record_diagnostics(true);
    clean.step_round(true).unwrap();
    let clean_d = clean.result().rounds[0].diagnostics.clone().unwrap();

    let mut attacked = small_setup(
        vec![1],
        AttackKind::Random { lo: -10.0, hi: 10.0 },
        Box::new(TrimmedMean::new(0.25).unwrap()),
        false,
    );
    attacked.set_record_diagnostics(true);
    attacked.step_round(true).unwrap();
    let attacked_d = attacked.result().rounds[0].diagnostics.clone().unwrap();

    assert!(
        attacked_d.server_disagreement > 5.0 * clean_d.server_disagreement,
        "random attack should explode disagreement: {} vs {}",
        attacked_d.server_disagreement,
        clean_d.server_disagreement
    );
    assert!(
        attacked_d.filter_displacement > clean_d.filter_displacement,
        "filter must move further under attack"
    );
    assert!(clean_d.max_update_norm > 0.0);
    // Without recording, no diagnostics appear.
    let mut off = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
    off.step_round(true).unwrap();
    assert!(off.result().rounds[0].diagnostics.is_none());
}

#[test]
fn snapshot_resume_is_bit_exact() {
    let make = || {
        small_setup(
            vec![1],
            AttackKind::Backward { delay: 2 }, // history-dependent attack
            Box::new(TrimmedMean::new(0.25).unwrap()),
            false,
        )
    };
    // Reference: uninterrupted 6-round run.
    let mut reference = make();
    reference.run(6).unwrap();

    // Checkpointed: 3 rounds, snapshot, fresh engine, restore, 3 more.
    let mut first = make();
    first.run(3).unwrap();
    let snap = first.snapshot();
    assert_eq!(snap.round, 3);
    assert_eq!(snap.version, SNAPSHOT_VERSION);
    let mut resumed = make();
    resumed.restore(&snap).unwrap();
    resumed.run(3).unwrap();

    assert_eq!(reference.client_models(), resumed.client_models());
    assert_eq!(reference.result().rounds, resumed.result().rounds);
}

#[test]
fn restore_validates_shape() {
    let mut a = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
    let mut snap = a.snapshot();
    snap.model_refs.pop();
    assert!(a.restore(&snap).is_err());
    let mut snap = a.snapshot();
    snap.server_state.pop();
    assert!(a.restore(&snap).is_err());
    let mut snap = a.snapshot();
    snap.model_pool[0] = Tensor::zeros(&[3]);
    assert!(a.restore(&snap).is_err());
    let mut snap = a.snapshot();
    snap.model_refs[0] = snap.model_pool.len() as u32;
    assert!(a.restore(&snap).is_err());
}

#[test]
fn restore_accepts_dense_v1_snapshots() {
    // Simulates resuming from a checkpoint written by the pre-cohort
    // engine: version 1 with dense per-client models instead of the
    // interned bank. Continuing must be bit-identical to the run the
    // snapshot came from.
    let make = || {
        small_setup(
            vec![1],
            AttackKind::Backward { delay: 2 },
            Box::new(TrimmedMean::new(0.25).unwrap()),
            false,
        )
    };
    let mut reference = make();
    reference.run(6).unwrap();

    let mut first = make();
    first.run(3).unwrap();
    // Rewrite the snapshot into the v1 layout the old engine produced.
    let v2 = first.snapshot();
    let legacy = Snapshot {
        version: 1,
        round: v2.round,
        client_models: first.client_models(),
        model_pool: Vec::new(),
        model_refs: Vec::new(),
        server_state: v2.server_state.clone(),
        result: v2.result.clone(),
        recovery_state: v2.recovery_state.clone(),
        estimator_scores: Vec::new(),
        estimator_trim: 0,
    };
    // The v1 layout survives serde (the v2-only fields default to empty).
    let json = serde_json::to_string(&legacy).unwrap();
    let legacy: Snapshot = serde_json::from_str(&json).unwrap();

    let mut resumed = make();
    resumed.restore(&legacy).unwrap();
    resumed.run(3).unwrap();
    assert_eq!(reference.client_models(), resumed.client_models());
    assert_eq!(reference.result().rounds, resumed.result().rounds);

    // v1 validation still guards entity counts and model sizes.
    let mut bad = Snapshot { version: 1, ..legacy.clone() };
    bad.client_models.pop();
    assert!(resumed.restore(&bad).is_err());
    let mut bad = legacy.clone();
    bad.client_models[0] = Tensor::zeros(&[3]);
    assert!(resumed.restore(&bad).is_err());
}

#[test]
fn restore_rejects_version_mismatch() {
    let mut a = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
    let mut snap = a.snapshot();
    snap.version = SNAPSHOT_VERSION + 41;
    match a.restore(&snap) {
        Err(SimError::SnapshotVersion { found, expected }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 41);
            assert_eq!(expected, SNAPSHOT_VERSION);
        }
        other => panic!("expected SnapshotVersion, got {other:?}"),
    }
    // An unversioned (legacy) snapshot deserializes to version 0 and is
    // rejected the same way, never silently reinterpreted.
    let json = serde_json::to_string(&a.snapshot()).unwrap();
    let json = json.replace(&format!("\"version\":{SNAPSHOT_VERSION}"), "\"version\":0");
    let legacy: Snapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(legacy.version, 0);
    assert!(matches!(a.restore(&legacy), Err(SimError::SnapshotVersion { found: 0, .. })));
}

#[test]
fn paper_defaults_match_table_ii() {
    let cfg = EngineConfig::paper_defaults(1).unwrap();
    assert_eq!(cfg.topology.num_clients(), 50);
    assert_eq!(cfg.topology.num_servers(), 10);
    assert_eq!(cfg.local_epochs, 3);
    assert_eq!(cfg.upload, UploadStrategy::Sparse);
}

#[test]
fn trivial_fault_plan_is_bit_identical_to_no_plan() {
    let mut plain = small_setup(
        vec![1],
        AttackKind::Noise { std: 0.5 },
        Box::new(TrimmedMean::new(0.25).unwrap()),
        false,
    );
    let mut planned = small_setup(
        vec![1],
        AttackKind::Noise { std: 0.5 },
        Box::new(TrimmedMean::new(0.25).unwrap()),
        false,
    );
    planned.set_fault_plan(crate::FaultPlan::none()).unwrap();
    plain.run(3).unwrap();
    planned.run(3).unwrap();
    assert_eq!(plain.client_models(), planned.client_models());
    assert_eq!(plain.result(), planned.result());
}

#[test]
fn crashed_server_goes_silent_and_run_survives() {
    use crate::{FaultPlan, ServerFault};
    let mut e =
        small_setup(vec![], AttackKind::Benign, Box::new(TrimmedMean::new(0.25).unwrap()), false);
    e.enable_event_log(10_000);
    e.set_record_diagnostics(true);
    e.set_fault_plan(FaultPlan {
        server_faults: vec![ServerFault::None, ServerFault::Crash { round: 1 }],
        ..FaultPlan::default()
    })
    .unwrap();
    e.run(3).unwrap();
    assert!(e.result().final_accuracy().unwrap().is_finite());
    let log = e.event_log().unwrap();
    // Server 1 is up in round 0, silent in rounds 1 and 2.
    assert_eq!(log.of_kind("silent").len(), 2);
    assert!(log
        .of_kind("silent")
        .iter()
        .all(|ev| matches!(ev, RoundEvent::ServerSilent { server: 1, crashed: true, .. })));
    // Round 0 disseminates from 4 servers, later rounds from 3.
    assert_eq!(log.round(0).iter().filter(|e| e.kind() == "disseminate").count(), 4);
    assert_eq!(log.round(2).iter().filter(|e| e.kind() == "disseminate").count(), 3);
    // Uploads routed to the dead server are lost and accounted.
    let comm = e.result().total_comm;
    assert_eq!(
        comm.download_messages,
        (4 + 3 + 3) * 8 // live servers × clients per round
    );
    let diag = e.result().rounds[2].diagnostics.clone().unwrap();
    assert_eq!(diag.silent_servers, 1);
}

#[test]
fn adaptive_filter_survives_crash_plus_byzantine() {
    use crate::{FaultPlan, ServerFault};
    use fedms_aggregation::AdaptiveTrimmedMean;
    // 4 servers, B = 1 Byzantine, 1 crashed from round 1: clients see
    // P' = 3 > 2B models; the fixed-count trim still removes the
    // Byzantine extreme.
    let mut e = small_setup(
        vec![1],
        AttackKind::Random { lo: -10.0, hi: 10.0 },
        Box::new(AdaptiveTrimmedMean::new(1)),
        false,
    );
    e.set_fault_plan(FaultPlan {
        server_faults: vec![
            ServerFault::None,
            ServerFault::None,
            ServerFault::Crash { round: 1 },
            ServerFault::None,
        ],
        ..FaultPlan::default()
    })
    .unwrap();
    e.run(4).unwrap();
    // The random attack injects coordinates ~10; a surviving filter
    // keeps the model norm modest.
    assert!(e.client_models()[0].norm_l2() < 50.0);
}

#[test]
fn degraded_quorum_is_a_typed_error() {
    use crate::{FaultPlan, ServerFault};
    // 4 servers, B = 1: two crashes leave P' = 2 ≤ 2B.
    let mut e = small_setup(
        vec![1],
        AttackKind::Noise { std: 0.5 },
        Box::new(TrimmedMean::new(0.25).unwrap()),
        false,
    );
    e.set_fault_plan(FaultPlan {
        server_faults: vec![
            ServerFault::Crash { round: 1 },
            ServerFault::None,
            ServerFault::Crash { round: 1 },
            ServerFault::None,
        ],
        ..FaultPlan::default()
    })
    .unwrap();
    // Round 0 is healthy…
    e.step_round(false).unwrap();
    // …round 1 must fail fast with the structured error, not panic.
    match e.step_round(false) {
        Err(SimError::DegradedQuorum { round, client, received, needed, total, .. }) => {
            assert_eq!(round, 1);
            assert_eq!(client, 0);
            assert_eq!(received, 2);
            assert_eq!(needed, 2);
            assert_eq!(total, 4);
        }
        other => panic!("expected DegradedQuorum, got {other:?}"),
    }
}

#[test]
fn straggler_delays_then_delivers_stale_models() {
    use crate::{FaultPlan, ServerFault};
    let mut e =
        small_setup(vec![], AttackKind::Benign, Box::new(TrimmedMean::new(0.25).unwrap()), false);
    e.enable_event_log(10_000);
    e.set_fault_plan(FaultPlan {
        server_faults: vec![ServerFault::Straggler { delay: 2 }],
        ..FaultPlan::default()
    })
    .unwrap();
    e.run(4).unwrap();
    let log = e.event_log().unwrap();
    // Warm-up: silent in rounds 0 and 1, delivering from round 2 on.
    let silent: Vec<usize> = log.of_kind("silent").iter().map(|ev| ev.round()).collect();
    assert_eq!(silent, vec![0, 1]);
    assert_eq!(log.round(3).iter().filter(|e| e.kind() == "disseminate").count(), 4);
    assert!(e.result().final_accuracy().unwrap().is_finite());
}

#[test]
fn lossy_downlink_is_deterministic_and_accounted() {
    use crate::FaultPlan;
    let make = || {
        let mut e = small_setup(
            vec![],
            AttackKind::Benign,
            Box::new(TrimmedMean::new(0.25).unwrap()),
            false,
        );
        e.set_fault_plan(FaultPlan {
            downlink_omission: 0.3,
            duplicate_rate: 0.2,
            ..FaultPlan::default()
        })
        .unwrap();
        e
    };
    let mut a = make();
    let mut b = make();
    a.run(3).unwrap();
    b.run(3).unwrap();
    assert_eq!(a.client_models(), b.client_models());
    assert_eq!(a.result(), b.result());
    let comm = a.result().total_comm;
    assert!(comm.dropped_downloads > 0, "30% omission must drop something");
    assert!(comm.duplicated_downloads > 0, "20% duplication must duplicate something");
    // Duplicates add real traffic on top of the 4·8·3 base messages.
    assert_eq!(comm.download_messages, 4 * 8 * 3 + comm.duplicated_downloads);
}

#[test]
fn set_fault_plan_validates_against_topology() {
    use crate::{FaultPlan, ServerFault};
    let mut e = small_setup(vec![], AttackKind::Benign, Box::new(Mean::new()), false);
    // 5 entries for a 4-server federation.
    assert!(e
        .set_fault_plan(FaultPlan {
            server_faults: vec![ServerFault::None; 5],
            ..FaultPlan::default()
        })
        .is_err());
    assert!(e
        .set_fault_plan(FaultPlan { downlink_omission: 1.5, ..FaultPlan::default() })
        .is_err());
    assert!(e.set_fault_plan(FaultPlan::none()).is_ok());
}

#[test]
fn snapshot_resume_is_bit_exact_under_faults() {
    use crate::{FaultPlan, ServerFault};
    // No Byzantine set here: with B = 0 the quorum guard stays out of
    // the way and arbitrarily harsh fault realizations stay runnable.
    let make = || {
        let mut e = small_setup(
            vec![],
            AttackKind::Benign,
            Box::new(TrimmedMean::new(0.25).unwrap()),
            false,
        );
        e.set_fault_plan(FaultPlan {
            server_faults: vec![
                ServerFault::Straggler { delay: 1 },
                ServerFault::Crash { round: 4 },
            ],
            downlink_omission: 0.1,
            ..FaultPlan::default()
        })
        .unwrap();
        e
    };
    let mut reference = make();
    reference.run(6).unwrap();
    let mut first = make();
    first.run(3).unwrap();
    let snap = first.snapshot();
    let mut resumed = make();
    resumed.restore(&snap).unwrap();
    resumed.run(3).unwrap();
    assert_eq!(reference.client_models(), resumed.client_models());
    assert_eq!(reference.result().rounds, resumed.result().rounds);
}

#[test]
fn snapshot_resume_is_bit_exact_with_straggler_and_byzantine() {
    use crate::{FaultPlan, ServerFault};
    // The dual-threat checkpoint case the transport refactor must not
    // break: a history-dependent Byzantine server AND an active straggler
    // outbox cross the snapshot boundary together. With 4 servers, B = 1
    // and one straggler, every client still sees P' = 3 > 2B distinct
    // models, so the quorum guard stays satisfied.
    let make = || {
        let mut e = small_setup(
            vec![3],
            AttackKind::Backward { delay: 2 },
            Box::new(TrimmedMean::new(0.25).unwrap()),
            false,
        );
        e.set_fault_plan(FaultPlan {
            server_faults: vec![ServerFault::Straggler { delay: 1 }],
            ..FaultPlan::default()
        })
        .unwrap();
        e
    };
    let mut reference = make();
    reference.run(6).unwrap();

    let mut first = make();
    first.run(3).unwrap();
    let snap = first.snapshot();
    // The straggler's outbox must actually carry in-flight state across
    // the boundary, and the Byzantine server must carry attack history.
    assert_eq!(snap.server_state[0].2.len(), 1, "straggler outbox in flight");
    assert!(!snap.server_state[3].0.is_empty(), "attack history in flight");

    let mut resumed = make();
    resumed.restore(&snap).unwrap();
    resumed.run(3).unwrap();
    assert_eq!(reference.client_models(), resumed.client_models());
    assert_eq!(reference.result().rounds, resumed.result().rounds);
}
