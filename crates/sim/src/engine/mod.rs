//! The round-loop orchestrator: a thin driver over the phase pipeline
//! ([`crate::phases`]) and the message layer ([`crate::transport`]).

use fedms_aggregation::{AdaptiveTrimmedMean, AggregationRule, ByzantineEstimator, Mean};
use fedms_attacks::{AttackKind, ClientAttack, ServerAttack};
use fedms_data::Dataset;
use fedms_nn::NeuralNet;
use fedms_tensor::pool::{BufferPool, PoolStats};
use fedms_tensor::rng::{derive_seed, rng_for};
use fedms_tensor::Tensor;

use crate::recovery::ResilientTransport;
use crate::store::{ClientStore, Partitions};
use crate::transport::{LocalTransport, Transport};
use crate::{
    phases, EventLog, FaultPlan, Result, RoundEvent, RoundMetrics, RunResult, Server, SimError,
    ThreatView,
};

mod config;
mod snapshot;

pub use config::EngineConfig;
pub use snapshot::{Snapshot, SNAPSHOT_VERSION};

/// A running federation.
///
/// Generic over the client-side model filter (`Def(·)` in the problem
/// definition): [`fedms_aggregation::TrimmedMean`] makes this Fed-MS,
/// [`fedms_aggregation::Mean`] makes it the Vanilla-FL baseline, and any
/// other [`AggregationRule`] gives an ablation. Also generic over the
/// delivery substrate: each round is executed as the phase pipeline
/// [`phases::local_train`] → [`phases::upload`] → [`phases::aggregate`] →
/// [`phases::disseminate`] → [`phases::filter`] over a [`Transport`]
/// (a [`LocalTransport`] by default; swap it with
/// [`SimulationEngine::set_transport`]).
///
/// Clients live in a [`ClientStore`] — per-client metadata plus an
/// interned bank of model vectors — and are rehydrated lazily for the
/// rounds that sample them, so memory scales with the per-round *cohort*
/// ([`EngineConfig::cohort`]), not the federation size `K`.
pub struct SimulationEngine {
    config: EngineConfig,
    store: ClientStore,
    servers: Vec<Server>,
    filter: Box<dyn AggregationRule>,
    server_rule: Box<dyn AggregationRule>,
    client_attacks: Vec<Option<Box<dyn ClientAttack>>>,
    participation: f64,
    transport: Box<dyn Transport>,
    pool: BufferPool,
    record_diagnostics: bool,
    event_log: Option<EventLog>,
    initial_model: Tensor,
    test_samples: Tensor,
    test_labels: Vec<usize>,
    round: usize,
    result: RunResult,
    /// The compromise currently applied to each server by the dynamic
    /// threat schedule (`None` = running its built-in behaviour). Applied
    /// state, not configuration: rebuilt by diffing against the schedule
    /// each round, so a restored engine re-applies the right view on its
    /// first step.
    dynamic_attack: Vec<Option<AttackKind>>,
    /// The online Byzantine-count estimator, when the adaptive defence is
    /// enabled. `None` keeps the statically configured filter bit-identical
    /// in charge.
    estimator: Option<ByzantineEstimator>,
}

impl std::fmt::Debug for SimulationEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationEngine")
            .field("round", &self.round)
            .field("clients", &self.store.num_clients())
            .field("servers", &self.servers.len())
            .field("filter", &self.filter.name())
            .field("transport", &self.transport.name())
            .finish()
    }
}

impl SimulationEngine {
    /// Builds a federation.
    ///
    /// * `train`/`test` — the global dataset splits (image layout; the
    ///   engine flattens them if the model wants flat input),
    /// * `partitions` — per-client sample indices into `train` (from
    ///   [`fedms_data::DirichletPartitioner`]),
    /// * `filter` — the client-side defence `Def(·)`,
    /// * `attacks` — one attack per Byzantine server id declared in the
    ///   topology; ids must match exactly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for mismatched partitions/attacks or
    /// invalid configuration values, and propagates substrate errors.
    pub fn new(
        config: EngineConfig,
        train: &Dataset,
        test: &Dataset,
        partitions: &[Vec<usize>],
        filter: Box<dyn AggregationRule>,
        attacks: Vec<(usize, Box<dyn ServerAttack>)>,
    ) -> Result<Self> {
        Self::with_adversaries(
            config,
            train,
            test,
            partitions,
            filter,
            Box::new(Mean::new()),
            attacks,
            Vec::new(),
        )
    }

    /// Builds a federation with the full dual threat model: Byzantine
    /// *servers* (as in [`SimulationEngine::new`]) **and** Byzantine
    /// *clients* (`client_attacks`, one per malicious client id), with a
    /// configurable server-side aggregation rule (`server_rule`; the
    /// paper's benign servers use the plain mean, a robust rule extends
    /// Fed-MS to the client threat the paper leaves as future work).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SimulationEngine::new`], plus
    /// [`SimError::BadConfig`] for duplicate or out-of-range Byzantine
    /// client ids.
    #[allow(clippy::too_many_arguments)]
    pub fn with_adversaries(
        config: EngineConfig,
        train: &Dataset,
        test: &Dataset,
        partitions: &[Vec<usize>],
        filter: Box<dyn AggregationRule>,
        server_rule: Box<dyn AggregationRule>,
        attacks: Vec<(usize, Box<dyn ServerAttack>)>,
        client_attacks: Vec<(usize, Box<dyn ClientAttack>)>,
    ) -> Result<Self> {
        Self::with_store(
            config,
            train,
            test,
            Partitions::explicit(partitions.to_vec()),
            filter,
            server_rule,
            attacks,
            client_attacks,
        )
    }

    /// Builds a federation from a [`Partitions`] description instead of
    /// eager per-client index lists. [`Partitions::Uniform`] keeps the
    /// description O(1) regardless of `K`, which is what makes
    /// million-client topologies constructible at all; everything else is
    /// identical to [`SimulationEngine::with_adversaries`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`SimulationEngine::with_adversaries`].
    #[allow(clippy::too_many_arguments)]
    pub fn with_store(
        config: EngineConfig,
        train: &Dataset,
        test: &Dataset,
        partitions: Partitions,
        filter: Box<dyn AggregationRule>,
        server_rule: Box<dyn AggregationRule>,
        attacks: Vec<(usize, Box<dyn ServerAttack>)>,
        client_attacks: Vec<(usize, Box<dyn ClientAttack>)>,
    ) -> Result<Self> {
        config.validate()?;
        let topo = &config.topology;
        if partitions.num_clients() != topo.num_clients() {
            return Err(SimError::BadConfig(format!(
                "{} partitions for {} clients",
                partitions.num_clients(),
                topo.num_clients()
            )));
        }
        {
            let mut attack_ids: Vec<usize> = attacks.iter().map(|(id, _)| *id).collect();
            attack_ids.sort_unstable();
            let mut byz_ids: Vec<usize> = topo.byzantine_ids().collect();
            byz_ids.sort_unstable();
            if attack_ids != byz_ids {
                return Err(SimError::BadConfig(format!(
                    "attack ids {attack_ids:?} do not match byzantine ids {byz_ids:?}"
                )));
            }
        }

        // All clients start from the same w₀ (Algorithm 1 line 6).
        let init_seed = derive_seed(config.seed, &[0x494E_4954]); // "INIT"
        let reference = config.model.build(init_seed)?;
        let initial_model = fedms_nn::NeuralNet::param_vector(reference.as_ref());

        let flat = config.model.wants_flat_input();
        let test_set = if flat { test.flattened() } else { test.clone() };
        // Flattening the whole train split up front (a reshape) makes
        // per-client shards bit-identical to the old subset-then-flatten
        // path while letting the store hydrate lazily.
        let train_set = if flat { train.flattened() } else { train.clone() };
        let store = ClientStore::new(
            config.model.clone(),
            init_seed,
            config.seed,
            config.batch_size,
            config.schedule,
            train_set,
            partitions,
            initial_model.clone(),
            config.resolve_backend()?,
        )?;

        let mut attack_map: std::collections::BTreeMap<usize, Box<dyn ServerAttack>> =
            attacks.into_iter().collect();
        let mut servers = Vec::with_capacity(topo.num_servers());
        for i in 0..topo.num_servers() {
            let seed = config.seed;
            servers.push(match attack_map.remove(&i) {
                Some(attack) => Server::byzantine(i, attack, seed),
                None => Server::benign(i, seed),
            });
        }

        let mut client_attack_slots: Vec<Option<Box<dyn ClientAttack>>> =
            (0..topo.num_clients()).map(|_| None).collect();
        for (id, attack) in client_attacks {
            if id >= client_attack_slots.len() {
                return Err(SimError::BadConfig(format!(
                    "byzantine client id {id} out of range for {} clients",
                    client_attack_slots.len()
                )));
            }
            if client_attack_slots[id].is_some() {
                return Err(SimError::BadConfig(format!("duplicate attack for client {id}")));
            }
            client_attack_slots[id] = Some(attack);
        }

        // The base transport, wrapped in the recovery layer whenever the
        // policy actually changes delivery behaviour (a disabled policy is
        // bit-identical, but keeping the decorator out preserves the
        // "trivial config = trivial machinery" invariant).
        let local = LocalTransport::new(config.seed, topo.num_clients(), topo.num_servers());
        let transport: Box<dyn Transport> = if config.recovery.is_disabled() {
            Box::new(local)
        } else {
            Box::new(ResilientTransport::new(
                local,
                config.recovery,
                config.seed,
                topo.num_clients(),
                topo.num_servers(),
            )?)
        };

        let estimator = config
            .estimator
            .enabled
            .then(|| ByzantineEstimator::new(topo.num_servers(), config.estimator));
        let dynamic_attack = vec![None; topo.num_servers()];
        Ok(SimulationEngine {
            participation: 1.0,
            transport,
            pool: BufferPool::new(),
            record_diagnostics: false,
            event_log: None,
            client_attacks: client_attack_slots,
            server_rule,
            config,
            store,
            servers,
            filter,
            initial_model,
            test_samples: test_set.samples().clone(),
            test_labels: test_set.labels().to_vec(),
            round: 0,
            result: RunResult::new(),
            dynamic_attack,
            estimator,
        })
    }

    /// Ids of the Byzantine clients (empty under the paper's base model).
    pub fn byzantine_client_ids(&self) -> Vec<usize> {
        self.client_attacks.iter().enumerate().filter_map(|(i, a)| a.as_ref().map(|_| i)).collect()
    }

    /// Rotates the labels of one client's training shard (the data-level
    /// side of a label-flip Byzantine client).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for an out-of-range client id.
    pub fn poison_client_labels(&mut self, client: usize, offset: usize) -> Result<()> {
        if client >= self.store.num_clients() {
            return Err(SimError::BadConfig(format!(
                "client {client} out of range for {} clients",
                self.store.num_clients()
            )));
        }
        self.store.poison(client, offset);
        Ok(())
    }

    /// Sets the per-round client participation fraction: each round only a
    /// uniformly sampled `⌈fraction·K⌉` clients train and upload (classic
    /// partial device participation; the paper's Lemma 3 machinery covers
    /// it). Everyone still receives the dissemination and filters. Under
    /// cohort sampling ([`EngineConfig::cohort`]) the fraction applies
    /// *within* the cohort.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] unless `0 < fraction ≤ 1`.
    pub fn set_participation(&mut self, fraction: f64) -> Result<()> {
        if !(fraction.is_finite() && fraction > 0.0 && fraction <= 1.0) {
            return Err(SimError::BadConfig(format!(
                "participation must be in (0, 1], got {fraction}"
            )));
        }
        self.participation = fraction;
        Ok(())
    }

    /// Replaces the delivery substrate the phase pipeline runs over. The
    /// new transport starts from its own configuration — re-install any
    /// fault plan or drop rate on it (or configure it before handing it
    /// over).
    pub fn set_transport(&mut self, transport: Box<dyn Transport>) {
        self.transport = transport;
    }

    /// The active delivery substrate.
    pub fn transport(&self) -> &dyn Transport {
        self.transport.as_ref()
    }

    /// Sets the probability that any single client→server upload message is
    /// lost in transit (outdoor edge links are lossy; the fallback of
    /// re-using the previous aggregate covers servers that receive
    /// nothing). Dropped messages are still counted as sent — the sender
    /// pays for the attempt.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] unless `0 ≤ rate < 1`.
    pub fn set_upload_drop_rate(&mut self, rate: f64) -> Result<()> {
        self.transport.set_upload_drop_rate(rate)
    }

    /// Installs a benign-fault schedule on the transport
    /// (crash/straggler/omission/duplicate faults; see
    /// [`crate::FaultPlan`]). The trivial plan restores fault-free
    /// behaviour bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the plan does not fit this
    /// topology (see [`FaultPlan::validate`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<()> {
        self.transport.install_fault_plan(plan)
    }

    /// The active fault schedule (trivial by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        self.transport.fault_plan()
    }

    /// The online estimator's current trim level `β̂·P`, when the adaptive
    /// defence ([`EngineConfig::estimator`]) is enabled.
    pub fn estimated_trim(&self) -> Option<usize> {
        self.estimator.as_ref().map(|e| e.trim())
    }

    /// Ids of the servers currently compromised by the dynamic threat
    /// schedule (empty whenever the schedule is trivial or quiescent).
    pub fn compromised_servers(&self) -> Vec<usize> {
        self.dynamic_attack.iter().enumerate().filter_map(|(i, a)| a.as_ref().map(|_| i)).collect()
    }

    /// Applies the dynamic threat schedule's view for the current round:
    /// diffs the scheduled compromise set against what is already applied
    /// (attacks are built or removed only on transitions, so a steady
    /// epoch does no per-round work), hands the network-layer threat to
    /// the transport, and emits a [`RoundEvent::ThreatEpoch`] whenever the
    /// view changed since the previous round.
    fn apply_threat_view(&mut self) -> Result<()> {
        let view = self.config.threat.view(self.round);
        for (i, applied) in self.dynamic_attack.iter_mut().enumerate() {
            let want = view.compromised.get(&i).copied();
            if want != *applied {
                let attack = match want {
                    Some(kind) => Some(kind.build().map_err(SimError::from)?),
                    None => None,
                };
                self.servers[i].set_attack(attack);
                *applied = want;
            }
        }
        self.transport.set_net_threat(view.net_threat());
        let previous = if self.round == 0 {
            ThreatView::default()
        } else {
            self.config.threat.view(self.round - 1)
        };
        if view != previous {
            if let Some(log) = self.event_log.as_mut() {
                log.push(RoundEvent::ThreatEpoch {
                    round: self.round,
                    epoch: self.config.threat.epoch_index(self.round),
                    compromised: view.compromised.keys().copied().collect(),
                    partitioned: view.partitioned.iter().copied().collect(),
                    corrupt_rate: view.corrupt_rate,
                });
            }
        }
        Ok(())
    }

    /// Enables the structured event log with the given retention capacity
    /// (see [`crate::EventLog`]); pass 0 to disable recording again.
    pub fn enable_event_log(&mut self, capacity: usize) {
        self.event_log = if capacity == 0 { None } else { Some(EventLog::with_capacity(capacity)) };
    }

    /// The event log, if enabled.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.event_log.as_ref()
    }

    /// Enables per-round defence diagnostics (see
    /// [`crate::RoundDiagnostics`]). Costs a few extra vector passes per
    /// evaluated round.
    pub fn set_record_diagnostics(&mut self, on: bool) {
        self.record_diagnostics = on;
    }

    /// The static configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current round (number of completed rounds).
    pub fn round(&self) -> usize {
        self.round
    }

    /// The shared initial model `w₀`.
    pub fn initial_model(&self) -> &Tensor {
        &self.initial_model
    }

    /// Metrics recorded so far.
    pub fn result(&self) -> &RunResult {
        &self.result
    }

    /// The current flat model vector of each client. Materializes `K`
    /// dense tensors — fine for inspection at paper scale, not something
    /// to call inside a million-client loop (use
    /// [`SimulationEngine::distinct_client_models`] there).
    pub fn client_models(&self) -> Vec<Tensor> {
        self.store.dense_models()
    }

    /// Number of *distinct* model vectors across all clients (the interned
    /// bank's size): the engine's resident model state is proportional to
    /// this, not to `K`.
    pub fn distinct_client_models(&self) -> usize {
        self.store.distinct_models()
    }

    /// Counters of the engine's downlink buffer pool (see
    /// [`PoolStats`]); `high_water_bytes` bounds the transient filter-view
    /// memory of the run so far.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Runs `rounds` training rounds, evaluating per the configuration.
    /// Returns the accumulated result (clone of [`SimulationEngine::result`]).
    ///
    /// # Errors
    ///
    /// Propagates any substrate error; the engine is left at the round that
    /// failed.
    pub fn run(&mut self, rounds: usize) -> Result<RunResult> {
        for r in 0..rounds {
            let evaluate = self.round.is_multiple_of(self.config.eval_every) || (r + 1 == rounds);
            self.step_round(evaluate)?;
        }
        Ok(self.result.clone())
    }

    /// Executes exactly one round as the five-phase pipeline over the
    /// transport; records metrics if `evaluate`.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors. On error the round is not committed:
    /// models, the round counter and the comm totals are untouched (the
    /// next [`Transport::begin_round`] discards the partial round's
    /// counters).
    pub fn step_round(&mut self, evaluate: bool) -> Result<()> {
        let topo = self.config.topology.clone();
        let (num_clients, num_servers) = (topo.num_clients(), topo.num_servers());

        // Dynamic threat: realize this round's scheduled view — compromise
        // or heal servers, move the partition/corruption state to the wire
        // — before the transport opens the round. A trivial schedule takes
        // this branch never, leaving the engine bit-identical to a build
        // without the threat layer.
        let threat_epoch = if self.config.threat.is_trivial() {
            None
        } else {
            self.apply_threat_view()?;
            self.config.threat.epoch_index(self.round)
        };

        self.transport.begin_round(self.round, self.initial_model.len());

        // All engine-level randomness is derived per round from the root
        // seed, making every round a pure function of (config, round,
        // client/server state) — the property behind bit-exact
        // checkpoint/resume ([`SimulationEngine::snapshot`]).
        let round_label = self.round as u64;
        let worker_threads = self.worker_threads();
        let mut upload_rng = rng_for(self.config.seed, &[0x55_50_4C_44, round_label]); // "UPLD"
        let mut participation_rng = rng_for(self.config.seed, &[0x50_41_52_54, round_label]); // "PART"
        let mut client_attack_rng = rng_for(self.config.seed, &[0x43_41_54, round_label]); // "CAT"

        // This round's cohort: the clients that exist for the round at all
        // (train, upload, receive, filter). `cohort = 0` or ≥ K keeps the
        // full federation and is bit-identical to the pre-cohort engine.
        let cohort: Vec<usize> = if self.config.cohort == 0 || self.config.cohort >= num_clients {
            (0..num_clients).collect()
        } else {
            let mut cohort_rng = rng_for(self.config.seed, &[0x43_48_52_54, round_label]); // "CHRT"
            phases::sample_cohort((0..num_clients).collect(), self.config.cohort, &mut cohort_rng)
        };
        self.transport.set_round_recipients(cohort.len());

        // Partial participation applies within the cohort.
        let active: Vec<usize> = if self.participation >= 1.0 {
            cohort.clone()
        } else {
            let take =
                ((self.participation * cohort.len() as f64).ceil() as usize).clamp(1, cohort.len());
            phases::sample_cohort(cohort.clone(), take, &mut participation_rng)
        };

        // 1. Local training (Algorithm 1 lines 8–10) — active clients only,
        // rehydrated one-at-a-time per worker from the store.
        let (mut trained, mean_train_loss) = phases::local_train(phases::TrainCtx {
            store: &self.store,
            active: &active,
            round: self.round,
            local_epochs: self.config.local_epochs,
            threads: worker_threads,
            event_log: self.event_log.as_mut(),
        })?;

        // Accuracy of the freshly trained *local* models (the paper's
        // metric), measured before aggregation touches them.
        let local_accuracy = if evaluate && self.config.eval_after_local {
            Some(self.mean_accuracy_over(Some((&active, &trained)))?)
        } else {
            None
        };

        // 2. Sparse upload (line 11) over the transport. The assignment is
        // drawn over the cohort (positions align with cohort order), so a
        // full cohort consumes the "UPLD" stream exactly as before. When
        // both the transport and the server rule can stream, delivered
        // uploads fold into per-server running aggregates instead of being
        // buffered — at most O(P × dim) extra memory.
        let assignment = self.config.upload.assign(cohort.len(), num_servers, &mut upload_rng)?;
        let mut accumulators = if self.transport.supports_streaming() {
            (0..num_servers)
                .map(|_| self.server_rule.make_accumulator())
                .collect::<Option<Vec<_>>>()
        } else {
            None
        };
        phases::upload(
            phases::UploadCtx {
                transport: self.transport.as_mut(),
                store: &self.store,
                client_attacks: &self.client_attacks,
                cohort: &cohort,
                active: &active,
                trained: &mut trained,
                round: self.round,
                event_log: self.event_log.as_mut(),
            },
            &assignment,
            &mut client_attack_rng,
            accumulators.as_deref_mut(),
        )?;

        // 3. Aggregation (lines 3–4): online servers reduce their streamed
        // accumulator or aggregate their inbox; crash/straggler silence is
        // realized by the transport.
        let (ready, silent_servers) = phases::aggregate(phases::AggregateCtx {
            transport: self.transport.as_mut(),
            servers: &mut self.servers,
            server_rule: self.server_rule.as_ref(),
            initial_model: &self.initial_model,
            round: self.round,
            accumulators,
            event_log: self.event_log.as_mut(),
        })?;

        // 4. Dissemination (line 5), Byzantine or not. Equivocating
        // attacks still cover all K client slots; only the cohort drains
        // them. When the estimator runs, each server's post-attack
        // dissemination is also captured as its observable view.
        let mut estimator_views: Vec<(usize, Tensor)> = Vec::new();
        phases::disseminate(
            phases::DisseminateCtx {
                transport: self.transport.as_mut(),
                servers: &mut self.servers,
                num_clients,
                round: self.round,
                event_log: self.event_log.as_mut(),
            },
            ready,
            self.estimator.is_some().then_some(&mut estimator_views),
        )?;

        // Online B̂ estimation: score the servers' observable
        // disseminations (partitioned servers contribute nothing — their
        // frames never arrive) and let the adaptive trimmed mean take over
        // the client-side defence at the estimated trim level.
        let mut beta_hat = None;
        let mut adaptive: Option<AdaptiveTrimmedMean> = None;
        if let Some(estimator) = self.estimator.as_mut() {
            if threat_epoch.is_some() {
                let view = self.config.threat.view(self.round);
                estimator_views.retain(|(s, _)| !view.partitioned.contains(s));
            }
            let observed: Vec<(usize, &[f32])> =
                estimator_views.iter().map(|(s, t)| (*s, t.as_slice())).collect();
            let previous = estimator.trim();
            let estimate = estimator.observe(&observed);
            drop(observed);
            estimator_views.clear();
            if estimate.trim != previous {
                if let Some(log) = self.event_log.as_mut() {
                    log.push(RoundEvent::BetaAdjusted {
                        round: self.round,
                        previous,
                        trim: estimate.trim,
                        suspects: estimate.suspects,
                    });
                }
            }
            beta_hat = Some(estimate.trim);
            adaptive = Some(AdaptiveTrimmedMean::new(estimate.trim));
        }

        // 5. Client-side filtering (lines 12–13): w_{t+1,0}^k = Def(ã…),
        // over however many models survive the faults, block by block
        // through the buffer pool.
        let capture_views = self.record_diagnostics && evaluate;
        let filter: &dyn AggregationRule = match adaptive.as_ref() {
            Some(rule) => rule,
            None => self.filter.as_ref(),
        };
        let outcome = phases::filter(phases::FilterCtx {
            transport: self.transport.as_mut(),
            store: &self.store,
            cohort: &cohort,
            active: &active,
            trained: &trained,
            pool: &self.pool,
            filter,
            num_servers,
            byz_servers: match beta_hat {
                Some(trim) => trim,
                None => topo.byzantine_ids().count(),
            },
            round: self.round,
            event_log: self.event_log.as_mut(),
            capture_views,
            on_degraded: self.config.recovery.on_degraded,
            threads: worker_threads,
            beta_hat,
            threat_epoch,
        })?;

        let diagnostics = if capture_views {
            Some(phases::diagnostics(phases::DiagnosticsCtx {
                views: &outcome.first_views,
                filtered0: &outcome.models[0],
                store: &self.store,
                active: &active,
                trained: &trained,
                silent_servers,
                suppressed_duplicates: outcome.suppressed_duplicates,
            })?)
        } else {
            None
        };

        // Commit: install the cohort's filtered models into the bank (the
        // rest of the federation keeps its banked state), advance the
        // round, absorb the transport's counters.
        for (&k, model) in cohort.iter().zip(outcome.models) {
            self.store.set_model(k, model)?;
        }
        self.store.sweep();
        self.round += 1;
        let comm = self.transport.take_comm();
        self.result.total_comm += comm;

        // 6. Evaluation: mean test accuracy of the local models.
        if evaluate {
            let mean_accuracy = match local_accuracy {
                Some(acc) => acc,
                None => self.mean_accuracy_over(None)?,
            };
            self.result.rounds.push(RoundMetrics {
                round: self.round - 1,
                mean_accuracy,
                mean_train_loss: mean_train_loss as f32,
                comm,
                diagnostics,
            });
        }
        Ok(())
    }

    /// Mean test accuracy over the configured number of **benign** clients
    /// (Byzantine clients train on purpose-poisoned objectives; excluding
    /// them from the quality metric is the robust-FL convention).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; returns [`SimError::BadConfig`] if
    /// every client is Byzantine.
    pub fn evaluate_mean_accuracy(&self) -> Result<f32> {
        self.mean_accuracy_over(None)
    }

    /// Accuracy over the banked models, with `overrides` substituting the
    /// freshly trained vectors for this round's active clients (both
    /// slices sorted by client id, aligned with each other).
    fn mean_accuracy_over(&self, overrides: Option<(&[usize], &[Tensor])>) -> Result<f32> {
        let mut indices: Vec<usize> =
            (0..self.store.num_clients()).filter(|&i| self.client_attacks[i].is_none()).collect();
        if indices.is_empty() {
            return Err(SimError::BadConfig("no benign clients to evaluate".into()));
        }
        if self.config.eval_clients != 0 {
            indices.truncate(self.config.eval_clients);
        }
        let store = &self.store;
        let samples = &self.test_samples;
        let labels = &self.test_labels;
        let results = phases::map_in_order(indices, self.worker_threads(), |k| {
            let vector = match overrides {
                Some((active, trained)) => match active.binary_search(&k) {
                    Ok(pos) => &trained[pos],
                    Err(_) => store.model(k),
                },
                None => store.model(k),
            };
            let mut model = store.build_model()?;
            model.set_param_vector(vector)?;
            Ok::<f32, SimError>(model.evaluate(samples, labels)?)
        });
        let mut accs = Vec::with_capacity(results.len());
        for res in results {
            accs.push(res?);
        }
        Ok((accs.iter().map(|&a| a as f64).sum::<f64>() / accs.len() as f64) as f32)
    }

    /// Resolves the effective worker-thread count for the client-parallel
    /// phases: 1 when `parallel` is off, the configured count when set,
    /// one per available core otherwise.
    fn worker_threads(&self) -> usize {
        if !self.config.parallel {
            1
        } else if self.config.threads != 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4)
        }
    }
}

#[cfg(test)]
mod tests;
