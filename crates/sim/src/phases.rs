//! The composable phases of one federated round.
//!
//! [`crate::SimulationEngine::step_round`] is a thin orchestrator over the
//! functions in this module, each of which implements exactly one stage of
//! Algorithm 1 against a narrow context struct:
//!
//! 1. [`local_train`] — local SGD on the active clients (lines 8–10),
//! 2. [`upload`] — client-attack tampering + sparse upload over the
//!    [`Transport`] (line 11),
//! 3. [`aggregate`] — per-server aggregation of whatever arrived, passed
//!    through the server's delivery pipeline (lines 3–4),
//! 4. [`disseminate`] — (possibly Byzantine) dissemination, queued on the
//!    transport (line 5),
//! 5. [`filter`] — per-client realization of the downlink and the
//!    `Def(·)` filter (lines 12–13).
//!
//! The phases never touch fault realization or message accounting — both
//! live behind the [`Transport`] — and they never share mutable state
//! except through their contexts, so ablating, reordering (where the
//! protocol allows) or instrumenting a single stage is a local change.
//!
//! Memory model: the phases read clients through a
//! [`crate::store::ClientStore`] and only ever materialize the *cohort*
//! (this round's sampled clients). Training rehydrates one client per
//! worker at a time; uploads stream into per-server accumulators when the
//! transport supports it; filtering drains downlinks in fixed-size blocks
//! through a [`BufferPool`]. At no point does the pipeline hold more than
//! `O(cohort × dim)` trained vectors plus `O(block × P × dim)` transient
//! views.

use fedms_aggregation::{AggregationRule, Mean, MeanAccumulator};
use fedms_attacks::{ClientAttack, ClientAttackContext};
use fedms_tensor::pool::BufferPool;
use fedms_tensor::Tensor;
use rand::rngs::StdRng;

use crate::recovery::{DegradedMode, UploadReport};
use crate::store::ClientStore;
use crate::transport::{Broadcast, DeliveryOutcome, Dissemination, Transport, Upload};
use crate::{EventLog, Result, RoundDiagnostics, RoundEvent, Server, SimError};

/// Downlink realizations processed per filter block: bounds the pooled
/// view tensors resident at once to `O(FILTER_BLOCK × P × dim)` without
/// affecting results (the stitch order is block-independent).
const FILTER_BLOCK: usize = 256;

/// Uniformly samples `take` of `ids` without replacement, returning them
/// sorted (so later phases walk clients in id order). `take ≥ ids.len()`
/// returns `ids` untouched — without consuming the RNG — which makes a
/// full cohort bit-identical to not sampling at all. Used for both the
/// per-round cohort draw (`"CHRT"` stream) and partial participation
/// within the cohort (`"PART"` stream).
pub fn sample_cohort(mut ids: Vec<usize>, take: usize, rng: &mut StdRng) -> Vec<usize> {
    if take >= ids.len() {
        return ids;
    }
    use rand::seq::SliceRandom;
    ids.shuffle(rng);
    ids.truncate(take.max(1));
    ids.sort_unstable();
    ids
}

/// Context for the local-training phase.
pub(crate) struct TrainCtx<'a> {
    /// Client metadata + model bank; active clients are rehydrated from it.
    pub store: &'a ClientStore,
    /// This round's active client ids (strictly increasing).
    pub active: &'a [usize],
    /// Current round index.
    pub round: usize,
    /// Local SGD iterations per round (the paper's `E`).
    pub local_epochs: usize,
    /// Worker threads for client-parallel training (≤ 1 = sequential;
    /// results are bit-identical across thread counts).
    pub threads: usize,
    /// Structured event sink, if enabled.
    pub event_log: Option<&'a mut EventLog>,
}

/// Phase 1 — local training on the active clients. Each worker hydrates
/// one client at a time, trains it, and keeps only the trained parameter
/// vector (the [`crate::Client`] is dropped before the next item), so peak
/// memory is `O(threads × client)` + `O(active × dim)` outputs. Returns
/// the trained vectors (aligned with `active`) and the mean training loss.
pub(crate) fn local_train(mut ctx: TrainCtx<'_>) -> Result<(Vec<Tensor>, f64)> {
    let global_step = ctx.round * ctx.local_epochs;
    let epochs = ctx.local_epochs;
    let store = ctx.store;
    let results = map_in_order(ctx.active.to_vec(), ctx.threads, |k| {
        let mut client = store.hydrate(k)?;
        let loss = client.local_train(epochs, global_step)?;
        Ok::<(Tensor, f32), SimError>((client.model_vector(), loss))
    });
    let mut trained = Vec::with_capacity(ctx.active.len());
    let mut losses = Vec::with_capacity(ctx.active.len());
    for res in results {
        let (vector, loss) = res?;
        trained.push(vector);
        losses.push(loss);
    }
    if let Some(log) = ctx.event_log.as_deref_mut() {
        for (&client, &loss) in ctx.active.iter().zip(losses.iter()) {
            log.push(RoundEvent::LocalTrainingCompleted { round: ctx.round, client, loss });
        }
    }
    Ok((trained, losses.iter().map(|&l| l as f64).sum::<f64>() / losses.len() as f64))
}

/// Context for the upload phase.
pub(crate) struct UploadCtx<'a> {
    /// The delivery substrate.
    pub transport: &'a mut dyn Transport,
    /// Client metadata + model bank (start-of-round vectors; the bank is
    /// not committed until the round ends).
    pub store: &'a ClientStore,
    /// Per-client Byzantine upload tampering, indexed by client id.
    pub client_attacks: &'a [Option<Box<dyn ClientAttack>>],
    /// This round's cohort (strictly increasing); `assignment` aligns with
    /// it positionally.
    pub cohort: &'a [usize],
    /// This round's active client ids (a subset of the cohort).
    pub active: &'a [usize],
    /// Trained vectors aligned with `active`; Byzantine entries are
    /// tampered in place.
    pub trained: &'a mut [Tensor],
    /// Current round index.
    pub round: usize,
    /// Structured event sink, if enabled.
    pub event_log: Option<&'a mut EventLog>,
}

/// Phase 2 — sparse upload: Byzantine clients tamper with their vectors
/// (in client order, sharing `attack_rng`), then every active client sends
/// per `assignment` over the transport. With `accumulators` present
/// (streaming transports + a streamable server rule), each delivered model
/// is folded straight into its server's running aggregate instead of being
/// queued — bit-identical, since arrival order equals send order.
pub(crate) fn upload(
    mut ctx: UploadCtx<'_>,
    assignment: &[Vec<usize>],
    attack_rng: &mut StdRng,
    mut accumulators: Option<&mut [MeanAccumulator]>,
) -> Result<()> {
    // Byzantine clients tamper with their uploads (extension beyond the
    // paper's server-only threat model). All attack slots draw in client
    // order — active or not — so the shared stream stays aligned with the
    // full-participation engine.
    for (k, slot) in ctx.client_attacks.iter().enumerate() {
        let Some(attack) = slot else { continue };
        let global = if ctx.round == 0 { None } else { Some(ctx.store.model(k)) };
        match ctx.active.binary_search(&k) {
            Ok(pos) => {
                let tampered = {
                    let actx = ClientAttackContext::new(ctx.round, k, &ctx.trained[pos], global);
                    attack.tamper_upload(&actx, attack_rng)?
                };
                ctx.trained[pos] = tampered;
            }
            Err(_) => {
                // Inactive this round: nothing is uploaded, but the draw
                // still happens (its untrained vector is the bank model).
                let actx = ClientAttackContext::new(ctx.round, k, ctx.store.model(k), global);
                let _ = attack.tamper_upload(&actx, attack_rng)?;
            }
        }
    }
    for (ci, &k) in ctx.cohort.iter().enumerate() {
        let Ok(pos) = ctx.active.binary_search(&k) else { continue };
        for &s in &assignment[ci] {
            let report = match accumulators.as_deref_mut() {
                Some(accs) => match ctx.transport.route_upload(k, s) {
                    Some(outcome) => {
                        if outcome == DeliveryOutcome::Delivered {
                            accs[s].push(&ctx.trained[pos])?;
                        }
                        UploadReport::direct(outcome, s)
                    }
                    // A transport that advertises streaming but declines to
                    // route this upload by reference: fall back to the
                    // buffered path for it instead of panicking. The
                    // aggregation phase folds such inbox entries into the
                    // accumulator, so no delivered model is lost.
                    None => ctx.transport.send_upload_tracked(Upload {
                        client: k,
                        server: s,
                        model: ctx.trained[pos].clone(),
                    }),
                },
                None => ctx.transport.send_upload_tracked(Upload {
                    client: k,
                    server: s,
                    model: ctx.trained[pos].clone(),
                }),
            };
            if let Some(log) = ctx.event_log.as_deref_mut() {
                log.push(RoundEvent::UploadSent {
                    round: ctx.round,
                    client: k,
                    server: s,
                    dropped: report.outcome == DeliveryOutcome::Dropped,
                });
                // A clean single-attempt exchange needs no recovery event.
                if report.attempts > 1 || report.failed_over || report.deadline_missed {
                    log.push(RoundEvent::UploadRecovery {
                        round: ctx.round,
                        client: k,
                        server: s,
                        delivered_to: (report.outcome == DeliveryOutcome::Delivered)
                            .then_some(report.server),
                        attempts: report.attempts,
                        failed_over: report.failed_over,
                        deadline_missed: report.deadline_missed,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Context for the aggregation phase.
pub(crate) struct AggregateCtx<'a> {
    /// The delivery substrate.
    pub transport: &'a mut dyn Transport,
    /// All servers.
    pub servers: &'a mut [Server],
    /// The server-side aggregation rule (the paper's mean).
    pub server_rule: &'a dyn AggregationRule,
    /// Fallback aggregate for servers that never received anything.
    pub initial_model: &'a Tensor,
    /// Current round index.
    pub round: usize,
    /// Per-server streaming accumulators already fed by the upload phase,
    /// if the round ran in streaming mode.
    pub accumulators: Option<Vec<MeanAccumulator>>,
    /// Structured event sink, if enabled.
    pub event_log: Option<&'a mut EventLog>,
}

/// Phase 3 — per-server aggregation. Each online server reduces its
/// streaming accumulator (or aggregates its transport inbox on the
/// buffered path) and pushes the result through its delivery pipeline.
/// Returns the aggregate each server is ready to disseminate this round
/// (`None` = silent: crashed, or a straggler pipeline still filling) and
/// the number of silent servers.
pub(crate) fn aggregate(mut ctx: AggregateCtx<'_>) -> Result<(Vec<Option<Tensor>>, usize)> {
    let mut accumulators = ctx.accumulators.take();
    let mut ready: Vec<Option<Tensor>> = Vec::with_capacity(ctx.servers.len());
    let mut silent = 0usize;
    for (i, server) in ctx.servers.iter_mut().enumerate() {
        if !ctx.transport.server_online(i) {
            silent += 1;
            if let Some(log) = ctx.event_log.as_deref_mut() {
                log.push(RoundEvent::ServerSilent { round: ctx.round, server: i, crashed: true });
            }
            ready.push(None);
            continue;
        }
        let inbox = ctx.transport.take_inbox(i);
        let streamed = accumulators.as_mut().map(|a| std::mem::take(&mut a[i]));
        let (received, agg) = match streamed {
            // `finish` is bit-identical to `Mean::aggregate` over the
            // inbox the buffered path would have built. A transport that
            // declined to route some uploads by reference leaves them in
            // the buffered inbox; fold them into the accumulator so no
            // delivered model is lost.
            Some(mut acc) if acc.count() > 0 || !inbox.is_empty() => {
                for model in &inbox {
                    acc.push(model)?;
                }
                (acc.count(), server.install_aggregate(acc.finish().map_err(SimError::from)?))
            }
            // Empty accumulator or buffered path: the server falls back to
            // its previous aggregate (or w₀) exactly as before.
            _ => (inbox.len(), server.aggregate(&inbox, ctx.initial_model, ctx.server_rule)?),
        };
        if let Some(log) = ctx.event_log.as_deref_mut() {
            log.push(RoundEvent::Aggregated {
                round: ctx.round,
                server: i,
                received,
                aggregate_norm: agg.norm_l2(),
            });
        }
        let (_, out) = ctx.transport.release_aggregate(i, agg);
        match out {
            Some(t) => ready.push(Some(t)),
            None => {
                silent += 1;
                if let Some(log) = ctx.event_log.as_deref_mut() {
                    log.push(RoundEvent::ServerSilent {
                        round: ctx.round,
                        server: i,
                        crashed: false,
                    });
                }
                ready.push(None);
            }
        }
    }
    Ok((ready, silent))
}

/// Context for the dissemination phase.
pub(crate) struct DisseminateCtx<'a> {
    /// The delivery substrate.
    pub transport: &'a mut dyn Transport,
    /// All servers.
    pub servers: &'a mut [Server],
    /// Number of clients the dissemination must cover.
    pub num_clients: usize,
    /// Current round index.
    pub round: usize,
    /// Structured event sink, if enabled.
    pub event_log: Option<&'a mut EventLog>,
}

/// Phase 4 — dissemination: each non-silent server sends out its ready
/// aggregate — honestly, or through its Byzantine attack — and the result
/// is queued on the transport for every client.
///
/// With `capture` present (the online Byzantine-count estimator is
/// running), each disseminating server's *post-attack* view is recorded as
/// `(server, model)` before it is queued — the broadcast tensor, or the
/// first client's slice of an equivocating dissemination, which is exactly
/// what a client-side observer could see on the wire.
pub(crate) fn disseminate(
    mut ctx: DisseminateCtx<'_>,
    ready: Vec<Option<Tensor>>,
    mut capture: Option<&mut Vec<(usize, Tensor)>>,
) -> Result<()> {
    for (i, out) in ready.into_iter().enumerate() {
        let Some(out) = out else { continue };
        let server = &mut ctx.servers[i];
        let d = server.disseminate(&out, ctx.round, ctx.num_clients)?;
        let equivocating = matches!(d, Dissemination::PerClient(_));
        let byzantine = server.is_byzantine();
        if let Some(views) = capture.as_deref_mut() {
            let observed = match &d {
                Dissemination::Broadcast(t) => Some(t.clone()),
                Dissemination::PerClient(per) => per.first().cloned(),
            };
            if let Some(t) = observed {
                views.push((i, t));
            }
        }
        ctx.transport.broadcast(Broadcast { server: i, model: d })?;
        if let Some(log) = ctx.event_log.as_deref_mut() {
            log.push(RoundEvent::Disseminated {
                round: ctx.round,
                server: i,
                byzantine,
                equivocating,
            });
        }
    }
    Ok(())
}

/// Context for the filtering phase.
pub(crate) struct FilterCtx<'a> {
    /// The delivery substrate.
    pub transport: &'a mut dyn Transport,
    /// Client metadata + model bank (blackout fallback for inactive cohort
    /// members keeps the banked local model).
    pub store: &'a ClientStore,
    /// This round's cohort — the clients that realize the downlink and
    /// filter (strictly increasing).
    pub cohort: &'a [usize],
    /// This round's active client ids (a subset of the cohort).
    pub active: &'a [usize],
    /// Trained vectors aligned with `active` (blackout fallback for active
    /// clients keeps the freshly trained model).
    pub trained: &'a [Tensor],
    /// Recycles the per-client view tensors across filter blocks.
    pub pool: &'a BufferPool,
    /// The client-side defence `Def(·)`.
    pub filter: &'a dyn AggregationRule,
    /// Total number of servers `P`.
    pub num_servers: usize,
    /// Number of Byzantine servers `B`.
    pub byz_servers: usize,
    /// Current round index.
    pub round: usize,
    /// Structured event sink, if enabled.
    pub event_log: Option<&'a mut EventLog>,
    /// Capture the first cohort client's realized view for defence
    /// diagnostics.
    pub capture_views: bool,
    /// What to do when a client's view degrades below quorum anyway.
    pub on_degraded: DegradedMode,
    /// Worker threads for the per-client filter applications (≤ 1 =
    /// sequential; results are bit-identical across thread counts).
    pub threads: usize,
    /// The online estimator's current trim level, when the adaptive
    /// defence is running — reported on [`SimError::DegradedQuorum`] so
    /// operators can tell estimator over-trimming from dead servers.
    pub beta_hat: Option<usize>,
    /// Index of the active threat epoch, when a dynamic threat schedule is
    /// driving the run — likewise reported on quorum loss.
    pub threat_epoch: Option<usize>,
}

/// What the filtering phase produces.
pub(crate) struct FilterOutcome {
    /// The post-filter model of every cohort client, aligned with the
    /// cohort.
    pub models: Vec<Tensor>,
    /// The first cohort client's realized (post-fault) server views, if
    /// captured.
    pub first_views: Vec<Tensor>,
    /// Duplicate deliveries suppressed before filtering, summed over
    /// clients.
    pub suppressed_duplicates: usize,
}

/// Phase 5 — client-side filtering: each cohort client drains its own
/// realization of the downlink, discards fault-injected duplicate
/// deliveries (first delivery wins, so a duplicating downlink cannot
/// double a server's weight in the filter) and applies `Def(·)` over what
/// remains.
///
/// The cohort is processed in blocks of [`FILTER_BLOCK`]: each block
/// drains its downlinks sequentially (the transport is exclusive state)
/// into pooled tensors, filters in parallel, then releases the views back
/// to the pool — so at most `O(block × P × dim)` views are resident at
/// once regardless of cohort size. Blocking is invisible in the results:
/// outputs stitch in cohort order and `Filtered` events are buffered until
/// the whole cohort succeeds.
///
/// Graceful-degradation guard: trimming `B` per side needs a strict honest
/// majority among the *distinct* deliveries (duplicates of one server must
/// not count towards quorum). Only fault-degraded views (`P' < P`) are
/// guarded — a deliberately infeasible fault-free federation (`B ≥ P/2`)
/// is let through so experiments can demonstrate filter defeat. What a
/// degraded view does — abort with [`SimError::DegradedQuorum`] or keep
/// the affected client's local model — is decided by
/// [`FilterCtx::on_degraded`]. Blocks are walked in ascending client
/// order, so an abort names the same lowest client id the unblocked
/// engine would.
pub(crate) fn filter(mut ctx: FilterCtx<'_>) -> Result<FilterOutcome> {
    let mut suppressed_duplicates = 0usize;
    let mut models: Vec<Tensor> = Vec::with_capacity(ctx.cohort.len());
    let mut first_views: Vec<Tensor> = Vec::new();
    let want_displacement = ctx.event_log.is_some();
    let mut displacements: Vec<f32> = Vec::new();
    for chunk in ctx.cohort.chunks(FILTER_BLOCK) {
        // Pass 1 (sequential): realize this block's downlinks on the
        // transport, suppress duplicate deliveries and apply the quorum
        // guard. Each entry is a client's realized view plus, where the
        // policy fell back, the local model to keep (`Some` = keep local,
        // skip the filter).
        let mut realized: Vec<(Vec<Tensor>, Option<Tensor>)> = Vec::with_capacity(chunk.len());
        for &k in chunk {
            let deliveries = ctx.transport.drain_deliveries_pooled(k, ctx.pool);
            let mut views = Vec::with_capacity(deliveries.len());
            for d in deliveries {
                // First delivery wins: repeats never reach the filter.
                if d.outcome == DeliveryOutcome::Duplicated {
                    suppressed_duplicates += 1;
                    ctx.pool.release_tensor(d.model);
                } else {
                    views.push(d.model);
                }
            }
            let distinct = views.len();
            let degraded = ctx.byz_servers > 0
                && distinct < ctx.num_servers
                && distinct <= 2 * ctx.byz_servers;
            if degraded && ctx.on_degraded == DegradedMode::Abort {
                return Err(SimError::DegradedQuorum {
                    round: ctx.round,
                    client: k,
                    received: distinct,
                    needed: 2 * ctx.byz_servers,
                    total: ctx.num_servers,
                    beta_hat: ctx.beta_hat,
                    threat_epoch: ctx.threat_epoch,
                });
            }
            // Total blackout, or a sub-quorum view the policy chose to
            // ride out: the client keeps its locally trained model this
            // round (filtering a Byzantine-dominated sample would be
            // worse).
            let fallback =
                (views.is_empty() || degraded).then(|| match ctx.active.binary_search(&k) {
                    Ok(pos) => ctx.trained[pos].clone(),
                    Err(_) => ctx.store.model(k).clone(),
                });
            realized.push((views, fallback));
        }
        if ctx.capture_views && models.is_empty() {
            if let Some((views, _)) = realized.first() {
                first_views = views.clone();
            }
        }
        // Pass 2 (parallel): apply `Def(·)` — the dominant per-round cost
        // at real model sizes — to each client's realized view
        // independently, releasing the views to the pool afterwards.
        let filter = ctx.filter;
        let pool = ctx.pool;
        let filtered = map_in_order(realized, ctx.threads, |(views, fallback)| {
            let out = match fallback {
                Some(local) => local,
                None => filter.aggregate(&views)?,
            };
            let displacement = if want_displacement && !views.is_empty() {
                out.sub(&Mean::new().aggregate(&views)?)?.norm_l2()
            } else {
                0.0
            };
            for v in views {
                pool.release_tensor(v);
            }
            Ok::<(Tensor, f32), SimError>((out, displacement))
        });
        // Stitch sequentially, surfacing the lowest-client-index error.
        for res in filtered {
            let (out, displacement) = res?;
            models.push(out);
            if want_displacement {
                displacements.push(displacement);
            }
        }
    }
    // Events flush only after every block succeeded, in cohort order.
    if let Some(log) = ctx.event_log.as_deref_mut() {
        for (&client, &displacement) in ctx.cohort.iter().zip(displacements.iter()) {
            log.push(RoundEvent::Filtered { round: ctx.round, client, displacement });
        }
    }
    Ok(FilterOutcome { models, first_views, suppressed_duplicates })
}

/// Context for the diagnostics pass.
pub(crate) struct DiagnosticsCtx<'a> {
    /// The first cohort client's realized (post-fault) server views.
    pub views: &'a [Tensor],
    /// That client's post-filter model.
    pub filtered0: &'a Tensor,
    /// Client metadata + model bank (start-of-round vectors).
    pub store: &'a ClientStore,
    /// This round's active client ids.
    pub active: &'a [usize],
    /// The (tampered) upload vectors, aligned with `active`.
    pub trained: &'a [Tensor],
    /// Number of servers that disseminated nothing this round.
    pub silent_servers: usize,
    /// Duplicate deliveries suppressed before filtering this round.
    pub suppressed_duplicates: usize,
}

/// Defence diagnostics from the first filtered client's viewpoint (its
/// realized, post-fault view — not the idealized full dissemination).
pub(crate) fn diagnostics(ctx: DiagnosticsCtx<'_>) -> Result<RoundDiagnostics> {
    let views = ctx.views;
    let mut pair_sum = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..views.len() {
        for j in (i + 1)..views.len() {
            pair_sum += views[i].sub(&views[j])?.norm_l2() as f64;
            pairs += 1;
        }
    }
    let displacement = if views.is_empty() {
        0.0
    } else {
        let naive = Mean::new().aggregate(views)?;
        ctx.filtered0.sub(&naive)?.norm_l2()
    };
    let mut max_update = 0.0f32;
    for (pos, &k) in ctx.active.iter().enumerate() {
        let update = ctx.trained[pos].sub(ctx.store.model(k))?.norm_l2();
        max_update = max_update.max(update);
    }
    Ok(RoundDiagnostics {
        server_disagreement: if pairs > 0 { (pair_sum / pairs as f64) as f32 } else { 0.0 },
        filter_displacement: displacement,
        max_update_norm: max_update,
        silent_servers: ctx.silent_servers,
        suppressed_duplicates: ctx.suppressed_duplicates,
    })
}

/// Maps `f` over owned `items` on up to `threads` worker threads (≤ 1 =
/// sequential), returning the outputs in input order. The chunking only
/// changes *where* each item runs, never the result order, which is what
/// keeps parallel phases bit-identical across thread counts.
pub(crate) fn map_in_order<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n < 4 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads.min(n));
    let mut groups: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let group: Vec<T> = it.by_ref().take(chunk).collect();
        if group.is_empty() {
            break;
        }
        groups.push(group);
    }
    let mut outputs: Vec<Vec<U>> = Vec::with_capacity(groups.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for group in groups {
            let f = &f;
            handles.push(scope.spawn(move || group.into_iter().map(f).collect::<Vec<U>>()));
        }
        for h in handles {
            outputs.push(h.join().expect("worker thread panicked"));
        }
    });
    outputs.into_iter().flatten().collect()
}
