//! The composable phases of one federated round.
//!
//! [`crate::SimulationEngine::step_round`] is a thin orchestrator over the
//! functions in this module, each of which implements exactly one stage of
//! Algorithm 1 against a narrow context struct:
//!
//! 1. [`local_train`] — local SGD on the active clients (lines 8–10),
//! 2. [`upload`] — client-attack tampering + sparse upload over the
//!    [`Transport`] (line 11),
//! 3. [`aggregate`] — per-server aggregation of whatever arrived, passed
//!    through the server's delivery pipeline (lines 3–4),
//! 4. [`disseminate`] — (possibly Byzantine) dissemination, queued on the
//!    transport (line 5),
//! 5. [`filter`] — per-client realization of the downlink and the
//!    `Def(·)` filter (lines 12–13).
//!
//! The phases never touch fault realization or message accounting — both
//! live behind the [`Transport`] — and they never share mutable state
//! except through their contexts, so ablating, reordering (where the
//! protocol allows) or instrumenting a single stage is a local change.

use fedms_aggregation::{AggregationRule, Mean};
use fedms_attacks::{ClientAttack, ClientAttackContext};
use fedms_tensor::Tensor;
use rand::rngs::StdRng;

use crate::recovery::DegradedMode;
use crate::transport::{Broadcast, DeliveryOutcome, Dissemination, Transport, Upload};
use crate::{Client, EventLog, Result, RoundDiagnostics, RoundEvent, Server, SimError};

/// Samples this round's active client set: everyone at full participation,
/// otherwise a uniform `⌈fraction·K⌉`-subset (sorted, so later phases walk
/// clients in id order).
pub(crate) fn sample_participation(
    num_clients: usize,
    fraction: f64,
    rng: &mut StdRng,
) -> Vec<usize> {
    if fraction >= 1.0 {
        return (0..num_clients).collect();
    }
    let take = ((fraction * num_clients as f64).ceil() as usize).clamp(1, num_clients);
    let mut ids: Vec<usize> = (0..num_clients).collect();
    use rand::seq::SliceRandom;
    ids.shuffle(rng);
    let mut chosen = ids[..take].to_vec();
    chosen.sort_unstable();
    chosen
}

/// Context for the local-training phase.
pub(crate) struct TrainCtx<'a> {
    /// All clients; only those in `active` train.
    pub clients: &'a mut [Client],
    /// This round's active client ids (strictly increasing).
    pub active: &'a [usize],
    /// Current round index.
    pub round: usize,
    /// Local SGD iterations per round (the paper's `E`).
    pub local_epochs: usize,
    /// Worker threads for client-parallel training (≤ 1 = sequential;
    /// results are bit-identical across thread counts).
    pub threads: usize,
    /// Structured event sink, if enabled.
    pub event_log: Option<&'a mut EventLog>,
}

/// Phase 1 — local training on the active clients. Returns the mean local
/// training loss.
pub(crate) fn local_train(mut ctx: TrainCtx<'_>) -> Result<f64> {
    let global_step = ctx.round * ctx.local_epochs;
    let epochs = ctx.local_epochs;
    let losses =
        for_clients(ctx.clients, ctx.active, ctx.threads, |c| c.local_train(epochs, global_step))?;
    if let Some(log) = ctx.event_log.as_deref_mut() {
        for (&client, &loss) in ctx.active.iter().zip(losses.iter()) {
            log.push(RoundEvent::LocalTrainingCompleted { round: ctx.round, client, loss });
        }
    }
    Ok(losses.iter().map(|&l| l as f64).sum::<f64>() / losses.len() as f64)
}

/// Context for the upload phase.
pub(crate) struct UploadCtx<'a> {
    /// The delivery substrate.
    pub transport: &'a mut dyn Transport,
    /// All clients (read-only: their trained model vectors are taken).
    pub clients: &'a [Client],
    /// Per-client Byzantine upload tampering, indexed by client id.
    pub client_attacks: &'a [Option<Box<dyn ClientAttack>>],
    /// Each client's model at the start of the round (attack context).
    pub start_vectors: &'a [Tensor],
    /// This round's active client ids.
    pub active: &'a [usize],
    /// Current round index.
    pub round: usize,
    /// Structured event sink, if enabled.
    pub event_log: Option<&'a mut EventLog>,
}

/// Phase 2 — sparse upload: Byzantine clients tamper with their vectors
/// (in client order, sharing `attack_rng`), then every active client sends
/// per `assignment` over the transport. Returns the (tampered) upload
/// vector of every client, which later phases use as attack/diagnostic
/// context.
pub(crate) fn upload(
    mut ctx: UploadCtx<'_>,
    assignment: &[Vec<usize>],
    attack_rng: &mut StdRng,
) -> Result<Vec<Tensor>> {
    let num_clients = ctx.clients.len();
    let mut client_vectors: Vec<Tensor> = ctx.clients.iter().map(Client::model_vector).collect();
    // Byzantine clients tamper with their uploads (extension beyond the
    // paper's server-only threat model).
    for (k, slot) in ctx.client_attacks.iter().enumerate() {
        if let Some(attack) = slot {
            let global = if ctx.round == 0 { None } else { Some(&ctx.start_vectors[k]) };
            let actx = ClientAttackContext::new(ctx.round, k, &client_vectors[k], global);
            client_vectors[k] = attack.tamper_upload(&actx, attack_rng)?;
        }
    }
    let mut is_active = vec![false; num_clients];
    for &k in ctx.active {
        is_active[k] = true;
    }
    for (k, servers) in assignment.iter().enumerate() {
        if !is_active[k] {
            continue;
        }
        for &s in servers {
            let report = ctx.transport.send_upload_tracked(Upload {
                client: k,
                server: s,
                model: client_vectors[k].clone(),
            });
            if let Some(log) = ctx.event_log.as_deref_mut() {
                log.push(RoundEvent::UploadSent {
                    round: ctx.round,
                    client: k,
                    server: s,
                    dropped: report.outcome == DeliveryOutcome::Dropped,
                });
                // A clean single-attempt exchange needs no recovery event.
                if report.attempts > 1 || report.failed_over || report.deadline_missed {
                    log.push(RoundEvent::UploadRecovery {
                        round: ctx.round,
                        client: k,
                        server: s,
                        delivered_to: (report.outcome == DeliveryOutcome::Delivered)
                            .then_some(report.server),
                        attempts: report.attempts,
                        failed_over: report.failed_over,
                        deadline_missed: report.deadline_missed,
                    });
                }
            }
        }
    }
    Ok(client_vectors)
}

/// Context for the aggregation phase.
pub(crate) struct AggregateCtx<'a> {
    /// The delivery substrate.
    pub transport: &'a mut dyn Transport,
    /// All servers.
    pub servers: &'a mut [Server],
    /// The server-side aggregation rule (the paper's mean).
    pub server_rule: &'a dyn AggregationRule,
    /// Fallback aggregate for servers that never received anything.
    pub initial_model: &'a Tensor,
    /// Current round index.
    pub round: usize,
    /// Structured event sink, if enabled.
    pub event_log: Option<&'a mut EventLog>,
}

/// Phase 3 — per-server aggregation. Each online server aggregates its
/// transport inbox and pushes the result through its delivery pipeline.
/// Returns the aggregate each server is ready to disseminate this round
/// (`None` = silent: crashed, or a straggler pipeline still filling) and
/// the number of silent servers.
pub(crate) fn aggregate(mut ctx: AggregateCtx<'_>) -> Result<(Vec<Option<Tensor>>, usize)> {
    let mut ready: Vec<Option<Tensor>> = Vec::with_capacity(ctx.servers.len());
    let mut silent = 0usize;
    for (i, server) in ctx.servers.iter_mut().enumerate() {
        if !ctx.transport.server_online(i) {
            silent += 1;
            if let Some(log) = ctx.event_log.as_deref_mut() {
                log.push(RoundEvent::ServerSilent { round: ctx.round, server: i, crashed: true });
            }
            ready.push(None);
            continue;
        }
        let inbox = ctx.transport.take_inbox(i);
        let agg = server.aggregate(&inbox, ctx.initial_model, ctx.server_rule)?;
        if let Some(log) = ctx.event_log.as_deref_mut() {
            log.push(RoundEvent::Aggregated {
                round: ctx.round,
                server: i,
                received: inbox.len(),
                aggregate_norm: agg.norm_l2(),
            });
        }
        let (_, out) = ctx.transport.release_aggregate(i, agg);
        match out {
            Some(t) => ready.push(Some(t)),
            None => {
                silent += 1;
                if let Some(log) = ctx.event_log.as_deref_mut() {
                    log.push(RoundEvent::ServerSilent {
                        round: ctx.round,
                        server: i,
                        crashed: false,
                    });
                }
                ready.push(None);
            }
        }
    }
    Ok((ready, silent))
}

/// Context for the dissemination phase.
pub(crate) struct DisseminateCtx<'a> {
    /// The delivery substrate.
    pub transport: &'a mut dyn Transport,
    /// All servers.
    pub servers: &'a mut [Server],
    /// Number of clients the dissemination must cover.
    pub num_clients: usize,
    /// Current round index.
    pub round: usize,
    /// Structured event sink, if enabled.
    pub event_log: Option<&'a mut EventLog>,
}

/// Phase 4 — dissemination: each non-silent server sends out its ready
/// aggregate — honestly, or through its Byzantine attack — and the result
/// is queued on the transport for every client.
pub(crate) fn disseminate(mut ctx: DisseminateCtx<'_>, ready: Vec<Option<Tensor>>) -> Result<()> {
    for (i, out) in ready.into_iter().enumerate() {
        let Some(out) = out else { continue };
        let server = &mut ctx.servers[i];
        let d = server.disseminate(&out, ctx.round, ctx.num_clients)?;
        let equivocating = matches!(d, Dissemination::PerClient(_));
        let byzantine = server.is_byzantine();
        ctx.transport.broadcast(Broadcast { server: i, model: d })?;
        if let Some(log) = ctx.event_log.as_deref_mut() {
            log.push(RoundEvent::Disseminated {
                round: ctx.round,
                server: i,
                byzantine,
                equivocating,
            });
        }
    }
    Ok(())
}

/// Context for the filtering phase.
pub(crate) struct FilterCtx<'a> {
    /// The delivery substrate.
    pub transport: &'a mut dyn Transport,
    /// All clients (read-only: blackout fallback keeps the local model).
    pub clients: &'a [Client],
    /// The client-side defence `Def(·)`.
    pub filter: &'a dyn AggregationRule,
    /// Total number of servers `P`.
    pub num_servers: usize,
    /// Number of Byzantine servers `B`.
    pub byz_servers: usize,
    /// Current round index.
    pub round: usize,
    /// Structured event sink, if enabled.
    pub event_log: Option<&'a mut EventLog>,
    /// Capture client 0's realized view for defence diagnostics.
    pub capture_views: bool,
    /// What to do when a client's view degrades below quorum anyway.
    pub on_degraded: DegradedMode,
    /// Worker threads for the per-client filter applications (≤ 1 =
    /// sequential; results are bit-identical across thread counts).
    pub threads: usize,
}

/// What the filtering phase produces.
pub(crate) struct FilterOutcome {
    /// The post-filter model of every client, in client order.
    pub models: Vec<Tensor>,
    /// Client 0's realized (post-fault) server views, if captured.
    pub client0_views: Vec<Tensor>,
    /// Duplicate deliveries suppressed before filtering, summed over
    /// clients.
    pub suppressed_duplicates: usize,
}

/// Phase 5 — client-side filtering: each client drains its own realization
/// of the downlink, discards fault-injected duplicate deliveries (first
/// delivery wins, so a duplicating downlink cannot double a server's
/// weight in the filter) and applies `Def(·)` over what remains.
///
/// Graceful-degradation guard: trimming `B` per side needs a strict honest
/// majority among the *distinct* deliveries (duplicates of one server must
/// not count towards quorum). Only fault-degraded views (`P' < P`) are
/// guarded — a deliberately infeasible fault-free federation (`B ≥ P/2`)
/// is let through so experiments can demonstrate filter defeat. What a
/// degraded view does — abort with [`SimError::DegradedQuorum`] or keep
/// the affected client's local model — is decided by
/// [`FilterCtx::on_degraded`].
pub(crate) fn filter(mut ctx: FilterCtx<'_>) -> Result<FilterOutcome> {
    let num_clients = ctx.clients.len();
    let mut suppressed_duplicates = 0usize;
    // Pass 1 (sequential): realize every client's downlink on the
    // transport, suppress duplicate deliveries and apply the quorum guard.
    // The transport is exclusive state, so this stays single-threaded; it
    // also pins abort order, so a parallel run reports the same
    // [`SimError::DegradedQuorum`] a sequential one would.
    // Each client's realized view plus, where the policy fell back, the
    // local model to keep (`Some` = keep local, skip the filter).
    let mut realized: Vec<(Vec<Tensor>, Option<Tensor>)> = Vec::with_capacity(num_clients);
    for k in 0..num_clients {
        let deliveries = ctx.transport.drain_deliveries(k);
        // First delivery wins: repeats never reach the filter.
        suppressed_duplicates +=
            deliveries.iter().filter(|d| d.outcome == DeliveryOutcome::Duplicated).count();
        let views: Vec<Tensor> = deliveries
            .into_iter()
            .filter(|d| d.outcome != DeliveryOutcome::Duplicated)
            .map(|d| d.model)
            .collect();
        let distinct = views.len();
        let degraded =
            ctx.byz_servers > 0 && distinct < ctx.num_servers && distinct <= 2 * ctx.byz_servers;
        if degraded && ctx.on_degraded == DegradedMode::Abort {
            return Err(SimError::DegradedQuorum {
                round: ctx.round,
                client: k,
                received: distinct,
                needed: 2 * ctx.byz_servers,
                total: ctx.num_servers,
            });
        }
        // Total blackout, or a sub-quorum view the policy chose to ride
        // out: the client keeps its locally trained model this round
        // (filtering a Byzantine-dominated sample would be worse).
        let fallback = (views.is_empty() || degraded).then(|| ctx.clients[k].model_vector());
        realized.push((views, fallback));
    }
    let client0_views: Vec<Tensor> = match realized.first() {
        Some((views, _)) if ctx.capture_views => views.clone(),
        _ => Vec::new(),
    };
    // Pass 2 (parallel): apply `Def(·)` — the dominant per-round cost at
    // real model sizes — to each client's realized view independently.
    // Outputs stitch back in client order, so any thread count produces
    // the same bits.
    let filter = ctx.filter;
    let want_displacement = ctx.event_log.is_some();
    let filtered = map_in_order(realized, ctx.threads, |(views, fallback)| {
        let out = match fallback {
            Some(local) => local,
            None => filter.aggregate(&views)?,
        };
        let displacement = if want_displacement && !views.is_empty() {
            out.sub(&Mean::new().aggregate(&views)?)?.norm_l2()
        } else {
            0.0
        };
        Ok::<(Tensor, f32), SimError>((out, displacement))
    });
    // Pass 3 (sequential): surface the lowest-client-index error and emit
    // events in client order.
    let mut models: Vec<Tensor> = Vec::with_capacity(num_clients);
    for (k, res) in filtered.into_iter().enumerate() {
        let (out, displacement) = res?;
        if let Some(log) = ctx.event_log.as_deref_mut() {
            log.push(RoundEvent::Filtered { round: ctx.round, client: k, displacement });
        }
        models.push(out);
    }
    Ok(FilterOutcome { models, client0_views, suppressed_duplicates })
}

/// Context for the diagnostics pass.
pub(crate) struct DiagnosticsCtx<'a> {
    /// Client 0's realized (post-fault) server views.
    pub views: &'a [Tensor],
    /// Client 0's post-filter model.
    pub filtered0: &'a Tensor,
    /// Every client's (tampered) upload vector this round.
    pub client_vectors: &'a [Tensor],
    /// Every client's model at the start of the round.
    pub start_vectors: &'a [Tensor],
    /// This round's active client ids.
    pub active: &'a [usize],
    /// Number of servers that disseminated nothing this round.
    pub silent_servers: usize,
    /// Duplicate deliveries suppressed before filtering this round.
    pub suppressed_duplicates: usize,
}

/// Defence diagnostics from client 0's viewpoint (its realized, post-fault
/// view — not the idealized full dissemination).
pub(crate) fn diagnostics(ctx: DiagnosticsCtx<'_>) -> Result<RoundDiagnostics> {
    let views = ctx.views;
    let mut pair_sum = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..views.len() {
        for j in (i + 1)..views.len() {
            pair_sum += views[i].sub(&views[j])?.norm_l2() as f64;
            pairs += 1;
        }
    }
    let displacement = if views.is_empty() {
        0.0
    } else {
        let naive = Mean::new().aggregate(views)?;
        ctx.filtered0.sub(&naive)?.norm_l2()
    };
    let mut max_update = 0.0f32;
    for &k in ctx.active {
        let update = ctx.client_vectors[k].sub(&ctx.start_vectors[k])?.norm_l2();
        max_update = max_update.max(update);
    }
    Ok(RoundDiagnostics {
        server_disagreement: if pairs > 0 { (pair_sum / pairs as f64) as f32 } else { 0.0 },
        filter_displacement: displacement,
        max_update_norm: max_update,
        silent_servers: ctx.silent_servers,
        suppressed_duplicates: ctx.suppressed_duplicates,
    })
}

/// Applies `f` to the clients at `indices` (strictly increasing) on up to
/// `threads` worker threads (≤ 1 = sequential), preserving index order in
/// the returned vector. Parallel execution is bit-identical to sequential:
/// `f` itself is deterministic per client and the outputs are stitched
/// back in index order.
pub(crate) fn for_clients<F>(
    clients: &mut [Client],
    indices: &[usize],
    threads: usize,
    f: F,
) -> Result<Vec<f32>>
where
    F: Fn(&mut Client) -> Result<f32> + Sync,
{
    let mut selected: Vec<&mut Client> = Vec::with_capacity(indices.len());
    {
        let mut rest = clients;
        let mut offset = 0usize;
        for &i in indices {
            let (_, tail) = rest.split_at_mut(i - offset);
            let (one, tail) = tail.split_at_mut(1);
            selected.push(&mut one[0]);
            rest = tail;
            offset = i + 1;
        }
    }
    let n = selected.len();
    if threads <= 1 || n < 4 {
        return selected.into_iter().map(&f).collect();
    }
    let chunk = n.div_ceil(threads.min(n));
    let mut outputs: Vec<Result<Vec<f32>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for group in selected.chunks_mut(chunk) {
            let f = &f;
            handles.push(
                scope.spawn(move || -> Result<Vec<f32>> {
                    group.iter_mut().map(|c| f(c)).collect()
                }),
            );
        }
        for h in handles {
            outputs.push(h.join().expect("client worker panicked"));
        }
    });
    let mut flat = Vec::with_capacity(n);
    for out in outputs {
        flat.extend(out?);
    }
    Ok(flat)
}

/// Maps `f` over owned `items` on up to `threads` worker threads (≤ 1 =
/// sequential), returning the outputs in input order. The chunking only
/// changes *where* each item runs, never the result order, which is what
/// keeps parallel phases bit-identical across thread counts.
pub(crate) fn map_in_order<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n < 4 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads.min(n));
    let mut groups: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let group: Vec<T> = it.by_ref().take(chunk).collect();
        if group.is_empty() {
            break;
        }
        groups.push(group);
    }
    let mut outputs: Vec<Vec<U>> = Vec::with_capacity(groups.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for group in groups {
            let f = &f;
            handles.push(scope.spawn(move || group.into_iter().map(f).collect::<Vec<U>>()));
        }
        for h in handles {
            outputs.push(h.join().expect("worker thread panicked"));
        }
    });
    outputs.into_iter().flatten().collect()
}
