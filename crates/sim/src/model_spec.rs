//! Serializable model selection for simulation configuration.

use fedms_nn::{Layer, Mlp, MobileNetNano, MobileNetNanoConfig};
use serde::{Deserialize, Serialize};

use crate::Result;

/// A serializable description of the training model, turned into a live
/// network with [`ModelSpec::build`]. All clients build architecturally
/// identical models; passing the same seed reproduces the same initial
/// weights `w₀` everywhere (Algorithm 1 line 6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// A multi-layer perceptron over flattened samples.
    Mlp {
        /// Layer widths, input first, classes last.
        widths: Vec<usize>,
    },
    /// The miniature MobileNetV2 over image tensors.
    MobileNetNano(MobileNetNanoConfig),
}

impl ModelSpec {
    /// The harness default: an MLP sized for the default
    /// [`fedms_data::SynthVisionConfig`] (3·8·8 = 192 inputs, 10 classes).
    pub fn default_mlp() -> Self {
        ModelSpec::Mlp { widths: vec![192, 64, 10] }
    }

    /// Whether this model consumes flattened `(N, D)` samples (true for
    /// MLPs) or image tensors `(N, C, H, W)`.
    pub fn wants_flat_input(&self) -> bool {
        matches!(self, ModelSpec::Mlp { .. })
    }

    /// Builds a live model initialised from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates model construction errors (bad widths/blocks).
    pub fn build(&self, seed: u64) -> Result<Box<dyn Layer>> {
        Ok(match self {
            ModelSpec::Mlp { widths } => Box::new(Mlp::new(widths, seed)?),
            ModelSpec::MobileNetNano(cfg) => Box::new(MobileNetNano::new(cfg.clone(), seed)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_nn::NeuralNet;

    #[test]
    fn builds_both_kinds() {
        let mlp = ModelSpec::default_mlp().build(0).unwrap();
        assert!(mlp.num_params() > 0);
        let nano = ModelSpec::MobileNetNano(MobileNetNanoConfig::default()).build(0).unwrap();
        assert!(nano.num_params() > 0);
    }

    #[test]
    fn same_seed_same_weights() {
        let a = ModelSpec::default_mlp().build(3).unwrap();
        let b = ModelSpec::default_mlp().build(3).unwrap();
        assert_eq!(a.param_vector(), b.param_vector());
    }

    #[test]
    fn input_layout_flag() {
        assert!(ModelSpec::default_mlp().wants_flat_input());
        assert!(!ModelSpec::MobileNetNano(MobileNetNanoConfig::default()).wants_flat_input());
    }

    #[test]
    fn bad_spec_errors() {
        assert!(ModelSpec::Mlp { widths: vec![4] }.build(0).is_err());
    }
}
