//! Metadata-only client storage for large federations.
//!
//! The eager engine kept one [`Client`] per logical client — model, data
//! shard and optimizer — which caps a federation at the number of full
//! client states that fit in memory. [`ClientStore`] instead keeps only
//! what a client *is*: its partition (a few indices, or an `O(1)`
//! procedural rule), its accumulated label poisoning, and its current
//! model vector interned in a [`ModelBank`]. A full [`Client`] is
//! rehydrated on demand ([`ClientStore::hydrate`]) for exactly the rounds
//! it participates in, bit-identically to a client that had lived in
//! memory the whole time:
//!
//! * the model is rebuilt from the shared `init_seed` and overwritten with
//!   the banked parameter vector — the vector *is* the client's entire
//!   evolving state ([`crate::Client`]'s optimizer derives its step from
//!   the global step and its batch stream from `(seed, id, step)`),
//! * label poisoning composes additively (`rotate(a)` then `rotate(b)` ≡
//!   `rotate(a + b)`), so the accumulated offset applied once at hydration
//!   equals the offsets applied as they happened.
//!
//! The bank interns vectors by content: after a broadcast round every
//! client shares one pool entry, so a million clients that agree on the
//! global model cost one model of storage plus a `u32` per client.

use std::collections::{BTreeMap, HashMap};

use fedms_data::Dataset;
use fedms_nn::{Layer, LrSchedule};
use fedms_tensor::rng::{derive_seed, rng_for};
use fedms_tensor::Tensor;
use rand::Rng;

use crate::{Client, ModelSpec, Result, SimError};

/// RNG label for procedural uniform shard draws ("SHRD").
const SHARD_LABEL: u64 = 0x53_48_52_44;

/// Per-client sample assignment: either explicit index lists (the
/// Dirichlet partitioner's output) or a procedural rule that derives any
/// client's shard from the seed in `O(shard)` time and `O(1)` storage —
/// the only representation that scales to `K = 10⁶` clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partitions {
    /// `parts[k]` holds client `k`'s sample indices into the training set.
    Explicit(Vec<Vec<usize>>),
    /// Every client draws `shard` samples uniformly (with replacement)
    /// from the training set, on its own `(seed, "SHRD", k)` RNG stream.
    Uniform {
        /// Number of logical clients.
        num_clients: usize,
        /// Training-set size the draws index into.
        dataset_len: usize,
        /// Samples per client shard.
        shard: usize,
        /// Root seed for the per-client draw streams.
        seed: u64,
    },
}

impl Partitions {
    /// Wraps explicit per-client index lists.
    pub fn explicit(parts: Vec<Vec<usize>>) -> Self {
        Partitions::Explicit(parts)
    }

    /// Creates a procedural uniform partitioning.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for an empty shard or dataset.
    pub fn uniform(
        num_clients: usize,
        dataset_len: usize,
        shard: usize,
        seed: u64,
    ) -> Result<Self> {
        if shard == 0 {
            return Err(SimError::BadConfig("uniform shard size must be positive".into()));
        }
        if dataset_len == 0 {
            return Err(SimError::BadConfig("cannot partition an empty dataset".into()));
        }
        Ok(Partitions::Uniform { num_clients, dataset_len, shard, seed })
    }

    /// Number of clients this partitioning covers.
    pub fn num_clients(&self) -> usize {
        match self {
            Partitions::Explicit(parts) => parts.len(),
            Partitions::Uniform { num_clients, .. } => *num_clients,
        }
    }

    /// Client `k`'s sample indices. Deterministic: the same `(self, k)`
    /// always produces the same indices.
    pub fn shard_indices(&self, k: usize) -> Vec<usize> {
        match self {
            Partitions::Explicit(parts) => parts[k].clone(),
            Partitions::Uniform { dataset_len, shard, seed, .. } => {
                let mut rng = rng_for(*seed, &[SHARD_LABEL, k as u64]);
                (0..*shard).map(|_| rng.gen_range(0..*dataset_len)).collect()
            }
        }
    }

    /// Validates every index against the dataset size.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for an out-of-range explicit index.
    fn validate(&self, dataset_len: usize) -> Result<()> {
        if let Partitions::Explicit(parts) = self {
            for (k, part) in parts.iter().enumerate() {
                if let Some(&bad) = part.iter().find(|&&i| i >= dataset_len) {
                    return Err(SimError::BadConfig(format!(
                        "partition of client {k} indexes sample {bad} beyond dataset of {dataset_len}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Content-interned storage of every client's current model vector.
///
/// `refs[k]` names the pool entry holding client `k`'s vector; identical
/// vectors (bit-for-bit) share one entry. Commits happen in ascending
/// client order, so the pool layout — and therefore snapshot bytes — is
/// deterministic across thread counts.
#[derive(Debug, Clone)]
pub(crate) struct ModelBank {
    pool: Vec<Tensor>,
    refs: Vec<u32>,
    /// Content hash → pool indices with that hash (collisions resolved by
    /// bit comparison).
    index: HashMap<u64, Vec<u32>>,
}

/// FNV-1a over the raw `f32` bit patterns.
fn content_hash(t: &Tensor) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in t.as_slice() {
        for byte in v.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl ModelBank {
    /// Every client starts from the shared `initial`: one pool entry.
    fn new(num_clients: usize, initial: Tensor) -> Self {
        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        index.insert(content_hash(&initial), vec![0]);
        ModelBank { pool: vec![initial], refs: vec![0; num_clients], index }
    }

    /// Rebuilds a bank verbatim from snapshot parts; the pool layout is
    /// preserved so snapshot → restore → snapshot round-trips byte-exactly.
    fn from_parts(pool: Vec<Tensor>, refs: Vec<u32>) -> Self {
        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, t) in pool.iter().enumerate() {
            index.entry(content_hash(t)).or_default().push(i as u32);
        }
        ModelBank { pool, refs, index }
    }

    fn get(&self, k: usize) -> &Tensor {
        &self.pool[self.refs[k] as usize]
    }

    /// Points client `k` at `model`, interning by content.
    fn set(&mut self, k: usize, model: Tensor) {
        let h = content_hash(&model);
        if let Some(cands) = self.index.get(&h) {
            for &idx in cands {
                if bits_equal(&self.pool[idx as usize], &model) {
                    self.refs[k] = idx;
                    return;
                }
            }
        }
        let idx = u32::try_from(self.pool.len()).expect("model pool outgrew u32 indices");
        self.pool.push(model);
        self.index.entry(h).or_default().push(idx);
        self.refs[k] = idx;
    }

    /// Drops unreferenced pool entries, compacting in stable order.
    fn sweep(&mut self) {
        let mut live = vec![false; self.pool.len()];
        for &r in &self.refs {
            live[r as usize] = true;
        }
        if live.iter().all(|&l| l) {
            return;
        }
        let old = std::mem::take(&mut self.pool);
        let mut remap = vec![u32::MAX; old.len()];
        self.index.clear();
        for (i, t) in old.into_iter().enumerate() {
            if live[i] {
                let idx = self.pool.len() as u32;
                remap[i] = idx;
                self.index.entry(content_hash(&t)).or_default().push(idx);
                self.pool.push(t);
            }
        }
        for r in &mut self.refs {
            *r = remap[*r as usize];
        }
    }

    fn entries(&self) -> usize {
        self.pool.len()
    }
}

/// Seed-pure client metadata plus the model bank: everything needed to
/// rehydrate any client on demand.
pub(crate) struct ClientStore {
    spec: ModelSpec,
    init_seed: u64,
    root_seed: u64,
    batch_size: usize,
    schedule: LrSchedule,
    /// The training split, already in the model's input layout.
    train: Dataset,
    partitions: Partitions,
    /// Accumulated label-rotation offset per poisoned client.
    poison: BTreeMap<usize, usize>,
    bank: ModelBank,
    model_len: usize,
    backend: fedms_tensor::BackendHandle,
}

impl std::fmt::Debug for ClientStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientStore")
            .field("clients", &self.num_clients())
            .field("bank_entries", &self.bank.entries())
            .finish()
    }
}

impl ClientStore {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        spec: ModelSpec,
        init_seed: u64,
        root_seed: u64,
        batch_size: usize,
        schedule: LrSchedule,
        train: Dataset,
        partitions: Partitions,
        initial_model: Tensor,
        backend: fedms_tensor::BackendHandle,
    ) -> Result<Self> {
        partitions.validate(train.len())?;
        let model_len = initial_model.len();
        let bank = ModelBank::new(partitions.num_clients(), initial_model);
        Ok(ClientStore {
            spec,
            init_seed,
            root_seed,
            batch_size,
            schedule,
            train,
            partitions,
            poison: BTreeMap::new(),
            bank,
            model_len,
            backend,
        })
    }

    pub(crate) fn num_clients(&self) -> usize {
        self.partitions.num_clients()
    }

    pub(crate) fn model_len(&self) -> usize {
        self.model_len
    }

    /// Client `k`'s current model vector.
    pub(crate) fn model(&self, k: usize) -> &Tensor {
        self.bank.get(k)
    }

    /// Builds a fresh instance of the shared model architecture (all
    /// clients share `init_seed`, Algorithm 1 line 6).
    pub(crate) fn build_model(&self) -> Result<Box<dyn Layer>> {
        let mut model = self.spec.build(self.init_seed)?;
        model.set_backend(self.backend);
        Ok(model)
    }

    /// Materializes client `k` exactly as the eager engine would have
    /// built and evolved it: same shard, same poisoning, same batch-stream
    /// seed, current model parameters.
    pub(crate) fn hydrate(&self, k: usize) -> Result<Client> {
        let indices = self.partitions.shard_indices(k);
        let mut shard = self.train.subset(&indices)?;
        if let Some(&offset) = self.poison.get(&k) {
            shard = shard.with_rotated_labels(offset);
        }
        let model = self.spec.build(self.init_seed)?;
        let mut client = Client::new(
            k,
            model,
            shard,
            self.batch_size,
            self.schedule,
            derive_seed(self.root_seed, &[0x434C_4E54, k as u64]), // "CLNT"
        )?;
        client.set_backend(self.backend);
        client.set_model_vector(self.bank.get(k))?;
        Ok(client)
    }

    /// Records label poisoning for client `k`; offsets accumulate, which
    /// composes exactly like rotating the live shard would have.
    pub(crate) fn poison(&mut self, k: usize, offset: usize) {
        *self.poison.entry(k).or_insert(0) += offset;
    }

    /// Installs a committed model for client `k`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for a wrong-length vector.
    pub(crate) fn set_model(&mut self, k: usize, model: Tensor) -> Result<()> {
        if model.len() != self.model_len {
            return Err(SimError::BadConfig(format!(
                "model vector of {} parameters does not fit the {}-parameter model",
                model.len(),
                self.model_len
            )));
        }
        self.bank.set(k, model);
        Ok(())
    }

    /// Compacts the bank after a round's commits.
    pub(crate) fn sweep(&mut self) {
        self.bank.sweep();
    }

    /// Distinct model vectors currently banked.
    pub(crate) fn distinct_models(&self) -> usize {
        self.bank.entries()
    }

    /// Dense per-client expansion (client order). Costs `K` clones — for
    /// inspection and small-federation tests, not the hot path.
    pub(crate) fn dense_models(&self) -> Vec<Tensor> {
        (0..self.num_clients()).map(|k| self.bank.get(k).clone()).collect()
    }

    /// The bank's interned layout for snapshotting.
    pub(crate) fn bank_parts(&self) -> (Vec<Tensor>, Vec<u32>) {
        (self.bank.pool.clone(), self.bank.refs.clone())
    }

    /// Restores from a dense (one tensor per client) model list, interning
    /// shared vectors.
    pub(crate) fn restore_dense(&mut self, models: &[Tensor]) {
        let mut bank =
            ModelBank { pool: Vec::new(), refs: vec![0; models.len()], index: HashMap::new() };
        for (k, m) in models.iter().enumerate() {
            bank.set(k, m.clone());
        }
        self.bank = bank;
    }

    /// Restores the interned layout verbatim (no re-interning, so a
    /// snapshot round-trips byte-identically).
    pub(crate) fn restore_parts(&mut self, pool: Vec<Tensor>, refs: Vec<u32>) {
        self.bank = ModelBank::from_parts(pool, refs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_data::SynthVisionConfig;

    fn small_store(partitions: Partitions) -> (ClientStore, Dataset) {
        let (train, _) = SynthVisionConfig::small().generate(7).unwrap();
        let flat = train.flattened();
        let spec = ModelSpec::Mlp { widths: vec![16, 8, 4] };
        let initial = fedms_nn::NeuralNet::param_vector(
            spec.build(derive_seed(9, &[0x494E_4954])).unwrap().as_ref(),
        );
        let store = ClientStore::new(
            spec,
            derive_seed(9, &[0x494E_4954]),
            9,
            4,
            LrSchedule::Constant(0.05),
            flat.clone(),
            partitions,
            initial,
            fedms_tensor::BackendHandle::scalar(),
        )
        .unwrap();
        (store, flat)
    }

    #[test]
    fn hydrate_matches_eager_construction_bit_exactly() {
        let parts = Partitions::explicit(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        let (store, flat) = small_store(parts);
        // The eager engine's client: subset → build → Client::new.
        let spec = ModelSpec::Mlp { widths: vec![16, 8, 4] };
        let mut eager = Client::new(
            1,
            spec.build(derive_seed(9, &[0x494E_4954])).unwrap(),
            flat.subset(&[4, 5, 6, 7]).unwrap(),
            4,
            LrSchedule::Constant(0.05),
            derive_seed(9, &[0x434C_4E54, 1]),
        )
        .unwrap();
        let mut lazy = store.hydrate(1).unwrap();
        assert_eq!(eager.model_vector(), lazy.model_vector());
        let a = eager.local_train(2, 0).unwrap();
        let b = lazy.local_train(2, 0).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(eager.model_vector(), lazy.model_vector());
    }

    #[test]
    fn uniform_partitions_are_deterministic_and_in_range() {
        let p = Partitions::uniform(1_000_000, 40, 8, 3).unwrap();
        assert_eq!(p.num_clients(), 1_000_000);
        let a = p.shard_indices(123_456);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|&i| i < 40));
        assert_eq!(a, p.shard_indices(123_456));
        assert_ne!(a, p.shard_indices(123_457));
        assert!(Partitions::uniform(10, 40, 0, 3).is_err());
        assert!(Partitions::uniform(10, 0, 8, 3).is_err());
    }

    #[test]
    fn explicit_partitions_validate_bounds() {
        let (train, _) = SynthVisionConfig::small().generate(7).unwrap();
        let flat = train.flattened();
        let spec = ModelSpec::Mlp { widths: vec![16, 8, 4] };
        let initial = fedms_nn::NeuralNet::param_vector(spec.build(1).unwrap().as_ref());
        let bad = Partitions::explicit(vec![vec![0, 9999]]);
        let err = ClientStore::new(
            spec,
            1,
            1,
            4,
            LrSchedule::Constant(0.05),
            flat,
            bad,
            initial,
            fedms_tensor::BackendHandle::scalar(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn poison_offsets_accumulate() {
        let parts = Partitions::explicit(vec![vec![0, 1, 2, 3]]);
        let (mut store, flat) = small_store(parts);
        store.poison(0, 1);
        store.poison(0, 1);
        let hydrated = store.hydrate(0).unwrap();
        // rotate(1) twice ≡ rotate(2) once.
        let expected = flat.subset(&[0, 1, 2, 3]).unwrap().with_rotated_labels(2);
        assert_eq!(hydrated.shard_size(), expected.len());
        // The labels drive training; check them via a fresh subset.
        let direct =
            flat.subset(&[0, 1, 2, 3]).unwrap().with_rotated_labels(1).with_rotated_labels(1);
        assert_eq!(direct.labels(), expected.labels());
    }

    #[test]
    fn bank_interns_and_sweeps() {
        let parts = Partitions::explicit(vec![vec![0], vec![1], vec![2]]);
        let (mut store, _) = small_store(parts);
        assert_eq!(store.distinct_models(), 1);
        let shared = Tensor::from_vec(vec![1.0; store.model_len()], &[store.model_len()]).unwrap();
        store.set_model(0, shared.clone()).unwrap();
        store.set_model(1, shared.clone()).unwrap();
        let other = Tensor::from_vec(vec![2.0; store.model_len()], &[store.model_len()]).unwrap();
        store.set_model(2, other).unwrap();
        store.sweep();
        // w₀ is unreferenced now; the shared vector is interned once.
        assert_eq!(store.distinct_models(), 2);
        assert_eq!(store.model(0), store.model(1));
        assert!(store.set_model(0, Tensor::zeros(&[3])).is_err());
        let (pool, refs) = store.bank_parts();
        assert_eq!(pool.len(), 2);
        assert_eq!(refs.len(), 3);
        let dense = store.dense_models();
        assert_eq!(dense.len(), 3);
        assert_eq!(dense[0], shared);
    }

    #[test]
    fn restore_round_trips_verbatim() {
        let parts = Partitions::explicit(vec![vec![0], vec![1]]);
        let (mut store, _) = small_store(parts);
        let v = Tensor::from_vec(vec![3.0; store.model_len()], &[store.model_len()]).unwrap();
        store.set_model(1, v).unwrap();
        let (pool, refs) = store.bank_parts();
        let mut other = {
            let parts = Partitions::explicit(vec![vec![0], vec![1]]);
            small_store(parts).0
        };
        other.restore_parts(pool.clone(), refs.clone());
        assert_eq!(other.bank_parts(), (pool, refs));
        // Dense restore re-interns shared entries.
        let dense = store.dense_models();
        other.restore_dense(&dense);
        assert_eq!(other.dense_models(), dense);
    }
}
