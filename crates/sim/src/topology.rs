//! The simulated edge-network topology.

use fedms_tensor::rng::rng_for;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::{Result, SimError};

/// The FEEL system of the paper: `K` clients on the end side, `P` parameter
/// servers on the edge side, `B ≤ P/2` of which are Byzantine at unknown
/// positions.
///
/// # Example
///
/// ```
/// use fedms_sim::Topology;
///
/// // 50 clients, 10 servers, 2 Byzantine (ε = 20%), random placement.
/// let topo = Topology::with_random_byzantine(50, 10, 2, 42)?;
/// assert_eq!(topo.num_byzantine(), 2);
/// assert!(topo.byzantine_minority());
/// # Ok::<(), fedms_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    num_clients: usize,
    num_servers: usize,
    byzantine: BTreeSet<usize>,
}

impl Topology {
    /// Creates a topology with an explicit Byzantine server set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if either count is zero or a
    /// Byzantine id is out of range. (A Byzantine *majority* is accepted —
    /// the harness uses it to demonstrate the `B ≤ P/2` feasibility bound —
    /// but [`Topology::byzantine_minority`] will report `false`.)
    pub fn new(
        num_clients: usize,
        num_servers: usize,
        byzantine: impl IntoIterator<Item = usize>,
    ) -> Result<Self> {
        if num_clients == 0 || num_servers == 0 {
            return Err(SimError::BadConfig("need at least one client and one server".into()));
        }
        let byzantine: BTreeSet<usize> = byzantine.into_iter().collect();
        if let Some(&bad) = byzantine.iter().find(|&&b| b >= num_servers) {
            return Err(SimError::BadConfig(format!(
                "byzantine server id {bad} out of range for {num_servers} servers"
            )));
        }
        Ok(Topology { num_clients, num_servers, byzantine })
    }

    /// Creates a topology with `num_byzantine` servers placed uniformly at
    /// random (the paper: "the distribution of the Byzantine PSs … can be
    /// arbitrary and unknown for the clients").
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] under the same conditions as
    /// [`Topology::new`], or if `num_byzantine > num_servers`.
    pub fn with_random_byzantine(
        num_clients: usize,
        num_servers: usize,
        num_byzantine: usize,
        seed: u64,
    ) -> Result<Self> {
        if num_byzantine > num_servers {
            return Err(SimError::BadConfig(format!(
                "{num_byzantine} byzantine of {num_servers} servers"
            )));
        }
        let mut ids: Vec<usize> = (0..num_servers).collect();
        let mut rng = rng_for(seed, &[0x42_59_5A]); // "BYZ"
        ids.shuffle(&mut rng);
        Topology::new(num_clients, num_servers, ids.into_iter().take(num_byzantine))
    }

    /// Number of clients `K`.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Number of parameter servers `P`.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Number of Byzantine servers `B`.
    pub fn num_byzantine(&self) -> usize {
        self.byzantine.len()
    }

    /// Whether server `id` is Byzantine.
    pub fn is_byzantine(&self, id: usize) -> bool {
        self.byzantine.contains(&id)
    }

    /// The Byzantine server ids, ascending.
    pub fn byzantine_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.byzantine.iter().copied()
    }

    /// The paper's feasibility condition `B ≤ P/2` (strict minority
    /// requires `2B < P`; this reports the strict version, which is what
    /// Lemma 2 needs: `P − 2B > 0`).
    pub fn byzantine_minority(&self) -> bool {
        2 * self.num_byzantine() < self.num_servers
    }

    /// The Byzantine fraction ε = B/P.
    pub fn epsilon(&self) -> f64 {
        self.num_byzantine() as f64 / self.num_servers as f64
    }

    /// The matching trim rate β = B/P for the Fed-MS filter.
    pub fn matching_beta(&self) -> f64 {
        self.epsilon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_counts_and_ids() {
        assert!(Topology::new(0, 5, []).is_err());
        assert!(Topology::new(5, 0, []).is_err());
        assert!(Topology::new(5, 5, [5]).is_err());
        assert!(Topology::new(5, 5, [4]).is_ok());
    }

    #[test]
    fn byzantine_set_deduplicated() {
        let t = Topology::new(10, 5, [1, 1, 3]).unwrap();
        assert_eq!(t.num_byzantine(), 2);
        assert!(t.is_byzantine(1));
        assert!(t.is_byzantine(3));
        assert!(!t.is_byzantine(0));
        assert_eq!(t.byzantine_ids().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn random_placement_deterministic_and_in_range() {
        let a = Topology::with_random_byzantine(50, 10, 3, 7).unwrap();
        let b = Topology::with_random_byzantine(50, 10, 3, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_byzantine(), 3);
        assert!(a.byzantine_ids().all(|id| id < 10));
        let c = Topology::with_random_byzantine(50, 10, 3, 8).unwrap();
        // Different seeds usually place differently (not guaranteed, but
        // with C(10,3)=120 possibilities the chosen seeds differ).
        assert_ne!(a, c);
    }

    #[test]
    fn minority_and_epsilon() {
        let t = Topology::with_random_byzantine(50, 10, 2, 0).unwrap();
        assert!(t.byzantine_minority());
        assert!((t.epsilon() - 0.2).abs() < 1e-12);
        assert!((t.matching_beta() - 0.2).abs() < 1e-12);
        let half = Topology::with_random_byzantine(50, 10, 5, 0).unwrap();
        assert!(!half.byzantine_minority());
        assert!(Topology::with_random_byzantine(50, 10, 11, 0).is_err());
    }
}
