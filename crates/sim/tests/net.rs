//! The Local≡Net equivalence contract and the network transport's
//! integration surface.
//!
//! Three layers:
//!
//! 1. **Transport-level oracle property** — under [`NetModel::ideal`] a
//!    [`NetTransport`] round replays the same message fates, inbox
//!    contents, downlink realizations and [`CommStats`] counters as
//!    [`LocalTransport`], for arbitrary fault plans and drop rates. This
//!    is the property that lets `LocalTransport` stay the CI oracle while
//!    `NetTransport` actually moves frames between threads.
//! 2. **Engine-level equivalence** — a full faulty training run over the
//!    net transport reproduces the local engine's snapshot byte-for-byte
//!    (which also pins the streaming-upload path against the buffered
//!    one, since `NetTransport` does not stream).
//! 3. **Wire + TCP** — frame roundtrips survive arbitrary payloads,
//!    incompatible versions are rejected with the typed error, and a
//!    loopback-TCP round aggregates concurrent client uploads.

use fedms_aggregation::{EstimatorPolicy, TrimmedMean};
use fedms_attacks::AttackKind;
use fedms_data::{DirichletPartitioner, SynthVisionConfig};
use fedms_nn::LrSchedule;
use fedms_sim::net::wire::{decode_frame, encode_frame};
use fedms_sim::net::Frame;
use fedms_sim::{
    CommStats, DeliveryOutcome, Dissemination, EngineConfig, FaultPlan, LocalTransport, ModelSpec,
    NetModel, NetTransport, RecoveryPolicy, ServerFault, SimulationEngine, ThreatSchedule,
    Topology, Transport, Upload, UploadStrategy, WireError,
};
use fedms_tensor::Tensor;
use proptest::prelude::*;

/// Everything observable about one replayed round, payloads included.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Upload {
        round: usize,
        client: usize,
        server: usize,
        outcome: DeliveryOutcome,
    },
    Inbox {
        round: usize,
        server: usize,
        models: Vec<Vec<f32>>,
    },
    Release {
        round: usize,
        server: usize,
        outcome: DeliveryOutcome,
        released: Option<Vec<f32>>,
    },
    Downlink {
        round: usize,
        client: usize,
        server: usize,
        outcome: DeliveryOutcome,
        model: Vec<f32>,
    },
}

/// Drives `rounds` full rounds of protocol traffic through `t`, recording
/// every fate *and* every payload. Even servers broadcast, odd servers
/// equivocate per client — so the per-client dissemination path crosses
/// the wire too.
fn replay(
    t: &mut dyn Transport,
    clients: usize,
    servers: usize,
    rounds: usize,
) -> (Vec<Ev>, Vec<CommStats>) {
    let mut trace = Vec::new();
    let mut comms = Vec::new();
    for round in 0..rounds {
        t.begin_round(round, 2);
        for k in 0..clients {
            let s = k % servers;
            let model = Tensor::from_slice(&[k as f32, round as f32]);
            let outcome = t.send_upload(Upload { client: k, server: s, model });
            trace.push(Ev::Upload { round, client: k, server: s, outcome });
        }
        for s in 0..servers {
            let inbox = t.take_inbox(s);
            trace.push(Ev::Inbox {
                round,
                server: s,
                models: inbox.iter().map(|m| m.as_slice().to_vec()).collect(),
            });
            let agg = Tensor::from_slice(&[s as f32, round as f32]);
            let (outcome, released) = t.release_aggregate(s, agg);
            trace.push(Ev::Release {
                round,
                server: s,
                outcome,
                released: released.as_ref().map(|m| m.as_slice().to_vec()),
            });
            if let Some(model) = released {
                let diss = if s % 2 == 0 {
                    Dissemination::Broadcast(model)
                } else {
                    Dissemination::PerClient(
                        (0..clients)
                            .map(|k| Tensor::from_slice(&[(s * 100 + k) as f32, round as f32]))
                            .collect(),
                    )
                };
                t.broadcast(fedms_sim::Broadcast { server: s, model: diss })
                    .expect("full-coverage dissemination is accepted");
            }
        }
        for k in 0..clients {
            for d in t.drain_deliveries(k) {
                trace.push(Ev::Downlink {
                    round,
                    client: k,
                    server: d.server,
                    outcome: d.outcome,
                    model: d.model.as_slice().to_vec(),
                });
            }
        }
        comms.push(t.take_comm());
    }
    (trace, comms)
}

/// Maps generated per-server fault codes onto a [`FaultPlan`].
fn plan_from_codes(
    codes: &[u8],
    crash_round: usize,
    delay: usize,
    omission: f64,
    duplicate: f64,
) -> FaultPlan {
    FaultPlan {
        server_faults: codes
            .iter()
            .map(|c| match c {
                0 => ServerFault::None,
                1 => ServerFault::Crash { round: crash_round },
                _ => ServerFault::Straggler { delay },
            })
            .collect(),
        downlink_omission: omission,
        duplicate_rate: duplicate,
    }
}

proptest! {
    /// The oracle property: under the ideal model, `NetTransport` replays
    /// `LocalTransport` message-for-message (fates, inbox order, downlink
    /// realizations, payloads) and counter-for-counter, for arbitrary
    /// crash/straggler/omission/duplicate plans and uplink drop rates.
    #[test]
    fn net_under_ideal_model_replays_local_exactly(
        seed in 0u64..1000,
        clients in 1usize..10,
        codes in proptest::collection::vec(0u8..3, 2..6),
        crash_round in 0usize..3,
        delay in 1usize..4,
        omission in 0.0f64..0.9,
        duplicate in 0.0f64..0.9,
        drop_rate in 0.0f64..0.9,
    ) {
        let servers = codes.len();
        let rounds = 1 + (seed % 3) as usize;
        let plan = plan_from_codes(&codes, crash_round, delay, omission, duplicate);
        let mut local = LocalTransport::new(seed, clients, servers);
        let mut net = NetTransport::new(seed, clients, servers, NetModel::ideal());
        for t in [&mut local as &mut dyn Transport, &mut net as &mut dyn Transport] {
            t.install_fault_plan(plan.clone()).expect("generated plan is valid");
            t.set_upload_drop_rate(drop_rate).expect("generated rate is valid");
        }
        let a = replay(&mut local, clients, servers, rounds);
        let b = replay(&mut net, clients, servers, rounds);
        prop_assert_eq!(a.0, b.0, "message traces diverged between local and net");
        prop_assert_eq!(a.1, b.1, "comm counters diverged between local and net");
        prop_assert!(net.take_wire_error().is_none(), "a healthy run decoded a bad frame");
    }

    /// Thread scheduling never leaks into results: two `NetTransport`s
    /// under the same seed and a *non-trivial* delay model produce
    /// identical traces and counters.
    #[test]
    fn net_transport_is_deterministic_under_real_delays(
        seed in 0u64..500,
        clients in 1usize..8,
        servers in 2usize..5,
        drop_rate in 0.0f64..0.5,
    ) {
        let model = NetModel { deadline_ms: 40, ..NetModel::edge() };
        let mut first = NetTransport::new(seed, clients, servers, model);
        let mut second = NetTransport::new(seed, clients, servers, model);
        for t in [&mut first, &mut second] {
            t.set_upload_drop_rate(drop_rate).expect("generated rate is valid");
        }
        let a = replay(&mut first, clients, servers, 2);
        let b = replay(&mut second, clients, servers, 2);
        prop_assert_eq!(a, b, "same seed, same model, different realization");
    }

    /// Every frame kind roundtrips through the wire encoding bit-exactly,
    /// and the decoder consumes the frame completely.
    #[test]
    fn frames_roundtrip_through_the_wire(
        round in 0u32..1000,
        client in 0u32..500,
        server in 0u32..64,
        arrival in 0u64..100_000,
        payload in proptest::collection::vec(-1e6f32..1e6, 0..64),
        per_client in 1usize..5,
    ) {
        let model = Tensor::from_slice(&payload);
        let frames = vec![
            Frame::Hello { client },
            Frame::Upload { round, client, server, arrival_ms: arrival, model: model.clone() },
            Frame::Broadcast {
                round,
                server,
                model: Dissemination::Broadcast(model.clone()),
            },
            Frame::Broadcast {
                round,
                server,
                model: Dissemination::PerClient(vec![model.clone(); per_client]),
            },
            Frame::Aggregate { round, contributors: client, model },
            Frame::Bye,
        ];
        for frame in frames {
            let bytes = encode_frame(&frame);
            let (back, used) = decode_frame(&bytes).expect("encoder output must decode");
            prop_assert_eq!(&back, &frame);
            prop_assert_eq!(used, bytes.len(), "decoder left trailing bytes");
        }
    }

    /// Fuzz hardening: feeding the decoder arbitrary bytes never panics
    /// and never over-allocates — it returns a frame or a typed
    /// [`WireError`], and when it succeeds it consumed no more bytes than
    /// it was given.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in proptest::collection::vec(0u8..=255u8, 0..512),
    ) {
        match decode_frame(&bytes) {
            Ok((_, used)) => prop_assert!(used <= bytes.len()),
            Err(
                WireError::Truncated { .. }
                | WireError::Version { .. }
                | WireError::UnknownKind(_)
                | WireError::Oversized { .. }
                | WireError::TrailingBytes { .. },
            ) => {}
            Err(other) => prop_assert!(false, "pure decode surfaced {other:?}"),
        }
    }

    /// Fuzz hardening: every truncation of a well-formed frame decodes to
    /// a typed error — never a panic, never a bogus success.
    #[test]
    fn truncations_of_valid_frames_are_typed_errors(
        round in 0u32..100,
        server in 0u32..16,
        payload in proptest::collection::vec(-1e3f32..1e3, 0..16),
        cut_seed in 0u64..=u64::MAX,
    ) {
        let bytes = encode_frame(&Frame::Broadcast {
            round,
            server,
            model: Dissemination::Broadcast(Tensor::from_slice(&payload)),
        });
        let cut = (cut_seed as usize) % bytes.len();
        match decode_frame(&bytes[..cut]) {
            Err(WireError::Truncated { needed, got }) => prop_assert!(got < needed),
            other => prop_assert!(false, "cut at {cut}: expected truncation, got {other:?}"),
        }
    }

    /// Fuzz hardening: a single flipped bit anywhere in a valid frame
    /// yields a decode (possibly of different content) or a typed error —
    /// the decoder has no panicking path and no unchecked allocation.
    #[test]
    fn bit_flips_decode_or_fail_typed(
        client in 0u32..100,
        arrival in 0u64..1000,
        payload in proptest::collection::vec(-1e3f32..1e3, 1..16),
        flip_seed in 0u64..=u64::MAX,
    ) {
        let bytes = encode_frame(&Frame::Upload {
            round: 1,
            client,
            server: 0,
            arrival_ms: arrival,
            model: Tensor::from_slice(&payload),
        });
        let mut corrupted = bytes.clone();
        let bit = (flip_seed as usize) % (bytes.len() * 8);
        corrupted[bit / 8] ^= 1 << (bit % 8);
        match decode_frame(&corrupted) {
            Ok((_, used)) => prop_assert!(used <= corrupted.len()),
            Err(WireError::Io(msg)) => {
                prop_assert!(false, "pure decode surfaced an i/o error: {msg}")
            }
            Err(_) => {}
        }
    }
}

/// A frame stamped with a future protocol version is rejected with the
/// typed error, not misparsed — the cross-build safety net of the TCP
/// mode.
#[test]
fn incompatible_frame_version_is_rejected() {
    let mut bytes = encode_frame(&Frame::Hello { client: 3 });
    // Layout: [u32 len][u16 version][u8 kind][payload].
    bytes[4] = 0xFF;
    bytes[5] = 0xFF;
    match decode_frame(&bytes) {
        Err(WireError::Version { found, expected }) => {
            assert_eq!(found, 0xFFFF);
            assert_eq!(expected, fedms_sim::FRAME_VERSION);
        }
        other => panic!("expected a version error, got {other:?}"),
    }
}

/// Truncated input surfaces the typed decode error with the byte counts.
#[test]
fn truncated_frames_report_how_much_was_missing() {
    let bytes = encode_frame(&Frame::Hello { client: 3 });
    for cut in 0..bytes.len() {
        match decode_frame(&bytes[..cut]) {
            Err(WireError::Truncated { needed, got }) => assert!(got < needed),
            other => panic!("cut at {cut}: expected truncation, got {other:?}"),
        }
    }
}

fn engine(cohort: usize) -> SimulationEngine {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(12, 4, vec![1]).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 12, 3).unwrap();
    let config = EngineConfig {
        topology: topo,
        model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 2,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed: 11,
        eval_every: 1,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    let attacks = vec![(1usize, AttackKind::Noise { std: 0.5 }.build().unwrap())];
    SimulationEngine::new(
        config,
        &train,
        &test,
        &parts,
        Box::new(TrimmedMean::new(0.25).unwrap()),
        attacks,
    )
    .unwrap()
}

/// A benign-but-busy fault schedule: one straggler pipeline, a lossy
/// uplink and a duplicating downlink (no omission, so the quorum guard
/// never trips and the comparison covers full rounds).
fn faults() -> FaultPlan {
    FaultPlan {
        server_faults: vec![
            ServerFault::None,
            ServerFault::Straggler { delay: 1 },
            ServerFault::None,
            ServerFault::None,
        ],
        downlink_omission: 0.0,
        duplicate_rate: 0.3,
    }
}

/// Runs `rounds` rounds over the engine's default local transport (which
/// streams uploads) or over a fresh ideal-model [`NetTransport`] (which
/// buffers them), returning the serialized snapshot and the comm totals.
fn engine_run(cohort: usize, rounds: usize, net: bool) -> (Vec<u8>, CommStats) {
    let mut e = engine(cohort);
    if net {
        e.set_transport(Box::new(NetTransport::new(11, 12, 4, NetModel::ideal())));
    }
    e.set_fault_plan(faults()).unwrap();
    e.set_upload_drop_rate(0.2).unwrap();
    let result = e.run(rounds).unwrap();
    (serde_json::to_string(&e.snapshot()).unwrap().into_bytes(), result.total_comm)
}

/// The end-to-end acceptance property: a full faulty training run over
/// the concurrent transport reproduces the local engine byte-for-byte —
/// models, server histories, outboxes, metrics and message totals. This
/// also pins streaming uploads (local) against buffered uploads (net).
#[test]
fn engine_over_net_transport_matches_local_bit_exactly() {
    let (local_snap, local_comm) = engine_run(0, 3, false);
    let (net_snap, net_comm) = engine_run(0, 3, true);
    assert_eq!(local_comm, net_comm, "comm totals diverged");
    assert_eq!(local_snap, net_snap, "snapshots diverged between local and net engines");
}

/// Cohort sampling composes with the net transport: download accounting
/// follows the declared cohort (not the federation), matching the local
/// engine exactly — the regression for recipients being silently reset by
/// `begin_round`.
#[test]
fn cohorted_net_rounds_account_downloads_to_the_cohort() {
    let (local_snap, local_comm) = engine_run(4, 3, false);
    let (net_snap, net_comm) = engine_run(4, 3, true);
    assert_eq!(net_comm, local_comm);
    // Base disseminations go to the 4 cohort clients only: 4 servers × 4
    // recipients × 3 rounds, minus the straggler's silent warm-up round
    // (one round with 3 active servers). Fault-injected duplicates are
    // accounted on top of this base.
    assert_eq!(net_comm.download_messages - net_comm.duplicated_downloads, 4 * 4 * 2 + 3 * 4);
    assert_eq!(local_snap, net_snap);
}

/// Runs a short federation with the given server attack on the default
/// local transport or an ideal-model net transport, returning the
/// per-round accuracy trajectory.
fn stealth_run(attack: Box<dyn fedms_attacks::ServerAttack>, net: bool) -> Vec<f32> {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(12, 4, vec![1]).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 12, 3).unwrap();
    let config = EngineConfig {
        topology: topo,
        model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 1,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed: 21,
        eval_every: 1,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    let mut e = SimulationEngine::new(
        config,
        &train,
        &test,
        &parts,
        Box::new(TrimmedMean::new(0.25).unwrap()),
        vec![(1usize, attack)],
    )
    .unwrap();
    if net {
        e.set_transport(Box::new(NetTransport::new(21, 12, 4, NetModel::ideal())));
    }
    let result = e.run(3).unwrap();
    result.rounds.iter().map(|r| r.mean_accuracy).collect()
}

/// Stealth attacks cross the wire unchanged: ALIE, IPM and per-client
/// equivocation produce bit-identical accuracy trajectories whether the
/// tampered disseminations travel through `LocalTransport` or through the
/// concurrent `NetTransport` under the ideal model. Equivocation
/// exercises the per-client (`Dissemination::PerClient`) wire path, the
/// one a broadcast-only codec would silently collapse.
#[test]
fn stealth_attacks_cross_the_net_transport_unchanged() {
    type AttackBuilder = fn() -> Box<dyn fedms_attacks::ServerAttack>;
    let builds: Vec<(&str, AttackBuilder)> = vec![
        ("alie", || AttackKind::Alie { z: 1.0 }.build().unwrap()),
        ("ipm", || AttackKind::Ipm { epsilon: 0.5 }.build().unwrap()),
        ("equivocation", || {
            AttackKind::Random { lo: -10.0, hi: 10.0 }.build_equivocating(1).unwrap()
        }),
    ];
    for (name, build) in builds {
        let local = stealth_run(build(), false);
        let net = stealth_run(build(), true);
        assert!(!local.is_empty(), "{name}: no accuracy samples recorded");
        assert_eq!(local, net, "{name}: accuracy trajectory diverged between local and net");
    }
}

/// One loopback-TCP round with *concurrent* clients: the serve loop folds
/// every upload into the running mean regardless of arrival interleaving.
#[test]
fn tcp_round_aggregates_concurrent_clients() {
    let server = fedms_sim::net::TcpRound::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let serving = std::thread::spawn(move || server.serve(4).unwrap());
    let clients: Vec<_> = (0..4)
        .map(|k| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let model = Tensor::from_slice(&[k as f32, 2.0 * k as f32]);
                fedms_sim::net::run_client(&addr, k as usize, &model).unwrap()
            })
        })
        .collect();
    for c in clients {
        let (contributors, agg) = c.join().unwrap();
        assert!((1..=4).contains(&contributors));
        assert_eq!(agg.len(), 2);
    }
    let report = serving.join().unwrap();
    assert_eq!(report.uploads, 4);
    // mean of [k, 2k] for k = 0..4 is [1.5, 3.0].
    assert_eq!(report.aggregate.unwrap().as_slice(), &[1.5, 3.0]);
}
