//! Property-based tests of simulator invariants.

use fedms_sim::{
    Broadcast, CommStats, DeliveryOutcome, Dissemination, FaultPlan, LocalTransport, ServerFault,
    Topology, Transport, Upload, UploadStrategy,
};
use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use proptest::prelude::*;
use std::collections::HashSet;

/// One realized message fate in a transport replay: `(round, stage, from,
/// to, outcome)` where stage 0 = uplink (client → server), 1 = aggregate
/// release (`to` is 1 when a model came out of the pipeline, 0 when the
/// straggler outbox held it back), 2 = downlink delivery (server → client).
type TraceEntry = (usize, u8, usize, usize, DeliveryOutcome);

/// Builds a transport with `plan` installed and drives `rounds` full rounds
/// of traffic through it — every client uploads once, every server releases
/// an aggregate and broadcasts, every client drains its downlink — and
/// records the realized fate of every message plus the per-round counters.
fn replay_transport(
    seed: u64,
    clients: usize,
    servers: usize,
    plan: &FaultPlan,
    drop_rate: f64,
    rounds: usize,
) -> (Vec<TraceEntry>, Vec<CommStats>) {
    let mut t = LocalTransport::new(seed, clients, servers);
    t.install_fault_plan(plan.clone()).expect("generated plan is valid");
    t.set_upload_drop_rate(drop_rate).expect("generated rate is valid");
    let mut trace = Vec::new();
    let mut comms = Vec::new();
    for round in 0..rounds {
        t.begin_round(round, 2);
        for k in 0..clients {
            let s = k % servers;
            let model = Tensor::from_slice(&[k as f32, round as f32]);
            let outcome = t.send_upload(Upload { client: k, server: s, model });
            trace.push((round, 0, k, s, outcome));
        }
        for s in 0..servers {
            let _ = t.take_inbox(s);
            let agg = Tensor::from_slice(&[s as f32, round as f32]);
            let (outcome, released) = t.release_aggregate(s, agg);
            trace.push((round, 1, s, usize::from(released.is_some()), outcome));
            if let Some(model) = released {
                t.broadcast(Broadcast { server: s, model: Dissemination::Broadcast(model) })
                    .expect("full broadcast always covers every client");
            }
        }
        for k in 0..clients {
            for d in t.drain_deliveries(k) {
                trace.push((round, 2, d.server, k, d.outcome));
            }
        }
        comms.push(t.take_comm());
    }
    (trace, comms)
}

/// Maps generated per-server fault codes onto a [`FaultPlan`].
fn plan_from_codes(
    codes: &[u8],
    crash_round: usize,
    delay: usize,
    omission: f64,
    duplicate: f64,
) -> FaultPlan {
    FaultPlan {
        server_faults: codes
            .iter()
            .map(|c| match c {
                0 => ServerFault::None,
                1 => ServerFault::Crash { round: crash_round },
                _ => ServerFault::Straggler { delay },
            })
            .collect(),
        downlink_omission: omission,
        duplicate_rate: duplicate,
    }
}

proptest! {
    /// Upload assignments are always in range, distinct per client, and
    /// sized per the strategy's formula.
    #[test]
    fn assignment_invariants(
        clients in 1usize..40,
        servers in 1usize..12,
        k in 1usize..6,
        seed in 0u64..100,
    ) {
        let mut rng = rng_for(seed, &[]);
        for strategy in [
            UploadStrategy::Sparse,
            UploadStrategy::Full,
            UploadStrategy::Redundant(k),
        ] {
            let a = strategy.assign(clients, servers, &mut rng).unwrap();
            prop_assert_eq!(a.len(), clients);
            let total: usize = a.iter().map(Vec::len).sum();
            prop_assert_eq!(total, strategy.messages_per_round(clients, servers));
            for list in &a {
                let set: HashSet<_> = list.iter().collect();
                prop_assert_eq!(set.len(), list.len(), "duplicate server in assignment");
                prop_assert!(list.iter().all(|&s| s < servers));
            }
        }
    }

    /// Random Byzantine placement respects the requested count, stays in
    /// range, and is reproducible per seed.
    #[test]
    fn topology_random_placement(
        clients in 1usize..30,
        servers in 1usize..15,
        seed in 0u64..100,
    ) {
        let b = servers / 2;
        let t = Topology::with_random_byzantine(clients, servers, b, seed).unwrap();
        prop_assert_eq!(t.num_byzantine(), b);
        prop_assert!(t.byzantine_ids().all(|id| id < servers));
        let again = Topology::with_random_byzantine(clients, servers, b, seed).unwrap();
        prop_assert_eq!(t, again);
    }

    /// ε = B/P and the strict-minority predicate agree with arithmetic.
    #[test]
    fn epsilon_consistency(servers in 1usize..20, b_frac in 0.0f64..1.0) {
        let b = ((servers as f64) * b_frac) as usize;
        prop_assume!(b <= servers);
        let t = Topology::with_random_byzantine(5, servers, b, 0).unwrap();
        prop_assert!((t.epsilon() - b as f64 / servers as f64).abs() < 1e-12);
        prop_assert_eq!(t.byzantine_minority(), 2 * b < servers);
    }

    /// For any fault plan, delivery outcomes are a pure function of
    /// `(seed, round, link)`: replaying the same traffic through a fresh
    /// [`LocalTransport`] reproduces every message fate and every counter
    /// bit-exactly.
    #[test]
    fn transport_outcomes_are_pure_function_of_seed_round_link(
        seed in 0u64..1000,
        clients in 1usize..10,
        codes in proptest::collection::vec(0u8..3, 2..7),
        crash_round in 0usize..3,
        delay in 1usize..4,
        omission in 0.0f64..0.9,
        duplicate in 0.0f64..0.9,
        drop_rate in 0.0f64..0.9,
    ) {
        let servers = codes.len();
        let rounds = 1 + (seed % 4) as usize;
        let plan = plan_from_codes(&codes, crash_round, delay, omission, duplicate);
        let first = replay_transport(seed, clients, servers, &plan, drop_rate, rounds);
        let second = replay_transport(seed, clients, servers, &plan, drop_rate, rounds);
        prop_assert_eq!(first.0, second.0, "message fates diverged across replays");
        prop_assert_eq!(first.1, second.1, "comm counters diverged across replays");
    }

    /// Per-round [`CommStats`] are exactly the sum of the per-message
    /// outcomes the transport reported: nothing is counted twice, and no
    /// message fate goes unaccounted.
    #[test]
    fn transport_comm_equals_sum_of_message_outcomes(
        seed in 0u64..1000,
        clients in 1usize..10,
        codes in proptest::collection::vec(0u8..3, 2..7),
        crash_round in 0usize..3,
        delay in 1usize..4,
        omission in 0.0f64..0.9,
        duplicate in 0.0f64..0.9,
        drop_rate in 0.0f64..0.9,
    ) {
        let servers = codes.len();
        let rounds = 1 + (seed % 4) as usize;
        let plan = plan_from_codes(&codes, crash_round, delay, omission, duplicate);
        let (trace, comms) = replay_transport(seed, clients, servers, &plan, drop_rate, rounds);
        let model_bytes = 2 * 4u64; // replay uses 2-element f32 models
        for (round, comm) in comms.iter().enumerate() {
            let round_entries: Vec<_> =
                trace.iter().filter(|e| e.0 == round).collect();
            let uploads =
                round_entries.iter().filter(|e| e.1 == 0).count() as u64;
            let dropped_up = round_entries
                .iter()
                .filter(|e| e.1 == 0 && e.4 == DeliveryOutcome::Dropped)
                .count() as u64;
            // Every released aggregate became one broadcast to all clients.
            let broadcasts =
                round_entries.iter().filter(|e| e.1 == 1 && e.3 == 1).count() as u64;
            let delivered_down = round_entries
                .iter()
                .filter(|e| e.1 == 2 && e.4 == DeliveryOutcome::Delivered)
                .count() as u64;
            let duplicated = round_entries
                .iter()
                .filter(|e| e.1 == 2 && e.4 == DeliveryOutcome::Duplicated)
                .count() as u64;

            prop_assert_eq!(comm.upload_messages, uploads);
            prop_assert_eq!(comm.dropped_uploads, dropped_up);
            prop_assert_eq!(comm.upload_bytes, uploads * model_bytes);
            prop_assert_eq!(comm.duplicated_downloads, duplicated);
            // Broadcast fan-out: each broadcast is addressed to every
            // client; a first copy either lands (Delivered) or is counted
            // dropped, and duplicates add one extra accounted message.
            let addressed = comm.download_messages - duplicated;
            prop_assert_eq!(addressed, delivered_down + comm.dropped_downloads);
            prop_assert_eq!(addressed % clients as u64, 0);
            prop_assert_eq!(
                comm.download_bytes,
                comm.download_messages * model_bytes
            );
            // The broadcast count drives the fan-out exactly, and dropped
            // downloads only exist under omission.
            prop_assert_eq!(addressed, broadcasts * clients as u64);
            if omission == 0.0 {
                prop_assert_eq!(comm.dropped_downloads, 0);
            }
        }
    }
}
