//! Property-based tests of simulator invariants.

use fedms_sim::{Topology, UploadStrategy};
use fedms_tensor::rng::rng_for;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Upload assignments are always in range, distinct per client, and
    /// sized per the strategy's formula.
    #[test]
    fn assignment_invariants(
        clients in 1usize..40,
        servers in 1usize..12,
        k in 1usize..6,
        seed in 0u64..100,
    ) {
        let mut rng = rng_for(seed, &[]);
        for strategy in [
            UploadStrategy::Sparse,
            UploadStrategy::Full,
            UploadStrategy::Redundant(k),
        ] {
            let a = strategy.assign(clients, servers, &mut rng).unwrap();
            prop_assert_eq!(a.len(), clients);
            let total: usize = a.iter().map(Vec::len).sum();
            prop_assert_eq!(total, strategy.messages_per_round(clients, servers));
            for list in &a {
                let set: HashSet<_> = list.iter().collect();
                prop_assert_eq!(set.len(), list.len(), "duplicate server in assignment");
                prop_assert!(list.iter().all(|&s| s < servers));
            }
        }
    }

    /// Random Byzantine placement respects the requested count, stays in
    /// range, and is reproducible per seed.
    #[test]
    fn topology_random_placement(
        clients in 1usize..30,
        servers in 1usize..15,
        seed in 0u64..100,
    ) {
        let b = servers / 2;
        let t = Topology::with_random_byzantine(clients, servers, b, seed).unwrap();
        prop_assert_eq!(t.num_byzantine(), b);
        prop_assert!(t.byzantine_ids().all(|id| id < servers));
        let again = Topology::with_random_byzantine(clients, servers, b, seed).unwrap();
        prop_assert_eq!(t, again);
    }

    /// ε = B/P and the strict-minority predicate agree with arithmetic.
    #[test]
    fn epsilon_consistency(servers in 1usize..20, b_frac in 0.0f64..1.0) {
        let b = ((servers as f64) * b_frac) as usize;
        prop_assume!(b <= servers);
        let t = Topology::with_random_byzantine(5, servers, b, 0).unwrap();
        prop_assert!((t.epsilon() - b as f64 / servers as f64).abs() < 1e-12);
        prop_assert_eq!(t.byzantine_minority(), 2 * b < servers);
    }
}
