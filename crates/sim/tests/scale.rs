//! Large-`K` scale smoke tests: memory stays bounded by the cohort, not
//! the federation, and cohort rounds stay byte-identical across worker
//! threads at scale.
//!
//! These run ignored by default (they build 10⁵–10⁶-client federations);
//! CI's `scale-smoke` job runs them in release mode, single-threaded:
//!
//! ```text
//! cargo test --release -p fedms-sim --test scale -- --ignored --test-threads=1
//! ```
//!
//! `--test-threads=1` matters: the budget is enforced on `VmHWM`, the
//! *process-wide* peak RSS, so the tests must not overlap. The budget
//! below is the one DESIGN.md §11 states for the million-client round.

use fedms_aggregation::{EstimatorPolicy, TrimmedMean};
use fedms_nn::LrSchedule;
use fedms_sim::ThreatSchedule;
use fedms_sim::{
    EngineConfig, ModelSpec, Partitions, RecoveryPolicy, SimulationEngine, Topology, UploadStrategy,
};

/// Peak-RSS ceiling for every test in this binary, including the
/// `K = 10⁶`, `P = 10`, `cohort = 1024` round. Process-wide, so it covers
/// the dataset, the engine, and the test harness itself.
const MEMORY_BUDGET_BYTES: u64 = 512 * 1024 * 1024;

/// `VmHWM` from `/proc/self/status` in bytes (Linux-only, like CI).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

fn scale_engine(clients: usize, cohort: usize, threads: usize, parallel: bool) -> SimulationEngine {
    let (train, test) = fedms_data::SynthVisionConfig::small().generate(3).unwrap();
    let config = EngineConfig {
        topology: Topology::new(clients, 10, []).unwrap(),
        model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 1,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed: 17,
        eval_every: 1,
        eval_clients: 8,
        parallel,
        threads,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    // Procedural partitions: O(1) storage per client is the point — an
    // explicit index-list partition of 10⁶ clients would defeat the test.
    let partitions = Partitions::uniform(clients, train.len(), 8, 17).unwrap();
    SimulationEngine::with_store(
        config,
        &train,
        &test,
        partitions,
        Box::new(TrimmedMean::new(0.2).unwrap()),
        Box::new(fedms_aggregation::Mean::new()),
        vec![],
        vec![],
    )
    .unwrap()
}

/// `K = 10⁵`, `P = 10`, `cohort = 256`: two rounds are byte-identical
/// across sequential, 1, 4 and auto worker threads, and stay under the
/// memory budget.
#[test]
#[ignore = "scale smoke; run via the CI scale-smoke job"]
fn hundred_thousand_clients_thread_determinism() {
    let run = |threads: usize, parallel: bool| {
        let mut e = scale_engine(100_000, 256, threads, parallel);
        e.step_round(false).unwrap();
        e.step_round(false).unwrap();
        serde_json::to_string(&e.snapshot()).unwrap()
    };
    let sequential = run(0, false);
    assert_eq!(sequential, run(1, true), "threads=1 differs from sequential");
    assert_eq!(sequential, run(4, true), "threads=4 differs from sequential");
    assert_eq!(sequential, run(0, true), "threads=auto differs from sequential");
    if let Some(rss) = peak_rss_bytes() {
        assert!(
            rss < MEMORY_BUDGET_BYTES,
            "peak RSS {} MiB exceeds the {} MiB budget",
            rss >> 20,
            MEMORY_BUDGET_BYTES >> 20
        );
    }
}

/// The acceptance round: `K = 10⁶` clients, `P = 10` servers,
/// `cohort = 1024`, one full round under the stated budget, with the
/// model bank staying proportional to the cohort.
#[test]
#[ignore = "scale smoke; run via the CI scale-smoke job"]
fn million_client_round_fits_the_memory_budget() {
    let mut e = scale_engine(1_000_000, 1024, 0, true);
    e.step_round(false).unwrap();
    assert_eq!(e.round(), 1);
    // Sparse upload: one message per cohort client, not per client.
    assert_eq!(e.result().total_comm.upload_messages, 1024);
    // The bank holds the shared w₀ plus at most one entry per cohort
    // member — never a million tensors.
    assert!(
        e.distinct_client_models() <= 1 + 1024,
        "bank grew to {} entries",
        e.distinct_client_models()
    );
    // The downlink pool recycled its buffers and leaked nothing.
    let stats = e.pool_stats();
    assert!(stats.reused > 0, "pool never reused a buffer");
    assert_eq!(stats.outstanding_bytes, 0, "filter leaked pooled buffers");
    if let Some(rss) = peak_rss_bytes() {
        assert!(
            rss < MEMORY_BUDGET_BYTES,
            "peak RSS {} MiB exceeds the {} MiB budget",
            rss >> 20,
            MEMORY_BUDGET_BYTES >> 20
        );
    }
}
