//! End-to-end determinism across thread counts: the engine promises that
//! the client-parallel phases (local SGD, evaluation, the `Def(·)` filter)
//! are bit-identical however the work is sharded. This test drives full
//! rounds — Byzantine server, trimmed-mean filter, diagnostics on — under
//! sequential, 4-thread and auto-thread execution and compares the
//! serialized [`fedms_sim::Snapshot`] byte-for-byte.

use fedms_aggregation::{EstimatorPolicy, TrimmedMean};
use fedms_attacks::AttackKind;
use fedms_data::{DirichletPartitioner, SynthVisionConfig};
use fedms_nn::LrSchedule;
use fedms_sim::ThreatSchedule;
use fedms_sim::{
    EngineConfig, ModelSpec, RecoveryPolicy, SimulationEngine, Snapshot, Topology, UploadStrategy,
};

/// An 8-client / 4-server federation with one noisy Byzantine server —
/// enough structure that every phase (attacks, filtering, diagnostics)
/// does real work each round.
fn engine(parallel: bool, threads: usize) -> SimulationEngine {
    let (train, test) = SynthVisionConfig::small().generate(21).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 8, 5).unwrap();
    let config = EngineConfig {
        topology: Topology::new(8, 4, vec![2]).unwrap(),
        model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 2,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed: 33,
        eval_every: 1,
        eval_clients: 0,
        parallel,
        threads,
        eval_after_local: true,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    let attacks = vec![(2, AttackKind::Noise { std: 0.5 }.build().unwrap())];
    let filter = Box::new(TrimmedMean::new(0.25).unwrap());
    let mut e = SimulationEngine::new(config, &train, &test, &parts, filter, attacks).unwrap();
    e.set_record_diagnostics(true);
    e
}

/// Runs three rounds and returns the snapshot serialized to bytes —
/// the strictest equality the engine exposes (every client model bit,
/// every server aggregate, every recorded metric).
fn snapshot_bytes(parallel: bool, threads: usize) -> Vec<u8> {
    let mut e = engine(parallel, threads);
    e.run(3).unwrap();
    let snap: Snapshot = e.snapshot();
    serde_json::to_string(&snap).unwrap().into_bytes()
}

#[test]
fn rounds_are_byte_identical_across_thread_counts() {
    let sequential = snapshot_bytes(false, 0);
    let one_thread = snapshot_bytes(true, 1);
    let four_threads = snapshot_bytes(true, 4);
    let auto_threads = snapshot_bytes(true, 0);
    assert_eq!(sequential, one_thread, "threads=1 must equal parallel=off");
    assert_eq!(sequential, four_threads, "threads=4 must equal sequential");
    assert_eq!(sequential, auto_threads, "auto thread count must equal sequential");
}
