//! Cohort-sampling invariants and engine-level cohort determinism.
//!
//! Three layers of guarantees:
//!
//! 1. [`fedms_sim::sample_cohort`] draws a uniform sample without
//!    replacement (property tests: size, distinctness, range, order,
//!    seed-purity, and a rough per-id frequency check),
//! 2. cohort-sampled rounds are byte-identical across worker-thread
//!    counts (snapshot serialization compared at the byte level),
//! 3. a cohort covering the whole federation reproduces the pre-cohort
//!    engine bit-exactly (`cohort = K` ≡ `cohort = 0`).

use fedms_aggregation::{EstimatorPolicy, TrimmedMean};
use fedms_attacks::AttackKind;
use fedms_data::{DirichletPartitioner, SynthVisionConfig};
use fedms_nn::LrSchedule;
use fedms_sim::ThreatSchedule;
use fedms_sim::{
    sample_cohort, EngineConfig, ModelSpec, RecoveryPolicy, SimulationEngine, Topology,
    UploadStrategy,
};
use fedms_tensor::rng::rng_for;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// The sample has the requested size (clamped to [1, n]), is strictly
    /// increasing (so distinct and sorted), stays in range, and is a pure
    /// function of the seed.
    #[test]
    fn sample_cohort_invariants(
        n in 1usize..200,
        take in 0usize..250,
        seed in 0u64..500,
    ) {
        let draw = || sample_cohort((0..n).collect(), take, &mut rng_for(seed, &[0x43_48_52_54]));
        let sample = draw();
        let expected = if take >= n { n } else { take.max(1) };
        prop_assert_eq!(sample.len(), expected);
        prop_assert!(sample.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        prop_assert!(sample.iter().all(|&k| k < n));
        prop_assert_eq!(&sample, &draw());
        // A full (or overfull) take returns the input untouched.
        if take >= n {
            let ids: Vec<usize> = (0..n).collect();
            prop_assert_eq!(&sample, &ids);
        }
    }

    /// Distinct seeds decorrelate draws: over many rounds every id is
    /// sampled a plausible number of times (a loose band around the
    /// expected `rounds · take / n` — catches "always the same prefix"
    /// or "never the tail" bugs, not distribution subtleties).
    #[test]
    fn sample_cohort_is_roughly_uniform(seed in 0u64..20) {
        let n = 50usize;
        let take = 10usize;
        let rounds = 400usize;
        let mut hits = vec![0usize; n];
        for r in 0..rounds {
            let sample =
                sample_cohort((0..n).collect(), take, &mut rng_for(seed, &[0x43_48_52_54, r as u64]));
            for k in sample {
                hits[k] += 1;
            }
        }
        // Expected 80 hits each; Binomial(400, 0.2) keeps every count
        // within ±45 with overwhelming probability.
        let expected = rounds * take / n;
        for (k, &h) in hits.iter().enumerate() {
            prop_assert!(
                h.abs_diff(expected) < 45,
                "client {} sampled {} times, expected ≈{}", k, h, expected
            );
        }
    }

    /// Two different rounds of the same seed produce different cohorts
    /// (with take far below n, collisions should be rare; a few are fine
    /// — identical draws every round would mean the round label is dead).
    #[test]
    fn sample_cohort_varies_by_round(seed in 0u64..20) {
        let n = 100usize;
        let take = 10usize;
        let mut distinct = HashSet::new();
        for r in 0..20u64 {
            distinct.insert(sample_cohort((0..n).collect(), take, &mut rng_for(seed, &[0x43_48_52_54, r])));
        }
        prop_assert!(distinct.len() > 15, "only {} distinct cohorts in 20 rounds", distinct.len());
    }
}

fn cohort_engine(cohort: usize, threads: usize, parallel: bool) -> SimulationEngine {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(12, 4, vec![1]).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 12, 3).unwrap();
    let config = EngineConfig {
        topology: topo,
        model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 2,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed: 11,
        eval_every: 1,
        eval_clients: 0,
        parallel,
        threads,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    let attacks = vec![(1usize, AttackKind::Noise { std: 0.5 }.build().unwrap())];
    SimulationEngine::new(
        config,
        &train,
        &test,
        &parts,
        Box::new(TrimmedMean::new(0.25).unwrap()),
        attacks,
    )
    .unwrap()
}

/// Serialized snapshot bytes after a short cohort-sampled run — the
/// strictest observable state (models, server histories, outboxes,
/// metrics) in one comparable blob.
fn snapshot_bytes(cohort: usize, threads: usize, parallel: bool) -> Vec<u8> {
    let mut e = cohort_engine(cohort, threads, parallel);
    e.run(4).unwrap();
    serde_json::to_string(&e.snapshot()).unwrap().into_bytes()
}

#[test]
fn cohort_rounds_are_byte_identical_across_thread_counts() {
    let sequential = snapshot_bytes(5, 0, false);
    let one = snapshot_bytes(5, 1, true);
    let four = snapshot_bytes(5, 4, true);
    let auto = snapshot_bytes(5, 0, true);
    assert_eq!(sequential, one, "threads=1 differs from sequential");
    assert_eq!(sequential, four, "threads=4 differs from sequential");
    assert_eq!(sequential, auto, "threads=auto differs from sequential");
}

#[test]
fn full_cohort_reproduces_the_uncohorted_engine_bit_exactly() {
    // cohort = K and cohort = 0 must not just agree on models — the whole
    // snapshot (bank layout included) must match byte-for-byte.
    let full = snapshot_bytes(12, 0, false);
    let off = snapshot_bytes(0, 0, false);
    assert_eq!(full, off);
    // Oversized cohorts clamp to the federation.
    let over = snapshot_bytes(100, 0, false);
    assert_eq!(over, off);
}

#[test]
fn cohort_run_records_metrics_and_bounds_memory() {
    let mut e = cohort_engine(4, 0, false);
    e.set_record_diagnostics(true);
    let result = e.run(5).unwrap();
    assert_eq!(result.rounds.len(), 5);
    assert!(result.final_accuracy().unwrap().is_finite());
    // 4 cohort clients × 1 sparse upload × 5 rounds.
    assert_eq!(result.total_comm.upload_messages, 20);
    // Downloads go to the cohort only: 4 servers × 4 clients × 5 rounds.
    assert_eq!(result.total_comm.download_messages, 80);
    // The bank stays interned: at most cohort + a shared broadcast entry
    // per round survives the sweep, never one model per client.
    assert!(
        e.distinct_client_models() <= 1 + 4 * 5,
        "bank grew to {} entries",
        e.distinct_client_models()
    );
    // The filter pool recycled its buffers.
    let stats = e.pool_stats();
    assert!(stats.reused > 0, "pool never reused a buffer");
    assert_eq!(stats.outstanding_bytes, 0, "filter leaked pooled buffers");
}

#[test]
fn cohort_snapshot_resume_is_bit_exact() {
    let mut reference = cohort_engine(5, 0, false);
    reference.run(6).unwrap();

    let mut first = cohort_engine(5, 0, false);
    first.run(3).unwrap();
    let snap = first.snapshot();
    let mut resumed = cohort_engine(5, 0, false);
    resumed.restore(&snap).unwrap();
    resumed.run(3).unwrap();

    assert_eq!(reference.client_models(), resumed.client_models());
    assert_eq!(reference.result().rounds, resumed.result().rounds);
}
