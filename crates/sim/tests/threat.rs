//! Acceptance tests for the dynamic threat engine: the bit-identity
//! contract for dormant schedules, threat-epoch event emission, and the
//! headline adaptive-defence property — an online B̂ estimator tracking a
//! mid-run compromise to within the known-B oracle's accuracy while a
//! static undefended run diverges.

use fedms_aggregation::{AdaptiveTrimmedMean, AggregationRule, EstimatorPolicy, Mean, TrimmedMean};
use fedms_data::{DirichletPartitioner, SynthVisionConfig};
use fedms_nn::LrSchedule;
use fedms_sim::{
    EngineConfig, ModelSpec, NetModel, NetTransport, RecoveryPolicy, RoundEvent, SimulationEngine,
    ThreatSchedule, Topology, UploadStrategy,
};
use proptest::prelude::*;

fn config(
    topology: Topology,
    seed: u64,
    threat: ThreatSchedule,
    est: EstimatorPolicy,
) -> EngineConfig {
    EngineConfig {
        topology,
        model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 1,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed,
        eval_every: 1,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat,
        estimator: est,
        backend: fedms_tensor::BackendKind::Scalar,
    }
}

/// Builds a 12-client / 4-server federation (server 1 statically
/// Byzantine) and returns its serialized snapshot after `rounds` rounds.
fn snapshot_after(seed: u64, net: bool, threat: ThreatSchedule, rounds: usize) -> Vec<u8> {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(12, 4, vec![1]).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 12, 3).unwrap();
    let attacks = vec![(1usize, fedms_attacks::AttackKind::Noise { std: 0.5 }.build().unwrap())];
    let mut e = SimulationEngine::new(
        config(topo, seed, threat, EstimatorPolicy::default()),
        &train,
        &test,
        &parts,
        Box::new(TrimmedMean::new(0.25).unwrap()),
        attacks,
    )
    .unwrap();
    if net {
        e.set_transport(Box::new(NetTransport::new(seed, 12, 4, NetModel::ideal())));
    }
    e.run(rounds).unwrap();
    serde_json::to_string(&e.snapshot()).unwrap().into_bytes()
}

proptest! {
    /// The bit-identity contract: an absent schedule, an empty schedule
    /// and a schedule whose epochs never activate inside the run all
    /// produce byte-identical snapshots, on both the local and the
    /// concurrent net transport. Enabling the threat layer without
    /// triggering it costs nothing and changes nothing.
    #[test]
    fn dormant_threat_schedules_are_bit_identical(
        seed in 0u64..40,
        net in 0u8..2,
    ) {
        let net = net == 1;
        let base = snapshot_after(seed, net, ThreatSchedule::none(), 3);
        let empty = snapshot_after(seed, net, ThreatSchedule::parse("").unwrap(), 3);
        let dormant = snapshot_after(
            seed,
            net,
            ThreatSchedule::parse(
                "500..: compromise=2, attack=random:-10:10; 600..700: partition=3, corrupt=0.5",
            )
            .unwrap(),
            3,
        );
        prop_assert_eq!(&base, &empty, "empty schedule perturbed the run");
        prop_assert_eq!(&base, &dormant, "dormant epochs perturbed the run");
    }
}

/// A compromise epoch turns an honest server Byzantine for its duration
/// and heals it afterwards: `compromised_servers` tracks the schedule,
/// and the event log records the epoch boundaries.
#[test]
fn mid_run_compromise_is_applied_and_healed() {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(12, 4, vec![]).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 12, 3).unwrap();
    let threat = ThreatSchedule::parse("1..3: compromise=2, attack=zero").unwrap();
    let mut e = SimulationEngine::new(
        config(topo, 11, threat, EstimatorPolicy::default()),
        &train,
        &test,
        &parts,
        Box::new(TrimmedMean::new(0.25).unwrap()),
        vec![],
    )
    .unwrap();
    e.enable_event_log(4096);

    e.step_round(false).unwrap(); // round 0: before the epoch
    assert!(e.compromised_servers().is_empty());
    e.step_round(false).unwrap(); // round 1: epoch opens
    assert_eq!(e.compromised_servers(), vec![2]);
    e.step_round(false).unwrap(); // round 2: still open
    assert_eq!(e.compromised_servers(), vec![2]);
    e.step_round(false).unwrap(); // round 3: healed
    assert!(e.compromised_servers().is_empty());

    let epochs: Vec<(usize, Vec<usize>)> = e
        .event_log()
        .unwrap()
        .of_kind("threat")
        .into_iter()
        .filter_map(|ev| match ev {
            RoundEvent::ThreatEpoch { round, compromised, .. } => {
                Some((*round, compromised.clone()))
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        epochs,
        vec![(1, vec![2]), (3, vec![])],
        "expected one event opening the epoch and one closing it"
    );
}

/// Runs the 20-client / 10-server federation under a mid-run compromise
/// of servers 2 and 7, returning the final mean accuracy and the engine.
fn compromised_run(
    filter: Box<dyn AggregationRule>,
    est: EstimatorPolicy,
    rounds: usize,
) -> (f32, SimulationEngine) {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(20, 10, vec![]).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 20, 3).unwrap();
    let threat = ThreatSchedule::parse("6..: compromise=2|7, attack=random:-10:10").unwrap();
    let mut e =
        SimulationEngine::new(config(topo, 17, threat, est), &train, &test, &parts, filter, vec![])
            .unwrap();
    e.enable_event_log(4096);
    let result = e.run(rounds).unwrap();
    (result.rounds.last().unwrap().mean_accuracy, e)
}

/// The headline acceptance property: when 2 of 10 servers are compromised
/// mid-run, the online B̂ estimator converges to trimming 2 per side and
/// the adaptive run lands within 2 accuracy points of the oracle that
/// knew B all along — while the static undefended (β = 0) run diverges
/// under the same attack.
#[test]
fn adaptive_defence_tracks_the_known_b_oracle() {
    const ROUNDS: usize = 30;
    let (oracle, _) =
        compromised_run(Box::new(AdaptiveTrimmedMean::new(2)), EstimatorPolicy::default(), ROUNDS);
    let (adaptive, engine) =
        compromised_run(Box::new(Mean::new()), EstimatorPolicy::enabled(), ROUNDS);
    let (undefended, _) =
        compromised_run(Box::new(Mean::new()), EstimatorPolicy::default(), ROUNDS);

    // The estimator convicted exactly the two compromised servers.
    assert_eq!(engine.estimated_trim(), Some(2), "estimator must settle on B̂ = 2");
    let adjustments = engine.event_log().unwrap().of_kind("beta").len();
    assert!(adjustments >= 1, "the trim change must be logged as a BetaAdjusted event");

    assert!(
        adaptive >= oracle - 0.02,
        "adaptive defence ({adaptive}) must end within 2 accuracy points \
         of the known-B oracle ({oracle})"
    );
    assert!(
        undefended + 0.2 < oracle,
        "the undefended run ({undefended}) must diverge from the oracle ({oracle})"
    );
}

/// Long threat soak: a mid-run compromise epoch, an overlapping network
/// partition and persistent frame corruption, all over the concurrent net
/// transport with the online estimator driving the trim, for 200 rounds.
/// Run with `cargo test -p fedms-sim --test threat -- --ignored` (CI runs
/// it on the chaos-soak schedule).
#[test]
#[ignore = "long soak; exercised by the scheduled chaos-soak workflow"]
fn threat_soak_200_rounds() {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(12, 6, vec![]).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 12, 3).unwrap();
    let threat = ThreatSchedule::parse(
        "50..120: compromise=1|4, attack=random:-10:10; 80..140: partition=5; 50..: corrupt=0.01",
    )
    .unwrap();
    // With a partitioned server *and* corrupted frames the per-client view
    // can dip below the 2β̂+1 quorum; Proceed mode rides out those rounds
    // instead of aborting (the client keeps its local model).
    let mut cfg = config(topo, 29, threat, EstimatorPolicy::enabled());
    cfg.recovery = RecoveryPolicy {
        on_degraded: fedms_sim::DegradedMode::Proceed,
        ..RecoveryPolicy::disabled()
    };
    let mut e =
        SimulationEngine::new(cfg, &train, &test, &parts, Box::new(Mean::new()), vec![]).unwrap();
    e.set_transport(Box::new(NetTransport::new(29, 12, 6, NetModel::ideal())));

    let rounds = 200;
    let result = e.run(rounds).expect("the soak must survive compromise + partition + corruption");
    assert_eq!(e.round(), rounds, "every soak round must complete");
    let last = result.rounds.last().unwrap().mean_accuracy;
    // All epochs have healed by round 140; sixty clean rounds later the
    // federation must be back above the accuracy floor.
    assert!(last >= 0.5, "final accuracy {last} below the soak floor");
    // The suspicion of the healed servers decays; by the end B̂ is 0 again.
    assert_eq!(e.estimated_trim(), Some(0), "estimator must heal with the servers");
}
