//! Streaming vs buffered upload equivalence, including a misbehaving
//! transport mock.
//!
//! The engine folds uploads into per-server running accumulators whenever
//! the transport advertises streaming ([`Transport::supports_streaming`]).
//! These tests pin the two guarantees that keep that optimization safe:
//!
//! 1. **Equivalence** — forcing the buffered path (a decorator that hides
//!    streaming support) reproduces the streaming engine's snapshot
//!    byte-for-byte, under uplink drops and crashed servers, across
//!    worker-thread counts.
//! 2. **Graceful fallback** — a transport that *claims* streaming but
//!    declines to route an upload by reference (`route_upload → None`)
//!    must fall back to the buffered path for that upload, not panic and
//!    not lose the model. This is the regression for the streaming-upload
//!    `.expect` in the upload phase.

use fedms_aggregation::{EstimatorPolicy, TrimmedMean};
use fedms_attacks::AttackKind;
use fedms_data::{DirichletPartitioner, SynthVisionConfig};
use fedms_nn::LrSchedule;
use fedms_sim::ThreatSchedule;
use fedms_sim::{
    Broadcast, CommStats, Delivery, DeliveryOutcome, EngineConfig, FaultPlan, LocalTransport,
    ModelSpec, RecoveryPolicy, Result, ServerFault, SimulationEngine, Topology, Transport, Upload,
    UploadStrategy,
};
use fedms_tensor::pool::BufferPool;
use fedms_tensor::Tensor;
use proptest::prelude::*;

/// Forwards every `Transport` method to `inner` — a transparent decorator
/// the mocks below specialize.
macro_rules! delegate_transport {
    () => {
        fn begin_round(&mut self, round: usize, model_len: usize) {
            self.0.begin_round(round, model_len);
        }
        fn send_upload(&mut self, upload: Upload) -> DeliveryOutcome {
            self.0.send_upload(upload)
        }
        fn set_round_recipients(&mut self, recipients: usize) {
            self.0.set_round_recipients(recipients);
        }
        fn server_online(&self, server: usize) -> bool {
            self.0.server_online(server)
        }
        fn release_aggregate(
            &mut self,
            server: usize,
            aggregate: Tensor,
        ) -> (DeliveryOutcome, Option<Tensor>) {
            self.0.release_aggregate(server, aggregate)
        }
        fn broadcast(&mut self, message: Broadcast) -> Result<()> {
            self.0.broadcast(message)
        }
        fn take_inbox(&mut self, server: usize) -> Vec<Tensor> {
            self.0.take_inbox(server)
        }
        fn drain_deliveries(&mut self, client: usize) -> Vec<Delivery> {
            self.0.drain_deliveries(client)
        }
        fn drain_deliveries_pooled(&mut self, client: usize, pool: &BufferPool) -> Vec<Delivery> {
            self.0.drain_deliveries_pooled(client, pool)
        }
        fn take_comm(&mut self) -> CommStats {
            self.0.take_comm()
        }
        fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<()> {
            self.0.install_fault_plan(plan)
        }
        fn fault_plan(&self) -> &FaultPlan {
            self.0.fault_plan()
        }
        fn set_upload_drop_rate(&mut self, rate: f64) -> Result<()> {
            self.0.set_upload_drop_rate(rate)
        }
        fn state_snapshot(&self) -> Vec<Vec<Tensor>> {
            self.0.state_snapshot()
        }
        fn restore_state(&mut self, outboxes: Vec<Vec<Tensor>>) {
            self.0.restore_state(outboxes)
        }
    };
}

/// Hides the inner transport's streaming support, forcing the engine onto
/// the buffered per-server inbox path (`supports_streaming` and
/// `route_upload` keep their trait defaults: `false` / `None`).
struct Buffered(LocalTransport);

impl Transport for Buffered {
    fn name(&self) -> &'static str {
        "buffered"
    }
    delegate_transport!();
}

/// A misbehaving mock: advertises streaming but declines to route any
/// upload by reference. Before the fallback fix, the upload phase
/// `.expect`ed `route_upload` to succeed on a streaming transport and
/// panicked the engine; now each declined upload must take the buffered
/// path and the run must be unaffected.
struct LyingStream(LocalTransport);

impl Transport for LyingStream {
    fn name(&self) -> &'static str {
        "lying-stream"
    }
    fn supports_streaming(&self) -> bool {
        true
    }
    fn route_upload(&mut self, _client: usize, _server: usize) -> Option<DeliveryOutcome> {
        None
    }
    delegate_transport!();
}

fn engine(threads: usize) -> SimulationEngine {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(12, 4, vec![1]).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 12, 3).unwrap();
    let config = EngineConfig {
        topology: topo,
        model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 2,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed: 11,
        eval_every: 1,
        eval_clients: 0,
        parallel: threads > 1,
        threads,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    let attacks = vec![(1usize, AttackKind::Noise { std: 0.5 }.build().unwrap())];
    SimulationEngine::new(
        config,
        &train,
        &test,
        &parts,
        Box::new(TrimmedMean::new(0.25).unwrap()),
        attacks,
    )
    .unwrap()
}

/// Which transport the run goes over — the streaming default, the
/// buffered decorator, or the lying mock.
#[derive(Clone, Copy)]
enum Mode {
    Streaming,
    Buffered,
    Lying,
}

/// Runs 3 faulty rounds and returns `(snapshot bytes, comm totals)`.
fn run(mode: Mode, threads: usize, drop_rate: f64, crashed: Option<usize>) -> (Vec<u8>, CommStats) {
    let mut e = engine(threads);
    match mode {
        Mode::Streaming => {}
        Mode::Buffered => e.set_transport(Box::new(Buffered(LocalTransport::new(11, 12, 4)))),
        Mode::Lying => e.set_transport(Box::new(LyingStream(LocalTransport::new(11, 12, 4)))),
    }
    if let Some(s) = crashed {
        let mut faults = vec![ServerFault::None; 4];
        faults[s] = ServerFault::Crash { round: 1 };
        e.set_fault_plan(FaultPlan { server_faults: faults, ..FaultPlan::default() }).unwrap();
    }
    e.set_upload_drop_rate(drop_rate).unwrap();
    let result = e.run(3).unwrap();
    (serde_json::to_string(&e.snapshot()).unwrap().into_bytes(), result.total_comm)
}

proptest! {
    /// Streaming and buffered uploads are byte-identical across drop
    /// rates, crashed servers and worker-thread counts: same snapshot
    /// (models, server histories, outboxes, metrics), same comm totals.
    #[test]
    fn streaming_equals_buffered_under_faults(
        drop_rate in 0.0f64..0.8,
        crash_code in 0usize..5,
        threads_code in 0usize..2,
    ) {
        let threads = if threads_code == 0 { 1 } else { 4 };
        let crashed = (crash_code < 4).then_some(crash_code);
        let (stream_snap, stream_comm) = run(Mode::Streaming, threads, drop_rate, crashed);
        let (buffer_snap, buffer_comm) = run(Mode::Buffered, threads, drop_rate, crashed);
        prop_assert_eq!(stream_comm, buffer_comm, "comm totals diverged");
        prop_assert_eq!(stream_snap, buffer_snap, "snapshots diverged");
    }
}

/// The regression for the streaming-upload panic: a transport that
/// advertises streaming but returns `None` from `route_upload` must run
/// to completion through the buffered fallback — bit-identically to the
/// honest transport. Pre-fix, this panicked in the upload phase.
#[test]
fn transport_that_lies_about_streaming_falls_back_instead_of_panicking() {
    let (honest_snap, honest_comm) = run(Mode::Streaming, 1, 0.3, Some(2));
    let (lying_snap, lying_comm) = run(Mode::Lying, 1, 0.3, Some(2));
    assert_eq!(honest_comm, lying_comm, "the fallback path changed message accounting");
    assert_eq!(honest_snap, lying_snap, "the fallback path changed training results");
}
