//! Integration and property tests of the recovery layer: backoff purity,
//! disabled-policy transparency, recovery accounting, and the end-to-end
//! acceptance scenarios (quorum restoration under heavy omission, degraded
//! continuation, and the long chaos soak).

use fedms_aggregation::{EstimatorPolicy, TrimmedMean};
use fedms_attacks::AttackKind;
use fedms_data::{DirichletPartitioner, SynthVisionConfig};
use fedms_nn::LrSchedule;
use fedms_sim::ThreatSchedule;
use fedms_sim::{
    uplink_id, Broadcast, CommStats, DegradedMode, DeliveryOutcome, Dissemination, EngineConfig,
    FaultPlan, LocalTransport, ModelSpec, RecoveryPolicy, ResilientTransport, ServerFault,
    SimError, SimulationEngine, Topology, Transport, Upload, UploadStrategy,
};
use fedms_tensor::Tensor;
use proptest::prelude::*;

/// One realized message fate: `(round, stage, from, to, outcome)` with
/// stage 0 = uplink, 1 = aggregate release (`to` = released flag),
/// 2 = downlink delivery (mirrors `crates/sim/tests/proptests.rs`).
type TraceEntry = (usize, u8, usize, usize, DeliveryOutcome);

/// Drives `rounds` full rounds of protocol traffic through `t` and records
/// every message fate plus the per-round counters.
fn replay(
    t: &mut dyn Transport,
    clients: usize,
    servers: usize,
    rounds: usize,
) -> (Vec<TraceEntry>, Vec<CommStats>) {
    let mut trace = Vec::new();
    let mut comms = Vec::new();
    for round in 0..rounds {
        t.begin_round(round, 2);
        for k in 0..clients {
            let s = k % servers;
            let model = Tensor::from_slice(&[k as f32, round as f32]);
            let outcome = t.send_upload(Upload { client: k, server: s, model });
            trace.push((round, 0, k, s, outcome));
        }
        for s in 0..servers {
            let _ = t.take_inbox(s);
            let agg = Tensor::from_slice(&[s as f32, round as f32]);
            let (outcome, released) = t.release_aggregate(s, agg);
            trace.push((round, 1, s, usize::from(released.is_some()), outcome));
            if let Some(model) = released {
                t.broadcast(Broadcast { server: s, model: Dissemination::Broadcast(model) })
                    .expect("full broadcast always covers every client");
            }
        }
        for k in 0..clients {
            for d in t.drain_deliveries(k) {
                trace.push((round, 2, d.server, k, d.outcome));
            }
        }
        comms.push(t.take_comm());
    }
    (trace, comms)
}

/// Builds a faulty [`LocalTransport`], optionally wrapped in a
/// [`ResilientTransport`] running `policy`.
fn transport(
    seed: u64,
    clients: usize,
    servers: usize,
    plan: &FaultPlan,
    drop_rate: f64,
    policy: Option<RecoveryPolicy>,
) -> Box<dyn Transport> {
    let mut inner = LocalTransport::new(seed, clients, servers);
    inner.install_fault_plan(plan.clone()).expect("generated plan is valid");
    inner.set_upload_drop_rate(drop_rate).expect("generated rate is valid");
    match policy {
        None => Box::new(inner),
        Some(p) => Box::new(
            ResilientTransport::new(inner, p, seed, clients, servers)
                .expect("generated policy is valid"),
        ),
    }
}

/// Maps generated per-server fault codes onto a [`FaultPlan`].
fn plan_from_codes(
    codes: &[u8],
    crash_round: usize,
    delay: usize,
    omission: f64,
    duplicate: f64,
) -> FaultPlan {
    FaultPlan {
        server_faults: codes
            .iter()
            .map(|c| match c {
                0 => ServerFault::None,
                1 => ServerFault::Crash { round: crash_round },
                _ => ServerFault::Straggler { delay },
            })
            .collect(),
        downlink_omission: omission,
        duplicate_rate: duplicate,
    }
}

proptest! {
    /// The backoff schedule is a pure function of
    /// `(seed, round, link, attempt)`: recomputing any delay gives the same
    /// value, and every delay sits in `[exp/2, exp]` for the capped
    /// exponential envelope.
    #[test]
    fn backoff_schedule_is_pure_and_bounded(
        seed in 0u64..10_000,
        round in 0usize..100,
        client in 0usize..64,
        server in 0usize..64,
        base in 1u64..100,
        cap_extra in 0u64..2_000,
        attempt in 1u32..12,
    ) {
        let policy = RecoveryPolicy {
            retry_budget: 12,
            backoff_base_ms: base,
            backoff_cap_ms: base + cap_extra,
            ..RecoveryPolicy::disabled()
        };
        let link = uplink_id(client, server);
        let d1 = policy.backoff_delay_ms(seed, round, link, attempt);
        let d2 = policy.backoff_delay_ms(seed, round, link, attempt);
        prop_assert_eq!(d1, d2, "backoff must not depend on hidden state");
        let exp = base
            .saturating_mul(1u64 << u64::from(attempt - 1))
            .min(policy.backoff_cap_ms);
        prop_assert!(d1 >= exp / 2 && d1 <= exp, "{} outside [{}, {}]", d1, exp / 2, exp);
    }

    /// A [`ResilientTransport`] running the disabled policy is
    /// delivery-for-delivery and counter-for-counter identical to the bare
    /// [`LocalTransport`] it wraps, for any fault plan.
    #[test]
    fn disabled_decorator_is_transparent(
        seed in 0u64..1000,
        clients in 1usize..10,
        codes in proptest::collection::vec(0u8..3, 2..7),
        crash_round in 0usize..3,
        delay in 1usize..4,
        omission in 0.0f64..0.9,
        duplicate in 0.0f64..0.9,
        drop_rate in 0.0f64..0.9,
    ) {
        let servers = codes.len();
        let rounds = 1 + (seed % 4) as usize;
        let plan = plan_from_codes(&codes, crash_round, delay, omission, duplicate);
        let mut bare = transport(seed, clients, servers, &plan, drop_rate, None);
        let mut wrapped = transport(
            seed,
            clients,
            servers,
            &plan,
            drop_rate,
            Some(RecoveryPolicy::disabled()),
        );
        let a = replay(bare.as_mut(), clients, servers, rounds);
        let b = replay(wrapped.as_mut(), clients, servers, rounds);
        prop_assert_eq!(a.0, b.0, "message fates diverged under the disabled decorator");
        prop_assert_eq!(a.1, b.1, "comm counters diverged under the disabled decorator");
    }

    /// Recovery accounting balances exactly: every uplink wire attempt is
    /// the first try of a message, a budgeted retry, or the opening attempt
    /// of a failover exchange, and every downlink message is a broadcast
    /// copy, a fault-injected duplicate, or a recovery retransmission.
    #[test]
    fn recovery_comm_totals_balance(
        seed in 0u64..1000,
        clients in 1usize..8,
        codes in proptest::collection::vec(0u8..3, 2..6),
        crash_round in 0usize..3,
        omission in 0.0f64..0.7,
        drop_rate in 0.0f64..0.7,
        budget in 1u32..5,
        failover_code in 0u8..2,
    ) {
        let servers = codes.len();
        let plan = plan_from_codes(&codes, crash_round, 2, omission, 0.0);
        let policy = RecoveryPolicy {
            retry_budget: budget,
            failover: failover_code == 1,
            round_deadline_ms: 0,
            ..RecoveryPolicy::standard()
        };
        let mut t = transport(seed, clients, servers, &plan, drop_rate, Some(policy));
        let rounds = 3;
        let (trace, comms) = replay(t.as_mut(), clients, servers, rounds);
        for (round, comm) in comms.iter().enumerate() {
            let broadcasts = trace
                .iter()
                .filter(|e| e.0 == round && e.1 == 1 && e.3 == 1)
                .count() as u64;
            prop_assert_eq!(
                comm.upload_messages,
                clients as u64 + comm.retried_uploads + comm.failover_uploads,
                "round {}: uplink attempts must be first tries + retries + failovers",
                round
            );
            prop_assert_eq!(
                comm.download_messages,
                broadcasts * clients as u64
                    + comm.duplicated_downloads
                    + comm.retried_downloads,
                "round {}: downlink messages must be fan-out + duplicates + retransmissions",
                round
            );
        }
    }
}

/// Under transient omission and uplink loss, enabling recovery delivers
/// strictly more models to the filter in every round than the same
/// federation without it — and never fewer of anything, since first-copy
/// fates share the same seeded draws.
#[test]
fn recovery_delivers_strictly_more_models_per_round() {
    let plan = FaultPlan { downlink_omission: 0.5, ..FaultPlan::default() };
    let policy = RecoveryPolicy {
        retry_budget: 6,
        failover: true,
        round_deadline_ms: 0,
        ..RecoveryPolicy::standard()
    };
    let (clients, servers, rounds) = (4, 3, 6);
    let mut off = transport(17, clients, servers, &plan, 0.3, None);
    let mut on = transport(17, clients, servers, &plan, 0.3, Some(policy));
    let (trace_off, _) = replay(off.as_mut(), clients, servers, rounds);
    let (trace_on, _) = replay(on.as_mut(), clients, servers, rounds);
    let delivered = |trace: &[TraceEntry], round: usize, stage: u8| {
        trace
            .iter()
            .filter(|e| e.0 == round && e.1 == stage && e.4 == DeliveryOutcome::Delivered)
            .count()
    };
    for round in 0..rounds {
        let (down_off, down_on) = (delivered(&trace_off, round, 2), delivered(&trace_on, round, 2));
        assert!(
            down_on > down_off,
            "round {round}: recovery should repair downlink losses ({down_on} vs {down_off})"
        );
        assert!(
            delivered(&trace_on, round, 0) >= delivered(&trace_off, round, 0),
            "round {round}: recovery must never lose an upload the base run delivered"
        );
    }
    let up_off: usize = (0..rounds).map(|r| delivered(&trace_off, r, 0)).sum();
    let up_on: usize = (0..rounds).map(|r| delivered(&trace_on, r, 0)).sum();
    assert!(up_on > up_off, "30% uplink loss must cost the unprotected run some uploads");
}

/// Builds an 8-client / 4-server engine with one Byzantine server and the
/// given recovery policy (the `degraded_quorum` scenario from the engine
/// tests, reachable here through the public API).
fn engine(seed: u64, recovery: RecoveryPolicy) -> SimulationEngine {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(8, 4, vec![1]).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 8, 3).unwrap();
    let config = EngineConfig {
        topology: topo,
        model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 2,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed,
        eval_every: 1,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery,
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    let attack = AttackKind::Noise { std: 0.5 };
    let attacks = vec![(1, attack.build().unwrap())];
    let filter: Box<dyn fedms_aggregation::AggregationRule> =
        Box::new(TrimmedMean::new(0.25).unwrap());
    SimulationEngine::new(config, &train, &test, &parts, filter, attacks).unwrap()
}

/// The acceptance scenario: 60% downlink omission degrades some client's
/// view below quorum almost immediately without recovery, and the typed
/// error says so; the same federation with a retry budget completes every
/// round and logs the upload repairs it performed.
#[test]
fn recovery_restores_quorum_under_heavy_omission() {
    let plan = FaultPlan { downlink_omission: 0.6, ..FaultPlan::default() };

    let mut fragile = engine(9, RecoveryPolicy::disabled());
    fragile.set_fault_plan(plan.clone()).unwrap();
    match fragile.run(5) {
        Err(SimError::DegradedQuorum { total, needed, .. }) => {
            assert_eq!(total, 4);
            assert_eq!(needed, 2);
        }
        other => panic!("60% omission without recovery should degrade the quorum, got {other:?}"),
    }

    let policy = RecoveryPolicy {
        retry_budget: 12,
        failover: true,
        round_deadline_ms: 0,
        ..RecoveryPolicy::standard()
    };
    let mut hardened = engine(9, policy);
    hardened.set_fault_plan(plan).unwrap();
    hardened.set_upload_drop_rate(0.3).unwrap();
    hardened.enable_event_log(10_000);
    let result = hardened.run(5).expect("recovery should carry every client past quorum");
    assert_eq!(result.rounds.len(), 5);
    assert!(result.final_accuracy().unwrap().is_finite());
    let log = hardened.event_log().unwrap();
    assert!(
        !log.of_kind("recovery").is_empty(),
        "30% uplink loss must trigger at least one logged upload recovery"
    );
    assert!(result.total_comm.retried_downloads > 0, "omission repair must be accounted");
}

/// With `DegradedMode::Proceed`, the crash scenario that used to abort with
/// `DegradedQuorum` instead completes: sub-quorum clients keep their local
/// models for the round and the run finishes.
#[test]
fn proceed_degraded_completes_the_crash_scenario() {
    let plan = FaultPlan {
        server_faults: vec![
            ServerFault::Crash { round: 1 },
            ServerFault::None,
            ServerFault::Crash { round: 1 },
            ServerFault::None,
        ],
        ..FaultPlan::default()
    };

    // Baseline: this exact federation aborts in round 1 without recovery.
    let mut fragile = engine(9, RecoveryPolicy::disabled());
    fragile.set_fault_plan(plan.clone()).unwrap();
    let err = fragile.run(3).unwrap_err();
    assert!(matches!(err, SimError::DegradedQuorum { round: 1, .. }), "got {err:?}");

    let policy =
        RecoveryPolicy { on_degraded: DegradedMode::Proceed, ..RecoveryPolicy::disabled() };
    let mut tolerant = engine(9, policy);
    tolerant.set_fault_plan(plan).unwrap();
    let result = tolerant.run(3).expect("Proceed mode must ride out the crash degradation");
    assert_eq!(result.rounds.len(), 3);
    assert!(result.final_accuracy().unwrap().is_finite());
}

/// Long chaos soak: a crash, a straggler, downlink omission, duplicates and
/// uplink loss all at once, with recovery on, for 200 rounds. Run with
/// `cargo test -p fedms-sim --test recovery -- --ignored` (CI runs it on
/// the chaos-soak schedule).
#[test]
#[ignore = "long soak; exercised by the scheduled chaos-soak workflow"]
fn chaos_soak_200_rounds() {
    let (train, test) = SynthVisionConfig::small().generate(3).unwrap();
    let topo = Topology::new(8, 4, vec![]).unwrap();
    let parts = DirichletPartitioner::new(10.0).unwrap().partition(&train, 8, 3).unwrap();
    let policy = RecoveryPolicy {
        retry_budget: 4,
        failover: true,
        round_deadline_ms: 0,
        ..RecoveryPolicy::standard()
    };
    let config = EngineConfig {
        topology: topo,
        model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
        upload: UploadStrategy::Sparse,
        local_epochs: 1,
        batch_size: 8,
        schedule: LrSchedule::Constant(0.05),
        seed: 29,
        eval_every: 50,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery: policy,
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms_tensor::BackendKind::Scalar,
    };
    let filter: Box<dyn fedms_aggregation::AggregationRule> =
        Box::new(TrimmedMean::new(0.25).unwrap());
    let mut e = SimulationEngine::new(config, &train, &test, &parts, filter, vec![]).unwrap();
    e.set_fault_plan(FaultPlan {
        server_faults: vec![
            ServerFault::Crash { round: 50 },
            ServerFault::Straggler { delay: 2 },
            ServerFault::None,
            ServerFault::None,
        ],
        downlink_omission: 0.2,
        duplicate_rate: 0.1,
    })
    .unwrap();
    e.set_upload_drop_rate(0.1).unwrap();

    let rounds = 200;
    let result = e.run(rounds).expect("the soak must survive every fault class at once");
    assert_eq!(e.round(), rounds, "every soak round must complete");
    assert!(result.final_accuracy().unwrap().is_finite());
    let comm = result.total_comm;
    assert!(comm.retried_uploads > 0 && comm.retried_downloads > 0);
    // Delivered-download floor: the fan-out of three live servers repaired
    // against 20% omission should land the overwhelming majority of the
    // ~24 per-round downlink copies across 200 rounds.
    let delivered = comm.download_messages - comm.dropped_downloads - comm.duplicated_downloads;
    assert!(
        delivered >= (rounds as u64) * 8 * 2,
        "soak delivered only {delivered} downlink models"
    );
}
