//! Cross-module nn pipeline tests: composite CNNs with pooling, momentum
//! training, and parameter-vector transfer between architectures.

use fedms_nn::*;
use fedms_tensor::rng::rng_for;
use fedms_tensor::{Conv2dGeometry, Tensor};

fn tiny_cnn(seed: u64) -> Sequential {
    let mut rng = rng_for(seed, &[0xC0]);
    Sequential::new()
        .with(Conv2d::new(Conv2dGeometry::new(1, 8, 8, 3, 1, 1).unwrap(), 4, &mut rng).unwrap())
        .with(ReLU::new())
        .with(MaxPool2d::new(2).unwrap())
        .with(Flatten::new())
        .with(Linear::new(4 * 4 * 4, 3, &mut rng).unwrap())
}

#[test]
fn cnn_with_maxpool_gradchecks() {
    gradcheck::check_layer(Box::new(tiny_cnn(1)), &[2, 1, 8, 8], 51, 4e-2).unwrap();
}

#[test]
fn cnn_trains_on_bright_vs_dark() {
    let mut rng = rng_for(2, &[]);
    let n = 24usize;
    let mut x = Tensor::randn(&mut rng, &[n, 1, 8, 8], 0.0, 0.2);
    let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
    for (i, &l) in labels.iter().enumerate() {
        if l == 1 {
            for v in &mut x.as_mut_slice()[i * 64..(i + 1) * 64] {
                *v += 1.5;
            }
        }
    }
    let mut net = tiny_cnn(3);
    let mut opt = Sgd::new(LrSchedule::Constant(0.05)).unwrap().with_momentum(0.9).unwrap();
    let first = net.train_batch(&x, &labels, &mut opt).unwrap();
    let mut last = first;
    for _ in 0..60 {
        last = net.train_batch(&x, &labels, &mut opt).unwrap();
    }
    assert!(last < 0.3 * first, "momentum training should converge: {first} → {last}");
    assert!(net.evaluate(&x, &labels).unwrap() > 0.9);
}

#[test]
fn param_vector_transfers_between_identical_cnns() {
    let a = tiny_cnn(4);
    let mut b = tiny_cnn(5);
    assert_ne!(a.param_vector(), b.param_vector());
    b.set_param_vector(&a.param_vector()).unwrap();
    assert_eq!(a.param_vector(), b.param_vector());
    // Same parameters → same predictions.
    let x = Tensor::randn(&mut rng_for(6, &[]), &[3, 1, 8, 8], 0.0, 1.0);
    let mut a = a;
    assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
}

#[test]
fn momentum_on_quadratic_beats_plain_sgd() {
    // Ill-conditioned quadratic via the convex module: momentum converges
    // faster at the same step size.
    use fedms_nn::convex::QuadraticObjective;
    let o =
        QuadraticObjective::new(Tensor::from_slice(&[10.0, 0.1]), Tensor::from_slice(&[1.0, -1.0]))
            .unwrap();
    let run = |momentum: f32| -> f32 {
        let mut w = Tensor::zeros(&[2]);
        let mut velocity = Tensor::zeros(&[2]);
        for _ in 0..200 {
            let g = o.grad(&w).unwrap();
            velocity.scale(momentum);
            velocity.add_inplace(&g).unwrap();
            w.axpy(-0.05, &velocity).unwrap();
        }
        o.value(&w).unwrap()
    };
    let plain = run(0.0);
    let heavy = run(0.9);
    assert!(heavy < plain, "momentum should reach a lower value: {heavy} vs plain {plain}");
}
