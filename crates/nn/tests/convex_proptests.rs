//! Property-based tests of the convex-objective substrate used for the
//! Theorem-1 validation experiments.

use fedms_nn::convex::{QuadraticFleet, QuadraticObjective};
use fedms_tensor::Tensor;
use proptest::prelude::*;

fn objective_strategy(d: usize) -> impl Strategy<Value = QuadraticObjective> {
    (proptest::collection::vec(0.1f32..5.0, d), proptest::collection::vec(-5.0f32..5.0, d))
        .prop_map(|(a, c)| {
            QuadraticObjective::new(Tensor::from_slice(&a), Tensor::from_slice(&c))
                .expect("valid objective")
        })
}

proptest! {
    /// F_k(w) ≥ 0 with equality exactly at the minimiser.
    #[test]
    fn value_nonnegative(o in objective_strategy(6), w in proptest::collection::vec(-10.0f32..10.0, 6)) {
        let w = Tensor::from_slice(&w);
        prop_assert!(o.value(&w).unwrap() >= 0.0);
        prop_assert!(o.value(o.minimiser()).unwrap() <= 1e-6);
    }

    /// The analytic gradient matches central finite differences.
    #[test]
    fn gradient_matches_numeric(
        o in objective_strategy(4),
        w in proptest::collection::vec(-3.0f32..3.0, 4),
    ) {
        let w = Tensor::from_slice(&w);
        let g = o.grad(&w).unwrap();
        let eps = 1e-2f32;
        for i in 0..4 {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let numeric = (o.value(&wp).unwrap() - o.value(&wm).unwrap()) / (2.0 * eps);
            prop_assert!((numeric - g.as_slice()[i]).abs() < 0.05 * (1.0 + numeric.abs()));
        }
    }

    /// Strong convexity: F(w) ≥ F(w*) + μ/2·‖w − w*‖².
    #[test]
    fn strong_convexity_lower_bound(
        o in objective_strategy(5),
        w in proptest::collection::vec(-5.0f32..5.0, 5),
    ) {
        let w = Tensor::from_slice(&w);
        let mu = o.strong_convexity();
        let dist_sq = w.sub(o.minimiser()).unwrap().norm_l2_sq();
        prop_assert!(o.value(&w).unwrap() + 1e-3 >= 0.5 * mu * dist_sq * (1.0 - 1e-4));
    }

    /// Smoothness: F(w) ≤ F(w*) + L/2·‖w − w*‖².
    #[test]
    fn smoothness_upper_bound(
        o in objective_strategy(5),
        w in proptest::collection::vec(-5.0f32..5.0, 5),
    ) {
        let w = Tensor::from_slice(&w);
        let l = o.smoothness();
        let dist_sq = w.sub(o.minimiser()).unwrap().norm_l2_sq();
        prop_assert!(o.value(&w).unwrap() <= 0.5 * l * dist_sq * (1.0 + 1e-4) + 1e-3);
    }

    /// The fleet optimum is a stationary point of the global objective.
    #[test]
    fn fleet_optimum_is_stationary(seed in 0u64..50) {
        let fleet = QuadraticFleet::random(6, 5, 0.5, 2.0, 1.0, seed).unwrap();
        let wstar = fleet.optimum();
        let mut g = Tensor::zeros(&[5]);
        for o in fleet.objectives() {
            g.add_inplace(&o.grad(&wstar).unwrap()).unwrap();
        }
        prop_assert!(g.norm_l2() < 1e-4, "global gradient at optimum: {}", g.norm_l2());
    }

    /// Γ is non-negative and zero for a single-client fleet.
    #[test]
    fn gamma_nonnegative(seed in 0u64..30) {
        let fleet = QuadraticFleet::random(5, 4, 0.5, 2.0, 1.0, seed).unwrap();
        prop_assert!(fleet.gamma() >= -1e-5);
        let single = QuadraticFleet::random(1, 4, 0.5, 2.0, 1.0, seed).unwrap();
        prop_assert!(single.gamma().abs() < 1e-5);
    }
}
