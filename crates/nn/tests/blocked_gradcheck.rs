//! Gradcheck pins for the blocked compute backend.
//!
//! Every layer whose hot path routes through the [`Backend`] trait is
//! gradient-checked while running on [`BackendKind::Blocked`] — the same
//! numeric-vs-analytic oracle the scalar reference backend is pinned by.
//! A forward-parity test additionally bounds the elementwise drift between
//! the two backends on a full model.
//!
//! [`Backend`]: fedms_tensor::Backend
//! [`BackendKind::Blocked`]: fedms_tensor::BackendKind
#![cfg(feature = "backend-blocked")]

use fedms_nn::{
    gradcheck, Conv2d, DepthwiseConv2d, Layer, LeakyReLU, Linear, Mlp, MobileNetNano,
    MobileNetNanoConfig, Sequential,
};
use fedms_tensor::rng::rng_for;
use fedms_tensor::{BackendHandle, BackendKind, Conv2dGeometry, Tensor};

fn blocked(threads: usize) -> BackendHandle {
    BackendKind::Blocked.resolve(threads).expect("feature is enabled")
}

fn check_on_blocked(mut layer: Box<dyn Layer>, dims: &[usize], seed: u64, tol: f32) {
    for threads in [1, 4] {
        layer.set_backend(blocked(threads));
        assert_eq!(layer.backend().name(), "blocked");
        // check_layer consumes the box, so re-box a fresh clone per thread
        // count is not possible for dyn layers; instead run the check once
        // per backend by reusing the same layer (gradcheck restores every
        // parameter it perturbs).
        gradcheck::check_layer_ref(layer.as_mut(), dims, seed, tol).unwrap();
    }
}

#[test]
fn linear_gradcheck_on_blocked() {
    let mut rng = rng_for(41, &[]);
    let l = Linear::new(5, 3, &mut rng).unwrap();
    check_on_blocked(Box::new(l), &[3, 5], 11, 2e-2);
}

#[test]
fn conv_gradcheck_on_blocked() {
    let mut rng = rng_for(42, &[]);
    let g = Conv2dGeometry::new(2, 4, 4, 3, 1, 1).unwrap();
    let l = Conv2d::new(g, 3, &mut rng).unwrap();
    check_on_blocked(Box::new(l), &[2, 2, 4, 4], 17, 3e-2);
}

#[test]
fn strided_conv_gradcheck_on_blocked() {
    let mut rng = rng_for(43, &[]);
    let g = Conv2dGeometry::new(1, 5, 5, 3, 2, 1).unwrap();
    let l = Conv2d::new(g, 2, &mut rng).unwrap();
    check_on_blocked(Box::new(l), &[1, 1, 5, 5], 19, 3e-2);
}

#[test]
fn depthwise_gradcheck_on_blocked() {
    let mut rng = rng_for(44, &[]);
    let g = Conv2dGeometry::new(3, 4, 4, 3, 1, 1).unwrap();
    let l = DepthwiseConv2d::new(g, &mut rng).unwrap();
    check_on_blocked(Box::new(l), &[2, 3, 4, 4], 23, 3e-2);
}

#[test]
fn sequential_gradcheck_on_blocked() {
    let mut rng = rng_for(45, &[]);
    let s = Sequential::new()
        .with(Linear::new(4, 6, &mut rng).unwrap())
        .with(LeakyReLU::new())
        .with(Linear::new(6, 3, &mut rng).unwrap());
    check_on_blocked(Box::new(s), &[3, 4], 29, 2e-2);
}

#[test]
fn mlp_gradcheck_on_blocked() {
    let m = Mlp::new(&[4, 6, 3], 2).unwrap();
    check_on_blocked(Box::new(m), &[2, 4], 31, 2e-2);
}

#[test]
fn mobilenet_gradcheck_on_blocked() {
    let cfg = MobileNetNanoConfig {
        in_channels: 2,
        in_h: 4,
        in_w: 4,
        stem_channels: 4,
        blocks: vec![(2, 4, 1)],
        num_classes: 3,
    };
    let m = MobileNetNano::new(cfg, 4).unwrap();
    check_on_blocked(Box::new(m), &[2, 2, 4, 4], 37, 4e-2);
}

#[test]
fn forward_parity_scalar_vs_blocked() {
    // Same weights, same input: blocked logits must track scalar logits to
    // within accumulated-rounding tolerance.
    let mut scalar_model = MobileNetNano::new(MobileNetNanoConfig::default(), 9).unwrap();
    let mut blocked_model = MobileNetNano::new(MobileNetNanoConfig::default(), 9).unwrap();
    blocked_model.set_backend(blocked(2));
    let mut rng = rng_for(9, &[0xB10C]);
    let x = Tensor::randn(&mut rng, &[4, 3, 8, 8], 0.0, 1.0);
    let ys = scalar_model.forward(&x).unwrap();
    let yb = blocked_model.forward(&x).unwrap();
    assert_eq!(ys.dims(), yb.dims());
    for (a, b) in ys.as_slice().iter().zip(yb.as_slice().iter()) {
        let tol = 1e-4 + 1e-4 * a.abs().max(b.abs());
        assert!((a - b).abs() <= tol, "logit drift too large: {a} vs {b}");
    }
}
