//! Strongly convex quadratic objectives with known constants.
//!
//! Theorem 1 of the paper bounds Fed-MS's optimality gap in terms of the
//! smoothness `L`, strong convexity `μ`, gradient bound `G`, stochastic
//! variance `σ²` and heterogeneity `Γ` of the local objectives. Neural
//! networks satisfy none of these assumptions exactly, so the theory
//! experiment (`fedms-bench --bin theory`) instead optimises a fleet of
//! quadratics where every constant is known in closed form:
//!
//! `F_k(w) = ½ (w − c_k)ᵀ diag(a_k) (w − c_k)`,
//!
//! with `μ = min a_k`, `L = max a_k`, minimiser `c_k` and `F_k* = 0`.

use fedms_tensor::rng::rng_for;
use fedms_tensor::{Tensor, TensorError};
use rand::Rng;

use crate::{NnError, Result};

/// One client's quadratic objective `½ (w − c)ᵀ diag(a) (w − c)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticObjective {
    a_diag: Tensor,
    center: Tensor,
}

impl QuadraticObjective {
    /// Creates an objective from a positive diagonal `a_diag` and minimiser
    /// `center`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if shapes differ, the dimension is
    /// zero, or any diagonal entry is non-positive.
    pub fn new(a_diag: Tensor, center: Tensor) -> Result<Self> {
        if a_diag.shape() != center.shape() || a_diag.rank() != 1 {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                left: a_diag.dims().to_vec(),
                right: center.dims().to_vec(),
            }));
        }
        if a_diag.is_empty() {
            return Err(NnError::BadConfig("quadratic dimension must be positive".into()));
        }
        if a_diag.as_slice().iter().any(|&v| !(v.is_finite() && v > 0.0)) {
            return Err(NnError::BadConfig("diagonal entries must be positive".into()));
        }
        Ok(QuadraticObjective { a_diag, center })
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.a_diag.len()
    }

    /// `F_k(w)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `w` has the wrong dimension.
    pub fn value(&self, w: &Tensor) -> Result<f32> {
        let d = w.sub(&self.center)?;
        let mut acc = 0.0f64;
        for (&x, &a) in d.as_slice().iter().zip(self.a_diag.as_slice()) {
            acc += 0.5 * (a as f64) * (x as f64) * (x as f64);
        }
        Ok(acc as f32)
    }

    /// Exact gradient `∇F_k(w) = diag(a)(w − c)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `w` has the wrong dimension.
    pub fn grad(&self, w: &Tensor) -> Result<Tensor> {
        Ok(w.sub(&self.center)?.mul(&self.a_diag)?)
    }

    /// Stochastic gradient: the exact gradient plus i.i.d. Gaussian noise of
    /// standard deviation `noise_std` per coordinate, so that
    /// `E‖∇̃F − ∇F‖² = d·noise_std²` (Assumption 3's `σ_k²`).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `w` has the wrong dimension.
    pub fn stochastic_grad<R: Rng + ?Sized>(
        &self,
        w: &Tensor,
        noise_std: f32,
        rng: &mut R,
    ) -> Result<Tensor> {
        let mut g = self.grad(w)?;
        if noise_std > 0.0 {
            let noise = Tensor::randn(rng, g.dims(), 0.0, noise_std);
            g.add_inplace(&noise)?;
        }
        Ok(g)
    }

    /// The minimiser `c_k`.
    pub fn minimiser(&self) -> &Tensor {
        &self.center
    }

    /// The diagonal of the Hessian.
    pub fn hessian_diag(&self) -> &Tensor {
        &self.a_diag
    }

    /// Smoothness constant `L = max_i a_i`.
    pub fn smoothness(&self) -> f32 {
        self.a_diag.max().unwrap_or(0.0)
    }

    /// Strong-convexity constant `μ = min_i a_i`.
    pub fn strong_convexity(&self) -> f32 {
        self.a_diag.min().unwrap_or(0.0)
    }
}

/// A fleet of `K` client quadratics forming the global objective
/// `F(w) = (1/K) Σ_k F_k(w)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticFleet {
    objectives: Vec<QuadraticObjective>,
}

impl QuadraticFleet {
    /// Wraps explicit per-client objectives.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the list is empty or dimensions
    /// disagree.
    pub fn new(objectives: Vec<QuadraticObjective>) -> Result<Self> {
        let Some(first) = objectives.first() else {
            return Err(NnError::BadConfig("fleet needs at least one objective".into()));
        };
        let d = first.dim();
        if objectives.iter().any(|o| o.dim() != d) {
            return Err(NnError::BadConfig("all objectives must share a dimension".into()));
        }
        Ok(QuadraticFleet { objectives })
    }

    /// Samples a random fleet: `K` clients in dimension `d`, Hessian
    /// eigenvalues uniform in `[mu, l]`, minimisers `N(0, spread²)` per
    /// coordinate — `spread` controls the heterogeneity `Γ`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for `k == 0`, `d == 0` or an invalid
    /// eigenvalue range.
    pub fn random(k: usize, d: usize, mu: f32, l: f32, spread: f32, seed: u64) -> Result<Self> {
        if k == 0 || d == 0 {
            return Err(NnError::BadConfig("fleet size and dimension must be positive".into()));
        }
        if !(mu > 0.0 && l >= mu) {
            return Err(NnError::BadConfig(format!("need 0 < mu <= l, got mu={mu}, l={l}")));
        }
        let mut objectives = Vec::with_capacity(k);
        for i in 0..k {
            let mut rng = rng_for(seed, &[0x51_55_41_44, i as u64]);
            let a = if l > mu {
                Tensor::rand_uniform(&mut rng, &[d], mu, l)
            } else {
                Tensor::full(&[d], mu)
            };
            let c = Tensor::randn(&mut rng, &[d], 0.0, spread);
            objectives.push(QuadraticObjective::new(a, c)?);
        }
        QuadraticFleet::new(objectives)
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.objectives.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.objectives[0].dim()
    }

    /// The client objectives.
    pub fn objectives(&self) -> &[QuadraticObjective] {
        &self.objectives
    }

    /// Global objective value `F(w)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `w` has the wrong dimension.
    pub fn global_value(&self, w: &Tensor) -> Result<f32> {
        let mut acc = 0.0f64;
        for o in &self.objectives {
            acc += o.value(w)? as f64;
        }
        Ok((acc / self.objectives.len() as f64) as f32)
    }

    /// The global minimiser `w* = (Σ diag(a_k))⁻¹ Σ diag(a_k) c_k`
    /// (closed form because all Hessians are diagonal).
    pub fn optimum(&self) -> Tensor {
        let d = self.dim();
        let mut num = vec![0.0f64; d];
        let mut den = vec![0.0f64; d];
        for o in &self.objectives {
            for i in 0..d {
                let a = o.a_diag.as_slice()[i] as f64;
                num[i] += a * o.center.as_slice()[i] as f64;
                den[i] += a;
            }
        }
        Tensor::from_fn(&[d], |i| (num[i] / den[i]) as f32)
    }

    /// `F* = F(w*)`, the global minimum value.
    pub fn optimal_value(&self) -> f32 {
        self.global_value(&self.optimum()).expect("optimum has the fleet's dimension")
    }

    /// Heterogeneity `Γ = F* − (1/K) Σ_k F_k*`; each `F_k* = 0`, so
    /// `Γ = F*`.
    pub fn gamma(&self) -> f32 {
        self.optimal_value()
    }

    /// Global smoothness bound `L = max_k L_k`.
    pub fn smoothness(&self) -> f32 {
        self.objectives.iter().map(|o| o.smoothness()).fold(0.0, f32::max)
    }

    /// Global strong-convexity bound `μ = min_k μ_k`.
    pub fn strong_convexity(&self) -> f32 {
        self.objectives.iter().map(|o| o.strong_convexity()).fold(f32::INFINITY, f32::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> QuadraticObjective {
        QuadraticObjective::new(Tensor::from_slice(&[1.0, 4.0]), Tensor::from_slice(&[1.0, -1.0]))
            .unwrap()
    }

    #[test]
    fn validates_inputs() {
        assert!(QuadraticObjective::new(Tensor::zeros(&[2]), Tensor::zeros(&[3])).is_err());
        assert!(
            QuadraticObjective::new(Tensor::from_slice(&[1.0, -1.0]), Tensor::zeros(&[2])).is_err()
        );
        assert!(QuadraticObjective::new(Tensor::zeros(&[0]), Tensor::zeros(&[0])).is_err());
    }

    #[test]
    fn value_and_grad_at_minimiser_are_zero() {
        let o = simple();
        let c = o.minimiser().clone();
        assert_eq!(o.value(&c).unwrap(), 0.0);
        assert_eq!(o.grad(&c).unwrap().norm_l2(), 0.0);
    }

    #[test]
    fn value_matches_hand_computation() {
        let o = simple();
        let w = Tensor::from_slice(&[2.0, 0.0]);
        // ½[1·(2−1)² + 4·(0+1)²] = ½(1 + 4) = 2.5
        assert!((o.value(&w).unwrap() - 2.5).abs() < 1e-6);
        assert_eq!(o.grad(&w).unwrap().as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn constants_are_extremes_of_diagonal() {
        let o = simple();
        assert_eq!(o.smoothness(), 4.0);
        assert_eq!(o.strong_convexity(), 1.0);
        assert_eq!(o.hessian_diag().as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn stochastic_grad_is_unbiased_and_noisy() {
        let o = simple();
        let w = Tensor::from_slice(&[0.0, 0.0]);
        let exact = o.grad(&w).unwrap();
        let mut rng = rng_for(1, &[]);
        let mut acc = Tensor::zeros(&[2]);
        let n = 2000;
        for _ in 0..n {
            acc.add_inplace(&o.stochastic_grad(&w, 0.5, &mut rng).unwrap()).unwrap();
        }
        acc.scale(1.0 / n as f32);
        let err = acc.sub(&exact).unwrap().norm_l2();
        assert!(err < 0.05, "mean stochastic grad should approach exact, err {err}");
        let zero_noise = o.stochastic_grad(&w, 0.0, &mut rng).unwrap();
        assert_eq!(zero_noise, exact);
    }

    #[test]
    fn fleet_optimum_minimises_global() {
        let fleet = QuadraticFleet::random(5, 8, 0.5, 2.0, 1.0, 9).unwrap();
        let wstar = fleet.optimum();
        let fstar = fleet.optimal_value();
        let mut rng = rng_for(10, &[]);
        for _ in 0..20 {
            let probe = wstar.add(&Tensor::randn(&mut rng, &[8], 0.0, 0.1)).unwrap();
            assert!(fleet.global_value(&probe).unwrap() >= fstar - 1e-5);
        }
    }

    #[test]
    fn fleet_gamma_grows_with_spread() {
        let tight = QuadraticFleet::random(10, 4, 1.0, 1.0, 0.01, 3).unwrap();
        let wide = QuadraticFleet::random(10, 4, 1.0, 1.0, 2.0, 3).unwrap();
        assert!(wide.gamma() > tight.gamma());
        assert!(tight.gamma() >= 0.0);
    }

    #[test]
    fn fleet_identical_centers_have_zero_gamma() {
        let c = Tensor::from_slice(&[1.0, 2.0]);
        let a = Tensor::from_slice(&[1.0, 1.0]);
        let objs = vec![
            QuadraticObjective::new(a.clone(), c.clone()).unwrap(),
            QuadraticObjective::new(a, c).unwrap(),
        ];
        let fleet = QuadraticFleet::new(objs).unwrap();
        assert!(fleet.gamma().abs() < 1e-7);
    }

    #[test]
    fn fleet_validation() {
        assert!(QuadraticFleet::new(vec![]).is_err());
        assert!(QuadraticFleet::random(0, 4, 1.0, 2.0, 1.0, 0).is_err());
        assert!(QuadraticFleet::random(3, 0, 1.0, 2.0, 1.0, 0).is_err());
        assert!(QuadraticFleet::random(3, 4, 2.0, 1.0, 1.0, 0).is_err());
        assert!(QuadraticFleet::random(3, 4, 0.0, 1.0, 1.0, 0).is_err());
        let mixed = vec![
            QuadraticObjective::new(Tensor::ones(&[2]), Tensor::zeros(&[2])).unwrap(),
            QuadraticObjective::new(Tensor::ones(&[3]), Tensor::zeros(&[3])).unwrap(),
        ];
        assert!(QuadraticFleet::new(mixed).is_err());
    }

    #[test]
    fn fleet_constants_cover_range() {
        let fleet = QuadraticFleet::random(20, 16, 0.5, 2.0, 1.0, 11).unwrap();
        assert!(fleet.strong_convexity() >= 0.5);
        assert!(fleet.smoothness() <= 2.0);
        assert!(fleet.len() == 20 && !fleet.is_empty() && fleet.dim() == 16);
    }

    #[test]
    fn gradient_descent_converges_to_optimum() {
        let fleet = QuadraticFleet::random(4, 6, 0.5, 2.0, 1.0, 13).unwrap();
        let mut w = Tensor::zeros(&[6]);
        for _ in 0..200 {
            let mut g = Tensor::zeros(&[6]);
            for o in fleet.objectives() {
                g.add_inplace(&o.grad(&w).unwrap()).unwrap();
            }
            g.scale(1.0 / fleet.len() as f32);
            w.axpy(-0.4, &g).unwrap();
        }
        let gap = fleet.global_value(&w).unwrap() - fleet.optimal_value();
        assert!(gap < 1e-6, "GD should reach the optimum, gap {gap}");
    }
}
